// autocts_cli — command-line front end for the library.
//
// Subcommands:
//   list-ops                     print every registered operator
//   generate [options]           generate a synthetic dataset, export CSV
//   search   [options]           run the joint architecture search
//   evaluate [options]           retrain a saved genotype and report metrics
//   evaluate-topk [options]      train/evaluate a ranked candidate set on a
//                                bounded worker pool (core/eval_scheduler.h)
//
// Common options:
//   --kind K        traffic-speed | traffic-flow | solar | electricity
//   --nodes N       number of series (default 12)
//   --steps T       number of timestamps (default 1440)
//   --seed S        dataset seed (default 1)
//   --input P --output Q --horizon H     window spec (defaults 12/12/0)
//   --hidden D      hidden width (default 16)
//   --epochs E      search or training epochs
//   --genotype F    genotype file (search output / evaluate input)
//   --cost-weight W efficiency-aware search weight (default 0 = off)
//   --out F         output file (generate: CSV; search: genotype text)
//   --checkpoint F  search only: write a crash-safe checkpoint to F
//   --checkpoint-every N   batches between checkpoints (default 1)
//   --resume 1      restore F (or F.prev) and continue; a resumed run
//                   reproduces the uninterrupted result bit-for-bit
//   --recover 1     search/evaluate: enable automatic divergence recovery
//                   (skip poisoned optimizer steps; roll back to the last
//                   good snapshot with a learning-rate backoff when the
//                   parameters themselves go non-finite)
//   --max-recoveries N     rollbacks before giving up (default 3)
//   --lr-backoff F  learning-rate multiplier per rollback (default 0.5)
//   --trace-out F   search/evaluate: write a Chrome-tracing JSON (open at
//                   chrome://tracing) to F and a per-op wall-time table to
//                   F.ops.csv; bit-transparent (results are unchanged)
//   --metrics-out F search/evaluate: write metric rows to F.csv and
//                   F.jsonl (per-epoch losses, grad norms, tau, entropies,
//                   recovery counters, throughput)
//   --metrics-every N      also emit a metrics row every N healthy batches
//                   (default 0 = per-epoch rows only)
//
// Search candidate derivation:
//   --derive-top-k K   derive K ranked candidate architectures instead of 1;
//                   with K > 1, --out becomes a candidate-set document that
//                   evaluate-topk consumes (K = 1 keeps the plain genotype
//                   format; evaluate-topk accepts either)
//
// evaluate-topk options:
//   --candidates F  candidate-set file (search --derive-top-k output, or a
//                   plain single-genotype file)
//   --eval-workers N       worker threads evaluating candidates
//                   concurrently (default 1); any value is bit-identical
//   --eval-checkpoint F    persist completed candidates to F after each
//                   finishes; a re-run with the same configuration resumes,
//                   re-evaluating only the unfinished candidates
//   --train-seed S  base training seed; candidate i trains under a private
//                   RNG stream split deterministically from (S, i)
//
// Resilience options (common/fault.h, common/cancellation.h):
//   --faults SPEC   install a deterministic fault-injection plan, e.g.
//                   "write:ENOSPC@3,rename:EIO@1" (the AUTOCTS_FAULTS env
//                   variable installs the same grammar; --faults wins)
//   --io-retries N  attempts per checkpoint/metrics write, including the
//                   first (default 3); backoff 10ms * 2^k capped at 1s
//   --deadline S    search: wall-clock budget in seconds; on expiry the
//                   search writes a final checkpoint and exits 75
//   --step-budget N search: stop (with a final checkpoint) after N search
//                   steps this process run; exits 75
//   --candidate-deadline S     evaluate-topk: per-candidate wall budget; a
//                   candidate over budget is recorded as a deterministic
//                   DEADLINE_EXCEEDED failure while the rest continue
//   --candidate-step-budget N  evaluate-topk: per-candidate train-batch
//                   budget, same failure semantics
//
// Signals and exit codes:
//   SIGINT/SIGTERM request a graceful shutdown: search and evaluate-topk
//   finish persisting, write a final checkpoint, and exit; a --resume run
//   then reproduces the uninterrupted result bit-for-bit. A second signal
//   hard-exits immediately.
//     0    success
//     1    failure (bad input, anomaly without --recover, ...)
//     2    usage error
//     42   --die-after-* crash seam fired (e2e tests)
//     75   --deadline / --step-budget exhausted (final checkpoint written)
//     130  interrupted by SIGINT (128 + 2), final checkpoint written
//     143  terminated by SIGTERM (128 + 15), final checkpoint written
//
// Crash-simulation seams (e2e tests only):
//   --die-after-checkpoints N   search: hard-exit (code 42) right after the
//                   Nth checkpoint write
//   --die-after-candidates N    evaluate-topk: hard-exit (code 42) once N
//                   candidates have been persisted to --eval-checkpoint
//   --signal-after-checkpoints N   search: raise SIGTERM after the Nth
//                   checkpoint write (exercises the graceful path)
//   --signal-after-candidates N    evaluate-topk: raise SIGTERM once N
//                   candidates have been persisted
//
// Without --recover 1, a numerical anomaly makes search/evaluate exit with
// status 1 and a message naming the anomaly and, when it reproduces under
// the autograd numeric trace, the first op that produced a non-finite
// value.
//
// Examples:
//   autocts_cli search --kind traffic-flow --nodes 10 --steps 1200 \
//       --epochs 2 --out genotype.txt
//   autocts_cli evaluate --kind traffic-flow --nodes 10 --steps 1200 \
//       --genotype genotype.txt --epochs 4
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/cancellation.h"
#include "common/fault.h"
#include "common/signal_handler.h"
#include "common/text_codec.h"
#include "core/cost_model.h"
#include "core/eval_scheduler.h"
#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/csv.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"
#include "ops/op_registry.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace autocts;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::strtoll(it->second.c_str(),
                                                         nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: autocts_cli "
               "<list-ops|generate|search|evaluate|evaluate-topk> "
               "[--key value ...]\n(see the header of tools/autocts_cli.cc "
               "for the full option list)\n");
  return 2;
}

// Process-wide shutdown token; SIGINT/SIGTERM cancel it (see main()).
CancellationToken& ShutdownToken() {
  static CancellationToken token;
  return token;
}

// Maps a terminal command failure to the documented exit code: 130/143 for
// a signal-driven cancel, 75 for an exhausted deadline or step budget, 1
// for everything else.
int FailureExitCode(const Status& status) {
  if (status.code() == StatusCode::kCancelled) {
    const int code = ShutdownExitCode();
    return code != 0 ? code : 130;
  }
  if (status.code() == StatusCode::kDeadlineExceeded) return 75;
  return 1;
}

fault::RetryPolicy RetryPolicyFromArgs(const Args& args) {
  fault::RetryPolicy policy;
  policy.max_attempts = args.GetInt("io-retries", policy.max_attempts);
  return policy;
}

data::CtsDataset MakeDataset(const Args& args) {
  const std::string kind = args.Get("kind", "traffic-speed");
  const int64_t nodes = args.GetInt("nodes", 12);
  const int64_t steps = args.GetInt("steps", 1440);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  if (kind == "traffic-speed") {
    data::TrafficSpeedConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateTrafficSpeed(config);
  }
  if (kind == "traffic-flow") {
    data::TrafficFlowConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateTrafficFlow(config);
  }
  if (kind == "solar") {
    data::SolarConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateSolar(config);
  }
  if (kind == "electricity") {
    data::ElectricityConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateElectricity(config);
  }
  std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
  std::exit(2);
}

models::PreparedData PrepareFromArgs(const Args& args,
                                     const data::CtsDataset& dataset) {
  data::WindowSpec window;
  window.input_length = args.GetInt("input", 12);
  window.output_length = args.GetInt("output", 12);
  window.horizon = args.GetInt("horizon", 0);
  if (window.horizon > 0) window.output_length = 1;
  return models::PrepareData(dataset, window,
                             args.GetDouble("train-fraction", 0.7),
                             args.GetDouble("val-fraction", 0.1));
}

int ListOps() {
  for (const std::string& name : ops::OpRegistry::Global().Names()) {
    std::printf("%-10s cost=%.2f %s\n", name.c_str(),
                core::OperatorCost(name),
                core::IsParametricOp(name) ? "" : "(non-parametric)");
  }
  return 0;
}

int Generate(const Args& args) {
  const data::CtsDataset dataset = MakeDataset(args);
  const std::string out = args.Get("out", "dataset.csv");
  // Export the target feature as a [T, N] matrix.
  Tensor matrix({dataset.num_steps(), dataset.num_nodes()});
  for (int64_t t = 0; t < dataset.num_steps(); ++t) {
    for (int64_t n = 0; n < dataset.num_nodes(); ++n) {
      matrix.At({t, n}) =
          dataset.values.At({t, n, dataset.target_feature});
    }
  }
  const Status status = data::SaveMatrixCsv(out, matrix);
  std::printf("%s: %s (%lld x %lld)\n", out.c_str(),
              status.ToString().c_str(),
              static_cast<long long>(dataset.num_steps()),
              static_cast<long long>(dataset.num_nodes()));
  return status.ok() ? 0 : 1;
}

int Search(const Args& args) {
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);
  core::SearchOptions options;
  options.supernet.micro_nodes = args.GetInt("micro-nodes", 5);
  options.supernet.macro_blocks = args.GetInt("macro-blocks", 4);
  options.supernet.hidden_dim = args.GetInt("hidden", 16);
  options.epochs = args.GetInt("epochs", 2);
  options.batch_size = args.GetInt("batch", 32);
  options.max_batches_per_epoch = args.GetInt("max-batches", 5);
  options.cost_weight = args.GetDouble("cost-weight", 0.0);
  options.bilevel_order = args.GetInt("bilevel", 1);
  options.seed = static_cast<uint64_t>(args.GetInt("search-seed", 3));
  options.checkpoint_path = args.Get("checkpoint", "");
  options.checkpoint_every_n_batches = args.GetInt("checkpoint-every", 1);
  options.resume = args.GetInt("resume", 0) != 0;
  options.derive_top_k = args.GetInt("derive-top-k", 1);
  const int64_t die_after_checkpoints =
      args.GetInt("die-after-checkpoints", 0);
  const int64_t signal_after_checkpoints =
      args.GetInt("signal-after-checkpoints", 0);
  if (die_after_checkpoints > 0) {
    options.post_checkpoint_hook = [die_after_checkpoints](
                                       int64_t ordinal, const std::string&) {
      // Simulated crash for the e2e pipeline test: the checkpoint is already
      // fsynced, so exiting without cleanup is exactly a kill -9.
      if (ordinal + 1 >= die_after_checkpoints) std::_Exit(42);
    };
  } else if (signal_after_checkpoints > 0) {
    options.post_checkpoint_hook = [signal_after_checkpoints](
                                       int64_t ordinal, const std::string&) {
      // Graceful-shutdown seam for the e2e pipeline test: deliver a real
      // SIGTERM to this process, exercising the handler -> token -> final
      // checkpoint -> exit 143 path exactly as an external kill would.
      if (ordinal + 1 >= signal_after_checkpoints) std::raise(SIGTERM);
    };
  }
  options.cancel = &ShutdownToken();
  options.deadline = Deadline::AfterBudget(args.GetDouble("deadline", 0.0));
  options.step_budget = args.GetInt("step-budget", 0);
  options.io_retry = RetryPolicyFromArgs(args);
  options.recovery.enabled = args.GetInt("recover", 0) != 0;
  options.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  options.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  options.trace_path = args.Get("trace-out", "");
  options.metrics_path = args.Get("metrics-out", "");
  options.metrics_every_n_batches = args.GetInt("metrics-every", 0);
  options.verbose = true;
  const StatusOr<core::SearchResult> search_result =
      core::JointSearcher(options).SearchWithStatus(prepared);
  if (!search_result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 search_result.status().ToString().c_str());
    return FailureExitCode(search_result.status());
  }
  const core::SearchResult& result = search_result.value();
  std::printf("%s", result.genotype.ToPrettyString().c_str());
  std::printf("search took %.1fs; relative architecture cost %.2f\n",
              result.search_seconds,
              core::GenotypeCost(result.genotype));
  if (result.recoveries > 0 || result.skipped_steps > 0) {
    std::printf("numerical recovery: %lld rollbacks, %lld skipped steps "
                "(last anomaly: %s)\n",
                static_cast<long long>(result.recoveries),
                static_cast<long long>(result.skipped_steps),
                result.last_anomaly.c_str());
  }
  const std::string out = args.Get("out", "genotype.txt");
  if (result.top_genotypes.size() > 1) {
    const Status saved = core::SaveCandidateSet(result.top_genotypes, out);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("candidate set (%lld genotypes) written to %s\n",
                static_cast<long long>(result.top_genotypes.size()),
                out.c_str());
    return 0;
  }
  std::ofstream stream(out);
  stream << result.genotype.ToText();
  std::printf("genotype written to %s\n", out.c_str());
  return stream ? 0 : 1;
}

int Evaluate(const Args& args) {
  const std::string path = args.Get("genotype", "genotype.txt");
  std::ifstream stream(path);
  if (!stream) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string text{std::istreambuf_iterator<char>(stream),
                         std::istreambuf_iterator<char>()};
  const StatusOr<core::Genotype> genotype = core::Genotype::FromText(text);
  if (!genotype.ok()) {
    std::fprintf(stderr, "bad genotype: %s\n",
                 genotype.status().ToString().c_str());
    return 1;
  }
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);
  models::TrainConfig config;
  config.epochs = args.GetInt("epochs", 4);
  config.batch_size = args.GetInt("batch", 32);
  config.max_batches_per_epoch = args.GetInt("max-batches", 10);
  config.early_stop_patience = args.GetInt("patience", 0);
  config.recovery.enabled = args.GetInt("recover", 0) != 0;
  config.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  config.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  config.trace_path = args.Get("trace-out", "");
  config.metrics_path = args.Get("metrics-out", "");
  config.metrics_every_n_batches = args.GetInt("metrics-every", 0);
  config.verbose = true;
  config.cancel = &ShutdownToken();
  config.deadline = Deadline::AfterBudget(args.GetDouble("deadline", 0.0));
  config.step_budget = args.GetInt("step-budget", 0);
  const StatusOr<models::EvalResult> eval_result =
      core::EvaluateGenotypeWithStatus(genotype.value(), prepared,
                                       args.GetInt("hidden", 16), config);
  if (!eval_result.ok()) {
    std::fprintf(stderr, "evaluate failed: %s\n",
                 eval_result.status().ToString().c_str());
    return FailureExitCode(eval_result.status());
  }
  const models::EvalResult& result = eval_result.value();
  if (result.recoveries > 0 || result.skipped_steps > 0) {
    std::printf("numerical recovery: %lld rollbacks, %lld skipped steps "
                "(last anomaly: %s)\n",
                static_cast<long long>(result.recoveries),
                static_cast<long long>(result.skipped_steps),
                result.last_anomaly.c_str());
  }
  std::printf(
      "test: MAE %.4f  RMSE %.4f  MAPE %.2f%%  RRSE %.4f  CORR %.4f\n",
      result.average.mae, result.average.rmse, result.average.mape * 100.0,
      result.rrse, result.corr);
  std::printf("epochs run %lld, params %lld, %.2f s/epoch, %.3f ms/window\n",
              static_cast<long long>(result.epochs_run),
              static_cast<long long>(result.parameter_count),
              result.train_seconds_per_epoch,
              result.inference_ms_per_window);
  return 0;
}

int EvaluateTopK(const Args& args) {
  const std::string path = args.Get("candidates", "candidates.txt");
  const StatusOr<std::vector<core::Genotype>> candidates =
      core::LoadCandidateSet(path);
  if (!candidates.ok()) {
    std::fprintf(stderr, "cannot load candidate set %s: %s\n", path.c_str(),
                 candidates.status().ToString().c_str());
    return 1;
  }
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);

  core::EvalSchedulerOptions options;
  options.workers = args.GetInt("eval-workers", 1);
  options.hidden_dim = args.GetInt("hidden", 16);
  options.checkpoint_path = args.Get("eval-checkpoint", "");
  options.metrics_path = args.Get("metrics-out", "");
  options.verbose = args.GetInt("quiet", 0) == 0;
  options.train.epochs = args.GetInt("epochs", 4);
  options.train.batch_size = args.GetInt("batch", 32);
  options.train.max_batches_per_epoch = args.GetInt("max-batches", 10);
  options.train.early_stop_patience = args.GetInt("patience", 0);
  options.train.seed = static_cast<uint64_t>(args.GetInt("train-seed", 7));
  options.train.recovery.enabled = args.GetInt("recover", 0) != 0;
  options.train.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  options.train.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  const int64_t die_after_candidates =
      args.GetInt("die-after-candidates", 0);
  const int64_t signal_after_candidates =
      args.GetInt("signal-after-candidates", 0);
  if (die_after_candidates > 0) {
    options.post_persist_hook = [die_after_candidates](int64_t persisted) {
      // Simulated crash for the e2e pipeline test (see Search()).
      if (persisted >= die_after_candidates) std::_Exit(42);
    };
  } else if (signal_after_candidates > 0) {
    options.post_persist_hook = [signal_after_candidates](int64_t persisted) {
      // Graceful-shutdown seam (see Search()): real SIGTERM, full handler
      // path, documented exit 143.
      if (persisted >= signal_after_candidates) std::raise(SIGTERM);
    };
  }
  options.cancel = &ShutdownToken();
  options.candidate_wall_budget_seconds =
      args.GetDouble("candidate-deadline", 0.0);
  options.candidate_step_budget = args.GetInt("candidate-step-budget", 0);
  options.io_retry = RetryPolicyFromArgs(args);

  const StatusOr<core::EvalBatchResult> evaluated =
      core::EvalScheduler(std::move(options))
          .Evaluate(candidates.value(), prepared);
  if (!evaluated.ok()) {
    std::fprintf(stderr, "evaluate-topk failed: %s\n",
                 evaluated.status().ToString().c_str());
    return FailureExitCode(evaluated.status());
  }
  const core::EvalBatchResult& batch = evaluated.value();
  for (size_t i = 0; i < batch.candidates.size(); ++i) {
    const core::CandidateOutcome& outcome = batch.candidates[i];
    if (outcome.status.ok()) {
      // Exact hex-float images alongside the readable values: the e2e
      // pipeline test compares these tokens bit-for-bit across worker
      // counts and resume boundaries.
      std::printf(
          "candidate %lld%s: MAE %.4f RMSE %.4f  exact mae=%s rmse=%s "
          "loss=%s\n",
          static_cast<long long>(i), outcome.resumed ? " (resumed)" : "",
          outcome.result.average.mae, outcome.result.average.rmse,
          FormatExactDouble(outcome.result.average.mae).c_str(),
          FormatExactDouble(outcome.result.average.rmse).c_str(),
          FormatExactDouble(outcome.result.final_train_loss).c_str());
    } else {
      std::printf("candidate %lld%s: FAILED %s\n",
                  static_cast<long long>(i),
                  outcome.resumed ? " (resumed)" : "",
                  outcome.status.ToString().c_str());
    }
  }
  std::printf("evaluated %lld, resumed %lld, failed %lld of %lld "
              "candidates in %.1fs\n",
              static_cast<long long>(batch.evaluated),
              static_cast<long long>(batch.resumed),
              static_cast<long long>(batch.failed),
              static_cast<long long>(batch.candidates.size()),
              batch.wall_seconds);
  if (batch.best_index < 0) {
    std::fprintf(stderr, "every candidate failed\n");
    return 1;
  }
  std::printf("best candidate %lld\n",
              static_cast<long long>(batch.best_index));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args.options[argv[i] + 2] = argv[i + 1];
  }

  // Fault-injection plan: --faults wins over the AUTOCTS_FAULTS env var.
  const std::string faults = args.Get("faults", "");
  if (!faults.empty()) {
    StatusOr<fault::FaultPlan> plan = fault::ParseFaultPlan(faults);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --faults spec: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    fault::InstallFaultPlan(std::move(plan).value());
  } else {
    const Status env = fault::InstallFaultPlanFromEnv();
    if (!env.ok()) {
      std::fprintf(stderr, "bad AUTOCTS_FAULTS: %s\n",
                   env.ToString().c_str());
      return 2;
    }
  }

  // Long-running commands get graceful SIGINT/SIGTERM shutdown.
  if (args.command == "search" || args.command == "evaluate" ||
      args.command == "evaluate-topk") {
    InstallShutdownHandlers(&ShutdownToken());
  }

  if (args.command == "list-ops") return ListOps();
  if (args.command == "generate") return Generate(args);
  if (args.command == "search") return Search(args);
  if (args.command == "evaluate") return Evaluate(args);
  if (args.command == "evaluate-topk") return EvaluateTopK(args);
  return Usage();
}
