// autocts_cli — command-line front end for the library.
//
// Subcommands:
//   list-ops                     print every registered operator
//   generate [options]           generate a synthetic dataset, export CSV
//   search   [options]           run the joint architecture search
//   evaluate [options]           retrain a saved genotype and report metrics
//   evaluate-topk [options]      train/evaluate a ranked candidate set on a
//                                bounded worker pool (core/eval_scheduler.h)
//   export-artifact [options]    train a saved genotype and bundle the
//                                trained weights + scaler + window geometry
//                                into a serving artifact (serve/)
//   predict  [options]           one-shot forecast from an artifact; prints
//                                exact hex-float values for bit-comparison
//   serve-bench [options]        closed-loop load driver against the
//                                batched ForecastServer; prints p50/p99
//                                latency and QPS, batched vs unbatched
//   serve-tcp [options]          serve an artifact over the TCP wire
//                                protocol (src/net/); runs until
//                                SIGINT/SIGTERM, then drains and exits
//   predict-remote [options]     one-shot forecast through a running
//                                serve-tcp server; prints the same exact
//                                hex-float output as `predict`, so the two
//                                are byte-comparable
//
// Common options:
//   --kind K        traffic-speed | traffic-flow | solar | electricity
//   --nodes N       number of series (default 12)
//   --steps T       number of timestamps (default 1440)
//   --seed S        dataset seed (default 1)
//   --input P --output Q --horizon H     window spec (defaults 12/12/0)
//   --hidden D      hidden width (default 16)
//   --epochs E      search or training epochs
//   --genotype F    genotype file (search output / evaluate input)
//   --cost-weight W efficiency-aware search weight (default 0 = off)
//   --out F         output file (generate: CSV; search: genotype text)
//   --checkpoint F  search only: write a crash-safe checkpoint to F
//   --checkpoint-every N   batches between checkpoints (default 1)
//   --resume 1      restore F (or F.prev) and continue; a resumed run
//                   reproduces the uninterrupted result bit-for-bit
//   --recover 1     search/evaluate: enable automatic divergence recovery
//                   (skip poisoned optimizer steps; roll back to the last
//                   good snapshot with a learning-rate backoff when the
//                   parameters themselves go non-finite)
//   --max-recoveries N     rollbacks before giving up (default 3)
//   --lr-backoff F  learning-rate multiplier per rollback (default 0.5)
//   --trace-out F   search/evaluate: write a Chrome-tracing JSON (open at
//                   chrome://tracing) to F and a per-op wall-time table to
//                   F.ops.csv; bit-transparent (results are unchanged)
//   --metrics-out F search/evaluate: write metric rows to F.csv and
//                   F.jsonl (per-epoch losses, grad norms, tau, entropies,
//                   recovery counters, throughput)
//   --metrics-every N      also emit a metrics row every N healthy batches
//                   (default 0 = per-epoch rows only)
//
// Search candidate derivation:
//   --derive-top-k K   derive K ranked candidate architectures instead of 1;
//                   with K > 1, --out becomes a candidate-set document that
//                   evaluate-topk consumes (K = 1 keeps the plain genotype
//                   format; evaluate-topk accepts either)
//
// evaluate-topk options:
//   --candidates F  candidate-set file (search --derive-top-k output, or a
//                   plain single-genotype file)
//   --eval-workers N       worker threads evaluating candidates
//                   concurrently (default 1); any value is bit-identical
//   --eval-checkpoint F    persist completed candidates to F after each
//                   finishes; a re-run with the same configuration resumes,
//                   re-evaluating only the unfinished candidates
//   --train-seed S  base training seed; candidate i trains under a private
//                   RNG stream split deterministically from (S, i)
//
// Serving options (src/serve/):
//   --artifact F    artifact file (export-artifact output; predict and
//                   serve-bench input). Loads fall back to F.prev when F is
//                   corrupt, mirroring checkpoint loads.
//   --at T          predict: forecast from the window ending at timestamp T
//                   (exclusive; default = the end of the series). The last
//                   `input` ticks are streamed through the session's
//                   sliding-window ring buffer.
//   --serve-workers N      serve-bench: server worker threads (default 2);
//                   any value returns bit-identical forecasts
//   --max-batch K   serve-bench: micro-batch coalescing limit (default 8)
//   --clients C     serve-bench: concurrent closed-loop clients (default 8)
//   --requests N    serve-bench: total requests per pass (default 256)
//   --queue-cap N   serve-bench/serve-tcp: bounded queue capacity
//                   (default 256)
//
// Network serving options (src/net/):
//   --port P        serve-tcp: TCP port to listen on (default 7077;
//                   0 picks an ephemeral port, printed on stdout).
//                   predict-remote: the server's port
//   --bind A        serve-tcp: IPv4 bind address (default 127.0.0.1;
//                   use 0.0.0.0 to serve a network)
//   --host A        predict-remote: server IPv4 address (default
//                   127.0.0.1)
//   --timeout S     predict-remote: per-request wall timeout in seconds
//                   (default 30; 0 waits forever)
//   --deadline S    predict-remote: server-side deadline budget carried on
//                   the wire (default 0 = none); an expired budget comes
//                   back as a DeadlineExceeded status frame
//   serve-tcp reuses --serve-workers / --max-batch / --queue-cap, and
//   predict-remote reuses --io-retries for connect/transport retries.
//
// Resilience options (common/fault.h, common/cancellation.h):
//   --faults SPEC   install a deterministic fault-injection plan, e.g.
//                   "write:ENOSPC@3,rename:EIO@1" (the AUTOCTS_FAULTS env
//                   variable installs the same grammar; --faults wins)
//   --io-retries N  attempts per checkpoint/metrics write, including the
//                   first (default 3); backoff 10ms * 2^k capped at 1s
//   --deadline S    search: wall-clock budget in seconds; on expiry the
//                   search writes a final checkpoint and exits 75
//   --step-budget N search: stop (with a final checkpoint) after N search
//                   steps this process run; exits 75
//   --candidate-deadline S     evaluate-topk: per-candidate wall budget; a
//                   candidate over budget is recorded as a deterministic
//                   DEADLINE_EXCEEDED failure while the rest continue
//   --candidate-step-budget N  evaluate-topk: per-candidate train-batch
//                   budget, same failure semantics
//
// Signals and exit codes:
//   SIGINT/SIGTERM request a graceful shutdown: search and evaluate-topk
//   finish persisting, write a final checkpoint, and exit; a --resume run
//   then reproduces the uninterrupted result bit-for-bit. A second signal
//   hard-exits immediately.
//     0    success
//     1    failure (bad input, anomaly without --recover, ...)
//     2    usage error
//     42   --die-after-* crash seam fired (e2e tests)
//     75   --deadline / --step-budget exhausted (final checkpoint written)
//     130  interrupted by SIGINT (128 + 2), final checkpoint written
//     143  terminated by SIGTERM (128 + 15), final checkpoint written
//
// Crash-simulation seams (e2e tests only):
//   --die-after-checkpoints N   search: hard-exit (code 42) right after the
//                   Nth checkpoint write
//   --die-after-candidates N    evaluate-topk: hard-exit (code 42) once N
//                   candidates have been persisted to --eval-checkpoint
//   --signal-after-checkpoints N   search: raise SIGTERM after the Nth
//                   checkpoint write (exercises the graceful path)
//   --signal-after-candidates N    evaluate-topk: raise SIGTERM once N
//                   candidates have been persisted
//
// Without --recover 1, a numerical anomaly makes search/evaluate exit with
// status 1 and a message naming the anomaly and, when it reproduces under
// the autograd numeric trace, the first op that produced a non-finite
// value.
//
// Examples:
//   autocts_cli search --kind traffic-flow --nodes 10 --steps 1200 \
//       --epochs 2 --out genotype.txt
//   autocts_cli evaluate --kind traffic-flow --nodes 10 --steps 1200 \
//       --genotype genotype.txt --epochs 4
//   autocts_cli export-artifact --kind traffic-flow --nodes 10 --steps 1200 \
//       --genotype genotype.txt --epochs 4 --out model.artifact
//   autocts_cli predict --kind traffic-flow --nodes 10 --steps 1200 \
//       --artifact model.artifact
//   autocts_cli serve-bench --kind traffic-flow --nodes 10 --steps 1200 \
//       --artifact model.artifact --serve-workers 4 --max-batch 8
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/fault.h"
#include "common/signal_handler.h"
#include "common/text_codec.h"
#include "core/cost_model.h"
#include "core/eval_scheduler.h"
#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/csv.h"
#include "data/synthetic/generators.h"
#include "common/stopwatch.h"
#include "models/trainer.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "ops/op_registry.h"
#include "serve/forecast_server.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace autocts;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::strtoll(it->second.c_str(),
                                                         nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: autocts_cli "
               "<list-ops|generate|search|evaluate|evaluate-topk|"
               "export-artifact|predict|serve-bench|serve-tcp|"
               "predict-remote> "
               "[--key value ...]\n(see the header of tools/autocts_cli.cc "
               "for the full option list)\n");
  return 2;
}

// Process-wide shutdown token; SIGINT/SIGTERM cancel it (see main()).
CancellationToken& ShutdownToken() {
  static CancellationToken token;
  return token;
}

// Maps a terminal command failure to the documented exit code: 130/143 for
// a signal-driven cancel, 75 for an exhausted deadline or step budget, 1
// for everything else.
int FailureExitCode(const Status& status) {
  if (status.code() == StatusCode::kCancelled) {
    const int code = ShutdownExitCode();
    return code != 0 ? code : 130;
  }
  if (status.code() == StatusCode::kDeadlineExceeded) return 75;
  return 1;
}

fault::RetryPolicy RetryPolicyFromArgs(const Args& args) {
  fault::RetryPolicy policy;
  policy.max_attempts = args.GetInt("io-retries", policy.max_attempts);
  return policy;
}

data::CtsDataset MakeDataset(const Args& args) {
  const std::string kind = args.Get("kind", "traffic-speed");
  const int64_t nodes = args.GetInt("nodes", 12);
  const int64_t steps = args.GetInt("steps", 1440);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  if (kind == "traffic-speed") {
    data::TrafficSpeedConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateTrafficSpeed(config);
  }
  if (kind == "traffic-flow") {
    data::TrafficFlowConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateTrafficFlow(config);
  }
  if (kind == "solar") {
    data::SolarConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateSolar(config);
  }
  if (kind == "electricity") {
    data::ElectricityConfig config;
    config.num_nodes = nodes;
    config.num_steps = steps;
    config.seed = seed;
    return data::GenerateElectricity(config);
  }
  std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
  std::exit(2);
}

models::PreparedData PrepareFromArgs(const Args& args,
                                     const data::CtsDataset& dataset) {
  data::WindowSpec window;
  window.input_length = args.GetInt("input", 12);
  window.output_length = args.GetInt("output", 12);
  window.horizon = args.GetInt("horizon", 0);
  if (window.horizon > 0) window.output_length = 1;
  return models::PrepareData(dataset, window,
                             args.GetDouble("train-fraction", 0.7),
                             args.GetDouble("val-fraction", 0.1));
}

int ListOps() {
  for (const std::string& name : ops::OpRegistry::Global().Names()) {
    std::printf("%-10s cost=%.2f %s\n", name.c_str(),
                core::OperatorCost(name),
                core::IsParametricOp(name) ? "" : "(non-parametric)");
  }
  return 0;
}

int Generate(const Args& args) {
  const data::CtsDataset dataset = MakeDataset(args);
  const std::string out = args.Get("out", "dataset.csv");
  // Export the target feature as a [T, N] matrix.
  Tensor matrix({dataset.num_steps(), dataset.num_nodes()});
  for (int64_t t = 0; t < dataset.num_steps(); ++t) {
    for (int64_t n = 0; n < dataset.num_nodes(); ++n) {
      matrix.At({t, n}) =
          dataset.values.At({t, n, dataset.target_feature});
    }
  }
  const Status status = data::SaveMatrixCsv(out, matrix);
  std::printf("%s: %s (%lld x %lld)\n", out.c_str(),
              status.ToString().c_str(),
              static_cast<long long>(dataset.num_steps()),
              static_cast<long long>(dataset.num_nodes()));
  return status.ok() ? 0 : 1;
}

int Search(const Args& args) {
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);
  core::SearchOptions options;
  options.supernet.micro_nodes = args.GetInt("micro-nodes", 5);
  options.supernet.macro_blocks = args.GetInt("macro-blocks", 4);
  options.supernet.hidden_dim = args.GetInt("hidden", 16);
  options.epochs = args.GetInt("epochs", 2);
  options.batch_size = args.GetInt("batch", 32);
  options.max_batches_per_epoch = args.GetInt("max-batches", 5);
  options.cost_weight = args.GetDouble("cost-weight", 0.0);
  options.bilevel_order = args.GetInt("bilevel", 1);
  options.seed = static_cast<uint64_t>(args.GetInt("search-seed", 3));
  options.checkpoint_path = args.Get("checkpoint", "");
  options.checkpoint_every_n_batches = args.GetInt("checkpoint-every", 1);
  options.resume = args.GetInt("resume", 0) != 0;
  options.derive_top_k = args.GetInt("derive-top-k", 1);
  const int64_t die_after_checkpoints =
      args.GetInt("die-after-checkpoints", 0);
  const int64_t signal_after_checkpoints =
      args.GetInt("signal-after-checkpoints", 0);
  if (die_after_checkpoints > 0) {
    options.post_checkpoint_hook = [die_after_checkpoints](
                                       int64_t ordinal, const std::string&) {
      // Simulated crash for the e2e pipeline test: the checkpoint is already
      // fsynced, so exiting without cleanup is exactly a kill -9.
      if (ordinal + 1 >= die_after_checkpoints) std::_Exit(42);
    };
  } else if (signal_after_checkpoints > 0) {
    options.post_checkpoint_hook = [signal_after_checkpoints](
                                       int64_t ordinal, const std::string&) {
      // Graceful-shutdown seam for the e2e pipeline test: deliver a real
      // SIGTERM to this process, exercising the handler -> token -> final
      // checkpoint -> exit 143 path exactly as an external kill would.
      if (ordinal + 1 >= signal_after_checkpoints) std::raise(SIGTERM);
    };
  }
  options.cancel = &ShutdownToken();
  options.deadline = Deadline::AfterBudget(args.GetDouble("deadline", 0.0));
  options.step_budget = args.GetInt("step-budget", 0);
  options.io_retry = RetryPolicyFromArgs(args);
  options.recovery.enabled = args.GetInt("recover", 0) != 0;
  options.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  options.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  options.trace_path = args.Get("trace-out", "");
  options.metrics_path = args.Get("metrics-out", "");
  options.metrics_every_n_batches = args.GetInt("metrics-every", 0);
  options.verbose = true;
  const StatusOr<core::SearchResult> search_result =
      core::JointSearcher(options).SearchWithStatus(prepared);
  if (!search_result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 search_result.status().ToString().c_str());
    return FailureExitCode(search_result.status());
  }
  const core::SearchResult& result = search_result.value();
  std::printf("%s", result.genotype.ToPrettyString().c_str());
  std::printf("search took %.1fs; relative architecture cost %.2f\n",
              result.search_seconds,
              core::GenotypeCost(result.genotype));
  if (result.recoveries > 0 || result.skipped_steps > 0) {
    std::printf("numerical recovery: %lld rollbacks, %lld skipped steps "
                "(last anomaly: %s)\n",
                static_cast<long long>(result.recoveries),
                static_cast<long long>(result.skipped_steps),
                result.last_anomaly.c_str());
  }
  const std::string out = args.Get("out", "genotype.txt");
  if (result.top_genotypes.size() > 1) {
    const Status saved = core::SaveCandidateSet(result.top_genotypes, out);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("candidate set (%lld genotypes) written to %s\n",
                static_cast<long long>(result.top_genotypes.size()),
                out.c_str());
    return 0;
  }
  std::ofstream stream(out);
  stream << result.genotype.ToText();
  std::printf("genotype written to %s\n", out.c_str());
  return stream ? 0 : 1;
}

int Evaluate(const Args& args) {
  const std::string path = args.Get("genotype", "genotype.txt");
  std::ifstream stream(path);
  if (!stream) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string text{std::istreambuf_iterator<char>(stream),
                         std::istreambuf_iterator<char>()};
  const StatusOr<core::Genotype> genotype = core::Genotype::FromText(text);
  if (!genotype.ok()) {
    std::fprintf(stderr, "bad genotype: %s\n",
                 genotype.status().ToString().c_str());
    return 1;
  }
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);
  models::TrainConfig config;
  config.epochs = args.GetInt("epochs", 4);
  config.batch_size = args.GetInt("batch", 32);
  config.max_batches_per_epoch = args.GetInt("max-batches", 10);
  config.early_stop_patience = args.GetInt("patience", 0);
  config.recovery.enabled = args.GetInt("recover", 0) != 0;
  config.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  config.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  config.trace_path = args.Get("trace-out", "");
  config.metrics_path = args.Get("metrics-out", "");
  config.metrics_every_n_batches = args.GetInt("metrics-every", 0);
  config.verbose = true;
  config.cancel = &ShutdownToken();
  config.deadline = Deadline::AfterBudget(args.GetDouble("deadline", 0.0));
  config.step_budget = args.GetInt("step-budget", 0);
  const StatusOr<models::EvalResult> eval_result =
      core::EvaluateGenotypeWithStatus(genotype.value(), prepared,
                                       args.GetInt("hidden", 16), config);
  if (!eval_result.ok()) {
    std::fprintf(stderr, "evaluate failed: %s\n",
                 eval_result.status().ToString().c_str());
    return FailureExitCode(eval_result.status());
  }
  const models::EvalResult& result = eval_result.value();
  if (result.recoveries > 0 || result.skipped_steps > 0) {
    std::printf("numerical recovery: %lld rollbacks, %lld skipped steps "
                "(last anomaly: %s)\n",
                static_cast<long long>(result.recoveries),
                static_cast<long long>(result.skipped_steps),
                result.last_anomaly.c_str());
  }
  std::printf(
      "test: MAE %.4f  RMSE %.4f  MAPE %.2f%%  RRSE %.4f  CORR %.4f\n",
      result.average.mae, result.average.rmse, result.average.mape * 100.0,
      result.rrse, result.corr);
  std::printf("epochs run %lld, params %lld, %.2f s/epoch, %.3f ms/window\n",
              static_cast<long long>(result.epochs_run),
              static_cast<long long>(result.parameter_count),
              result.train_seconds_per_epoch,
              result.inference_ms_per_window);
  return 0;
}

int EvaluateTopK(const Args& args) {
  const std::string path = args.Get("candidates", "candidates.txt");
  const StatusOr<std::vector<core::Genotype>> candidates =
      core::LoadCandidateSet(path);
  if (!candidates.ok()) {
    std::fprintf(stderr, "cannot load candidate set %s: %s\n", path.c_str(),
                 candidates.status().ToString().c_str());
    return 1;
  }
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);

  core::EvalSchedulerOptions options;
  options.workers = args.GetInt("eval-workers", 1);
  options.hidden_dim = args.GetInt("hidden", 16);
  options.checkpoint_path = args.Get("eval-checkpoint", "");
  options.metrics_path = args.Get("metrics-out", "");
  options.verbose = args.GetInt("quiet", 0) == 0;
  options.train.epochs = args.GetInt("epochs", 4);
  options.train.batch_size = args.GetInt("batch", 32);
  options.train.max_batches_per_epoch = args.GetInt("max-batches", 10);
  options.train.early_stop_patience = args.GetInt("patience", 0);
  options.train.seed = static_cast<uint64_t>(args.GetInt("train-seed", 7));
  options.train.recovery.enabled = args.GetInt("recover", 0) != 0;
  options.train.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  options.train.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  const int64_t die_after_candidates =
      args.GetInt("die-after-candidates", 0);
  const int64_t signal_after_candidates =
      args.GetInt("signal-after-candidates", 0);
  if (die_after_candidates > 0) {
    options.post_persist_hook = [die_after_candidates](int64_t persisted) {
      // Simulated crash for the e2e pipeline test (see Search()).
      if (persisted >= die_after_candidates) std::_Exit(42);
    };
  } else if (signal_after_candidates > 0) {
    options.post_persist_hook = [signal_after_candidates](int64_t persisted) {
      // Graceful-shutdown seam (see Search()): real SIGTERM, full handler
      // path, documented exit 143.
      if (persisted >= signal_after_candidates) std::raise(SIGTERM);
    };
  }
  options.cancel = &ShutdownToken();
  options.candidate_wall_budget_seconds =
      args.GetDouble("candidate-deadline", 0.0);
  options.candidate_step_budget = args.GetInt("candidate-step-budget", 0);
  options.io_retry = RetryPolicyFromArgs(args);

  const StatusOr<core::EvalBatchResult> evaluated =
      core::EvalScheduler(std::move(options))
          .Evaluate(candidates.value(), prepared);
  if (!evaluated.ok()) {
    std::fprintf(stderr, "evaluate-topk failed: %s\n",
                 evaluated.status().ToString().c_str());
    return FailureExitCode(evaluated.status());
  }
  const core::EvalBatchResult& batch = evaluated.value();
  for (size_t i = 0; i < batch.candidates.size(); ++i) {
    const core::CandidateOutcome& outcome = batch.candidates[i];
    if (outcome.status.ok()) {
      // Exact hex-float images alongside the readable values: the e2e
      // pipeline test compares these tokens bit-for-bit across worker
      // counts and resume boundaries.
      std::printf(
          "candidate %lld%s: MAE %.4f RMSE %.4f  exact mae=%s rmse=%s "
          "loss=%s\n",
          static_cast<long long>(i), outcome.resumed ? " (resumed)" : "",
          outcome.result.average.mae, outcome.result.average.rmse,
          FormatExactDouble(outcome.result.average.mae).c_str(),
          FormatExactDouble(outcome.result.average.rmse).c_str(),
          FormatExactDouble(outcome.result.final_train_loss).c_str());
    } else {
      std::printf("candidate %lld%s: FAILED %s\n",
                  static_cast<long long>(i),
                  outcome.resumed ? " (resumed)" : "",
                  outcome.status.ToString().c_str());
    }
  }
  std::printf("evaluated %lld, resumed %lld, failed %lld of %lld "
              "candidates in %.1fs\n",
              static_cast<long long>(batch.evaluated),
              static_cast<long long>(batch.resumed),
              static_cast<long long>(batch.failed),
              static_cast<long long>(batch.candidates.size()),
              batch.wall_seconds);
  if (batch.best_index < 0) {
    std::fprintf(stderr, "every candidate failed\n");
    return 1;
  }
  std::printf("best candidate %lld\n",
              static_cast<long long>(batch.best_index));
  return 0;
}

// Loads a genotype text file (shared by evaluate and export-artifact).
StatusOr<core::Genotype> LoadGenotypeFile(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) return Status::NotFound("cannot open " + path);
  const std::string text{std::istreambuf_iterator<char>(stream),
                         std::istreambuf_iterator<char>()};
  return core::Genotype::FromText(text);
}

int ExportArtifact(const Args& args) {
  const std::string path = args.Get("genotype", "genotype.txt");
  const StatusOr<core::Genotype> genotype = LoadGenotypeFile(path);
  if (!genotype.ok()) {
    std::fprintf(stderr, "bad genotype %s: %s\n", path.c_str(),
                 genotype.status().ToString().c_str());
    return 1;
  }
  const data::CtsDataset dataset = MakeDataset(args);
  const models::PreparedData prepared = PrepareFromArgs(args, dataset);
  models::TrainConfig config;
  config.epochs = args.GetInt("epochs", 4);
  config.batch_size = args.GetInt("batch", 32);
  config.max_batches_per_epoch = args.GetInt("max-batches", 10);
  config.early_stop_patience = args.GetInt("patience", 0);
  config.seed = static_cast<uint64_t>(args.GetInt("train-seed", 7));
  config.recovery.enabled = args.GetInt("recover", 0) != 0;
  config.recovery.max_recoveries = args.GetInt("max-recoveries", 3);
  config.recovery.lr_backoff = args.GetDouble("lr-backoff", 0.5);
  config.verbose = true;
  config.cancel = &ShutdownToken();
  config.deadline = Deadline::AfterBudget(args.GetDouble("deadline", 0.0));
  config.step_budget = args.GetInt("step-budget", 0);
  const int64_t hidden = args.GetInt("hidden", 16);
  StatusOr<core::TrainedGenotype> trained =
      core::TrainGenotypeWithStatus(genotype.value(), prepared, hidden,
                                    config);
  if (!trained.ok()) {
    std::fprintf(stderr, "export-artifact training failed: %s\n",
                 trained.status().ToString().c_str());
    return FailureExitCode(trained.status());
  }
  const serve::ModelArtifact artifact = serve::MakeModelArtifact(
      *trained.value().model, prepared, hidden, config.seed);
  const std::string out = args.Get("out", "model.artifact");
  const fault::RetryPolicy retry = RetryPolicyFromArgs(args);
  const Status saved =
      fault::RetryCall(retry, "artifact write",
                       [&] { return serve::SaveModelArtifact(artifact, out); })
          .status;
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 saved.ToString().c_str());
    return 1;
  }
  const models::EvalResult& result = trained.value().eval;
  std::printf(
      "test: MAE %.4f  RMSE %.4f  MAPE %.2f%%  RRSE %.4f  CORR %.4f\n",
      result.average.mae, result.average.rmse, result.average.mape * 100.0,
      result.rrse, result.corr);
  std::printf("artifact written to %s (%lld bytes, %lld params)\n",
              out.c_str(),
              static_cast<long long>(
                  serve::EncodeModelArtifact(artifact).size()),
              static_cast<long long>(result.parameter_count));
  return 0;
}

int PredictOnce(const Args& args) {
  const std::string path = args.Get("artifact", "model.artifact");
  bool used_prev = false;
  const StatusOr<serve::ModelArtifact> artifact =
      serve::LoadModelArtifactOrPrev(path, &used_prev);
  if (!artifact.ok()) {
    std::fprintf(stderr, "cannot load artifact %s: %s\n", path.c_str(),
                 artifact.status().ToString().c_str());
    return 1;
  }
  if (used_prev) {
    std::printf("loaded previous generation %s.prev\n", path.c_str());
  }
  StatusOr<std::unique_ptr<serve::InferenceSession>> session =
      serve::InferenceSession::Create(artifact.value());
  if (!session.ok()) {
    std::fprintf(stderr, "cannot build session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const serve::ArtifactMeta& meta = artifact.value().meta;
  const data::CtsDataset dataset = MakeDataset(args);
  if (dataset.num_nodes() != meta.num_nodes ||
      dataset.num_features() != meta.in_features) {
    std::fprintf(stderr,
                 "dataset geometry (%lld nodes, %lld features) does not "
                 "match the artifact (%lld, %lld)\n",
                 static_cast<long long>(dataset.num_nodes()),
                 static_cast<long long>(dataset.num_features()),
                 static_cast<long long>(meta.num_nodes),
                 static_cast<long long>(meta.in_features));
    return 1;
  }
  const int64_t at = args.GetInt("at", dataset.num_steps());
  if (at < meta.input_length || at > dataset.num_steps()) {
    std::fprintf(stderr, "--at %lld out of range [%lld, %lld]\n",
                 static_cast<long long>(at),
                 static_cast<long long>(meta.input_length),
                 static_cast<long long>(dataset.num_steps()));
    return 1;
  }
  // Stream the window's ticks through the session ring buffer — the same
  // path a live feed uses (and what keeps steady-state requests small).
  Tensor tick({meta.num_nodes, meta.in_features});
  for (int64_t t = at - meta.input_length; t < at; ++t) {
    for (int64_t n = 0; n < meta.num_nodes; ++n) {
      for (int64_t f = 0; f < meta.in_features; ++f) {
        tick.At({n, f}) = dataset.values.At({t, n, f});
      }
    }
    session.value()->Observe(tick);
  }
  const StatusOr<Tensor> forecast = session.value()->PredictNext();
  if (!forecast.ok()) {
    std::fprintf(stderr, "predict failed: %s\n",
                 forecast.status().ToString().c_str());
    return 1;
  }
  std::printf("forecast from t=%lld (%lld steps, %lld nodes)\n",
              static_cast<long long>(at),
              static_cast<long long>(meta.output_length),
              static_cast<long long>(meta.num_nodes));
  for (int64_t q = 0; q < meta.output_length; ++q) {
    std::printf("step %lld:", static_cast<long long>(q + 1));
    for (int64_t n = 0; n < meta.num_nodes; ++n) {
      std::printf(" %.4f", forecast.value().At({q, n}));
    }
    std::printf("\n");
    // Exact hex-float images: tests and operators compare these tokens
    // bit-for-bit across machines, batch sizes, and worker counts.
    std::printf("exact q%lld =", static_cast<long long>(q + 1));
    for (int64_t n = 0; n < meta.num_nodes; ++n) {
      std::printf(" %s",
                  FormatExactDouble(forecast.value().At({q, n})).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

// One closed-loop serve-bench pass: `clients` threads submit `requests`
// windows round-robin and wait for each response before sending the next.
// Returns false on any failed request; forecasts land in (*outputs)[i] for
// request i (deterministic: request i always carries window i % windows).
struct ServePassResult {
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  serve::ForecastServer::Stats stats;
};

bool RunServePass(const serve::ModelArtifact& artifact,
                  const std::vector<Tensor>& windows, int64_t workers,
                  int64_t max_batch, int64_t queue_capacity,
                  int64_t requests, int64_t clients,
                  std::vector<Tensor>* outputs, ServePassResult* result) {
  serve::ServeOptions options;
  options.workers = workers;
  options.max_batch = max_batch;
  options.queue_capacity = queue_capacity;
  options.cancel = &ShutdownToken();
  serve::ForecastServer server(artifact, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return false;
  }
  outputs->assign(requests, Tensor());
  std::vector<double> latencies(requests, 0.0);
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};
  const int64_t start_nanos = SteadyNowNanos();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int64_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= requests) return;
        const int64_t t0 = SteadyNowNanos();
        const Tensor& window = windows[i % windows.size()];
        // Queue-full rejections are back-pressure, not errors: yield and
        // retry (bounded; with one outstanding request per client the
        // queue cannot stay full).
        StatusOr<Tensor> forecast = server.Submit(window.Clone()).get();
        for (int attempt = 0;
             !forecast.ok() &&
             forecast.status().code() == StatusCode::kUnavailable &&
             attempt < 1000;
             ++attempt) {
          std::this_thread::yield();
          forecast = server.Submit(window.Clone()).get();
        }
        if (!forecast.ok()) {
          failed.store(true);
          return;
        }
        latencies[i] = static_cast<double>(SteadyNowNanos() - t0) * 1e-6;
        (*outputs)[i] = std::move(forecast).value();
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  result->wall_seconds =
      static_cast<double>(SteadyNowNanos() - start_nanos) * 1e-9;
  server.Stop();
  result->stats = server.stats();
  if (failed.load()) return false;
  std::sort(latencies.begin(), latencies.end());
  result->p50_ms = latencies[static_cast<size_t>(requests / 2)];
  result->p99_ms = latencies[std::min<size_t>(
      latencies.size() - 1, static_cast<size_t>(requests * 99 / 100))];
  return true;
}

int ServeBench(const Args& args) {
  const std::string path = args.Get("artifact", "model.artifact");
  const StatusOr<serve::ModelArtifact> artifact =
      serve::LoadModelArtifactOrPrev(path);
  if (!artifact.ok()) {
    std::fprintf(stderr, "cannot load artifact %s: %s\n", path.c_str(),
                 artifact.status().ToString().c_str());
    return 1;
  }
  const serve::ArtifactMeta& meta = artifact.value().meta;
  const data::CtsDataset dataset = MakeDataset(args);
  if (dataset.num_nodes() != meta.num_nodes ||
      dataset.num_features() != meta.in_features ||
      dataset.num_steps() <= meta.input_length) {
    std::fprintf(stderr, "dataset does not match the artifact geometry\n");
    return 1;
  }
  // Distinct raw windows, stride 1, capped at 64 — the workload cycles
  // through them so consecutive requests are not identical.
  const int64_t available = dataset.num_steps() - meta.input_length + 1;
  const int64_t num_windows = std::min<int64_t>(64, available);
  std::vector<Tensor> windows;
  windows.reserve(num_windows);
  for (int64_t w = 0; w < num_windows; ++w) {
    Tensor window({meta.input_length, meta.num_nodes, meta.in_features});
    for (int64_t p = 0; p < meta.input_length; ++p) {
      for (int64_t n = 0; n < meta.num_nodes; ++n) {
        for (int64_t f = 0; f < meta.in_features; ++f) {
          window.At({p, n, f}) = dataset.values.At({w + p, n, f});
        }
      }
    }
    windows.push_back(std::move(window));
  }
  const int64_t workers = args.GetInt("serve-workers", 2);
  const int64_t max_batch = args.GetInt("max-batch", 8);
  const int64_t clients = args.GetInt("clients", 8);
  const int64_t requests = args.GetInt("requests", 256);
  const int64_t queue_capacity = args.GetInt("queue-cap", 256);

  std::printf("serve-bench: workers=%lld clients=%lld requests=%lld\n",
              static_cast<long long>(workers),
              static_cast<long long>(clients),
              static_cast<long long>(requests));
  std::vector<Tensor> unbatched, batched;
  ServePassResult base, coalesced;
  if (!RunServePass(artifact.value(), windows, workers, /*max_batch=*/1,
                    queue_capacity, requests, clients, &unbatched, &base) ||
      !RunServePass(artifact.value(), windows, workers, max_batch,
                    queue_capacity, requests, clients, &batched,
                    &coalesced)) {
    return 1;
  }
  const double base_qps = static_cast<double>(requests) / base.wall_seconds;
  const double coalesced_qps =
      static_cast<double>(requests) / coalesced.wall_seconds;
  std::printf(
      "  unbatched (max-batch 1):    %8.1f QPS  p50 %7.2f ms  p99 %7.2f ms\n",
      base_qps, base.p50_ms, base.p99_ms);
  std::printf(
      "  batched   (max-batch %lld): %8.1f QPS  p50 %7.2f ms  p99 %7.2f ms  "
      "(max fill %lld, %.2fx QPS)\n",
      static_cast<long long>(max_batch), coalesced_qps, coalesced.p50_ms,
      coalesced.p99_ms,
      static_cast<long long>(coalesced.stats.max_batch_observed),
      coalesced_qps / base_qps);

  // The determinism contract: batching must not change any forecast bit.
  for (int64_t i = 0; i < requests; ++i) {
    const Tensor& a = unbatched[i];
    const Tensor& b = batched[i];
    if (a.size() != b.size() ||
        std::memcmp(a.data(), b.data(),
                    static_cast<size_t>(a.size()) * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "BIT-IDENTITY VIOLATION: request %lld differs between "
                   "batched and unbatched passes\n",
                   static_cast<long long>(i));
      return 1;
    }
  }
  std::printf("bit-identity: OK (%lld forecasts identical across passes)\n",
              static_cast<long long>(requests));
  return 0;
}

int ServeTcp(const Args& args) {
  const std::string path = args.Get("artifact", "model.artifact");
  const StatusOr<serve::ModelArtifact> artifact =
      serve::LoadModelArtifactOrPrev(path);
  if (!artifact.ok()) {
    std::fprintf(stderr, "cannot load artifact %s: %s\n", path.c_str(),
                 artifact.status().ToString().c_str());
    return 1;
  }
  net::TcpServeOptions options;
  options.serve.workers = args.GetInt("serve-workers", 2);
  options.serve.max_batch = args.GetInt("max-batch", 8);
  options.serve.queue_capacity = args.GetInt("queue-cap", 256);
  options.serve.cancel = &ShutdownToken();
  options.port = static_cast<int>(args.GetInt("port", 7077));
  options.bind_address = args.Get("bind", "127.0.0.1");
  net::TcpForecastServer server(artifact.value(), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve-tcp start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  // Machine-readable: tests and scripts parse this line for the (possibly
  // ephemeral) port before connecting.
  std::printf("listening on %s:%d\n", options.bind_address.c_str(),
              server.port());
  std::printf("serving %lld workers, max batch %lld; stop with SIGINT or "
              "SIGTERM\n",
              static_cast<long long>(options.serve.workers),
              static_cast<long long>(options.serve.max_batch));
  std::fflush(stdout);
  while (!ShutdownToken().cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful drain: in-flight requests get their responses before the
  // sockets and workers wind down.
  server.Stop();
  const net::TcpForecastServer::Stats stats = server.stats();
  std::printf("serve-tcp drained: %lld connections, %lld requests, "
              "%lld responses, %lld error frames, %lld protocol errors\n",
              static_cast<long long>(stats.connections_accepted),
              static_cast<long long>(stats.requests_decoded),
              static_cast<long long>(stats.responses_sent),
              static_cast<long long>(stats.error_frames_sent),
              static_cast<long long>(stats.protocol_errors));
  return ShutdownExitCode();
}

int PredictRemote(const Args& args) {
  net::ForecastClientOptions options;
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<int>(args.GetInt("port", 7077));
  options.retry = RetryPolicyFromArgs(args);
  options.request_timeout_seconds = args.GetDouble("timeout", 30.0);

  // The window is built exactly like `predict` builds it, so the local and
  // remote outputs are byte-comparable: the last --input ticks ending at
  // --at (exclusive; default = the end of the series).
  const data::CtsDataset dataset = MakeDataset(args);
  const int64_t input_length = args.GetInt("input", 12);
  const int64_t at = args.GetInt("at", dataset.num_steps());
  if (input_length < 1 || at < input_length || at > dataset.num_steps()) {
    std::fprintf(stderr, "--at %lld out of range [%lld, %lld]\n",
                 static_cast<long long>(at),
                 static_cast<long long>(input_length),
                 static_cast<long long>(dataset.num_steps()));
    return 1;
  }
  Tensor window(
      {input_length, dataset.num_nodes(), dataset.num_features()});
  for (int64_t p = 0; p < input_length; ++p) {
    for (int64_t n = 0; n < dataset.num_nodes(); ++n) {
      for (int64_t f = 0; f < dataset.num_features(); ++f) {
        window.At({p, n, f}) =
            dataset.values.At({at - input_length + p, n, f});
      }
    }
  }

  net::ForecastClient client(options);
  const Status connected = client.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%d: %s\n",
                 options.host.c_str(), options.port,
                 connected.ToString().c_str());
    return 1;
  }
  const StatusOr<Tensor> forecast =
      client.Predict(window, args.GetDouble("deadline", 0.0));
  if (!forecast.ok()) {
    std::fprintf(stderr, "predict-remote failed: %s\n",
                 forecast.status().ToString().c_str());
    return FailureExitCode(forecast.status());
  }
  const int64_t output_length = forecast.value().dim(0);
  const int64_t num_nodes = forecast.value().dim(1);
  std::printf("forecast from t=%lld (%lld steps, %lld nodes)\n",
              static_cast<long long>(at),
              static_cast<long long>(output_length),
              static_cast<long long>(num_nodes));
  for (int64_t q = 0; q < output_length; ++q) {
    std::printf("step %lld:", static_cast<long long>(q + 1));
    for (int64_t n = 0; n < num_nodes; ++n) {
      std::printf(" %.4f", forecast.value().At({q, n}));
    }
    std::printf("\n");
    // Same exact hex-float images as `predict`: the wire carries IEEE-754
    // bit patterns, so these tokens match the local output bit for bit.
    std::printf("exact q%lld =", static_cast<long long>(q + 1));
    for (int64_t n = 0; n < num_nodes; ++n) {
      std::printf(" %s",
                  FormatExactDouble(forecast.value().At({q, n})).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args.options[argv[i] + 2] = argv[i + 1];
  }

  // Fault-injection plan: --faults wins over the AUTOCTS_FAULTS env var.
  const std::string faults = args.Get("faults", "");
  if (!faults.empty()) {
    StatusOr<fault::FaultPlan> plan = fault::ParseFaultPlan(faults);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --faults spec: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    fault::InstallFaultPlan(std::move(plan).value());
  } else {
    const Status env = fault::InstallFaultPlanFromEnv();
    if (!env.ok()) {
      std::fprintf(stderr, "bad AUTOCTS_FAULTS: %s\n",
                   env.ToString().c_str());
      return 2;
    }
  }

  // Long-running commands get graceful SIGINT/SIGTERM shutdown.
  if (args.command == "search" || args.command == "evaluate" ||
      args.command == "evaluate-topk" || args.command == "export-artifact" ||
      args.command == "serve-bench" || args.command == "serve-tcp") {
    InstallShutdownHandlers(&ShutdownToken());
  }

  if (args.command == "list-ops") return ListOps();
  if (args.command == "generate") return Generate(args);
  if (args.command == "search") return Search(args);
  if (args.command == "evaluate") return Evaluate(args);
  if (args.command == "evaluate-topk") return EvaluateTopK(args);
  if (args.command == "export-artifact") return ExportArtifact(args);
  if (args.command == "predict") return PredictOnce(args);
  if (args.command == "serve-bench") return ServeBench(args);
  if (args.command == "serve-tcp") return ServeTcp(args);
  if (args.command == "predict-remote") return PredictRemote(args);
  return Usage();
}
