#!/usr/bin/env bash
# Regenerates the golden forecast fixtures in tests/testdata/forecast_golden_v1/.
#
# Run this after an INTENTIONAL numeric change (kernel rewrite, op semantics,
# init defaults), then review the fixture diff alongside the code change —
# an unexpected fixture diff means the change moved numerics it should not
# have. The regeneration retrains each tiny model (a few seconds total) and
# re-verifies the freshly written fixtures in the same run.
#
# Usage: tools/regen_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake --build "$BUILD_DIR" --target serve_golden_test
AUTOCTS_REGEN_GOLDENS=1 "$BUILD_DIR/tests/serve_golden_test"

echo "regenerated fixtures:"
git status --short tests/testdata/forecast_golden_v1/ || true
