#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite twice —
# once with the default pool size and once with AUTOCTS_NUM_THREADS=4 so
# the parallel kernel code paths (src/common/parallel.*) are exercised
# under test even on single-core machines.
#
# The crash/corruption suites (checkpoint_test and numerics_test, ctest
# label "faultinject") are additionally run under AddressSanitizer in a
# separate build directory: their kill/resume, fault-injection, and
# rollback paths are exactly where lifetime bugs would hide. Set
# AUTOCTS_SKIP_ASAN=1 to skip that pass (e.g. on machines without ASan
# runtimes).
#
# The observability suites (observability_test and determinism_test, ctest
# label "observability") plus parallel_test are likewise run under
# ThreadSanitizer: the tracer's thread-local ring buffers and the metrics
# registry are exercised by worker threads, and TSan is the tool that
# proves the drain/aggregate paths race-free. Set AUTOCTS_SKIP_TSAN=1 to
# skip.
#
# Optional: AUTOCTS_SANITIZE=thread|address|undefined ./tools/tier1_verify.sh
# runs the whole build under the matching sanitizer (separate build
# directory).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${AUTOCTS_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${AUTOCTS_SANITIZE}"
  CMAKE_ARGS+=("-DAUTOCTS_SANITIZE=${AUTOCTS_SANITIZE}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j
AUTOCTS_NUM_THREADS=4 ctest --test-dir "${BUILD_DIR}" --output-on-failure -j

# ASan pass over the fault-injection suite (skipped when the main build is
# already sanitized, or when explicitly disabled).
if [[ -z "${AUTOCTS_SANITIZE:-}" && -z "${AUTOCTS_SKIP_ASAN:-}" ]]; then
  cmake -B build-address -S . -DAUTOCTS_SANITIZE=address
  cmake --build build-address -j --target checkpoint_test --target numerics_test
  ctest --test-dir build-address -L faultinject --output-on-failure
fi

# TSan pass over the observability suite (+ parallel_test, which drives
# the same thread pool the tracer instruments).
if [[ -z "${AUTOCTS_SANITIZE:-}" && -z "${AUTOCTS_SKIP_TSAN:-}" ]]; then
  cmake -B build-thread -S . -DAUTOCTS_SANITIZE=thread
  cmake --build build-thread -j --target observability_test \
      --target determinism_test --target parallel_test
  AUTOCTS_NUM_THREADS=4 ctest --test-dir build-thread \
      -R 'observability_test|determinism_test|parallel_test' \
      --output-on-failure
fi
