#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite twice —
# once with the default pool size and once with AUTOCTS_NUM_THREADS=4 so
# the parallel kernel code paths (src/common/parallel.*) are exercised
# under test even on single-core machines.
#
# A third targeted pass re-runs the allocation-sensitive suites with
# AUTOCTS_TENSOR_POOL=0 (tensor buffer pool disabled, see
# src/common/buffer_pool.h) so the unpooled fallback path stays green and
# the pooled/unpooled parity guarantee is checked from both sides.
#
# The crash/corruption suites (checkpoint_test, numerics_test, and
# eval_scheduler_test, ctest label "faultinject"), the injected-I/O-failure
# and cancellation suites (fault_io_test and cancellation_test, label
# "faultio"), the buffer-pool suite (label "pool"), the end-to-end
# pipeline suite (label "e2e", which drives the real CLI binary through
# kill/resume and signal/resume cycles), the forecast-serving suites
# (serve_test, serve_golden_test, and bounded_queue_test, label "serve",
# whose server threads, promise/future handoffs, and artifact corruption
# sweeps are lifetime-bug habitat), and the network suites
# (wire_codec_test and net_test, label "net", whose hostile-bytes fuzz
# loops, raw-socket disconnect cases, and connection-handler threads are
# exactly what ASan is for) are additionally run under AddressSanitizer
# in a separate build directory: their kill/resume, fault-injection, retry/rollback,
# watchdog-cancellation, and storage-recycling paths are exactly where
# lifetime bugs would hide. Set AUTOCTS_SKIP_ASAN=1 to skip that pass
# (e.g. on machines without ASan runtimes).
#
# The observability suites (observability_test and determinism_test, ctest
# label "observability") plus parallel_test, buffer_pool_test,
# bounded_queue_test, and eval_scheduler_test are likewise run under
# ThreadSanitizer: the tracer's
# thread-local ring buffers, the metrics registry, the pool's per-bucket
# free lists, and the eval scheduler's worker threads + completion inbox
# are exercised concurrently, and TSan is the tool that proves those
# paths race-free. Set AUTOCTS_SKIP_TSAN=1 to skip.
#
# Optional: AUTOCTS_SANITIZE=thread|address|undefined ./tools/tier1_verify.sh
# runs the whole build under the matching sanitizer (separate build
# directory).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${AUTOCTS_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${AUTOCTS_SANITIZE}"
  CMAKE_ARGS+=("-DAUTOCTS_SANITIZE=${AUTOCTS_SANITIZE}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j
AUTOCTS_NUM_THREADS=4 ctest --test-dir "${BUILD_DIR}" --output-on-failure -j

# Pool-off parity pass: the kill switch must leave every result unchanged.
# Scoped to the suites that exercise tensor storage hardest; bench_alloc is
# excluded (its whole point is comparing pool on vs off internally).
AUTOCTS_TENSOR_POOL=0 ctest --test-dir "${BUILD_DIR}" \
    -R 'tensor_test|autograd_test|buffer_pool_test|core_search_test|determinism_test' \
    --output-on-failure

# ASan pass over the fault-injection + pool suites (skipped when the main
# build is already sanitized, or when explicitly disabled).
if [[ -z "${AUTOCTS_SANITIZE:-}" && -z "${AUTOCTS_SKIP_ASAN:-}" ]]; then
  cmake -B build-address -S . -DAUTOCTS_SANITIZE=address
  cmake --build build-address -j --target checkpoint_test \
      --target numerics_test --target buffer_pool_test \
      --target eval_scheduler_test --target pipeline_e2e_test \
      --target fault_io_test --target cancellation_test \
      --target serve_test --target serve_golden_test \
      --target bounded_queue_test --target wire_codec_test \
      --target net_test
  ctest --test-dir build-address -L 'faultinject|faultio|pool|e2e|serve|net' \
      --output-on-failure
  # With the pool disabled every release is a real free, restoring ASan's
  # use-after-free precision on tensor storage.
  AUTOCTS_TENSOR_POOL=0 ctest --test-dir build-address -L pool \
      --output-on-failure
fi

# TSan pass over the observability suite (+ parallel_test, which drives
# the same thread pool the tracer instruments, buffer_pool_test for the
# pool's cross-thread acquire/release paths, and bounded_queue_test for
# the MPMC queue under the forecast server).
if [[ -z "${AUTOCTS_SANITIZE:-}" && -z "${AUTOCTS_SKIP_TSAN:-}" ]]; then
  cmake -B build-thread -S . -DAUTOCTS_SANITIZE=thread
  cmake --build build-thread -j --target observability_test \
      --target determinism_test --target parallel_test \
      --target buffer_pool_test --target eval_scheduler_test \
      --target bounded_queue_test
  AUTOCTS_NUM_THREADS=4 ctest --test-dir build-thread \
      -R 'observability_test|determinism_test|parallel_test|buffer_pool_test|eval_scheduler_test|bounded_queue_test' \
      --output-on-failure
fi
