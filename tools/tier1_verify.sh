#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite twice —
# once with the default pool size and once with AUTOCTS_NUM_THREADS=4 so
# the parallel kernel code paths (src/common/parallel.*) are exercised
# under test even on single-core machines.
#
# Optional: AUTOCTS_SANITIZE=thread|address ./tools/tier1_verify.sh runs
# the same build under the matching sanitizer (separate build directory).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${AUTOCTS_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${AUTOCTS_SANITIZE}"
  CMAKE_ARGS+=("-DAUTOCTS_SANITIZE=${AUTOCTS_SANITIZE}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j
cd "${BUILD_DIR}"
ctest --output-on-failure -j
AUTOCTS_NUM_THREADS=4 ctest --output-on-failure -j
