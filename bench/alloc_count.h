// Process-wide heap allocation counting for the bench binaries.
//
// alloc_count.cc overrides the global operator new/delete family with
// malloc/free wrappers that bump atomic counters. Linking is opt-in at the
// binary level: the object only gets pulled out of the bench_common static
// library when a translation unit references AllocCount(), so the table
// benches and the test suite keep the stock allocator.
//
// Counting is exact for C++ allocations on this process's threads; malloc
// calls that bypass operator new (C libraries, the runtime) are not seen.
// That is the right scope here: tensor storage, shared_ptr control blocks,
// and std::vector growth — the things the buffer pool exists to remove —
// all arrive via operator new.
#ifndef AUTOCTS_BENCH_ALLOC_COUNT_H_
#define AUTOCTS_BENCH_ALLOC_COUNT_H_

#include <cstdint>

namespace autocts::bench {

struct AllocCounts {
  int64_t allocations = 0;  // operator new calls
  int64_t frees = 0;        // operator delete calls
};

// Current process-wide totals.
AllocCounts AllocCount();

// Allocations performed while running `fn` on this thread (process-wide
// counter delta, so keep concurrent allocation out of the measured region).
template <typename Fn>
int64_t CountAllocations(Fn&& fn) {
  const int64_t before = AllocCount().allocations;
  fn();
  return AllocCount().allocations - before;
}

}  // namespace autocts::bench

#endif  // AUTOCTS_BENCH_ALLOC_COUNT_H_
