#include "alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace autocts::bench {
namespace {

std::atomic<int64_t> g_allocations{0};
std::atomic<int64_t> g_frees{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(alignment, ((size + alignment - 1) / alignment) * alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

AllocCounts AllocCount() {
  AllocCounts counts;
  counts.allocations = g_allocations.load(std::memory_order_relaxed);
  counts.frees = g_frees.load(std::memory_order_relaxed);
  return counts;
}

}  // namespace autocts::bench

// Global replacements. Every form funnels into the counted core so sized
// and nothrow deletes stay consistent with their matching news.
void* operator new(std::size_t size) {
  return autocts::bench::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return autocts::bench::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return autocts::bench::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return autocts::bench::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return autocts::bench::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return autocts::bench::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { autocts::bench::CountedFree(p); }
void operator delete[](void* p) noexcept { autocts::bench::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  autocts::bench::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  autocts::bench::CountedFree(p);
}
