// Reproduces Figure 8: the case study of the architecture searched on
// PEMS03 — prints each ST-block's internal DAG, the backbone topology, and
// the operator histogram.
//
// Expected shape: the blocks are heterogeneous (distinct internal DAGs),
// the backbone topology is not a simple chain in general, and the
// histogram draws on all operator kinds of the compact search space.
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void Run() {
  bench::PrintTitle("Figure 8: searched forecasting model on PEMS03-like data");
  const bench::DatasetPreset preset = bench::MakePreset("pems03");
  const models::PreparedData prepared = bench::Prepare(preset);
  core::SearchOptions options = bench::DefaultSearchOptions();
  options.epochs = bench::Quick() ? 1 : 3;  // Extra epochs: annealed tau.
  const core::SearchResult result =
      core::JointSearcher(options).Search(prepared);

  std::printf("%s\n", result.genotype.ToPrettyString().c_str());
  std::printf("serialized form (core::Genotype::ToText):\n%s\n",
              result.genotype.ToText().c_str());

  // Heterogeneity check: count distinct block DAGs.
  int64_t distinct = 0;
  for (int64_t a = 0; a < result.genotype.num_blocks(); ++a) {
    bool duplicate = false;
    for (int64_t b = 0; b < a; ++b) {
      if (result.genotype.blocks[a] == result.genotype.blocks[b]) {
        duplicate = true;
      }
    }
    if (!duplicate) ++distinct;
  }
  std::printf("distinct block architectures: %lld of %lld\n",
              static_cast<long long>(distinct),
              static_cast<long long>(result.genotype.num_blocks()));
  std::printf(
      "\nPaper's findings to compare: four heterogeneous ST-blocks; all "
      "operator\nkinds of the compact space appear; flexible (non-chain) "
      "topology.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_fig08 done in %.1fs]\n", timer.Seconds());
  return 0;
}
