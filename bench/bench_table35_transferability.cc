// Reproduces Table 35: transferability. The architecture searched on
// PEMS03-like data is re-trained on METR-LA-like and PEMS-BAY-like data and
// compared against architectures searched natively on those datasets.
//
// Expected shape: the transferred model is competitive — close to (but not
// better than) the natively searched model on each target dataset.
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void Run() {
  bench::PrintTitle("Table 35: transferability of searched architectures");

  // Search once on PEMS03-like data.
  const bench::DatasetPreset source = bench::MakePreset("pems03");
  const models::PreparedData source_prepared = bench::Prepare(source);
  const core::SearchResult transferred =
      core::JointSearcher(bench::DefaultSearchOptions())
          .Search(source_prepared);
  std::printf("architecture searched on %s:\n%s\n", source.label.c_str(),
              transferred.genotype.ToPrettyString().c_str());

  for (const std::string& key : {"metr-la", "pems-bay"}) {
    const bench::DatasetPreset preset = bench::MakePreset(key);
    const models::PreparedData prepared = bench::Prepare(preset);
    bench::PrintTitle("target dataset: " + preset.label);
    bench::PrintMultiStepHeader(preset);

    // Transferred: PEMS03-searched genotype retrained on the target.
    const models::EvalResult transferred_eval = core::EvaluateGenotype(
        transferred.genotype, prepared, 16, bench::EvalTrainConfig());
    bench::PrintMultiStepRow("Transferred", transferred_eval, preset);

    // Native: searched directly on the target.
    const bench::AutoCtsRun native = bench::RunAutoCts(
        prepared, bench::DefaultSearchOptions(), bench::EvalTrainConfig());
    bench::PrintMultiStepRow("AutoCTS", native.eval, preset);
  }
  std::printf(
      "\nPaper's findings to compare: the transferred model is competitive "
      "on both\ntargets but the natively searched model is at least as "
      "good.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table35 done in %.1fs]\n", timer.Seconds());
  return 0;
}
