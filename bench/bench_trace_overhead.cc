// Measures the cost of the observability layer on the joint search.
//
// Three claims from DESIGN.md are checked here:
//   1. Overhead: a fully traced search (tracer active, every autograd op
//      instrumented) costs < 5% wall time over an untraced run.
//   2. Transparency: traced and untraced runs produce bit-identical
//      genotypes and validation losses.
//   3. Coverage: the per-op aggregate table accounts for >= 90% of the
//      search root span's wall time (nothing significant is unattributed).
//
// Runs are interleaved (off/on/off/on/...) and the minimum per mode is
// compared, which suppresses one-off scheduling noise better than means.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/searcher.h"

namespace autocts {
namespace {

struct TimedRun {
  double seconds = 0.0;
  std::string genotype;
  double validation_loss = 0.0;
};

TimedRun RunOnce(core::SearchOptions options,
                 const models::PreparedData& prepared, bool traced) {
  // Tracing is driven the same way users drive it: through the trace_path
  // option, so the searcher opens its own "search" root span and the timed
  // region includes the trace-file write (part of the real overhead).
  if (traced) {
    const char* tmpdir = std::getenv("TMPDIR");
    options.trace_path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                         "/bench_trace_overhead.trace.json";
  }
  Stopwatch timer;
  const core::SearchResult result =
      core::JointSearcher(options).Search(prepared);
  TimedRun run;
  run.seconds = timer.Seconds();
  run.genotype = result.genotype.ToText();
  run.validation_loss = result.final_validation_loss;
  if (traced) {
    std::remove(options.trace_path.c_str());
    std::remove((options.trace_path + ".ops.csv").c_str());
  }
  return run;
}

void Run() {
  bench::PrintTitle("Tracer overhead on the joint search");
  const bench::DatasetPreset preset = bench::MakePreset("pems08");
  const models::PreparedData prepared = bench::Prepare(preset);
  core::SearchOptions options = bench::DefaultSearchOptions();
  options.epochs = 1;
  options.max_batches_per_epoch = bench::Quick() ? 2 : 6;
  const int repetitions = bench::Quick() ? 2 : 5;

  double best_off = 0.0;
  double best_on = 0.0;
  TimedRun reference_off;
  TimedRun reference_on;
  for (int rep = 0; rep < repetitions; ++rep) {
    const TimedRun off = RunOnce(options, prepared, /*traced=*/false);
    const TimedRun on = RunOnce(options, prepared, /*traced=*/true);
    if (rep == 0) {
      reference_off = off;
      reference_on = on;
      best_off = off.seconds;
      best_on = on.seconds;
    } else {
      best_off = std::min(best_off, off.seconds);
      best_on = std::min(best_on, on.seconds);
    }
  }

  const double overhead =
      best_off > 0.0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
  const double coverage = trace::Coverage("search");
  std::printf("untraced (best of %d)  %8.3f s\n", repetitions, best_off);
  std::printf("traced   (best of %d)  %8.3f s\n", repetitions, best_on);
  std::printf("overhead              %+8.2f %%   (budget: < 5%%)\n", overhead);
  std::printf("coverage              %8.2f %%   (budget: >= 90%%)\n",
              coverage * 100.0);

  const bool transparent =
      reference_off.genotype == reference_on.genotype &&
      reference_off.validation_loss == reference_on.validation_loss;
  std::printf("bit-transparent       %s\n", transparent ? "yes" : "NO");

  // Where the time goes: top ops by exclusive (self) time, as fractions of
  // the root span's inclusive time.
  const std::vector<trace::OpStat> ops = trace::AggregateOps();
  int64_t root_total = 0;
  for (const trace::OpStat& op : ops) {
    if (op.name == "search") root_total = op.total_ns;
  }
  std::printf("\n%s%s%s%s\n", bench::Cell("op", 26).c_str(),
              bench::Cell("calls", 10).c_str(),
              bench::Cell("self (ms)", 12).c_str(),
              bench::Cell("share", 8).c_str());
  bench::PrintRule();
  int printed = 0;
  for (const trace::OpStat& op : ops) {
    if (printed >= 12) break;
    const double share =
        root_total > 0 ? 100.0 * static_cast<double>(op.self_ns) /
                             static_cast<double>(root_total)
                       : 0.0;
    std::printf("%s%s%s%s\n", bench::Cell(op.name, 26).c_str(),
                bench::Cell(std::to_string(op.calls), 10).c_str(),
                bench::Num(static_cast<double>(op.self_ns) / 1e6, 2, 12)
                    .c_str(),
                bench::Num(share, 1, 8).c_str());
    ++printed;
  }

  if (!transparent) {
    std::printf("\nFAIL: tracing changed the search trajectory\n");
    std::exit(1);
  }
  // Overhead is noise-sensitive on loaded CI machines; fail only on a
  // clearly broken budget (2x the documented bound) and report otherwise.
  if (overhead > 10.0) {
    std::printf("\nFAIL: tracer overhead %.2f%% exceeds 2x the 5%% budget\n",
                overhead);
    std::exit(1);
  }
  if (coverage < 0.9) {
    std::printf("\nFAIL: per-op coverage %.2f%% below the 90%% budget\n",
                coverage * 100.0);
    std::exit(1);
  }
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_trace_overhead done in %.1fs]\n", timer.Seconds());
  return 0;
}
