// Reproduces Tables 5 and 6: multi-step forecasting accuracy of AutoCTS vs
// the baselines.
//
//  - Table 5: METR-LA / PEMS-BAY style (MAE/RMSE/MAPE at 15/30/60 min).
//  - Table 6: PEMS03/04/07/08 style (12-step averages).
//
// Expected shape (not absolute numbers): AutoCTS is best or tied-best on
// every dataset; AutoSTG (restricted 2-operator micro-only NAS) sits
// between the best human baselines and AutoCTS; no single human-designed
// baseline wins everywhere. AutoSTG runs only on the two speed datasets,
// mirroring the paper (it needs side information unavailable for PEMS).
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void Run() {
  for (const std::string& key : bench::MultiStepPresetKeys()) {
    const bench::DatasetPreset preset = bench::MakePreset(key);
    const models::PreparedData prepared = bench::Prepare(preset);
    bench::PrintTitle((preset.report_horizons.empty()
                           ? std::string("Table 6 row group: ")
                           : std::string("Table 5 row group: ")) +
                      preset.label);
    bench::PrintMultiStepHeader(preset);

    for (const std::string& model : models::MultiStepBaselineNames()) {
      const models::EvalResult result = bench::RunBaseline(
          model, preset, prepared, bench::BaselineTrainConfig());
      bench::PrintMultiStepRow(model, result, preset);
    }

    // AutoSTG baseline: restricted operator set, micro-only (speed datasets
    // only, as in the paper).
    if (!preset.report_horizons.empty()) {
      core::SearchOptions autostg = core::AutoStgLiteOptions();
      autostg.supernet.hidden_dim = 16;
      autostg.epochs = bench::DefaultSearchOptions().epochs;
      autostg.batch_size = 32;
      autostg.max_batches_per_epoch =
          bench::DefaultSearchOptions().max_batches_per_epoch;
      const bench::AutoCtsRun run = bench::RunAutoCts(
          prepared, autostg, bench::EvalTrainConfig());
      bench::PrintMultiStepRow("AutoSTG", run.eval, preset);
    }

    // AutoCTS.
    const bench::AutoCtsRun run = bench::RunAutoCts(
        prepared, bench::DefaultSearchOptions(), bench::EvalTrainConfig());
    bench::PrintMultiStepRow("AutoCTS", run.eval, preset);
  }
  std::printf(
      "\nPaper's findings to compare: (1) AutoCTS best on every dataset;\n"
      "(2) AutoCTS > AutoSTG; (3) no human baseline dominates all "
      "datasets.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table05_06 done in %.1fs]\n", timer.Seconds());
  return 0;
}
