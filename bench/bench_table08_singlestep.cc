// Reproduces Table 8: single-step forecasting accuracy (RRSE / CORR) on
// Solar-Energy and Electricity at horizons 3 and 24, for LSTNet, TPA-LSTM,
// MTGNN, and AutoCTS.
//
// Expected shape: the spatial models (MTGNN, AutoCTS) beat the univariate
// ones (LSTNet, TPA-LSTM); AutoCTS edges out or ties MTGNN (the paper notes
// the single-step margin is small).
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

struct Row {
  std::string model;
  double rrse_h3 = 0.0;
  double corr_h3 = 0.0;
  double rrse_h24 = 0.0;
  double corr_h24 = 0.0;
};

void Run() {
  for (const char* key : {"solar", "electricity"}) {
    bench::PrintTitle("Table 8 column group: " +
                      bench::MakePreset(key).label);
    std::printf("%s%s%s%s%s\n", bench::Cell("model", 14).c_str(),
                bench::Cell("RRSE@3").c_str(), bench::Cell("CORR@3").c_str(),
                bench::Cell("RRSE@24").c_str(),
                bench::Cell("CORR@24").c_str());
    bench::PrintRule();

    std::vector<Row> rows;
    for (const std::string& model : models::SingleStepBaselineNames()) {
      rows.push_back({model});
    }
    rows.push_back({"AutoCTS"});

    for (const int64_t horizon : {int64_t{3}, int64_t{24}}) {
      bench::DatasetPreset preset = bench::MakePreset(key);
      preset.window.horizon = horizon;
      const models::PreparedData prepared = bench::Prepare(preset);
      for (Row& row : rows) {
        models::EvalResult result;
        if (row.model == "AutoCTS") {
          const bench::AutoCtsRun run =
              bench::RunAutoCts(prepared, bench::DefaultSearchOptions(),
                                bench::EvalTrainConfig());
          result = run.eval;
        } else {
          result = bench::RunBaseline(row.model, preset, prepared,
                                      bench::BaselineTrainConfig());
        }
        if (horizon == 3) {
          row.rrse_h3 = result.rrse;
          row.corr_h3 = result.corr;
        } else {
          row.rrse_h24 = result.rrse;
          row.corr_h24 = result.corr;
        }
      }
    }
    for (const Row& row : rows) {
      std::printf("%s%s%s%s%s\n", bench::Cell(row.model, 14).c_str(),
                  bench::Num(row.rrse_h3, 4).c_str(),
                  bench::Num(row.corr_h3, 4).c_str(),
                  bench::Num(row.rrse_h24, 4).c_str(),
                  bench::Num(row.corr_h24, 4).c_str());
    }
  }
  std::printf(
      "\nPaper's findings to compare: MTGNN and AutoCTS (which model "
      "inter-series\ncorrelations) beat LSTNet/TPA-LSTM; horizon 24 is "
      "harder than horizon 3\n(higher RRSE, lower CORR).\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table08 done in %.1fs]\n", timer.Seconds());
  return 0;
}
