// Heap-allocation microbench for the tensor buffer pool.
//
// Runs the same tiny joint search twice — pool disabled, then pool enabled
// — counting operator-new calls via alloc_count.cc, and prints the
// per-step allocation table plus the pool's per-bucket stats. Exits
// non-zero (AUTOCTS_CHECK) unless the pooled run removes at least 30% of
// the unpooled run's heap allocations: this is the bench_smoke regression
// gate for the pool, deterministic because it counts allocations, not
// time.
#include <cstdio>

#include "alloc_count.h"
#include "bench_common.h"
#include "common/buffer_pool.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"

namespace autocts::bench {
namespace {

models::PreparedData TinyData() {
  data::TrafficSpeedConfig config;
  config.num_nodes = 4;
  config.num_steps = Quick() ? 300 : 600;
  config.seed = 31;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  return models::PrepareData(data::GenerateTrafficSpeed(config), window, 0.7,
                             0.1);
}

core::SearchOptions TinyOptions() {
  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = Quick() ? 4 : 16;
  return options;
}

struct RunResult {
  int64_t allocations = 0;
  int64_t steps = 0;
  double validation_loss = 0.0;
};

RunResult RunSearch(const models::PreparedData& data, bool pool_enabled) {
  BufferPool& pool = BufferPool::Global();
  const bool previous = pool.enabled();
  pool.SetEnabled(pool_enabled);
  // Warmup pass: populates the free lists (pool on) and JITs nothing else —
  // both runs get identical treatment so the comparison is fair.
  (void)core::JointSearcher(TinyOptions()).Search(data);
  RunResult result;
  core::SearchResult search;
  result.allocations = CountAllocations(
      [&] { search = core::JointSearcher(TinyOptions()).Search(data); });
  const core::SearchOptions options = TinyOptions();
  result.steps = options.epochs * options.max_batches_per_epoch;
  result.validation_loss = search.final_validation_loss;
  pool.SetEnabled(previous);
  return result;
}

int Main() {
  const models::PreparedData data = TinyData();

  PrintTitle("Heap allocations per supernet search (tiny preset)");
  const RunResult off = RunSearch(data, /*pool_enabled=*/false);
  BufferPool::Global().ResetStats();
  const RunResult on = RunSearch(data, /*pool_enabled=*/true);

  const double reduction =
      off.allocations > 0
          ? 1.0 - static_cast<double>(on.allocations) /
                      static_cast<double>(off.allocations)
          : 0.0;
  std::printf("%s%s%s%s\n", Cell("config", 14).c_str(),
              Cell("allocs", 14).c_str(), Cell("allocs/step", 14).c_str(),
              Cell("val_loss", 14).c_str());
  PrintRule();
  std::printf("%s%s%s%s\n", Cell("pool off", 14).c_str(),
              Num(static_cast<double>(off.allocations), 0, 14).c_str(),
              Num(static_cast<double>(off.allocations) /
                      static_cast<double>(off.steps),
                  1, 14)
                  .c_str(),
              Num(off.validation_loss, 6, 14).c_str());
  std::printf("%s%s%s%s\n", Cell("pool on", 14).c_str(),
              Num(static_cast<double>(on.allocations), 0, 14).c_str(),
              Num(static_cast<double>(on.allocations) /
                      static_cast<double>(on.steps),
                  1, 14)
                  .c_str(),
              Num(on.validation_loss, 6, 14).c_str());
  PrintRule();
  std::printf("allocation reduction: %.1f%%\n", 100.0 * reduction);
  std::printf("%s", BufferPool::Global().StatsString().c_str());

  // Pool reuse must not change a single bit of the trajectory.
  AUTOCTS_CHECK_EQ(off.validation_loss, on.validation_loss)
      << "pool on/off searches diverged";
  // Acceptance gate: >= 30% fewer heap allocations in the search hot loop.
  AUTOCTS_CHECK_LE(static_cast<double>(on.allocations),
                   0.7 * static_cast<double>(off.allocations))
      << "buffer pool removed only " << 100.0 * reduction
      << "% of heap allocations (need >= 30%)";
  return 0;
}

}  // namespace
}  // namespace autocts::bench

int main() { return autocts::bench::Main(); }
