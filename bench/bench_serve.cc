// Forecast-serving engine: latency, throughput, and the determinism gate.
//
// Two claims from DESIGN.md ("Serving") are checked here:
//   1. Determinism: every forecast served by the micro-batching server is
//      bit-identical to the same request served with batching disabled
//      (always enforced; any mismatch aborts the bench).
//   2. Throughput: with >= 4 hardware threads, the batched configuration
//      reaches >= 2x the QPS of the unbatched one. Micro-batching cannot
//      beat per-request forwards on a single core (the kernels already
//      saturate it), so the speedup gate only arms when
//      std::thread::hardware_concurrency() >= 4 and the run is full-scale;
//      otherwise both passes are reported without a verdict.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "serve/forecast_server.h"

namespace autocts {
namespace {

serve::ModelArtifact MakeArtifact(const models::PreparedData& prepared) {
  core::Genotype genotype;
  genotype.nodes_per_block = 3;
  const std::vector<std::string> ops = {"inf_s", "dgcn", "inf_t"};
  for (int64_t b = 0; b < 2; ++b) {
    core::BlockGenotype block;
    block.edges.push_back({0, 1, ops[b % ops.size()]});
    block.edges.push_back({1, 2, ops[(b + 1) % ops.size()]});
    block.edges.push_back({0, 2, ops[(b + 2) % ops.size()]});
    genotype.blocks.push_back(block);
    genotype.block_inputs.push_back(b == 0 ? 0 : 1);
  }
  models::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = bench::Quick() ? 2 : 4;
  config.seed = 11;
  config.verbose = false;
  StatusOr<core::TrainedGenotype> trained =
      core::TrainGenotypeWithStatus(genotype, prepared, /*hidden_dim=*/8,
                                    config);
  if (!trained.ok()) {
    std::printf("FAIL: training the serving model: %s\n",
                trained.status().ToString().c_str());
    std::exit(1);
  }
  return serve::MakeModelArtifact(*trained.value().model, prepared, 8,
                                  config.seed);
}

std::vector<Tensor> MakeWindows(const serve::ArtifactMeta& meta,
                                int64_t count) {
  data::TrafficSpeedConfig config;
  config.num_nodes = meta.num_nodes;
  config.num_steps = meta.input_length + count + 8;
  config.seed = 23;
  const data::CtsDataset dataset = data::GenerateTrafficSpeed(config);
  std::vector<Tensor> windows;
  for (int64_t w = 0; w < count; ++w) {
    Tensor window({meta.input_length, meta.num_nodes, meta.in_features});
    for (int64_t p = 0; p < meta.input_length; ++p) {
      for (int64_t n = 0; n < meta.num_nodes; ++n) {
        for (int64_t f = 0; f < meta.in_features; ++f) {
          window.At({p, n, f}) = dataset.values.At({w + p, n, f});
        }
      }
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

struct PassResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<Tensor> forecasts;  // request order
};

// Closed-loop driver: `clients` threads keep the request queue fed until
// `requests` total responses arrive; request i always carries window
// i % windows.size(), so the two passes serve identical workloads.
PassResult RunPass(const serve::ModelArtifact& artifact,
                   const std::vector<Tensor>& windows, int64_t workers,
                   int64_t max_batch, int64_t clients, int64_t requests) {
  serve::ServeOptions options;
  options.workers = workers;
  options.max_batch = max_batch;
  serve::ForecastServer server(artifact, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("FAIL: server start: %s\n", started.ToString().c_str());
    std::exit(1);
  }
  PassResult result;
  result.forecasts.resize(requests);
  std::vector<double> latencies(requests, 0.0);
  std::atomic<int64_t> next{0};
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= requests) return;
        const Tensor& window = windows[i % windows.size()];
        Stopwatch request_timer;
        StatusOr<Tensor> forecast = server.Predict(window);
        // Back-pressure: retry rejected submissions until accepted.
        int64_t attempts = 0;
        while (!forecast.ok() &&
               forecast.status().code() == StatusCode::kUnavailable &&
               ++attempts < 10000) {
          std::this_thread::yield();
          forecast = server.Predict(window);
        }
        if (!forecast.ok()) {
          std::printf("FAIL: request %lld: %s\n", static_cast<long long>(i),
                      forecast.status().ToString().c_str());
          std::exit(1);
        }
        latencies[i] = request_timer.Seconds() * 1e3;
        result.forecasts[i] = std::move(forecast).value();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = timer.Seconds();
  server.Stop();
  result.qps = static_cast<double>(requests) / seconds;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = latencies[requests / 2];
  result.p99_ms = latencies[(requests * 99) / 100];
  return result;
}

}  // namespace
}  // namespace autocts

int main() {
  using namespace autocts;
  const bool quick = bench::Quick();
  const int64_t requests = quick ? 48 : 256;
  const int64_t clients = 8;
  const int64_t workers = 2;
  const int64_t max_batch = 8;

  data::TrafficSpeedConfig data_config;
  data_config.num_nodes = 4;
  data_config.num_steps = 300;
  data_config.seed = 53;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  const models::PreparedData prepared = models::PrepareData(
      data::GenerateTrafficSpeed(data_config), window, 0.7, 0.1);

  const serve::ModelArtifact artifact = MakeArtifact(prepared);
  const std::vector<Tensor> windows =
      MakeWindows(artifact.meta, quick ? 16 : 48);

  std::printf("bench_serve: workers=%lld clients=%lld requests=%lld\n",
              static_cast<long long>(workers),
              static_cast<long long>(clients),
              static_cast<long long>(requests));

  const PassResult unbatched =
      RunPass(artifact, windows, workers, /*max_batch=*/1, clients, requests);
  std::printf("  unbatched:  %8.1f QPS  p50 %7.2f ms  p99 %7.2f ms\n",
              unbatched.qps, unbatched.p50_ms, unbatched.p99_ms);
  const PassResult batched =
      RunPass(artifact, windows, workers, max_batch, clients, requests);
  const double speedup = batched.qps / unbatched.qps;
  std::printf(
      "  batched:    %8.1f QPS  p50 %7.2f ms  p99 %7.2f ms  (%.2fx QPS)\n",
      batched.qps, batched.p50_ms, batched.p99_ms, speedup);

  // Gate 1 (always): bit-identity between the passes.
  for (int64_t i = 0; i < requests; ++i) {
    const Tensor& a = unbatched.forecasts[i];
    const Tensor& b = batched.forecasts[i];
    if (a.shape() != b.shape() ||
        std::memcmp(a.data(), b.data(),
                    static_cast<size_t>(a.size()) * sizeof(double)) != 0) {
      std::printf("FAIL: request %lld differs between batched and unbatched "
                  "passes — the determinism contract is broken\n",
                  static_cast<long long>(i));
      return 1;
    }
  }
  std::printf("  bit-identity: OK (%lld forecasts identical)\n",
              static_cast<long long>(requests));

  // Gate 2 (>= 4 hardware threads, full scale): batching pays >= 2x QPS.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4 && !quick) {
    if (speedup < 2.0) {
      std::printf("FAIL: batched speedup %.2fx < 2.0x with %u hardware "
                  "threads\n",
                  speedup, hw);
      return 1;
    }
    std::printf("  speedup gate: OK (%.2fx >= 2.0x)\n", speedup);
  } else {
    std::printf("  speedup gate: skipped (%u hardware threads, quick=%d)\n",
                hw, quick ? 1 : 0);
  }
  return 0;
}
