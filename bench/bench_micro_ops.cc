// google-benchmark microbenchmarks of the substrate primitives that
// dominate search and training cost: matmul, causal convolution, attention,
// diffusion GCN, a full mixed edge, and one supernet forward/backward.
#include <benchmark/benchmark.h>

#include "alloc_count.h"
#include "common/buffer_pool.h"
#include "common/parallel.h"
#include "core/micro_dag.h"
#include "graph/adjacency.h"
#include "nn/conv.h"
#include "ops/op_registry.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

// Reports heap allocations per iteration (process-wide operator-new count,
// see alloc_count.h) as an "allocs/iter" counter. Instantiate before the
// state loop; the destructor records the counter. With the buffer pool
// warm the hot kernels should report ~0.
class ScopedAllocCounter {
 public:
  explicit ScopedAllocCounter(benchmark::State& state)
      : state_(state), start_(bench::AllocCount().allocations) {}
  ~ScopedAllocCounter() {
    const int64_t delta = bench::AllocCount().allocations - start_;
    state_.counters["allocs/iter"] =
        benchmark::Counter(static_cast<double>(delta) /
                           static_cast<double>(state_.iterations()));
  }

 private:
  benchmark::State& state_;
  int64_t start_;
};

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Rand({n, n}, &rng);
  const Tensor b = Tensor::Rand({n, n}, &rng);
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

// The alloc-reduction claim measured at the op level: identical matmuls
// with the pool force-disabled, for a side-by-side allocs/iter row.
void BM_MatMulPoolOff(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Rand({n, n}, &rng);
  const Tensor b = Tensor::Rand({n, n}, &rng);
  BufferPool& pool = BufferPool::Global();
  const bool previous = pool.enabled();
  pool.SetEnabled(false);
  {
    ScopedAllocCounter allocs(state);
    for (auto _ : state) {
      benchmark::DoNotOptimize(MatMul(a, b));
    }
  }
  pool.SetEnabled(previous);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulPoolOff)->Arg(32)->Arg(64)->Arg(128);

// Sets the pool size for the duration of one benchmark, restoring the
// previous value afterwards so later benchmarks see the default.
class ScopedThreads {
 public:
  explicit ScopedThreads(int64_t n) : previous_(NumThreads()) {
    SetNumThreads(n);
  }
  ~ScopedThreads() { SetNumThreads(previous_); }

 private:
  int64_t previous_;
};

// Per-kernel GFLOP/s across matmul sizes x thread counts; the headline
// numbers for the blocked parallel kernel rewrite.
void BM_MatMulSweep(benchmark::State& state) {
  const int64_t n = state.range(0);
  ScopedThreads threads(state.range(1));
  Rng rng(1);
  const Tensor a = Tensor::Rand({n, n}, &rng);
  const Tensor b = Tensor::Rand({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_MatMulSweep)
    ->ArgsProduct({{64, 128, 256}, {1, 2, 4}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime();  // GFLOP/s against wall clock, not main-thread CPU.

// The unblocked serial reference kernel at the same sizes, so the bench
// trajectory records the speedup of the blocked kernel directly.
void BM_MatMulNaiveRef(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::Rand({n, n}, &rng);
  const Tensor b = Tensor::Rand({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulNaive(a, b));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_MatMulNaiveRef)->Arg(64)->Arg(128)->Arg(256)->ArgNames({"n"});

// Causal temporal convolution (the T-operator workhorse) across channel
// widths x thread counts.
void BM_ConvSweep(benchmark::State& state) {
  const int64_t channels = state.range(0);
  ScopedThreads threads(state.range(1));
  Rng rng(8);
  nn::TemporalConv1d conv(channels, channels, /*kernel_size=*/2,
                          /*dilation=*/1, /*causal=*/true, &rng);
  conv.SetTraining(false);
  const int64_t batch = 8, time = 24, nodes = 12;
  const Tensor x = Tensor::Rand({batch, time, nodes, channels}, &rng, -1.0,
                                1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(Variable(x, false)));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * batch * time * nodes * 2 * channels * channels,
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvSweep)
    ->ArgsProduct({{16, 32, 64}, {1, 2, 4}})
    ->ArgNames({"channels", "threads"})
    ->UseRealTime();

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(2);
  const Tensor a = Tensor::Rand({8, 12, 16, 16}, &rng);
  const Tensor b = Tensor::Rand({16, 16}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  const Tensor a = Tensor::Rand({64, 128}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(a, 1));
  }
}
BENCHMARK(BM_Softmax);

ops::OpContext BenchContext(Rng* rng) {
  ops::OpContext context;
  context.channels = 16;
  context.num_nodes = 12;
  context.rng = rng;
  Rng graph_rng(11);
  context.adjacency = graph::DistanceGaussianAdjacency(
      graph::RandomPositions(12, &graph_rng), 0.5, 0.1);
  return context;
}

void BM_OperatorForward(benchmark::State& state, const std::string& name) {
  Rng rng(4);
  ops::OpContext context = BenchContext(&rng);
  ops::StOperatorPtr op = ops::CreateOp(name, context);
  op->SetTraining(false);
  const Tensor x = Tensor::Rand({8, 12, 12, 16}, &rng, -1.0, 1.0);
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Forward(Variable(x, false)));
  }
}
BENCHMARK_CAPTURE(BM_OperatorForward, gdcc, "gdcc");
BENCHMARK_CAPTURE(BM_OperatorForward, dgcn, "dgcn");
BENCHMARK_CAPTURE(BM_OperatorForward, inf_t, "inf_t");
BENCHMARK_CAPTURE(BM_OperatorForward, inf_s, "inf_s");
BENCHMARK_CAPTURE(BM_OperatorForward, gru, "gru");

void BM_OperatorBackward(benchmark::State& state, const std::string& name) {
  Rng rng(5);
  ops::OpContext context = BenchContext(&rng);
  ops::StOperatorPtr op = ops::CreateOp(name, context);
  const Tensor x = Tensor::Rand({8, 12, 12, 16}, &rng, -1.0, 1.0);
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    Variable input(x, true);
    Variable loss = ag::SumAll(op->Forward(input));
    loss.Backward();
    benchmark::DoNotOptimize(input.grad());
    for (Variable& p : op->Parameters()) p.ClearGrad();
  }
}
BENCHMARK_CAPTURE(BM_OperatorBackward, gdcc, "gdcc");
BENCHMARK_CAPTURE(BM_OperatorBackward, dgcn, "dgcn");
BENCHMARK_CAPTURE(BM_OperatorBackward, inf_t, "inf_t");

void BM_MixedEdgeForward(benchmark::State& state) {
  const int64_t partial = state.range(0);
  Rng rng(6);
  ops::OpContext context = BenchContext(&rng);
  core::MixedEdge edge(core::CompactOperatorSet(), context, partial);
  edge.SetTraining(false);
  const Tensor x = Tensor::Rand({8, 12, 12, 16}, &rng, -1.0, 1.0);
  const Tensor w = Softmax(Tensor::Rand({6}, &rng), 0);
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        edge.Forward(Variable(x, false), Variable(w, false)));
  }
}
// Partial channels (PC-DARTS) vs full channels: the 1/4 setting should be
// markedly cheaper, which is why the paper adopts it (Section 4.1.4).
BENCHMARK(BM_MixedEdgeForward)->Arg(1)->Arg(4);

void BM_MicroDagCellForward(benchmark::State& state) {
  Rng rng(7);
  ops::OpContext context = BenchContext(&rng);
  core::MicroDagCell cell(5, core::CompactOperatorSet(), context, 4, &rng);
  cell.SetTraining(false);
  const Tensor x = Tensor::Rand({8, 12, 12, 16}, &rng, -1.0, 1.0);
  ScopedAllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Forward(Variable(x, false), 1.0));
  }
}
BENCHMARK(BM_MicroDagCellForward);

}  // namespace
}  // namespace autocts

BENCHMARK_MAIN();
