// Reproduces Tables 36-37: the impact of the number of incoming edges kept
// per node at derivation (2 vs 3) on accuracy and training time per epoch.
//
// Expected shape: accuracy is nearly identical, while training the
// 3-edge model costs measurably more time per epoch — the paper's argument
// for keeping 2 edges.
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void RunDataset(const std::string& key, const std::string& tag) {
  const bench::DatasetPreset preset = bench::MakePreset(key);
  const models::PreparedData prepared = bench::Prepare(preset);
  bench::PrintTitle(tag + ": incoming edges per node, " + preset.label);
  std::printf("%s%s%s%s%s\n", bench::Cell("#edges", 10).c_str(),
              bench::Cell("MAE").c_str(), bench::Cell("RMSE").c_str(),
              bench::Cell("MAPE").c_str(),
              bench::Cell("train s/ep").c_str());
  bench::PrintRule();
  for (const int64_t edges : {int64_t{2}, int64_t{3}}) {
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.supernet.edges_per_node = edges;
    const bench::AutoCtsRun run =
        bench::RunAutoCts(prepared, options, bench::EvalTrainConfig());
    std::printf("%s%s%s%s%s\n",
                bench::Cell(std::to_string(edges), 10).c_str(),
                bench::Num(run.eval.average.mae).c_str(),
                bench::Num(run.eval.average.rmse).c_str(),
                bench::Pct(run.eval.average.mape).c_str(),
                bench::Num(run.eval.train_seconds_per_epoch, 2).c_str());
    std::fflush(stdout);
  }
}

void Run() {
  RunDataset("metr-la", "Table 36");
  if (bench::Extended()) RunDataset("pems03", "Table 37");
  std::printf(
      "\nPaper's findings to compare: 2 vs 3 edges changes accuracy only "
      "minimally\nwhile 3 edges clearly increases training time per "
      "epoch.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table36_37 done in %.1fs]\n", timer.Seconds());
  return 0;
}
