// Reproduces Tables 27-34: training time (s/epoch), inference time
// (ms/window), and parameter counts for every model, on a multi-step
// traffic dataset (Tables 27-32 style) and a single-step dataset
// (Tables 33-34 style).
//
// Expected shape: DCRNN trains/infers slowest (sequential seq2seq decoder);
// the convolutional models (Graph WaveNet, MTGNN, STGCN) are fast; AutoCTS
// sits in between (attention operators are costlier than convolutions);
// parameter counts are broadly comparable across models.
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void PrintRow(const std::string& model, const models::EvalResult& result) {
  std::printf("%s%s%s%s\n", bench::Cell(model, 16).c_str(),
              bench::Num(result.train_seconds_per_epoch, 2).c_str(),
              bench::Num(result.inference_ms_per_window, 3).c_str(),
              bench::Cell(std::to_string(result.parameter_count)).c_str());
  std::fflush(stdout);
}

void Header() {
  std::printf("%s%s%s%s\n", bench::Cell("model", 16).c_str(),
              bench::Cell("train s/ep").c_str(),
              bench::Cell("inf ms/win").c_str(),
              bench::Cell("params").c_str());
  bench::PrintRule();
}

void Run() {
  models::TrainConfig config = bench::BaselineTrainConfig();
  config.epochs = 1;  // One timed epoch suffices for the cost columns.

  {
    const bench::DatasetPreset preset = bench::MakePreset("metr-la");
    const models::PreparedData prepared = bench::Prepare(preset);
    bench::PrintTitle("Table 27 analogue: runtime & parameters, " +
                      preset.label);
    Header();
    for (const std::string& model : models::MultiStepBaselineNames()) {
      PrintRow(model, bench::RunBaseline(model, preset, prepared, config));
    }
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.epochs = 1;
    options.max_batches_per_epoch = 2;
    const bench::AutoCtsRun run = bench::RunAutoCts(prepared, options, config);
    PrintRow("AutoCTS", run.eval);
  }

  {
    const bench::DatasetPreset preset = bench::MakePreset("solar");
    const models::PreparedData prepared = bench::Prepare(preset);
    bench::PrintTitle("Table 33 analogue: runtime & parameters, " +
                      preset.label);
    Header();
    for (const std::string& model : models::SingleStepBaselineNames()) {
      PrintRow(model, bench::RunBaseline(model, preset, prepared, config));
    }
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.epochs = 1;
    options.max_batches_per_epoch = 2;
    const bench::AutoCtsRun run = bench::RunAutoCts(prepared, options, config);
    PrintRow("AutoCTS", run.eval);
  }

  std::printf(
      "\nPaper's findings to compare: DCRNN slowest (sequential decoder); "
      "conv\nmodels fastest; AutoCTS slower to train than conv baselines "
      "(attention\noperators) yet with fast inference; parameter counts "
      "comparable.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table27_34 done in %.1fs]\n", timer.Seconds());
  return 0;
}
