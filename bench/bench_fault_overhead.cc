// Measures the cost of the I/O resilience layer on its no-fault hot path.
//
// Three claims from DESIGN.md are checked here:
//   1. Seam cost: with no fault plan installed, fault::Consume() is one
//      relaxed atomic load — under 50 ns/call averaged over a tight loop
//      (the real budget is ~1 ns; 50 leaves room for a loaded CI box).
//   2. Wrapper cost: a checkpointed search run with the default RetryPolicy
//      wired in (the shipped configuration) costs < 5% wall time over the
//      same run with a bare single-attempt policy, measured as the min of
//      interleaved runs. Both configurations write the same checkpoints, so
//      the comparison isolates the RetryCall bookkeeping.
//   3. Transparency: both runs produce bit-identical genotypes and
//      validation losses.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/fault.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"

namespace autocts {
namespace {

struct TimedRun {
  double seconds = 0.0;
  std::string genotype;
  double validation_loss = 0.0;
};

TimedRun RunOnce(core::SearchOptions options,
                 const models::PreparedData& prepared,
                 const std::string& checkpoint_path, bool with_retries) {
  options.checkpoint_path = checkpoint_path;
  options.checkpoint_every_n_batches = 1;  // maximize write traffic
  if (!with_retries) {
    options.io_retry.max_attempts = 1;  // RetryCall degenerates to one call
  }
  Stopwatch timer;
  const core::SearchResult result =
      core::JointSearcher(options).Search(prepared);
  TimedRun run;
  run.seconds = timer.Seconds();
  run.genotype = result.genotype.ToText();
  run.validation_loss = result.final_validation_loss;
  std::remove(checkpoint_path.c_str());
  std::remove((checkpoint_path + ".prev").c_str());
  return run;
}

void Run() {
  bench::PrintTitle("I/O resilience overhead on the no-fault path");

  // ---- 1. The injection seam itself. ----
  fault::ClearFaultPlan();
  constexpr int64_t kSeamCalls = 10'000'000;
  Stopwatch seam_timer;
  int64_t fired = 0;
  for (int64_t i = 0; i < kSeamCalls; ++i) {
    if (fault::Consume("write")) ++fired;
  }
  const double seam_ns = seam_timer.Seconds() * 1e9 / kSeamCalls;
  std::printf("fault seam (no plan)  %8.2f ns/call over %lld calls "
              "(budget: < 50 ns)\n",
              seam_ns, static_cast<long long>(kSeamCalls));
  AUTOCTS_CHECK_EQ(fired, 0);

  // ---- 2 + 3. Retry wrapper on a checkpoint-heavy search. ----
  data::TrafficSpeedConfig data_config;
  data_config.num_nodes = 4;
  data_config.num_steps = bench::Quick() ? 300 : 600;
  data_config.seed = 31;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  const models::PreparedData prepared = models::PrepareData(
      data::GenerateTrafficSpeed(data_config), window, 0.7, 0.1);

  core::SearchOptions options;
  options.supernet.micro_nodes = 3;
  options.supernet.macro_blocks = 2;
  options.supernet.hidden_dim = 8;
  options.supernet.partial_denominator = 4;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_batches_per_epoch = bench::Quick() ? 4 : 16;

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string checkpoint_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/bench_fault_overhead.ckpt";

  const int repetitions = bench::Quick() ? 2 : 4;
  double bare_min = 1e30;
  double wrapped_min = 1e30;
  TimedRun bare;
  TimedRun wrapped;
  for (int i = 0; i < repetitions; ++i) {
    bare = RunOnce(options, prepared, checkpoint_path, false);
    bare_min = std::min(bare_min, bare.seconds);
    wrapped = RunOnce(options, prepared, checkpoint_path, true);
    wrapped_min = std::min(wrapped_min, wrapped.seconds);
  }
  const double overhead = (wrapped_min / bare_min - 1.0) * 100.0;
  std::printf("bare policy (min)     %8.3f s\n", bare_min);
  std::printf("retry policy (min)    %8.3f s\n", wrapped_min);
  std::printf("overhead              %+8.2f %%   (budget: < 5%%)\n", overhead);

  AUTOCTS_CHECK(bare.genotype == wrapped.genotype)
      << "retry wiring changed the derived genotype";
  AUTOCTS_CHECK(bare.validation_loss == wrapped.validation_loss)
      << "retry wiring changed the validation loss";

  // Hard gates at 2x the budgets, like bench_trace_overhead: tight enough
  // to catch a real regression (an accidental sleep, a lock on the hot
  // path), loose enough to survive a noisy smoke-test box.
  AUTOCTS_CHECK(seam_ns < 50.0)
      << "fault seam costs " << seam_ns << " ns/call";
  if (overhead > 10.0) {
    std::printf("\nFAIL: retry-wrapper overhead %.2f%% exceeds 2x the 5%% "
                "budget\n",
                overhead);
    std::exit(1);
  }
  std::printf("ok: no-fault path overhead within budget, results "
              "bit-identical\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Run();
  return 0;
}
