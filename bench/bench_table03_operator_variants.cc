// Reproduces Table 3: "Comparison of GCN and Attention Variants, MAE".
//
// The paper's Principle 2 experiment trains otherwise-identical forecasting
// models that differ in a single S-operator — Diffusion GCN vs Chebyshev
// GCN vs Informer vs Transformer — on METR-LA and PEMS03, and picks the
// strongest variant per family. Expected shape: DGCN beats ChebGCN on both
// datasets; Informer and Transformer are close to each other.
#include <memory>

#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

// embedding -> GDCC -> {S-variant} -> GDCC -> head, so exactly one factor
// varies across rows.
class VariantModel : public models::ForecastingModel {
 public:
  VariantModel(const std::string& s_op, const models::ModelContext& context)
      : s_op_name_(s_op),
        rng_(context.seed),
        adaptive_(context.adjacency.defined()
                      ? nullptr
                      : std::make_shared<graph::AdaptiveAdjacency>(
                            context.num_nodes, 8, &rng_)),
        embedding_(context.in_features, context.hidden_dim, &rng_),
        head_(context.hidden_dim, context.output_length, &rng_) {
    const ops::OpContext op_context =
        models::MakeOpContext(context, adaptive_, &rng_);
    temporal_in_ = ops::CreateOp("gdcc", op_context);
    spatial_ = ops::CreateOp(s_op, op_context);
    temporal_out_ = ops::CreateOp("gdcc", op_context);
    RegisterModule("embedding", &embedding_);
    RegisterModule("temporal_in", temporal_in_.get());
    RegisterModule("spatial", spatial_.get());
    RegisterModule("temporal_out", temporal_out_.get());
    RegisterModule("head", &head_);
    if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
  }

  Variable Forward(const Variable& x) override {
    Variable h = embedding_.Forward(x);
    h = ag::Relu(temporal_in_->Forward(h));
    h = ag::Relu(spatial_->Forward(h));
    h = temporal_out_->Forward(h);
    return head_.Forward(h, x);
  }

  std::string name() const override { return "variant-" + s_op_name_; }

 private:
  std::string s_op_name_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  ops::StOperatorPtr temporal_in_;
  ops::StOperatorPtr spatial_;
  ops::StOperatorPtr temporal_out_;
  models::OutputHead head_;
};

void Run() {
  bench::PrintTitle(
      "Table 3: S-operator variant comparison (MAE; lower is better)");
  const std::vector<std::pair<std::string, std::string>> variants = {
      {"DGCN", "dgcn"},
      {"Cheby GCN", "cheb_gcn"},
      {"Informer (INF-S)", "inf_s"},
      {"Transformer", "trans_s"}};
  std::printf("%s%s%s\n", bench::Cell("variant", 20).c_str(),
              bench::Cell("METR-LA").c_str(),
              bench::Cell("PEMS03").c_str());
  bench::PrintRule();
  for (const auto& [label, op] : variants) {
    std::printf("%s", bench::Cell(label, 20).c_str());
    for (const std::string& key : {"metr-la", "pems03"}) {
      const bench::DatasetPreset preset = bench::MakePreset(key);
      const models::PreparedData prepared = bench::Prepare(preset);
      models::ModelContext context;
      context.num_nodes = prepared.num_nodes;
      context.in_features = prepared.in_features;
      context.input_length = preset.window.input_length;
      context.output_length = preset.window.output_length;
      context.hidden_dim = 16;
      context.adjacency = prepared.adjacency;
      context.seed = 55;
      VariantModel model(op, context);
      const models::EvalResult result = models::TrainAndEvaluate(
          &model, prepared, bench::BaselineTrainConfig());
      std::printf("%s", bench::Num(result.average.mae).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper's finding to compare: DGCN < ChebGCN on MAE on both "
      "datasets;\nInformer ~= Transformer (Informer kept for efficiency).\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table03 done in %.1fs]\n", timer.Seconds());
  return 0;
}
