#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace autocts::bench {
namespace {

int64_t Scale(int64_t value) { return Quick() ? value / 4 : value; }

DatasetPreset TrafficSpeedPreset(const std::string& key,
                                 const std::string& label, int64_t nodes,
                                 int64_t steps, uint64_t seed) {
  DatasetPreset preset;
  preset.key = key;
  preset.label = label;
  data::TrafficSpeedConfig config;
  config.name = label;
  config.num_nodes = nodes;
  config.num_steps = Scale(steps);
  config.seed = seed;
  preset.dataset = data::GenerateTrafficSpeed(config);
  preset.window.input_length = 12;
  preset.window.output_length = 12;
  preset.train_fraction = 0.7;  // The 7:1:2 split of Table 4.
  preset.validation_fraction = 0.1;
  preset.report_horizons = {2, 5, 11};  // 15 / 30 / 60 minutes.
  return preset;
}

DatasetPreset TrafficFlowPreset(const std::string& key,
                                const std::string& label, int64_t nodes,
                                int64_t steps, uint64_t seed) {
  DatasetPreset preset;
  preset.key = key;
  preset.label = label;
  data::TrafficFlowConfig config;
  config.name = label;
  config.num_nodes = nodes;
  config.num_steps = Scale(steps);
  config.seed = seed;
  preset.dataset = data::GenerateTrafficFlow(config);
  preset.window.input_length = 12;
  preset.window.output_length = 12;
  preset.train_fraction = 0.6;  // The 6:2:2 split of Table 4.
  preset.validation_fraction = 0.2;
  return preset;  // Average over all 12 horizons, PEMS style.
}

}  // namespace

bool Quick() {
  const char* env = std::getenv("AUTOCTS_QUICK");
  return env != nullptr && env[0] == '1';
}

bool Extended() {
  const char* env = std::getenv("AUTOCTS_EXTENDED");
  return env != nullptr && env[0] == '1';
}

DatasetPreset MakePreset(const std::string& key) {
  // Node counts / lengths keep the paper's relative ordering (PEMS07
  // largest graph, PEMS08/04 smallest; single-step sets have the longest
  // input windows, which is what makes their search the costliest in
  // Table 7).
  if (key == "metr-la") {
    return TrafficSpeedPreset(key, "METR-LA (synthetic)", 12, 1440, 101);
  }
  if (key == "pems-bay") {
    return TrafficSpeedPreset(key, "PEMS-BAY (synthetic)", 14, 1728, 102);
  }
  if (key == "pems03") {
    return TrafficFlowPreset(key, "PEMS03 (synthetic)", 14, 1440, 103);
  }
  if (key == "pems04") {
    return TrafficFlowPreset(key, "PEMS04 (synthetic)", 12, 1152, 104);
  }
  if (key == "pems07") {
    return TrafficFlowPreset(key, "PEMS07 (synthetic)", 20, 1440, 105);
  }
  if (key == "pems08") {
    return TrafficFlowPreset(key, "PEMS08 (synthetic)", 10, 1152, 106);
  }
  if (key == "solar") {
    DatasetPreset preset;
    preset.key = key;
    preset.label = "Solar-Energy (synthetic)";
    data::SolarConfig config;
    config.name = preset.label;
    config.num_nodes = 12;
    config.num_steps = Scale(2160);
    config.seed = 107;
    preset.dataset = data::GenerateSolar(config);
    preset.window.input_length = 36;  // Scaled analogue of 168.
    preset.window.output_length = 1;
    preset.window.horizon = 3;
    return preset;
  }
  if (key == "electricity") {
    DatasetPreset preset;
    preset.key = key;
    preset.label = "Electricity (synthetic)";
    data::ElectricityConfig config;
    config.name = preset.label;
    config.num_nodes = 12;
    config.num_steps = Scale(2016);
    config.seed = 108;
    preset.dataset = data::GenerateElectricity(config);
    preset.window.input_length = 36;
    preset.window.output_length = 1;
    preset.window.horizon = 3;
    return preset;
  }
  AUTOCTS_CHECK(false) << "unknown preset: " << key;
  return {};
}

std::vector<std::string> MultiStepPresetKeys() {
  return {"metr-la", "pems-bay", "pems03", "pems04", "pems07", "pems08"};
}

models::PreparedData Prepare(const DatasetPreset& preset) {
  return models::PrepareData(preset.dataset, preset.window,
                             preset.train_fraction,
                             preset.validation_fraction);
}

models::TrainConfig BaselineTrainConfig() {
  models::TrainConfig config;
  config.epochs = Quick() ? 1 : 3;
  config.batch_size = 32;
  config.max_batches_per_epoch = Quick() ? 3 : 10;
  config.seed = 7;
  return config;
}

models::TrainConfig EvalTrainConfig() {
  models::TrainConfig config = BaselineTrainConfig();
  config.epochs = Quick() ? 1 : 4;
  return config;
}

core::SearchOptions DefaultSearchOptions() {
  core::SearchOptions options;
  options.supernet.hidden_dim = 16;
  options.supernet.micro_nodes = 5;   // Default M (Section 4.1.4).
  options.supernet.macro_blocks = 4;  // Default B.
  options.epochs = Quick() ? 1 : 2;
  options.batch_size = 32;
  options.max_batches_per_epoch = Quick() ? 2 : 5;
  options.seed = 3;
  return options;
}

models::EvalResult RunBaseline(const std::string& name,
                               const DatasetPreset& preset,
                               const models::PreparedData& prepared,
                               const models::TrainConfig& config) {
  models::ModelContext context;
  context.num_nodes = prepared.num_nodes;
  context.in_features = prepared.in_features;
  context.input_length = preset.window.input_length;
  context.output_length = preset.window.output_length;
  context.hidden_dim = 16;
  context.adjacency = prepared.adjacency;
  context.seed = 1234;
  models::ForecastingModelPtr model = models::CreateBaseline(name, context);
  return models::TrainAndEvaluate(model.get(), prepared, config);
}

AutoCtsRun RunAutoCts(const models::PreparedData& prepared,
                      const core::SearchOptions& options,
                      const models::TrainConfig& eval_config) {
  AutoCtsRun run;
  run.search = core::JointSearcher(options).Search(prepared);
  run.eval = core::EvaluateGenotype(run.search.genotype, prepared,
                                    options.supernet.hidden_dim, eval_config);
  return run;
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

std::string Cell(const std::string& text, int width) {
  std::string out = text;
  if (static_cast<int>(out.size()) < width) {
    out.append(width - out.size(), ' ');
  }
  return out;
}

std::string Num(double value, int precision, int width) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return Cell(buffer, width);
}

std::string Pct(double fraction, int precision, int width) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision,
                fraction * 100.0);
  return Cell(buffer, width);
}

void PrintMultiStepHeader(const DatasetPreset& preset) {
  std::printf("%s", Cell("model", 16).c_str());
  if (preset.report_horizons.empty()) {
    std::printf("%s%s%s", Cell("MAE").c_str(), Cell("RMSE").c_str(),
                Cell("MAPE").c_str());
  } else {
    for (int64_t h : preset.report_horizons) {
      const std::string tag = std::to_string((h + 1) * 5) + "min";
      std::printf("%s%s%s", Cell("MAE@" + tag).c_str(),
                  Cell("RMSE@" + tag).c_str(), Cell("MAPE@" + tag).c_str());
    }
  }
  std::printf("\n");
  PrintRule();
}

void PrintMultiStepRow(const std::string& model,
                       const models::EvalResult& result,
                       const DatasetPreset& preset) {
  std::printf("%s", Cell(model, 16).c_str());
  if (preset.report_horizons.empty()) {
    std::printf("%s%s%s", Num(result.average.mae).c_str(),
                Num(result.average.rmse).c_str(),
                Pct(result.average.mape).c_str());
  } else {
    for (int64_t h : preset.report_horizons) {
      const metrics::PointMetrics& m = result.per_horizon.at(h);
      std::printf("%s%s%s", Num(m.mae).c_str(), Num(m.rmse).c_str(),
                  Pct(m.mape).c_str());
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace autocts::bench
