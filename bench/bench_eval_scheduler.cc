// Parallel top-K evaluation scheduler: throughput and bit-identity.
//
// Two claims from DESIGN.md ("Candidate evaluation") are checked here:
//   1. Transparency: evaluating K candidates with 4 workers produces
//      bit-identical per-candidate metrics to evaluating them with 1
//      (exact hex-float comparison, always enforced).
//   2. Throughput: with >= 4 hardware threads, the 4-worker batch finishes
//      >= 2x faster than the sequential one. Candidate-level parallelism
//      cannot beat 1 worker on a single core (the kernels already serialize
//      on the tensor pool there), so the speedup gate only arms when
//      std::thread::hardware_concurrency() >= 4 and the run is full-scale;
//      otherwise both times are reported without a verdict.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/text_codec.h"
#include "core/eval_scheduler.h"
#include "core/genotype.h"
#include "core/operator_set.h"

namespace autocts {
namespace {

// K structurally distinct derived genotypes (2 blocks x 3 nodes), rotating
// through the compact operator set so every candidate trains a different
// parameter census — mirroring what DeriveTopK's runner-up substitutions
// produce without paying for a supernet search inside the bench.
std::vector<core::Genotype> MakeCandidates(int64_t k) {
  const std::vector<std::string> ops = {"identity", "gdcc", "inf_s", "dgcn",
                                        "inf_t"};
  std::vector<core::Genotype> candidates;
  for (int64_t variant = 0; variant < k; ++variant) {
    core::Genotype genotype;
    genotype.nodes_per_block = 3;
    for (int64_t b = 0; b < 2; ++b) {
      core::BlockGenotype block;
      int64_t cursor = variant + b;
      for (const auto& [from, to] : std::vector<std::pair<int64_t, int64_t>>{
               {0, 1}, {1, 2}, {0, 2}}) {
        block.edges.push_back(
            {from, to, ops[static_cast<size_t>(cursor++ % ops.size())]});
      }
      genotype.blocks.push_back(block);
      genotype.block_inputs.push_back(b == 0 ? 0 : 1);
    }
    candidates.push_back(genotype);
  }
  return candidates;
}

struct TimedBatch {
  double seconds = 0.0;
  std::string exact_image;  // hex-float metric tokens, candidate order
};

TimedBatch RunBatch(const std::vector<core::Genotype>& candidates,
                    const models::PreparedData& prepared, int64_t workers) {
  core::EvalSchedulerOptions options;
  options.workers = workers;
  options.hidden_dim = 8;
  options.train = bench::EvalTrainConfig();
  options.train.epochs = 1;
  options.train.max_batches_per_epoch = bench::Quick() ? 2 : 6;
  options.train.seed = 17;
  options.train.verbose = false;
  Stopwatch timer;
  StatusOr<core::EvalBatchResult> batch =
      core::EvalScheduler(options).Evaluate(candidates, prepared);
  TimedBatch timed;
  timed.seconds = timer.Seconds();
  if (!batch.ok()) {
    std::printf("FAIL: batch with %lld workers: %s\n",
                static_cast<long long>(workers),
                batch.status().ToString().c_str());
    std::exit(1);
  }
  for (const core::CandidateOutcome& outcome : batch.value().candidates) {
    if (!outcome.status.ok()) {
      timed.exact_image += "FAILED " + outcome.status.ToString() + "\n";
      continue;
    }
    timed.exact_image += FormatExactDouble(outcome.result.average.mae) + " " +
                         FormatExactDouble(outcome.result.average.rmse) + " " +
                         FormatExactDouble(outcome.result.final_train_loss) +
                         "\n";
  }
  return timed;
}

void Run() {
  bench::PrintTitle("Parallel top-K evaluation scheduler");
  const bench::DatasetPreset preset = bench::MakePreset("pems08");
  const models::PreparedData prepared = bench::Prepare(preset);
  const std::vector<core::Genotype> candidates =
      MakeCandidates(bench::Quick() ? 4 : 6);

  const TimedBatch sequential = RunBatch(candidates, prepared, 1);
  const TimedBatch parallel = RunBatch(candidates, prepared, 4);

  const double speedup =
      parallel.seconds > 0.0 ? sequential.seconds / parallel.seconds : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("candidates            %8zu\n", candidates.size());
  std::printf("1 worker              %8.3f s\n", sequential.seconds);
  std::printf("4 workers             %8.3f s\n", parallel.seconds);
  std::printf("speedup               %8.2f x   (hardware threads: %u)\n",
              speedup, cores);

  const bool identical = sequential.exact_image == parallel.exact_image;
  std::printf("bit-identical         %s\n", identical ? "yes" : "NO");
  if (!identical) {
    std::printf("\nFAIL: worker count changed candidate metrics\n"
                "--- 1 worker ---\n%s--- 4 workers ---\n%s",
                sequential.exact_image.c_str(), parallel.exact_image.c_str());
    std::exit(1);
  }

  // The >= 2x gate needs real cores to schedule onto.
  if (cores >= 4 && !bench::Quick()) {
    if (speedup < 2.0) {
      std::printf("\nFAIL: speedup %.2fx below the 2x budget on %u threads\n",
                  speedup, cores);
      std::exit(1);
    }
    std::printf("speedup budget        passed (>= 2x)\n");
  } else {
    std::printf("speedup budget        skipped (needs >= 4 hardware "
                "threads and a full-scale run)\n");
  }
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_eval_scheduler done in %.1fs]\n", timer.Seconds());
  return 0;
}
