// Network front-end: loopback load generator for the TCP serving path.
//
// Starts a TcpForecastServer on an ephemeral loopback port and drives it
// closed-loop with `clients` ForecastClient connections: each client sends
// its next request as soon as the previous response lands. Reports QPS and
// p50/p99 round-trip latency (wire + queue + forward), and always enforces
// the byte-identity gate from DESIGN.md ("Networking"): every forecast that
// crossed the wire must be bit-identical to the same window served by an
// in-process InferenceSession — framing, the u64 double images, and the
// server's batching must never change a single response bit.
//
// There is no speedup gate here (bench_serve owns the batching-vs-unbatched
// claim); this bench measures what the network front-end adds on top and
// proves it adds zero error.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "serve/inference_session.h"

namespace autocts {
namespace {

serve::ModelArtifact MakeArtifact(const models::PreparedData& prepared) {
  core::Genotype genotype;
  genotype.nodes_per_block = 3;
  const std::vector<std::string> ops = {"inf_s", "dgcn", "inf_t"};
  for (int64_t b = 0; b < 2; ++b) {
    core::BlockGenotype block;
    block.edges.push_back({0, 1, ops[b % ops.size()]});
    block.edges.push_back({1, 2, ops[(b + 1) % ops.size()]});
    block.edges.push_back({0, 2, ops[(b + 2) % ops.size()]});
    genotype.blocks.push_back(block);
    genotype.block_inputs.push_back(b == 0 ? 0 : 1);
  }
  models::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_batches_per_epoch = bench::Quick() ? 2 : 4;
  config.seed = 11;
  config.verbose = false;
  StatusOr<core::TrainedGenotype> trained =
      core::TrainGenotypeWithStatus(genotype, prepared, /*hidden_dim=*/8,
                                    config);
  if (!trained.ok()) {
    std::printf("FAIL: training the serving model: %s\n",
                trained.status().ToString().c_str());
    std::exit(1);
  }
  return serve::MakeModelArtifact(*trained.value().model, prepared, 8,
                                  config.seed);
}

std::vector<Tensor> MakeWindows(const serve::ArtifactMeta& meta,
                                int64_t count) {
  data::TrafficSpeedConfig config;
  config.num_nodes = meta.num_nodes;
  config.num_steps = meta.input_length + count + 8;
  config.seed = 23;
  const data::CtsDataset dataset = data::GenerateTrafficSpeed(config);
  std::vector<Tensor> windows;
  for (int64_t w = 0; w < count; ++w) {
    Tensor window({meta.input_length, meta.num_nodes, meta.in_features});
    for (int64_t p = 0; p < meta.input_length; ++p) {
      for (int64_t n = 0; n < meta.num_nodes; ++n) {
        for (int64_t f = 0; f < meta.in_features; ++f) {
          window.At({p, n, f}) = dataset.values.At({w + p, n, f});
        }
      }
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

}  // namespace
}  // namespace autocts

int main() {
  using namespace autocts;
  const bool quick = bench::Quick();
  const int64_t requests = quick ? 48 : 512;
  const int64_t clients = quick ? 4 : 8;
  const int64_t workers = 2;
  const int64_t max_batch = 8;

  data::TrafficSpeedConfig data_config;
  data_config.num_nodes = 4;
  data_config.num_steps = 300;
  data_config.seed = 53;
  data::WindowSpec window;
  window.input_length = 6;
  window.output_length = 3;
  const models::PreparedData prepared = models::PrepareData(
      data::GenerateTrafficSpeed(data_config), window, 0.7, 0.1);

  const serve::ModelArtifact artifact = MakeArtifact(prepared);
  const std::vector<Tensor> windows =
      MakeWindows(artifact.meta, quick ? 16 : 48);

  // In-process references, one per distinct window, computed before the
  // server starts so the gate compares against an independent code path.
  StatusOr<std::unique_ptr<serve::InferenceSession>> session =
      serve::InferenceSession::Create(artifact);
  if (!session.ok()) {
    std::printf("FAIL: reference session: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  std::vector<Tensor> references;
  for (const Tensor& w : windows) {
    StatusOr<Tensor> forecast = session.value()->Predict(w);
    if (!forecast.ok()) {
      std::printf("FAIL: reference forecast: %s\n",
                  forecast.status().ToString().c_str());
      return 1;
    }
    references.push_back(std::move(forecast).value());
  }

  net::TcpServeOptions options;
  options.serve.workers = workers;
  options.serve.max_batch = max_batch;
  options.port = 0;  // ephemeral
  net::TcpForecastServer server(artifact, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::printf("FAIL: server start: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf(
      "bench_net: workers=%lld max_batch=%lld clients=%lld requests=%lld "
      "port=%d\n",
      static_cast<long long>(workers), static_cast<long long>(max_batch),
      static_cast<long long>(clients), static_cast<long long>(requests),
      server.port());

  std::vector<Tensor> forecasts(requests);
  std::vector<double> latencies(requests, 0.0);
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      net::ForecastClientOptions client_options;
      client_options.port = server.port();
      client_options.retry.max_attempts = 4;
      net::ForecastClient client(client_options);
      const Status connected = client.Connect();
      if (!connected.ok()) {
        std::printf("FAIL: connect: %s\n", connected.ToString().c_str());
        failed.store(true);
        return;
      }
      while (!failed.load()) {
        const int64_t i = next.fetch_add(1);
        if (i >= requests) return;
        const Tensor& w = windows[i % windows.size()];
        Stopwatch request_timer;
        StatusOr<Tensor> forecast = client.Predict(w);
        // Back-pressure: a full queue sheds with Unavailable; resend.
        int64_t attempts = 0;
        while (!forecast.ok() &&
               forecast.status().code() == StatusCode::kUnavailable &&
               ++attempts < 10000) {
          std::this_thread::yield();
          forecast = client.Predict(w);
        }
        if (!forecast.ok()) {
          std::printf("FAIL: request %lld: %s\n", static_cast<long long>(i),
                      forecast.status().ToString().c_str());
          failed.store(true);
          return;
        }
        latencies[i] = request_timer.Seconds() * 1e3;
        forecasts[i] = std::move(forecast).value();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = timer.Seconds();
  server.Stop();
  if (failed.load()) return 1;

  std::sort(latencies.begin(), latencies.end());
  std::printf("  loopback:  %8.1f QPS  p50 %7.2f ms  p99 %7.2f ms\n",
              static_cast<double>(requests) / seconds,
              latencies[requests / 2], latencies[(requests * 99) / 100]);

  // Byte-identity gate (always armed): wire == in-process, bit for bit.
  for (int64_t i = 0; i < requests; ++i) {
    const Tensor& remote = forecasts[i];
    const Tensor& reference = references[i % references.size()];
    if (remote.shape() != reference.shape() ||
        std::memcmp(remote.data(), reference.data(),
                    static_cast<size_t>(remote.size()) * sizeof(double)) !=
            0) {
      std::printf("FAIL: request %lld differs between the wire and the "
                  "in-process session — the byte-identity contract is "
                  "broken\n",
                  static_cast<long long>(i));
      return 1;
    }
  }
  std::printf("  byte-identity: OK (%lld remote forecasts identical to "
              "in-process)\n",
              static_cast<long long>(requests));

  const net::TcpForecastServer::Stats stats = server.stats();
  std::printf("  server: %lld connections, %lld requests decoded, "
              "%lld responses\n",
              static_cast<long long>(stats.connections_accepted),
              static_cast<long long>(stats.requests_decoded),
              static_cast<long long>(stats.responses_sent));
  return 0;
}
