// Reproduces the ablation studies of Tables 9-16 on two representative
// datasets (METR-LA-like for Table 9, PEMS08-like for Table 14; the paper
// runs all eight, with the same qualitative outcome on each).
//
// Variants (Section 4.2.3):
//   AutoCTS                 full system
//   w/o design principles   all 12 Table-1 operators in the micro space
//   w/o temperature         tau fixed at 1 (no annealing)
//   w/o macro search        single searched block, stacked homogeneously
//   macro only              topology search over 4 human-designed blocks
//
// Expected shape: the full system is the most accurate; "w/o design
// principles" costs several times more search time at no accuracy gain;
// "macro only" searches fastest but is the least accurate.
#include "bench_common.h"

#include "core/macro_only.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void PrintRow(const std::string& label, const models::EvalResult& eval,
              double search_seconds) {
  std::printf("%s%s%s%s%s\n", bench::Cell(label, 24).c_str(),
              bench::Num(eval.average.mae).c_str(),
              bench::Num(eval.average.rmse).c_str(),
              bench::Pct(eval.average.mape).c_str(),
              bench::Num(search_seconds, 1).c_str());
  std::fflush(stdout);
}

void RunDataset(const std::string& key, const std::string& table_tag) {
  const bench::DatasetPreset preset = bench::MakePreset(key);
  const models::PreparedData prepared = bench::Prepare(preset);
  bench::PrintTitle(table_tag + ": ablations on " + preset.label);
  std::printf("%s%s%s%s%s\n", bench::Cell("variant", 24).c_str(),
              bench::Cell("MAE").c_str(), bench::Cell("RMSE").c_str(),
              bench::Cell("MAPE").c_str(),
              bench::Cell("search (s)").c_str());
  bench::PrintRule();

  // Full AutoCTS.
  {
    const bench::AutoCtsRun run = bench::RunAutoCts(
        prepared, bench::DefaultSearchOptions(), bench::EvalTrainConfig());
    PrintRow("AutoCTS", run.eval, run.search.search_seconds);
  }
  // w/o design principles: all Table-1 operators.
  {
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.supernet.op_set = core::FullOperatorSet();
    const bench::AutoCtsRun run =
        bench::RunAutoCts(prepared, options, bench::EvalTrainConfig());
    PrintRow("w/o design principles", run.eval, run.search.search_seconds);
  }
  // w/o temperature.
  {
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.use_temperature = false;
    const bench::AutoCtsRun run =
        bench::RunAutoCts(prepared, options, bench::EvalTrainConfig());
    PrintRow("w/o temperature", run.eval, run.search.search_seconds);
  }
  // w/o macro search.
  {
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.use_macro = false;
    const bench::AutoCtsRun run =
        bench::RunAutoCts(prepared, options, bench::EvalTrainConfig());
    PrintRow("w/o macro search", run.eval, run.search.search_seconds);
  }
  // macro only.
  {
    const core::SearchOptions options = bench::DefaultSearchOptions();
    const core::MacroOnlyResult search =
        core::SearchMacroOnly(prepared, options);
    std::unique_ptr<models::ForecastingModel> model =
        core::BuildMacroOnlyModel(search.genotype, prepared,
                                  options.supernet.hidden_dim, 17);
    const models::EvalResult eval = models::TrainAndEvaluate(
        model.get(), prepared, bench::EvalTrainConfig());
    PrintRow("macro only", eval, search.search_seconds);
  }
}

void Run() {
  RunDataset("metr-la", "Table 9");
  if (bench::Extended()) RunDataset("pems08", "Table 14");
  std::printf(
      "\nPaper's findings to compare: full AutoCTS most accurate; the "
      "12-operator\nspace costs ~4-5x more search time without gains; macro "
      "only is cheapest\nbut least accurate; temperature and macro search "
      "each contribute.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table09_16 done in %.1fs]\n", timer.Seconds());
  return 0;
}
