// Shared experiment harness for the table/figure reproduction benches.
//
// Provides: synthetic dataset presets mirroring Table 4 of the paper
// (scaled to one CPU core; see DESIGN.md), canonical train/search configs,
// and table-formatting helpers so every bench prints paper-shaped rows.
//
// Env vars:
//   AUTOCTS_QUICK=1   roughly quarter-scale runs (CI smoke).
#ifndef AUTOCTS_BENCH_BENCH_COMMON_H_
#define AUTOCTS_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"

namespace autocts::bench {

// One benchmark dataset: generated values + windowing + split + which
// horizons the paper reports for it.
struct DatasetPreset {
  std::string key;    // "metr-la", "pems03", "solar", ...
  std::string label;  // "METR-LA (synthetic)"
  data::CtsDataset dataset;
  data::WindowSpec window;
  double train_fraction = 0.6;
  double validation_fraction = 0.2;
  // 0-based horizon indices reported separately (15/30/60 min); empty means
  // the 12-step average is reported (PEMS style).
  std::vector<int64_t> report_horizons;
};

// True when AUTOCTS_QUICK=1 (quarter-scale smoke runs).
bool Quick();

// True when AUTOCTS_EXTENDED=1: benches add their secondary datasets
// (the paper runs each study on all eight datasets; the default sweep
// covers one representative per table group to bound runtime).
bool Extended();

// Builds one of the eight Table 4 presets by key: "metr-la", "pems-bay",
// "pems03", "pems04", "pems07", "pems08", "solar", "electricity".
DatasetPreset MakePreset(const std::string& key);

// The six multi-step keys in Table 5/6 order.
std::vector<std::string> MultiStepPresetKeys();

// PrepareData for a preset.
models::PreparedData Prepare(const DatasetPreset& preset);

// Canonical configs (already scaled for the bench budget).
models::TrainConfig BaselineTrainConfig();
models::TrainConfig EvalTrainConfig();
core::SearchOptions DefaultSearchOptions();

// Builds and trains a named baseline; returns the eval report.
models::EvalResult RunBaseline(const std::string& name,
                               const DatasetPreset& preset,
                               const models::PreparedData& prepared,
                               const models::TrainConfig& config);

// Full AutoCTS pipeline: joint search (Algorithm 1) + retrain-from-scratch
// evaluation (Section 3.4).
struct AutoCtsRun {
  core::SearchResult search;
  models::EvalResult eval;
};
AutoCtsRun RunAutoCts(const models::PreparedData& prepared,
                      const core::SearchOptions& options,
                      const models::TrainConfig& eval_config);

// ----- Table formatting ----------------------------------------------------

void PrintTitle(const std::string& title);
void PrintRule();
// Fixed-width cell helpers.
std::string Cell(const std::string& text, int width = 12);
std::string Num(double value, int precision = 2, int width = 12);
std::string Pct(double fraction, int precision = 2, int width = 12);

// Prints "model | MAE RMSE MAPE" triplets at the preset's report horizons
// (or the all-horizon average when none are set).
void PrintMultiStepHeader(const DatasetPreset& preset);
void PrintMultiStepRow(const std::string& model,
                       const models::EvalResult& result,
                       const DatasetPreset& preset);

}  // namespace autocts::bench

#endif  // AUTOCTS_BENCH_BENCH_COMMON_H_
