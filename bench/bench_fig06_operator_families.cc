// Quantifies Figure 6 / Table 2: the qualitative comparison of T-operator
// families (CNN / RNN / Attention) along (i) ability to model long-term
// temporal dependencies and (ii) efficiency.
//
//  - Efficiency: wall-clock per forward pass at several sequence lengths.
//  - Long-term dependency ability: gradient-based receptive-field probe —
//    the magnitude of d y_last / d x_first relative to d y_last / d x_last.
//    A single small-kernel convolution has a tiny ratio (local receptive
//    field); attention sees the whole window; RNNs sit in between and decay
//    with distance.
//
// Expected shape (Figure 6): Attention top-right (long-term + efficient),
// CNN most efficient but local, RNN slowest.
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/adjacency.h"
#include "ops/op_registry.h"
#include "tensor/tensor_ops.h"

namespace autocts {
namespace {

double ForwardSeconds(ops::StOperator* op, int64_t t, int64_t repeats) {
  Rng rng(1);
  const Tensor x = Tensor::Rand({4, t, 6, 16}, &rng, -1.0, 1.0);
  op->SetTraining(false);
  Stopwatch timer;
  for (int64_t r = 0; r < repeats; ++r) {
    op->Forward(Variable(x, false));
  }
  return timer.Seconds() / static_cast<double>(repeats);
}

// |d y[T-1] / d x[0]| / |d y[T-1] / d x[T-1]|, summed over channels.
double LongRangeGradientRatio(ops::StOperator* op, int64_t t) {
  Rng rng(2);
  Variable x(Tensor::Rand({1, t, 2, 8}, &rng, -1.0, 1.0), true);
  op->SetTraining(false);
  const Variable y = op->Forward(x);
  Variable last = ag::SumAll(ag::Slice(y, 1, t - 1, 1));
  last.Backward();
  const Tensor grad = x.grad();
  double first_mag = 0.0;
  double last_mag = 0.0;
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t d = 0; d < 8; ++d) {
      first_mag += std::abs(grad.At({0, 0, n, d}));
      last_mag += std::abs(grad.At({0, t - 1, n, d}));
    }
  }
  return last_mag > 1e-12 ? first_mag / last_mag : 0.0;
}

void Run() {
  bench::PrintTitle(
      "Figure 6 / Table 2 (quantified): T-operator family comparison");
  Rng rng(3);
  ops::OpContext context;
  context.channels = 16;
  context.num_nodes = 6;
  context.rng = &rng;

  const std::vector<std::pair<std::string, std::string>> families = {
      {"CNN (gdcc)", "gdcc"},
      {"RNN (gru)", "gru"},
      {"RNN (lstm)", "lstm"},
      {"Attention (trans_t)", "trans_t"},
      {"Attention (inf_t)", "inf_t"}};

  const int64_t t = bench::Quick() ? 24 : 48;
  std::printf("%s%s%s%s\n", bench::Cell("family", 22).c_str(),
              bench::Cell("fwd ms @T=" + std::to_string(t), 16).c_str(),
              bench::Cell("fwd ms @T=" + std::to_string(2 * t), 16).c_str(),
              bench::Cell("long-range grad ratio", 22).c_str());
  bench::PrintRule();
  for (const auto& [label, name] : families) {
    ops::StOperatorPtr op = ops::CreateOp(name, context);
    const double ms_short = ForwardSeconds(op.get(), t, 3) * 1e3;
    const double ms_long = ForwardSeconds(op.get(), 2 * t, 3) * 1e3;
    ops::OpContext probe_context = context;
    probe_context.channels = 8;
    probe_context.num_nodes = 2;
    ops::StOperatorPtr probe = ops::CreateOp(name, probe_context);
    const double ratio = LongRangeGradientRatio(probe.get(), t);
    std::printf("%s%s%s%s\n", bench::Cell(label, 22).c_str(),
                bench::Num(ms_short, 2, 16).c_str(),
                bench::Num(ms_long, 2, 16).c_str(),
                bench::Num(ratio, 4, 22).c_str());
    std::fflush(stdout);
  }

  bench::PrintTitle("S-operator family comparison (Table 2)");
  Rng graph_rng(4);
  context.adjacency = graph::DistanceGaussianAdjacency(
      graph::RandomPositions(6, &graph_rng), 0.5, 0.1);
  std::printf("%s%s%s\n", bench::Cell("family", 22).c_str(),
              bench::Cell("fwd ms @T=" + std::to_string(t), 16).c_str(),
              bench::Cell("needs adjacency", 18).c_str());
  bench::PrintRule();
  const std::vector<std::tuple<std::string, std::string, bool>> s_families =
      {{"GCN (dgcn)", "dgcn", true},
       {"GCN (cheb_gcn)", "cheb_gcn", true},
       {"Attention (trans_s)", "trans_s", false},
       {"Attention (inf_s)", "inf_s", false}};
  for (const auto& [label, name, needs_adjacency] : s_families) {
    ops::StOperatorPtr op = ops::CreateOp(name, context);
    const double ms = ForwardSeconds(op.get(), t, 3) * 1e3;
    std::printf("%s%s%s\n", bench::Cell(label, 22).c_str(),
                bench::Num(ms, 2, 16).c_str(),
                bench::Cell(needs_adjacency ? "yes" : "no", 18).c_str());
  }
  std::printf(
      "\nPaper's findings to compare: CNN fastest but with a small "
      "long-range\ngradient ratio (local receptive field); attention sees "
      "the whole window;\nRNN is the slowest at long T; GCN is the fastest "
      "S-family but requires a\npredefined adjacency matrix.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_fig06 done in %.1fs]\n", timer.Seconds());
  return 0;
}
