// Reproduces Table 7: search time and memory per dataset.
//
// The paper reports 12-163 GPU hours and up to ~36 GB; here the absolute
// unit is CPU seconds / MB, but the *ordering* should match: cost grows
// with the number of nodes, the number of timestamps, and the input window
// length, making the single-step datasets (168-step windows in the paper,
// 36 here) the most expensive and the smallest PEMS sets the cheapest.
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void Run() {
  bench::PrintTitle("Table 7: search time and (estimated) memory");
  std::printf("%s%s%s%s%s\n", bench::Cell("dataset", 26).c_str(),
              bench::Cell("nodes", 8).c_str(),
              bench::Cell("windows", 10).c_str(),
              bench::Cell("search (s)", 12).c_str(),
              bench::Cell("memory (MB)", 12).c_str());
  bench::PrintRule();
  std::vector<std::string> keys = bench::MultiStepPresetKeys();
  keys.push_back("solar");
  keys.push_back("electricity");
  for (const std::string& key : keys) {
    const bench::DatasetPreset preset = bench::MakePreset(key);
    const models::PreparedData prepared = bench::Prepare(preset);
    core::SearchOptions options = bench::DefaultSearchOptions();
    // Fixed step count across datasets so the measured time reflects the
    // per-step cost (graph size, window length), as in the paper.
    options.epochs = 1;
    options.max_batches_per_epoch = bench::Quick() ? 2 : 4;
    const core::SearchResult result =
        core::JointSearcher(options).Search(prepared);
    std::printf("%s%s%s%s%s\n", bench::Cell(preset.label, 26).c_str(),
                bench::Cell(std::to_string(prepared.num_nodes), 8).c_str(),
                bench::Cell(std::to_string(prepared.train().NumSamples()), 10)
                    .c_str(),
                bench::Num(result.search_seconds, 1, 12).c_str(),
                bench::Num(result.estimated_memory_mb, 1, 12).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper's findings to compare: the single-step datasets "
      "(Solar-Energy,\nElectricity; long input windows) cost the most; the "
      "small PEMS04/08 the\nleast; larger graphs (PEMS07) cost more than "
      "smaller ones.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table07 done in %.1fs]\n", timer.Seconds());
  return 0;
}
