// Reproduces the hyper-parameter sensitivity study of Tables 17-26: the
// impact of M (nodes per ST-block: 3/5/7) and B (blocks in the backbone:
// 2/4/6) on METR-LA-like data.
//
// Expected shape: the defaults (M=5, B=4) are at or near the best; both
// shrinking (less expressive) and growing (overfitting at small data)
// degrade accuracy mildly.
#include "bench_common.h"
#include "common/stopwatch.h"

namespace autocts {
namespace {

void Run() {
  const bench::DatasetPreset preset = bench::MakePreset("metr-la");
  const models::PreparedData prepared = bench::Prepare(preset);

  bench::PrintTitle("Tables 17/18: impact of M and B on " + preset.label);
  std::printf("%s%s%s%s%s\n", bench::Cell("setting", 14).c_str(),
              bench::Cell("MAE").c_str(), bench::Cell("RMSE").c_str(),
              bench::Cell("MAPE").c_str(),
              bench::Cell("params").c_str());
  bench::PrintRule();

  auto run_setting = [&](const std::string& label, int64_t m, int64_t b) {
    core::SearchOptions options = bench::DefaultSearchOptions();
    options.supernet.micro_nodes = m;
    options.supernet.macro_blocks = b;
    const bench::AutoCtsRun run =
        bench::RunAutoCts(prepared, options, bench::EvalTrainConfig());
    std::printf("%s%s%s%s%s\n", bench::Cell(label, 14).c_str(),
                bench::Num(run.eval.average.mae).c_str(),
                bench::Num(run.eval.average.rmse).c_str(),
                bench::Pct(run.eval.average.mape).c_str(),
                bench::Cell(std::to_string(run.eval.parameter_count))
                    .c_str());
    std::fflush(stdout);
  };

  const std::vector<int64_t> m_values =
      bench::Quick() ? std::vector<int64_t>{3, 5} : std::vector<int64_t>{3, 5, 7};
  for (int64_t m : m_values) {
    run_setting("M=" + std::to_string(m) + ",B=4", m, 4);
  }
  const std::vector<int64_t> b_values =
      bench::Quick() ? std::vector<int64_t>{2} : std::vector<int64_t>{2, 6};
  for (int64_t b : b_values) {
    run_setting("M=5,B=" + std::to_string(b), 5, b);
  }
  std::printf(
      "\nPaper's findings to compare: best (or near-best) accuracy at the "
      "default\nM=5/B=4; parameter count grows with both M and B.\n");
}

}  // namespace
}  // namespace autocts

int main() {
  autocts::Stopwatch timer;
  autocts::Run();
  std::printf("[bench_table17_26 done in %.1fs]\n", timer.Seconds());
  return 0;
}
