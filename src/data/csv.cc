#include "data/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/text_codec.h"

namespace autocts::data {

Status SaveMatrixCsv(const std::string& path, const Tensor& matrix) {
  if (matrix.ndim() != 2) {
    return Status::InvalidArgument("SaveMatrixCsv expects a 2-D tensor");
  }
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out.precision(12);
  const int64_t rows = matrix.dim(0);
  const int64_t cols = matrix.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) out << ",";
      out << matrix.data()[r * cols + c];
    }
    out << "\n";
  }
  return out ? Status::Ok() : Status::Internal("write failed: " + path);
}

StatusOr<Tensor> LoadMatrixCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::vector<double> values;
  int64_t cols = -1;
  int64_t rows = 0;
  int64_t line_number = 0;  // 1-based physical line, blank lines included
  std::string line;
  // Every parse error names the file and the 1-based line (and column) it
  // came from, so a malformed export is locatable without bisecting.
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> cells = SplitString(line, ',');
    if (cols == -1) {
      cols = static_cast<int64_t>(cells.size());
    } else if (cols != static_cast<int64_t>(cells.size())) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": ragged row: expected " +
          std::to_string(cols) + " columns, got " +
          std::to_string(cells.size()));
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      const std::string cell = StripWhitespace(cells[c]);
      char* end = nullptr;
      const double value =
          cell.empty() ? 0.0 : std::strtod(cell.c_str(), &end);
      // Reject empty cells, non-numeric cells, and trailing garbage after
      // a valid prefix ("1.5abc").
      if (cell.empty() || end == cell.c_str() ||
          *end != '\0') {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) + ": column " +
            std::to_string(c + 1) + ": not a number: \"" + cells[c] + "\"");
      }
      values.push_back(value);
    }
    ++rows;
  }
  if (in.bad()) {
    return Status::Unavailable("read failed on " + path + ": " +
                               std::strerror(errno));
  }
  if (rows == 0) {
    return Status::InvalidArgument(path + ": empty CSV (no data rows)");
  }
  return Tensor::FromVector({rows, cols}, std::move(values));
}

}  // namespace autocts::data
