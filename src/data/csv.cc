#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/text_codec.h"

namespace autocts::data {

Status SaveMatrixCsv(const std::string& path, const Tensor& matrix) {
  if (matrix.ndim() != 2) {
    return Status::InvalidArgument("SaveMatrixCsv expects a 2-D tensor");
  }
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out.precision(12);
  const int64_t rows = matrix.dim(0);
  const int64_t cols = matrix.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) out << ",";
      out << matrix.data()[r * cols + c];
    }
    out << "\n";
  }
  return out ? Status::Ok() : Status::Internal("write failed: " + path);
}

StatusOr<Tensor> LoadMatrixCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<double> values;
  int64_t cols = -1;
  int64_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> cells = SplitString(line, ',');
    if (cols == -1) {
      cols = static_cast<int64_t>(cells.size());
    } else if (cols != static_cast<int64_t>(cells.size())) {
      return Status::InvalidArgument("ragged CSV at row " +
                                     std::to_string(rows));
    }
    for (const std::string& cell : cells) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::InvalidArgument("not a number: " + cell);
      }
      values.push_back(value);
    }
    ++rows;
  }
  if (rows == 0) return Status::InvalidArgument("empty CSV: " + path);
  return Tensor::FromVector({rows, cols}, std::move(values));
}

}  // namespace autocts::data
