#include "data/cts_dataset.h"

#include "tensor/tensor_ops.h"

namespace autocts::data {

DataSplit ChronologicalSplit(const Tensor& values, double train_fraction,
                             double validation_fraction) {
  AUTOCTS_CHECK_EQ(values.ndim(), 3);
  AUTOCTS_CHECK_GT(train_fraction, 0.0);
  AUTOCTS_CHECK_GE(validation_fraction, 0.0);
  AUTOCTS_CHECK_LE(train_fraction + validation_fraction, 1.0);
  const int64_t steps = values.dim(0);
  const int64_t train_steps =
      static_cast<int64_t>(static_cast<double>(steps) * train_fraction);
  const int64_t validation_steps = static_cast<int64_t>(
      static_cast<double>(steps) * validation_fraction);
  const int64_t test_steps = steps - train_steps - validation_steps;
  AUTOCTS_CHECK_GT(train_steps, 0);
  AUTOCTS_CHECK_GE(test_steps, 0);
  DataSplit split;
  split.train = Slice(values, 0, 0, train_steps);
  split.validation = Slice(values, 0, train_steps, validation_steps);
  split.test = Slice(values, 0, train_steps + validation_steps, test_steps);
  return split;
}

}  // namespace autocts::data
