// Z-score normalization fitted on training data, as used by all the traffic
// forecasting literature the paper builds on. Supports masking a null value
// (0.0 readings from failed sensors) when fitting statistics.
#ifndef AUTOCTS_DATA_SCALER_H_
#define AUTOCTS_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace autocts::data {

class StandardScaler {
 public:
  StandardScaler() = default;

  // Computes per-feature mean/stddev over [T, N, F] training data. When
  // `mask_null` is true, entries equal to `null_value` (within
  // kNullMatchTolerance) are excluded from the statistics, and
  // Transform/InverseTransformFeature pass such entries through unchanged
  // so downstream masked metrics still recognize them.
  void Fit(const Tensor& values, bool mask_null = false,
           double null_value = 0.0);

  // (x - mean) / std per feature; input [T, N, F] or [B, T, N, F]. Null
  // sentinels are preserved when fitted with mask_null.
  Tensor Transform(const Tensor& values) const;

  // Inverse transform of the target feature only; input of any shape whose
  // values are normalized target readings (null sentinels preserved when
  // fitted with mask_null).
  Tensor InverseTransformFeature(const Tensor& values,
                                 int64_t feature) const;

  double mean(int64_t feature) const;
  double stddev(int64_t feature) const;
  bool fitted() const { return fitted_; }
  bool mask_null() const { return mask_null_; }
  double null_value() const { return null_value_; }
  int64_t num_features() const {
    return static_cast<int64_t>(means_.size());
  }

  // Serializable image of a fitted scaler, used by the serving layer to
  // ship normalization statistics inside a model artifact.
  struct State {
    bool mask_null = false;
    double null_value = 0.0;
    std::vector<double> means;
    std::vector<double> stddevs;
  };
  // Requires the scaler to be fitted.
  State GetState() const;
  // Reconstructs a fitted scaler; Transform/InverseTransformFeature behave
  // bit-identically to the original. Requires means/stddevs of equal,
  // nonzero length.
  static StandardScaler FromState(const State& state);

 private:
  bool fitted_ = false;
  bool mask_null_ = false;
  double null_value_ = 0.0;
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace autocts::data

#endif  // AUTOCTS_DATA_SCALER_H_
