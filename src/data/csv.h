// Minimal CSV persistence for matrices (exports of predictions, loading of
// user-provided datasets).
#ifndef AUTOCTS_DATA_CSV_H_
#define AUTOCTS_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace autocts::data {

// Writes a [rows, cols] tensor as comma-separated values.
Status SaveMatrixCsv(const std::string& path, const Tensor& matrix);

// Reads a CSV of doubles into a [rows, cols] tensor; all rows must have the
// same number of columns. Blank lines are skipped. A ragged, empty, or
// non-numeric cell (including trailing garbage like "1.5abc") returns
// InvalidArgument naming the file, 1-based line, and column; a missing file
// returns NotFound and a mid-read I/O failure returns Unavailable, both
// with the errno text.
StatusOr<Tensor> LoadMatrixCsv(const std::string& path);

}  // namespace autocts::data

#endif  // AUTOCTS_DATA_CSV_H_
