// Minimal CSV persistence for matrices (exports of predictions, loading of
// user-provided datasets).
#ifndef AUTOCTS_DATA_CSV_H_
#define AUTOCTS_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace autocts::data {

// Writes a [rows, cols] tensor as comma-separated values.
Status SaveMatrixCsv(const std::string& path, const Tensor& matrix);

// Reads a CSV of doubles into a [rows, cols] tensor; all rows must have the
// same number of columns.
StatusOr<Tensor> LoadMatrixCsv(const std::string& path);

}  // namespace autocts::data

#endif  // AUTOCTS_DATA_CSV_H_
