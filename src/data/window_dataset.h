// Sliding-window sample extraction for multi-step and single-step
// forecasting (Section 2, Eqs. 1-2 of the paper).
#ifndef AUTOCTS_DATA_WINDOW_DATASET_H_
#define AUTOCTS_DATA_WINDOW_DATASET_H_

#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

namespace autocts::data {

struct WindowSpec {
  int64_t input_length = 12;   // P
  int64_t output_length = 12;  // Q for multi-step; must be 1 if horizon > 0
  // Single-step mode (Eq. 1): when > 0, the target is only the horizon-th
  // future step (3 or 24 in Table 8) instead of steps 1..Q.
  int64_t horizon = 0;
  int64_t target_feature = 0;
};

// Indexes windows over a [T, N, F] value tensor. Inputs keep all F
// features; targets are the target feature only.
class WindowDataset {
 public:
  WindowDataset(Tensor values, WindowSpec spec);

  int64_t NumSamples() const { return num_samples_; }
  const WindowSpec& spec() const { return spec_; }

  // Gathers the windows at `indices` into
  //   x: [B, P, N, F] and y: [B, Q, N, 1] (Q = 1 in single-step mode).
  void GetBatch(const std::vector<int64_t>& indices, Tensor* x,
                Tensor* y) const;

  // Convenience: all sample indices in order.
  std::vector<int64_t> AllIndices() const;

  // Consecutive batches covering a shuffled epoch.
  std::vector<std::vector<int64_t>> EpochBatches(int64_t batch_size,
                                                 Rng* rng) const;

 private:
  Tensor values_;  // [T, N, F]
  WindowSpec spec_;
  int64_t num_samples_ = 0;
};

}  // namespace autocts::data

#endif  // AUTOCTS_DATA_WINDOW_DATASET_H_
