#include "data/window_dataset.h"

#include <algorithm>

#include "common/trace.h"

namespace autocts::data {

WindowDataset::WindowDataset(Tensor values, WindowSpec spec)
    : values_(std::move(values)), spec_(spec) {
  AUTOCTS_CHECK_EQ(values_.ndim(), 3);
  AUTOCTS_CHECK_GE(spec_.input_length, 1);
  AUTOCTS_CHECK_GE(spec_.output_length, 1);
  if (spec_.horizon > 0) {
    AUTOCTS_CHECK_EQ(spec_.output_length, 1)
        << "single-step mode predicts exactly one step";
  }
  const int64_t steps = values_.dim(0);
  const int64_t tail = spec_.horizon > 0 ? spec_.horizon : spec_.output_length;
  num_samples_ = std::max<int64_t>(0, steps - spec_.input_length - tail + 1);
}

void WindowDataset::GetBatch(const std::vector<int64_t>& indices, Tensor* x,
                             Tensor* y) const {
  AUTOCTS_TRACE_SCOPE("data/get_batch");
  AUTOCTS_CHECK(!indices.empty());
  const int64_t batch = static_cast<int64_t>(indices.size());
  const int64_t nodes = values_.dim(1);
  const int64_t features = values_.dim(2);
  const int64_t p = spec_.input_length;
  const int64_t q = spec_.output_length;
  *x = Tensor({batch, p, nodes, features});
  *y = Tensor({batch, q, nodes, 1});
  const double* src = values_.data();
  double* px = x->data();
  double* py = y->data();
  const int64_t frame = nodes * features;
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t start = indices[b];
    AUTOCTS_CHECK_GE(start, 0);
    AUTOCTS_CHECK_LT(start, num_samples_);
    std::copy(src + start * frame, src + (start + p) * frame,
              px + b * p * frame);
    for (int64_t step = 0; step < q; ++step) {
      const int64_t target_t = spec_.horizon > 0
                                   ? start + p + spec_.horizon - 1
                                   : start + p + step;
      for (int64_t n = 0; n < nodes; ++n) {
        py[(b * q + step) * nodes + n] =
            src[target_t * frame + n * features + spec_.target_feature];
      }
    }
  }
}

std::vector<int64_t> WindowDataset::AllIndices() const {
  std::vector<int64_t> indices(num_samples_);
  for (int64_t i = 0; i < num_samples_; ++i) indices[i] = i;
  return indices;
}

std::vector<std::vector<int64_t>> WindowDataset::EpochBatches(
    int64_t batch_size, Rng* rng) const {
  AUTOCTS_CHECK_GT(batch_size, 0);
  std::vector<int64_t> order = AllIndices();
  if (rng != nullptr) rng->Shuffle(&order);
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < num_samples_; start += batch_size) {
    const int64_t end = std::min(num_samples_, start + batch_size);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace autocts::data
