// Correlated time series container and chronological splitting.
//
// A CTS dataset is X in R^{T x N x F} (Section 2 of the paper: N series,
// T timestamps, F features) plus an optional predefined adjacency matrix.
#ifndef AUTOCTS_DATA_CTS_DATASET_H_
#define AUTOCTS_DATA_CTS_DATASET_H_

#include <string>

#include "tensor/tensor.h"

namespace autocts::data {

struct CtsDataset {
  std::string name;
  Tensor values;     // [T, N, F]
  Tensor adjacency;  // [N, N]; undefined when the graph must be learned
  // Index of the feature to forecast (the rest are covariates such as
  // time-of-day).
  int64_t target_feature = 0;
  // Timestamps per day (5-min traffic: 288; hourly electricity: 24, ...).
  int64_t steps_per_day = 288;
  // True when a zero reading encodes a missing observation (traffic-sensor
  // dropouts in METR-LA-style data) rather than a real value. Drives the
  // scaler's mask_null fit and the masked evaluation metrics; solar's
  // genuine nighttime zeros, for example, must NOT set this.
  bool zero_is_missing = false;

  int64_t num_steps() const { return values.dim(0); }
  int64_t num_nodes() const { return values.dim(1); }
  int64_t num_features() const { return values.dim(2); }
};

// Time-ordered train/validation/test pieces of the value tensor.
struct DataSplit {
  Tensor train;
  Tensor validation;
  Tensor test;
};

// Splits [T, N, F] chronologically using fractions that must sum to <= 1
// (e.g. 0.7/0.1/0.2 for the 7:1:2 ratio of METR-LA, 0.6/0.2/0.2 for PEMS).
DataSplit ChronologicalSplit(const Tensor& values, double train_fraction,
                             double validation_fraction);

}  // namespace autocts::data

#endif  // AUTOCTS_DATA_CTS_DATASET_H_
