#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/synthetic/generators.h"
#include "graph/adjacency.h"

namespace autocts::data {
namespace {

// Bimodal daily flow profile in [0, 1].
double FlowProfile(double day_fraction) {
  auto bump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-0.5 * d * d);
  };
  return 0.15 + 0.85 * bump(day_fraction, 8.5 / 24.0, 0.08) +
         0.75 * bump(day_fraction, 17.0 / 24.0, 0.09);
}

}  // namespace

CtsDataset GenerateTrafficFlow(const TrafficFlowConfig& config) {
  Rng rng(config.seed);
  const int64_t n = config.num_nodes;
  const int64_t t_total = config.num_steps;
  const int64_t steps_per_week = 7 * config.steps_per_day;

  const Tensor positions = graph::RandomPositions(n, &rng);
  const Tensor adjacency =
      graph::DistanceGaussianAdjacency(positions, /*sigma=*/0.4,
                                       /*threshold=*/0.3);
  const Tensor walk = graph::RowNormalize(graph::AddSelfLoops(adjacency));

  std::vector<double> capacity(n);
  for (int64_t i = 0; i < n; ++i) {
    capacity[i] = config.peak_flow * rng.Uniform(0.5, 1.0);
  }

  // Spatially correlated demand fluctuation (AR(1) over the graph).
  std::vector<double> demand(n, 0.0);
  std::vector<double> demand_next(n, 0.0);

  CtsDataset dataset;
  dataset.name = config.name;
  dataset.adjacency = adjacency;
  dataset.target_feature = 0;
  dataset.steps_per_day = config.steps_per_day;
  dataset.values = Tensor({t_total, n, 1});
  double* out = dataset.values.data();

  for (int64_t t = 0; t < t_total; ++t) {
    const double day_fraction =
        static_cast<double>(t % config.steps_per_day) /
        static_cast<double>(config.steps_per_day);
    const int64_t day_of_week = (t % steps_per_week) / config.steps_per_day;
    const bool weekend = day_of_week >= 5;
    const double profile = FlowProfile(day_fraction) *
                           (weekend ? config.weekend_factor : 1.0);

    const double* w = walk.data();
    for (int64_t i = 0; i < n; ++i) {
      double diffused = 0.0;
      for (int64_t j = 0; j < n; ++j) diffused += w[i * n + j] * demand[j];
      demand_next[i] = 0.9 * diffused + rng.Normal(0.0, 0.03);
    }
    std::swap(demand, demand_next);

    for (int64_t i = 0; i < n; ++i) {
      const double mean_flow =
          capacity[i] * std::max(0.0, profile * (1.0 + demand[i]));
      // Count noise grows with sqrt(flow) (Poisson-like).
      const double flow =
          std::max(0.0, mean_flow + rng.Normal(0.0, std::sqrt(
                                                        mean_flow + 1.0)));
      out[t * n + i] = flow;
    }
  }
  return dataset;
}

}  // namespace autocts::data
