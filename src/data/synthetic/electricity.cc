#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/synthetic/generators.h"

namespace autocts::data {

CtsDataset GenerateElectricity(const ElectricityConfig& config) {
  Rng rng(config.seed);
  const int64_t n = config.num_nodes;
  const int64_t t_total = config.num_steps;
  const int64_t steps_per_week = 7 * config.steps_per_day;

  // Clients mix residential (evening peak) and commercial (business-hours
  // peak) usage profiles and share a latent temperature-like driver.
  std::vector<double> base_load(n);
  std::vector<double> residential_share(n);
  std::vector<double> temperature_sensitivity(n);
  for (int64_t i = 0; i < n; ++i) {
    base_load[i] = rng.Uniform(50.0, 300.0);
    residential_share[i] = rng.Uniform(0.0, 1.0);
    temperature_sensitivity[i] = rng.Uniform(0.0, 0.4);
  }
  double temperature = 0.0;

  CtsDataset dataset;
  dataset.name = config.name;
  dataset.target_feature = 0;
  dataset.steps_per_day = config.steps_per_day;
  // No predefined adjacency, as with the real Electricity dataset.
  dataset.values = Tensor({t_total, n, 1});
  double* out = dataset.values.data();

  auto bump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-0.5 * d * d);
  };

  for (int64_t t = 0; t < t_total; ++t) {
    const double day_fraction =
        static_cast<double>(t % config.steps_per_day) /
        static_cast<double>(config.steps_per_day);
    const int64_t day_of_week = (t % steps_per_week) / config.steps_per_day;
    const bool weekend = day_of_week >= 5;
    const double residential_profile =
        0.5 + 0.3 * bump(day_fraction, 7.5 / 24.0, 0.08) +
        0.9 * bump(day_fraction, 19.5 / 24.0, 0.10);
    const double commercial_profile =
        0.3 + (weekend ? 0.15 : 1.0) * bump(day_fraction, 13.0 / 24.0, 0.18);
    temperature = 0.98 * temperature + rng.Normal(0.0, 0.1);

    for (int64_t i = 0; i < n; ++i) {
      const double profile =
          residential_share[i] * residential_profile +
          (1.0 - residential_share[i]) * commercial_profile;
      double load = base_load[i] * profile *
                    (1.0 + temperature_sensitivity[i] * temperature);
      // Occasional consumption spikes (machinery, EV charging, ...).
      if (rng.Bernoulli(0.005)) load *= rng.Uniform(1.5, 2.5);
      load = std::max(0.0, load + rng.Normal(0.0, base_load[i] * 0.02));
      out[t * n + i] = load;
    }
  }
  return dataset;
}

}  // namespace autocts::data
