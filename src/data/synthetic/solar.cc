#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/synthetic/generators.h"

namespace autocts::data {

CtsDataset GenerateSolar(const SolarConfig& config) {
  Rng rng(config.seed);
  const int64_t n = config.num_nodes;
  const int64_t t_total = config.num_steps;

  // Plants share regional cloud cover through two latent weather factors.
  std::vector<double> capacity(n);
  std::vector<double> factor_loading_a(n);
  std::vector<double> factor_loading_b(n);
  for (int64_t i = 0; i < n; ++i) {
    capacity[i] = rng.Uniform(20.0, 80.0);
    factor_loading_a[i] = rng.Uniform(0.0, 1.0);
    factor_loading_b[i] = 1.0 - factor_loading_a[i];
  }
  double cloud_a = 0.0;
  double cloud_b = 0.0;

  CtsDataset dataset;
  dataset.name = config.name;
  dataset.target_feature = 0;
  dataset.steps_per_day = config.steps_per_day;
  // No predefined adjacency: models must learn the correlations, exactly as
  // for the real Solar-Energy dataset (Section 4.1.1).
  dataset.values = Tensor({t_total, n, 1});
  double* out = dataset.values.data();

  const double sunrise = 6.0 / 24.0;
  const double sunset = 19.0 / 24.0;
  for (int64_t t = 0; t < t_total; ++t) {
    const double day_fraction =
        static_cast<double>(t % config.steps_per_day) /
        static_cast<double>(config.steps_per_day);
    // Daylight envelope: half-sine between sunrise and sunset, 0 at night.
    double envelope = 0.0;
    if (day_fraction > sunrise && day_fraction < sunset) {
      envelope =
          std::sin(M_PI * (day_fraction - sunrise) / (sunset - sunrise));
    }
    // AR(1) regional cloud processes.
    cloud_a = 0.97 * cloud_a + rng.Normal(0.0, 0.08);
    cloud_b = 0.97 * cloud_b + rng.Normal(0.0, 0.08);
    for (int64_t i = 0; i < n; ++i) {
      const double cloud = factor_loading_a[i] * cloud_a +
                           factor_loading_b[i] * cloud_b;
      // Clouds multiply production by a factor in (0, 1].
      const double clearness = 1.0 / (1.0 + std::exp(4.0 * cloud));
      double production = capacity[i] * envelope * (0.25 + 0.75 * clearness);
      production = std::max(0.0, production + rng.Normal(0.0, 0.4));
      if (envelope == 0.0) production = 0.0;  // Strictly zero at night.
      out[t * n + i] = production;
    }
  }
  return dataset;
}

}  // namespace autocts::data
