#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/synthetic/generators.h"
#include "graph/adjacency.h"
#include "tensor/tensor_ops.h"

namespace autocts::data {
namespace {

// Double-peaked (morning/evening rush hour) diurnal congestion profile in
// [0, 1] as a function of time-of-day fraction.
double RushHourProfile(double day_fraction) {
  auto bump = [](double x, double center, double width) {
    const double d = (x - center) / width;
    return std::exp(-0.5 * d * d);
  };
  return 0.9 * bump(day_fraction, 8.0 / 24.0, 0.06) +
         1.0 * bump(day_fraction, 17.5 / 24.0, 0.07);
}

}  // namespace

CtsDataset GenerateTrafficSpeed(const TrafficSpeedConfig& config) {
  Rng rng(config.seed);
  const int64_t n = config.num_nodes;
  const int64_t t_total = config.num_steps;

  const Tensor positions = graph::RandomPositions(n, &rng);
  const Tensor adjacency =
      graph::DistanceGaussianAdjacency(positions, /*sigma=*/0.4,
                                       /*threshold=*/0.3);
  const Tensor walk = graph::RowNormalize(graph::AddSelfLoops(adjacency));

  std::vector<double> base_speed(n);
  std::vector<double> congestion_depth(n);
  for (int64_t i = 0; i < n; ++i) {
    base_speed[i] = rng.Uniform(config.base_speed_low, config.base_speed_high);
    congestion_depth[i] = rng.Uniform(12.0, 28.0);
  }

  // Congestion events diffuse over the sensor graph and decay in time:
  //   e_t = 0.92 * (W e_{t-1}) + new events.
  std::vector<double> event(n, 0.0);
  std::vector<double> event_next(n, 0.0);

  CtsDataset dataset;
  dataset.name = config.name;
  dataset.adjacency = adjacency;
  dataset.target_feature = 0;
  dataset.steps_per_day = config.steps_per_day;
  // Zero speeds below are injected sensor failures, not real readings.
  dataset.zero_is_missing = true;
  dataset.values = Tensor({t_total, n, 2});
  double* out = dataset.values.data();

  for (int64_t t = 0; t < t_total; ++t) {
    const double day_fraction =
        static_cast<double>(t % config.steps_per_day) /
        static_cast<double>(config.steps_per_day);
    const double rush = RushHourProfile(day_fraction);

    // Diffuse yesterday's events over the graph, then decay.
    const double* w = walk.data();
    for (int64_t i = 0; i < n; ++i) {
      double diffused = 0.0;
      for (int64_t j = 0; j < n; ++j) diffused += w[i * n + j] * event[j];
      event_next[i] = 0.92 * diffused;
      if (rng.Bernoulli(config.event_rate)) {
        event_next[i] += rng.Uniform(10.0, 25.0);
      }
    }
    std::swap(event, event_next);

    for (int64_t i = 0; i < n; ++i) {
      double speed = base_speed[i] - congestion_depth[i] * rush - event[i] +
                     rng.Normal(0.0, 1.5);
      speed = std::max(0.0, speed);
      if (rng.Bernoulli(config.missing_rate)) speed = 0.0;  // Sensor failure.
      out[(t * n + i) * 2] = speed;
      out[(t * n + i) * 2 + 1] = day_fraction;
    }
  }
  return dataset;
}

}  // namespace autocts::data
