// Synthetic stand-ins for the paper's eight benchmark datasets (Table 4).
//
// The real datasets (METR-LA, PEMS-BAY, PEMS03/04/07/08, Solar-Energy,
// Electricity) are not available in this environment; these generators
// produce series with the same structure so that every experiment
// exercises the same code paths (see DESIGN.md, substitution table):
//   - spatial correlation on a sensor graph (traffic) or latent factors
//     (solar/electricity),
//   - diurnal and weekly periodicity,
//   - masked (zero) readings for failed sensors,
//   - the exact window specs (12-in/12-out multi-step, 168-in/1-out
//     single-step) and split ratios of Table 4.
#ifndef AUTOCTS_DATA_SYNTHETIC_GENERATORS_H_
#define AUTOCTS_DATA_SYNTHETIC_GENERATORS_H_

#include "data/cts_dataset.h"

namespace autocts::data {

// METR-LA / PEMS-BAY style traffic *speed* series with a distance-kernel
// sensor graph; F = 2 (speed, time-of-day).
struct TrafficSpeedConfig {
  std::string name = "synth-metr-la";
  int64_t num_nodes = 16;
  int64_t num_steps = 2304;  // 8 days at 288 steps/day (5-min resolution)
  int64_t steps_per_day = 288;
  double base_speed_low = 55.0;
  double base_speed_high = 70.0;
  // Probability of a congestion event starting at a node per step.
  double event_rate = 0.002;
  // Per-step probability of a dropped (zero) reading.
  double missing_rate = 0.004;
  uint64_t seed = 1;
};
CtsDataset GenerateTrafficSpeed(const TrafficSpeedConfig& config);

// PEMS03/04/07/08 style traffic *flow* (vehicle counts); F = 1.
struct TrafficFlowConfig {
  std::string name = "synth-pems";
  int64_t num_nodes = 16;
  int64_t num_steps = 2304;
  int64_t steps_per_day = 288;
  double peak_flow = 400.0;
  double weekend_factor = 0.6;
  uint64_t seed = 2;
};
CtsDataset GenerateTrafficFlow(const TrafficFlowConfig& config);

// Solar-Energy style PV production: zero at night, bell-shaped envelope by
// day, spatially correlated cloud cover; no predefined adjacency.
struct SolarConfig {
  std::string name = "synth-solar";
  int64_t num_nodes = 16;
  int64_t num_steps = 2880;  // 20 days at 144 steps/day (10-min resolution)
  int64_t steps_per_day = 144;
  uint64_t seed = 3;
};
CtsDataset GenerateSolar(const SolarConfig& config);

// Electricity style per-client consumption: base load + diurnal + weekly
// patterns + spikes; no predefined adjacency.
struct ElectricityConfig {
  std::string name = "synth-electricity";
  int64_t num_nodes = 16;
  int64_t num_steps = 2880;  // 120 days at 24 steps/day (hourly)
  int64_t steps_per_day = 24;
  uint64_t seed = 4;
};
CtsDataset GenerateElectricity(const ElectricityConfig& config);

}  // namespace autocts::data

#endif  // AUTOCTS_DATA_SYNTHETIC_GENERATORS_H_
