#include "data/scaler.h"

#include <cmath>

#include "common/constants.h"

namespace autocts::data {

namespace {

bool IsNullSentinel(double v, double null_value) {
  return std::abs(v - null_value) < kNullMatchTolerance;
}

}  // namespace

void StandardScaler::Fit(const Tensor& values, bool mask_null,
                         double null_value) {
  AUTOCTS_CHECK_EQ(values.ndim(), 3);
  const int64_t features = values.dim(2);
  means_.assign(features, 0.0);
  stddevs_.assign(features, 1.0);
  const int64_t rows = values.dim(0) * values.dim(1);
  for (int64_t f = 0; f < features; ++f) {
    double sum = 0.0;
    double sum_sq = 0.0;
    int64_t count = 0;
    for (int64_t r = 0; r < rows; ++r) {
      const double v = values.data()[r * features + f];
      if (mask_null && IsNullSentinel(v, null_value)) continue;
      sum += v;
      sum_sq += v * v;
      ++count;
    }
    if (count == 0) continue;
    const double mean = sum / static_cast<double>(count);
    const double variance =
        std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean);
    means_[f] = mean;
    stddevs_[f] = std::max(1e-8, std::sqrt(variance));
  }
  fitted_ = true;
  mask_null_ = mask_null;
  null_value_ = null_value;
}

Tensor StandardScaler::Transform(const Tensor& values) const {
  AUTOCTS_CHECK(fitted_);
  const int64_t features = values.dim(-1);
  AUTOCTS_CHECK_EQ(features, static_cast<int64_t>(means_.size()));
  Tensor result = values.Clone();
  const int64_t rows = result.size() / features;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t f = 0; f < features; ++f) {
      double& v = result.data()[r * features + f];
      // Null sentinels were excluded from the fitted statistics; rescaling
      // them would turn failed-sensor markers into fake readings that the
      // masked metrics can no longer recognize.
      if (mask_null_ && IsNullSentinel(v, null_value_)) continue;
      v = (v - means_[f]) / stddevs_[f];
    }
  }
  return result;
}

Tensor StandardScaler::InverseTransformFeature(const Tensor& values,
                                               int64_t feature) const {
  AUTOCTS_CHECK(fitted_);
  AUTOCTS_CHECK_GE(feature, 0);
  AUTOCTS_CHECK_LT(feature, static_cast<int64_t>(means_.size()));
  Tensor result = values.Clone();
  for (int64_t i = 0; i < result.size(); ++i) {
    double& v = result.data()[i];
    if (mask_null_ && IsNullSentinel(v, null_value_)) continue;
    v = v * stddevs_[feature] + means_[feature];
  }
  return result;
}

StandardScaler::State StandardScaler::GetState() const {
  AUTOCTS_CHECK(fitted_);
  State state;
  state.mask_null = mask_null_;
  state.null_value = null_value_;
  state.means = means_;
  state.stddevs = stddevs_;
  return state;
}

StandardScaler StandardScaler::FromState(const State& state) {
  AUTOCTS_CHECK(!state.means.empty());
  AUTOCTS_CHECK_EQ(state.means.size(), state.stddevs.size());
  StandardScaler scaler;
  scaler.fitted_ = true;
  scaler.mask_null_ = state.mask_null;
  scaler.null_value_ = state.null_value;
  scaler.means_ = state.means;
  scaler.stddevs_ = state.stddevs;
  return scaler;
}

double StandardScaler::mean(int64_t feature) const {
  AUTOCTS_CHECK(fitted_);
  return means_.at(feature);
}

double StandardScaler::stddev(int64_t feature) const {
  AUTOCTS_CHECK(fitted_);
  return stddevs_.at(feature);
}

}  // namespace autocts::data
