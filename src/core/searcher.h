// The joint search strategy (Section 3.4, Algorithm 1): first-order
// bi-level optimization alternating architecture-parameter (Theta) updates
// on pseudo-validation batches with weight (w) updates on pseudo-training
// batches, under exponential temperature annealing.
#ifndef AUTOCTS_CORE_SEARCHER_H_
#define AUTOCTS_CORE_SEARCHER_H_

#include <functional>
#include <string>

#include "common/cancellation.h"
#include "common/fault.h"
#include "common/metrics_registry.h"
#include "common/numerics.h"
#include "common/status.h"
#include "core/supernet.h"
#include "models/trainer.h"
#include "optim/adam.h"

namespace autocts::core {

struct SearchOptions {
  SupernetConfig supernet;

  int64_t epochs = 4;
  int64_t batch_size = 16;
  // Cap on pseudo-train batches per epoch (0 = all); bounds bench runtime.
  int64_t max_batches_per_epoch = 0;

  // Optimizer settings from Section 4.1.4.
  double theta_learning_rate = 3e-4;
  double theta_beta1 = 0.5;
  double theta_beta2 = 0.999;
  double theta_weight_decay = 1e-3;
  double w_learning_rate = 1e-3;
  double w_weight_decay = 1e-4;
  double clip_norm = 5.0;

  // Temperature annealing (Section 3.2.2): 5.0 * 0.9^epoch, floored at
  // 0.001. The "w/o temperature" ablation fixes tau = 1.
  bool use_temperature = true;
  double tau_init = 5.0;
  double tau_decay = 0.9;
  double tau_min = 0.001;

  // "w/o macro search" ablation: search a single ST-block (B = 1) and
  // replicate it into a sequential stack of `supernet.macro_blocks` at
  // derivation.
  bool use_macro = true;

  // Efficiency-aware search (the paper's Section 6 future-work direction):
  // adds cost_weight * E[operator cost] (see core/cost_model.h) to the
  // architecture loss, steering the search toward cheaper operators.
  // 0 disables (the paper's default behaviour).
  double cost_weight = 0.0;

  // Bi-level optimization order. 1 = the paper's first-order approximation
  // (Section 3.4: "We employ first-order approximation to speed-up the
  // architecture search"). 2 = the full unrolled DARTS gradient
  //   grad_Theta L_val(w - xi grad_w L_train, Theta)
  // with the Hessian-vector product approximated by central finite
  // differences of grad_Theta L_train at w +- eps*v (Liu et al., 2019).
  // Roughly 3-4x the cost per Theta step.
  int64_t bilevel_order = 1;
  // Perturbation scale for the finite-difference Hessian-vector product:
  // eps = unrolled_epsilon / ||grad_w' L_val||.
  double unrolled_epsilon = 0.01;

  // Number of candidate architectures derived from the trained supernet
  // for the evaluation stage (Supernet::DeriveTopK). 1 reproduces the
  // paper's single-architecture derivation; > 1 fills
  // SearchResult::top_genotypes with up to this many ranked candidates for
  // core::EvalScheduler to train and evaluate in parallel.
  int64_t derive_top_k = 1;

  uint64_t seed = 1;
  bool verbose = false;

  // Crash-safe checkpointing (core/search_checkpoint.h). When
  // `checkpoint_path` is non-empty, every `checkpoint_every_n_batches`
  // search batches the complete mutable search state (weights, Theta, both
  // Adam states, Rng, tau, pseudo-split orders, epoch/batch cursor) is
  // written atomically to `checkpoint_path`, with the previous generation
  // kept at "<checkpoint_path>.prev". With `resume`, Search() restores the
  // newest loadable generation whose config fingerprint matches and
  // continues from its cursor; the resumed run's genotype and final
  // validation loss are bit-identical to an uninterrupted run's. A missing,
  // corrupt, or mismatched checkpoint logs a warning and starts fresh.
  std::string checkpoint_path;
  int64_t checkpoint_every_n_batches = 0;

  bool resume = false;

  // Test hook for fault injection: invoked after every successful
  // checkpoint write with the 0-based write ordinal (counted per Search()
  // call) and the checkpoint path. tests/checkpoint_test.cc throws from
  // the hook to simulate a crash at an exact kill point; library code never
  // throws itself.
  std::function<void(int64_t ordinal, const std::string& path)>
      post_checkpoint_hook;

  // Numerical-health guard layer (common/numerics.h). Every search step the
  // loss values, pre-clip gradient norms, and post-update parameters (w and
  // Theta) are checked. With recovery enabled, a poisoned step is skipped
  // when the parameters are still clean, or the search rolls back to the
  // last-good in-memory snapshot (taken every recovery.snapshot_every_n_
  // batches healthy steps) with a learning-rate backoff on both optimizers
  // and one extra Rng draw. Without recovery, SearchWithStatus returns a
  // non-OK Status carrying the autograd-trace attribution.
  numerics::HealthConfig health;
  numerics::RecoveryOptions recovery;

  // Numeric fault-injection hook: invoked on every w update after the
  // backward pass (gradients populated) and before the gradient health
  // check, so tests can corrupt a supernet gradient or weight at an exact
  // (epoch, step) to prove detection and recovery end-to-end. Library code
  // never installs one.
  std::function<void(int64_t epoch, int64_t step, Supernet* supernet)>
      fault_injection_hook;

  // Observability (common/trace.h + core/search_metrics.h). Both layers
  // are bit-transparent: enabling them changes no genotype, loss, or
  // checkpoint trajectory bit (tests/observability_test.cc asserts this at
  // 1 and 4 threads).
  //
  // When `trace_path` is non-empty the whole search runs under the span
  // tracer inside a root "search" span; on exit the Chrome trace JSON is
  // written to `trace_path` and the per-op aggregate table to
  // "<trace_path>.ops.csv". Ignored (with the trace left untouched) when a
  // trace is already active.
  std::string trace_path;

  // When `metrics_path` is non-empty (or `metrics` is set), the search
  // records the core/search_metrics.h instrument set: a row per epoch,
  // plus a row every `metrics_every_n_batches` healthy steps (0 = epoch
  // rows only). Sinks "<metrics_path>.csv" / "<metrics_path>.jsonl" are
  // rewritten at every checkpoint and at exit. Metrics state is embedded
  // in checkpoints, so a resumed run's sinks equal an uninterrupted run's
  // up to "wall/" columns.
  std::string metrics_path;
  int64_t metrics_every_n_batches = 0;

  // Optional external registry (not owned). Lets tests and embedding code
  // read instruments/rows directly; `metrics_path` may be empty then.
  obs::MetricsRegistry* metrics = nullptr;

  // Cooperative interruption (common/cancellation.h), checked at the end of
  // every search step (after the periodic-checkpoint block, so resume
  // cursors stay on the periodic grid). On a cancelled token, an expired
  // wall `deadline`, or `step_budget` executed steps (0 = unlimited,
  // counted per process run), SearchWithStatus writes one final checkpoint
  // (when checkpointing is on) and returns kCancelled / kDeadlineExceeded.
  // A run that is never interrupted is bit-identical with or without these:
  // the checks read no search state, and the final checkpoint does not
  // advance the checkpoints metric, so a resumed run's counters match an
  // uninterrupted run's.
  const CancellationToken* cancel = nullptr;  // not owned
  Deadline deadline;                          // default: Infinite()
  int64_t step_budget = 0;

  // Retry policy for checkpoint and metrics-sink writes (common/fault.h).
  // Retries/failures are recorded in the io/ metric counters; a sink write
  // that still fails after retries degrades to a logged warning — the
  // search itself never dies of telemetry.
  fault::RetryPolicy io_retry;
};

// Preset matching the AutoSTG baseline: {1D conv, DGCN} operator set,
// micro-only search, homogeneous stacking.
SearchOptions AutoStgLiteOptions();

struct SearchResult {
  Genotype genotype;
  // Ranked candidate architectures (top_genotypes[0] == genotype), size
  // min(derive_top_k, available variants); singleton when derive_top_k is
  // 1. Feed these to core::EvalScheduler for the evaluation stage.
  std::vector<Genotype> top_genotypes;
  double search_seconds = 0.0;
  // Rough peak-memory estimate: parameters + optimizer state + one batch of
  // supernet activations, in MB (Table 7 reports search memory).
  double estimated_memory_mb = 0.0;
  int64_t supernet_parameters = 0;
  double final_validation_loss = 0.0;

  // Numerical-health outcome (see SearchOptions::recovery).
  int64_t recoveries = 0;      // snapshot rollbacks performed
  int64_t skipped_steps = 0;   // poisoned optimizer steps skipped
  std::string last_anomaly;    // "" when the search stayed healthy
};

class JointSearcher {
 public:
  explicit JointSearcher(SearchOptions options);

  // Runs Algorithm 1 on `data` (its training split is divided evenly into
  // pseudo-train and pseudo-validation, as in Section 3.4) and returns the
  // derived architecture. CHECK-fails on an unrecovered numerical anomaly;
  // callers that must survive divergence use SearchWithStatus.
  SearchResult Search(const models::PreparedData& data);

  // Like Search, but a numerical anomaly that recovery cannot (or may not)
  // handle returns a non-OK Status naming the anomaly and — when it
  // reproduces under the autograd numeric trace — the first op that
  // produced a non-finite value. Never aborts on divergence.
  StatusOr<SearchResult> SearchWithStatus(const models::PreparedData& data);

  const SearchOptions& options() const { return options_; }

 private:
  // One unrolled (second-order) Theta update: virtual SGD step on w, grad
  // of the validation loss at the unrolled weights, finite-difference
  // Hessian-vector correction, Adam step on Theta. Weights are restored to
  // their pre-call values. Returns the validation loss at the unrolled
  // weights. `monitor` observes the validation loss and the pre-clip Theta
  // gradient norm; on an anomaly (written to `anomaly`) the Theta step is
  // skipped and the weights are still restored.
  double UnrolledThetaStep(
      Supernet* supernet, optim::Adam* theta_optimizer,
      optim::Adam* weight_optimizer,
      const std::function<Variable()>& train_loss_fn,
      const std::function<Variable()>& val_loss_fn,
      numerics::HealthMonitor* monitor, numerics::Anomaly* anomaly) const;

  SearchOptions options_;
};

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_SEARCHER_H_
