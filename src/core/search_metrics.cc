#include "core/search_metrics.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/buffer_pool.h"

namespace autocts::core {

void RegisterSearchMetrics(obs::MetricsRegistry* registry) {
  registry->GetGauge(kMetricTau);
  registry->GetCounter(kMetricStepsTotal);
  registry->GetCounter(kMetricSkippedSteps);
  registry->GetCounter(kMetricRecoveries);
  registry->GetCounter(kMetricCheckpoints);
  registry->GetGauge(kMetricTrainLoss);
  registry->GetGauge(kMetricValLossStep);
  registry->GetGauge(kMetricValLossEpoch);
  registry->GetGauge(kMetricGradNormW);
  registry->GetGauge(kMetricGradNormTheta);
  registry->GetHistogram(kMetricGradNormWHist,
                         {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0});
  registry->GetGauge(kMetricAlphaEntropy);
  registry->GetGauge(kMetricBetaEntropy);
  registry->GetGauge(kMetricGammaEntropy);
  registry->GetCounter(kMetricIoRetries);
  registry->GetCounter(kMetricIoFailures);
  registry->GetGauge(kMetricBatchesPerSec);
  registry->GetGauge(kMetricElapsedSec);
  registry->GetGauge(kMetricPoolOccupancy);
  // Tensor buffer pool columns (all "wall/tensor_pool/..."): per-process
  // cumulative counters, hence wall-prefixed like the thread-pool gauge.
  RegisterBufferPoolMetrics(registry);
}

namespace {

// Entropy (nats) of softmax(logits / tau) over one row, computed with the
// usual max-subtraction so saturated logits stay finite.
double SoftmaxRowEntropy(const double* logits, int64_t n, double tau) {
  if (n <= 1) return 0.0;
  double max_scaled = logits[0] / tau;
  for (int64_t i = 1; i < n; ++i) {
    max_scaled = std::max(max_scaled, logits[i] / tau);
  }
  double z = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    z += std::exp(logits[i] / tau - max_scaled);
  }
  double entropy = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double p = std::exp(logits[i] / tau - max_scaled) / z;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  return entropy;
}

struct EntropyAccumulator {
  double sum = 0.0;
  int64_t rows = 0;
  double Mean() const {
    return rows > 0 ? sum / static_cast<double>(rows) : 0.0;
  }
};

}  // namespace

ArchEntropy ComputeArchEntropy(const Supernet& supernet, double tau) {
  EntropyAccumulator alpha;
  EntropyAccumulator beta;
  EntropyAccumulator gamma;
  for (const auto& [name, parameter] : supernet.NamedArchParameters()) {
    const Tensor& value = parameter.value();
    if (name.find(".alpha") != std::string::npos) {
      // [num_pairs, |O|] logits; each row is a temperature-τ mixture.
      const int64_t rows = value.dim(0);
      const int64_t cols = value.dim(1);
      for (int64_t r = 0; r < rows; ++r) {
        alpha.sum += SoftmaxRowEntropy(value.data() + r * cols, cols, tau);
        alpha.rows += 1;
      }
    } else if (name.find(".beta") != std::string::npos) {
      // Flat logit vector, plain (τ=1) softmax.
      beta.sum += SoftmaxRowEntropy(value.data(), value.size(), 1.0);
      beta.rows += 1;
    } else if (name.rfind("gamma", 0) == 0) {
      gamma.sum += SoftmaxRowEntropy(value.data(), value.size(), 1.0);
      gamma.rows += 1;
    }
  }
  ArchEntropy entropy;
  entropy.alpha = alpha.Mean();
  entropy.beta = beta.Mean();
  entropy.gamma = gamma.Mean();
  return entropy;
}

}  // namespace autocts::core
