#include "core/macro_only.h"

#include "common/stopwatch.h"
#include "optim/adam.h"

namespace autocts::core {
namespace {

// Supernet over human-designed blocks: per slot a softmax mixture over the
// four block kinds, gamma-weighted macro inputs, merged outputs.
class MacroOnlySupernet : public models::ForecastingModel {
 public:
  MacroOnlySupernet(int64_t num_blocks, const models::ModelContext& context)
      : num_blocks_(num_blocks),
        rng_(context.seed),
        adaptive_(context.adjacency.defined()
                      ? nullptr
                      : std::make_shared<graph::AdaptiveAdjacency>(
                            context.num_nodes, 8, &rng_)),
        embedding_(context.in_features, context.hidden_dim, &rng_),
        head_(context.hidden_dim, context.output_length, &rng_) {
    const ops::OpContext op_context =
        models::MakeOpContext(context, adaptive_, &rng_);
    const std::vector<std::string> kinds = models::HumanDesignedBlockKinds();
    for (int64_t b = 0; b < num_blocks_; ++b) {
      std::vector<std::unique_ptr<models::StBlock>> candidates;
      for (const std::string& kind : kinds) {
        candidates.push_back(models::CreateStBlock(kind, op_context));
        RegisterModule("slot" + std::to_string(b) + "_" + kind,
                       candidates.back().get());
      }
      slots_.push_back(std::move(candidates));
      kind_logits_.emplace_back(
          Tensor::Randn({static_cast<int64_t>(kinds.size())}, &rng_, 0.0,
                        1e-3),
          /*requires_grad=*/true);
      gammas_.emplace_back(Tensor::Randn({b + 1}, &rng_, 0.0, 1e-3),
                           /*requires_grad=*/true);
    }
    RegisterModule("embedding", &embedding_);
    RegisterModule("head", &head_);
    if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
  }

  Variable Forward(const Variable& x) override {
    const Variable embedded = embedding_.Forward(x);
    std::vector<Variable> outputs;
    outputs.push_back(embedded);
    Variable merged;
    for (int64_t b = 0; b < num_blocks_; ++b) {
      const Variable gamma_weights = ag::Softmax(gammas_[b], 0);
      Variable block_input;
      for (int64_t i = 0; i <= b; ++i) {
        const Variable term =
            ag::Mul(outputs[i], ag::Slice(gamma_weights, 0, i, 1));
        block_input = i == 0 ? term : ag::Add(block_input, term);
      }
      const Variable kind_weights = ag::Softmax(kind_logits_[b], 0);
      Variable block_output;
      for (size_t k = 0; k < slots_[b].size(); ++k) {
        const Variable term = ag::Mul(slots_[b][k]->Forward(block_input),
                                      ag::Slice(kind_weights, 0, k, 1));
        block_output = k == 0 ? term : ag::Add(block_output, term);
      }
      outputs.push_back(block_output);
      merged = b == 0 ? block_output : ag::Add(merged, block_output);
    }
    return head_.Forward(merged, x);
  }

  std::string name() const override { return "MacroOnly-Supernet"; }

  std::vector<Variable> ArchParameters() const {
    std::vector<Variable> parameters = kind_logits_;
    parameters.insert(parameters.end(), gammas_.begin(), gammas_.end());
    return parameters;
  }

  MacroOnlyGenotype Derive() const {
    MacroOnlyGenotype genotype;
    const std::vector<std::string> kinds = models::HumanDesignedBlockKinds();
    for (int64_t b = 0; b < num_blocks_; ++b) {
      const Tensor logits = kind_logits_[b].value();
      int64_t best = 0;
      for (int64_t k = 1; k < logits.size(); ++k) {
        if (logits.data()[k] > logits.data()[best]) best = k;
      }
      genotype.block_kinds.push_back(kinds[best]);
      const Tensor gamma = gammas_[b].value();
      int64_t best_input = 0;
      for (int64_t i = 1; i <= b; ++i) {
        if (gamma.data()[i] > gamma.data()[best_input]) best_input = i;
      }
      genotype.block_inputs.push_back(best_input);
    }
    return genotype;
  }

 private:
  int64_t num_blocks_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  std::vector<std::vector<std::unique_ptr<models::StBlock>>> slots_;
  std::vector<Variable> kind_logits_;
  std::vector<Variable> gammas_;
  models::OutputHead head_;
};

// Discrete macro-only model for evaluation.
class MacroOnlyModel : public models::ForecastingModel {
 public:
  MacroOnlyModel(const MacroOnlyGenotype& genotype,
                 const models::ModelContext& context)
      : genotype_(genotype),
        rng_(context.seed),
        adaptive_(context.adjacency.defined()
                      ? nullptr
                      : std::make_shared<graph::AdaptiveAdjacency>(
                            context.num_nodes, 8, &rng_)),
        embedding_(context.in_features, context.hidden_dim, &rng_),
        head_(context.hidden_dim, context.output_length, &rng_) {
    const ops::OpContext op_context =
        models::MakeOpContext(context, adaptive_, &rng_);
    for (size_t b = 0; b < genotype_.block_kinds.size(); ++b) {
      blocks_.push_back(
          models::CreateStBlock(genotype_.block_kinds[b], op_context));
      RegisterModule("block" + std::to_string(b), blocks_.back().get());
    }
    RegisterModule("embedding", &embedding_);
    RegisterModule("head", &head_);
    if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
  }

  Variable Forward(const Variable& x) override {
    const Variable embedded = embedding_.Forward(x);
    std::vector<Variable> outputs;
    outputs.push_back(embedded);
    Variable merged;
    for (size_t b = 0; b < blocks_.size(); ++b) {
      const Variable block_output =
          blocks_[b]->Forward(outputs[genotype_.block_inputs[b]]);
      outputs.push_back(block_output);
      merged = b == 0 ? block_output : ag::Add(merged, block_output);
    }
    return head_.Forward(merged, x);
  }

  std::string name() const override { return "MacroOnly"; }

 private:
  MacroOnlyGenotype genotype_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  std::vector<std::unique_ptr<models::StBlock>> blocks_;
  models::OutputHead head_;
};

}  // namespace

MacroOnlyResult SearchMacroOnly(const models::PreparedData& data,
                                const SearchOptions& options) {
  Stopwatch timer;
  Rng rng(options.seed);

  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = data.window.input_length;
  context.output_length = data.window.output_length;
  context.hidden_dim = options.supernet.hidden_dim;
  context.adjacency = data.adjacency;
  context.seed = rng.Next();
  MacroOnlySupernet supernet(options.supernet.macro_blocks, context);

  optim::Adam weight_optimizer(supernet.Parameters(),
                               {.learning_rate = options.w_learning_rate,
                                .weight_decay = options.w_weight_decay});
  optim::Adam theta_optimizer(supernet.ArchParameters(),
                              {.learning_rate = options.theta_learning_rate,
                               .beta1 = options.theta_beta1,
                               .beta2 = options.theta_beta2,
                               .weight_decay = options.theta_weight_decay});

  const int64_t total = data.train().NumSamples();
  std::vector<int64_t> order(total);
  for (int64_t i = 0; i < total; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<int64_t> pseudo_train(order.begin(), order.begin() + total / 2);
  std::vector<int64_t> pseudo_val(order.begin() + total / 2, order.end());

  MacroOnlyResult result;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&pseudo_train);
    rng.Shuffle(&pseudo_val);
    double val_loss_sum = 0.0;
    int64_t steps = 0;
    const int64_t max_steps =
        options.max_batches_per_epoch > 0
            ? options.max_batches_per_epoch
            : (total / 2 + options.batch_size - 1) / options.batch_size;
    for (int64_t step = 0; step < max_steps; ++step) {
      auto take_batch = [&](const std::vector<int64_t>& pool) {
        std::vector<int64_t> batch;
        for (int64_t k = 0; k < options.batch_size; ++k) {
          batch.push_back(pool[(step * options.batch_size + k) %
                               static_cast<int64_t>(pool.size())]);
        }
        return batch;
      };
      {
        Tensor x, y;
        data.train().GetBatch(take_batch(pseudo_val), &x, &y);
        Variable loss = ag::L1Loss(supernet.Forward(ag::Constant(x)),
                                         ag::Constant(y));
        theta_optimizer.ZeroGrad();
        weight_optimizer.ZeroGrad();
        loss.Backward();
        theta_optimizer.Step();
        val_loss_sum += loss.value().item();
      }
      {
        Tensor x, y;
        data.train().GetBatch(take_batch(pseudo_train), &x, &y);
        Variable loss = ag::L1Loss(supernet.Forward(ag::Constant(x)),
                                         ag::Constant(y));
        weight_optimizer.ZeroGrad();
        theta_optimizer.ZeroGrad();
        loss.Backward();
        optim::ClipGradNorm(supernet.Parameters(), options.clip_norm);
        weight_optimizer.Step();
      }
      ++steps;
    }
    result.final_validation_loss =
        steps > 0 ? val_loss_sum / static_cast<double>(steps) : 0.0;
  }
  result.genotype = supernet.Derive();
  result.search_seconds = timer.Seconds();
  return result;
}

std::unique_ptr<models::ForecastingModel> BuildMacroOnlyModel(
    const MacroOnlyGenotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, uint64_t seed) {
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = data.window.input_length;
  context.output_length = data.window.output_length;
  context.hidden_dim = hidden_dim;
  context.adjacency = data.adjacency;
  context.seed = seed;
  return std::make_unique<MacroOnlyModel>(genotype, context);
}

}  // namespace autocts::core
