// Operator sets for the micro search space (Section 3.2.3).
//
// The paper's two selection principles yield the compact set
//   O = {GDCC, INF-T, DGCN, INF-S, Zero, Identity}  (|O| = 6),
// while the "w/o design principles" ablation searches over ALL operators of
// Table 1 plus the two non-parametric ones (|O| = 12).
#ifndef AUTOCTS_CORE_OPERATOR_SET_H_
#define AUTOCTS_CORE_OPERATOR_SET_H_

#include <string>
#include <vector>

namespace autocts::core {

struct OperatorSet {
  std::string name;
  std::vector<std::string> op_names;  // keys into ops::OpRegistry

  int64_t size() const { return static_cast<int64_t>(op_names.size()); }
};

// The compact 6-operator set chosen by the paper's two principles.
OperatorSet CompactOperatorSet();

// All Table 1 operators + zero + identity ("w/o design principles").
OperatorSet FullOperatorSet();

// The AutoSTG search space: only 1D convolution and diffusion GCN
// (plus zero/identity), per the paper's description of that baseline.
OperatorSet AutoStgOperatorSet();

// True for operators with trainable parameters (those get the
// ReLU - operator - BN wrapper of Section 4.1.4).
bool IsParametricOp(const std::string& op_name);

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_OPERATOR_SET_H_
