// Architecture evaluation stage (Section 3.4): the derived architecture is
// retrained from scratch on the full training+validation data and reported
// on the test set.
#ifndef AUTOCTS_CORE_EVALUATOR_H_
#define AUTOCTS_CORE_EVALUATOR_H_

#include <memory>

#include "core/derived_model.h"
#include "models/trainer.h"

namespace autocts::core {

// Builds a fresh DerivedModel for `genotype` sized to `data`.
std::unique_ptr<DerivedModel> BuildDerivedModel(
    const Genotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, uint64_t seed);

// Trains the derived model from scratch and evaluates on the test split.
// CHECK-fails on an unrecovered numerical anomaly; callers that must
// survive divergence use the Status-returning variant below.
models::EvalResult EvaluateGenotype(const Genotype& genotype,
                                    const models::PreparedData& data,
                                    int64_t hidden_dim,
                                    const models::TrainConfig& config);

// Like EvaluateGenotype, but routes numerical anomalies through
// models::TrainAndEvaluateWithStatus instead of aborting.
StatusOr<models::EvalResult> EvaluateGenotypeWithStatus(
    const Genotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, const models::TrainConfig& config);

// A trained derived model together with its evaluation — what the serving
// layer exports into a ModelArtifact (EvaluateGenotype* discard the model).
struct TrainedGenotype {
  std::unique_ptr<DerivedModel> model;
  models::EvalResult eval;
};

// Trains like EvaluateGenotypeWithStatus but returns the trained model
// (in eval mode) alongside the metrics instead of discarding it.
StatusOr<TrainedGenotype> TrainGenotypeWithStatus(
    const Genotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, const models::TrainConfig& config);

// Result of the full search + evaluate pipeline (used by the benches).
struct AutoCtsResult {
  Genotype genotype;
  models::EvalResult eval;
  double search_seconds = 0.0;
  double estimated_memory_mb = 0.0;
};

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_EVALUATOR_H_
