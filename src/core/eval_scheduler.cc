#include "core/eval_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/cancellation.h"
#include "common/fault.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/text_codec.h"
#include "common/trace.h"
#include "core/evaluator.h"

namespace autocts::core {
namespace {

constexpr char kCheckpointFormat[] = "autocts-eval-checkpoint";
constexpr char kCandidateSetFormat[] = "autocts-candidate-set";
constexpr int64_t kCandidateSetVersion = 1;
// Shared with core/search_checkpoint.cc: the trailer is the last line of the
// document and checksums every preceding byte.
constexpr char kCrcKey[] = "crc32 = ";

// SplitMix64 step (Vigna 2015), the same generator common/random.cc uses to
// expand seeds. Local copy: random.cc keeps it in an anonymous namespace.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Status/anomaly messages travel on one "key = value" line; embedded
// newlines would tear the record.
std::string SanitizeLine(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

void AppendCrcTrailer(std::string* payload) {
  char trailer[24];
  std::snprintf(trailer, sizeof(trailer), "%s%08x\n", kCrcKey,
                Crc32(*payload));
  payload->append(trailer);
}

// Locates and verifies the crc32 trailer; returns the preceding payload.
StatusOr<std::string> StripAndVerifyCrc(const std::string& text) {
  const size_t pos = text.rfind(kCrcKey);
  if (pos == std::string::npos) {
    return Status::InvalidArgument("missing crc32 trailer");
  }
  if (pos != 0 && text[pos - 1] != '\n') {
    return Status::InvalidArgument("crc32 trailer not on its own line");
  }
  std::string digits = text.substr(pos + std::strlen(kCrcKey));
  if (!digits.empty() && digits.back() == '\n') digits.pop_back();
  if (digits.size() != 8 ||
      digits.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::InvalidArgument("malformed crc32 trailer");
  }
  const uint32_t expected =
      static_cast<uint32_t>(std::strtoul(digits.c_str(), nullptr, 16));
  std::string payload = text.substr(0, pos);
  const uint32_t actual = Crc32(payload);
  if (expected != actual) {
    char message[64];
    std::snprintf(message, sizeof(message),
                  "crc32 mismatch: expected %08x, computed %08x", expected,
                  actual);
    return Status::InvalidArgument(message);
  }
  return payload;
}

// One completed candidate on a single line, every double as an exact
// hex-float image:
//   <index> <epochs_run> <parameter_count> <recoveries> <skipped_steps>
//   <mae> <rmse> <mape> <rrse> <corr> <final_train_loss>
//   <train_seconds_per_epoch> <inference_ms_per_window>
//   <num_horizons> [<mae> <rmse> <mape>]*
std::string EncodeResultRecord(int64_t index, const models::EvalResult& r) {
  std::ostringstream out;
  out << index << " " << r.epochs_run << " " << r.parameter_count << " "
      << r.recoveries << " " << r.skipped_steps << " "
      << FormatExactDouble(r.average.mae) << " "
      << FormatExactDouble(r.average.rmse) << " "
      << FormatExactDouble(r.average.mape) << " "
      << FormatExactDouble(r.rrse) << " " << FormatExactDouble(r.corr) << " "
      << FormatExactDouble(r.final_train_loss) << " "
      << FormatExactDouble(r.train_seconds_per_epoch) << " "
      << FormatExactDouble(r.inference_ms_per_window) << " "
      << r.per_horizon.size();
  for (const metrics::PointMetrics& h : r.per_horizon) {
    out << " " << FormatExactDouble(h.mae) << " "
        << FormatExactDouble(h.rmse) << " " << FormatExactDouble(h.mape);
  }
  return out.str();
}

Status ParseResultRecord(const std::string& text, int64_t* index,
                         models::EvalResult* result) {
  std::istringstream in(text);
  const auto fail = [&text]() {
    return Status::InvalidArgument("malformed result record: " + text);
  };
  const auto read_int = [&in](int64_t* value) -> bool {
    return static_cast<bool>(in >> *value);
  };
  const auto read_double = [&in](double* value) -> bool {
    std::string token;
    if (!(in >> token)) return false;
    return ParseExactDouble(token, value);
  };
  if (!read_int(index) || !read_int(&result->epochs_run) ||
      !read_int(&result->parameter_count) ||
      !read_int(&result->recoveries) || !read_int(&result->skipped_steps) ||
      !read_double(&result->average.mae) ||
      !read_double(&result->average.rmse) ||
      !read_double(&result->average.mape) || !read_double(&result->rrse) ||
      !read_double(&result->corr) ||
      !read_double(&result->final_train_loss) ||
      !read_double(&result->train_seconds_per_epoch) ||
      !read_double(&result->inference_ms_per_window)) {
    return fail();
  }
  int64_t horizons = 0;
  if (!read_int(&horizons) || horizons < 0 || horizons > (1 << 20)) {
    return fail();
  }
  result->per_horizon.resize(horizons);
  for (int64_t h = 0; h < horizons; ++h) {
    if (!read_double(&result->per_horizon[h].mae) ||
        !read_double(&result->per_horizon[h].rmse) ||
        !read_double(&result->per_horizon[h].mape)) {
      return fail();
    }
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument("trailing tokens in result record: " +
                                   text);
  }
  return Status::Ok();
}

// Failure records persist their Status code as a message prefix, so a
// resumed run reconstructs the same code (and therefore the same
// eval/deadline_exceeded count) a fresh run reported. An unprefixed message
// decodes as kInternal, which keeps pre-code checkpoints loadable.
constexpr char kDeadlinePrefix[] = "DEADLINE_EXCEEDED: ";

std::string EncodeFailureMessage(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    return kDeadlinePrefix + status.message();
  }
  return status.message();
}

Status DecodeFailureMessage(const std::string& message) {
  if (message.rfind(kDeadlinePrefix, 0) == 0) {
    return Status::DeadlineExceeded(
        message.substr(std::strlen(kDeadlinePrefix)));
  }
  return Status::Internal(message);
}

// "<index> <free text>" records (anomaly attributions, failure messages).
Status ParseIndexedText(const std::string& record, int64_t* index,
                        std::string* text) {
  std::istringstream in(record);
  if (!(in >> *index)) {
    return Status::InvalidArgument("malformed record: " + record);
  }
  std::getline(in, *text);
  *text = StripWhitespace(*text);
  return Status::Ok();
}

}  // namespace

// --------------------------------------------------------------------------
// RNG stream splitting.
// --------------------------------------------------------------------------

uint64_t CandidateSeed(uint64_t base_seed, int64_t index) {
  // Injective in `index` for a fixed base seed (xor with a distinct word,
  // then the bijective SplitMix64 output function), and never a function of
  // scheduling. Candidate 0 still gets a seed different from the base, so
  // evaluation training does not replay the search's RNG stream.
  uint64_t state =
      base_seed ^ (static_cast<uint64_t>(index) * 0xd1342543de82ef95ULL);
  return SplitMix64Next(&state);
}

// --------------------------------------------------------------------------
// Candidate-set codec.
// --------------------------------------------------------------------------

std::string EncodeCandidateSet(const std::vector<Genotype>& candidates) {
  AUTOCTS_CHECK(!candidates.empty());
  std::ostringstream out;
  out << "format = " << kCandidateSetFormat << "\n";
  out << "version = " << kCandidateSetVersion << "\n";
  out << "count = " << candidates.size() << "\n";
  for (size_t i = 0; i < candidates.size(); ++i) {
    out << "candidate = " << i << "\n" << candidates[i].ToText();
  }
  return out.str();
}

StatusOr<std::vector<Genotype>> DecodeCandidateSet(const std::string& text) {
  // Split into a header (everything before the first "candidate" marker)
  // and one text chunk per candidate.
  std::string header;
  std::vector<std::pair<int64_t, std::string>> chunks;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const std::string stripped = StripWhitespace(line);
    std::string key;
    if (!stripped.empty() && stripped[0] != '#') {
      const size_t eq = stripped.find('=');
      if (eq != std::string::npos) {
        key = StripWhitespace(stripped.substr(0, eq));
      }
    }
    if (key == "candidate") {
      const std::string value = StripWhitespace(
          stripped.substr(stripped.find('=') + 1));
      char* end = nullptr;
      const int64_t index = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("malformed candidate marker: " +
                                       stripped);
      }
      chunks.emplace_back(index, std::string());
      continue;
    }
    std::string* sink = chunks.empty() ? &header : &chunks.back().second;
    sink->append(line);
    sink->push_back('\n');
  }

  StatusOr<TextReader> reader = TextReader::Parse(header);
  if (!reader.ok()) return reader.status();
  const StatusOr<std::string> format = reader.value().Get("format");
  if (!format.ok()) {
    // Bare single-genotype document (e.g. a plain `search --out` file).
    if (!chunks.empty()) {
      return Status::InvalidArgument(
          "candidate markers without a candidate-set format header");
    }
    StatusOr<Genotype> genotype = Genotype::FromText(text);
    if (!genotype.ok()) return genotype.status();
    return std::vector<Genotype>{std::move(genotype).value()};
  }
  if (format.value() != kCandidateSetFormat) {
    return Status::InvalidArgument("not a candidate set: format = " +
                                   format.value());
  }
  const StatusOr<int64_t> version = reader.value().GetInt("version");
  if (!version.ok()) return version.status();
  if (version.value() != kCandidateSetVersion) {
    return Status::InvalidArgument(
        "unsupported candidate-set version " +
        std::to_string(version.value()) + " (expected " +
        std::to_string(kCandidateSetVersion) + ")");
  }
  const StatusOr<int64_t> count = reader.value().GetInt("count");
  if (!count.ok()) return count.status();
  if (count.value() <= 0 ||
      count.value() != static_cast<int64_t>(chunks.size())) {
    return Status::InvalidArgument(
        "candidate count mismatch: header says " +
        std::to_string(count.value()) + ", found " +
        std::to_string(chunks.size()));
  }
  std::vector<Genotype> candidates;
  candidates.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].first != static_cast<int64_t>(i)) {
      return Status::InvalidArgument("candidate indices out of order");
    }
    StatusOr<Genotype> genotype = Genotype::FromText(chunks[i].second);
    if (!genotype.ok()) {
      return Status::InvalidArgument("candidate " + std::to_string(i) + ": " +
                                     genotype.status().message());
    }
    candidates.push_back(std::move(genotype).value());
  }
  return candidates;
}

Status SaveCandidateSet(const std::vector<Genotype>& candidates,
                        const std::string& path) {
  return AtomicWriteFile(path, EncodeCandidateSet(candidates),
                         /*keep_previous=*/false);
}

StatusOr<std::vector<Genotype>> LoadCandidateSet(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return DecodeCandidateSet(text.value());
}

// --------------------------------------------------------------------------
// Metrics.
// --------------------------------------------------------------------------

void RegisterEvalMetrics(obs::MetricsRegistry* registry) {
  AUTOCTS_CHECK(registry != nullptr);
  registry->GetCounter(kEvalMetricCandidatesTotal);
  registry->GetCounter(kEvalMetricCandidatesDone);
  registry->GetCounter(kEvalMetricCandidatesFailed);
  registry->GetCounter(kEvalMetricCandidatesResumed);
  registry->GetGauge(kEvalMetricTrainLoss);
  registry->GetGauge(kEvalMetricMae);
  registry->GetGauge(kEvalMetricRmse);
  registry->GetGauge(kEvalMetricStatusOk);
  registry->GetCounter(kEvalMetricDeadlineExceeded);
  registry->GetCounter(kEvalMetricIoRetries);
  registry->GetCounter(kEvalMetricIoFailures);
  registry->GetGauge(kEvalMetricWorkers);
  registry->GetGauge(kEvalMetricQueueDepth);
  registry->GetGauge(kEvalMetricCandidateSec);
  registry->GetGauge(kEvalMetricOccupancy);
  registry->GetGauge(kEvalMetricBatchSec);
}

// --------------------------------------------------------------------------
// Eval checkpoint codec.
// --------------------------------------------------------------------------

std::string EvalConfigFingerprint(const std::vector<Genotype>& candidates,
                                  const models::PreparedData& data,
                                  int64_t hidden_dim,
                                  const models::TrainConfig& config) {
  std::string genotype_text;
  for (const Genotype& genotype : candidates) {
    genotype_text += genotype.ToText();
  }
  char genotype_crc[12];
  std::snprintf(genotype_crc, sizeof(genotype_crc), "%08x",
                Crc32(genotype_text));
  std::ostringstream out;
  out << "v" << EvalCheckpoint::kFormatVersion
      << " candidates=" << candidates.size() << "/" << genotype_crc
      << " data=" << data.num_nodes << "x" << data.in_features << "/"
      << data.target_feature << " window=" << data.window.input_length << "/"
      << data.window.output_length << "/" << data.window.horizon
      << " splits=" << data.train().NumSamples() << "/"
      << data.validation().NumSamples() << "/" << data.test().NumSamples()
      << " zero_missing=" << data.zero_is_missing
      << " hidden=" << hidden_dim << " seed=" << config.seed
      << " epochs=" << config.epochs << " batch=" << config.batch_size
      << " lr=" << FormatExactDouble(config.learning_rate)
      << " wd=" << FormatExactDouble(config.weight_decay)
      << " clip=" << FormatExactDouble(config.clip_norm)
      << " max_batches=" << config.max_batches_per_epoch
      << " patience=" << config.early_stop_patience
      << " restore_best=" << config.restore_best_weights
      << " health=" << config.health.loss_window << ","
      << FormatExactDouble(config.health.loss_spike_factor) << ","
      << config.health.min_loss_samples << ","
      << FormatExactDouble(config.health.max_grad_norm)
      << " recovery=" << config.recovery.enabled << ","
      << config.recovery.max_recoveries << ","
      << config.recovery.max_consecutive_skips << ","
      << FormatExactDouble(config.recovery.lr_backoff);
  // Deliberately excluded: worker count (any value is bit-identical) and
  // observability paths (bit-transparent).
  return out.str();
}

std::string EncodeEvalCheckpoint(const EvalCheckpoint& checkpoint) {
  std::ostringstream out;
  out << "format = " << kCheckpointFormat << "\n";
  out << "version = " << EvalCheckpoint::kFormatVersion << "\n";
  out << "config = " << checkpoint.config_fingerprint << "\n";
  out << "candidates = " << checkpoint.candidate_count << "\n";
  out << "completed = " << checkpoint.completed.size() << "\n";
  out << "failures = " << checkpoint.failed.size() << "\n";
  for (const auto& [index, result] : checkpoint.completed) {
    out << "result = " << EncodeResultRecord(index, result) << "\n";
    if (!result.last_anomaly.empty()) {
      out << "anomaly = " << index << " " << SanitizeLine(result.last_anomaly)
          << "\n";
    }
  }
  for (const auto& [index, message] : checkpoint.failed) {
    out << "failed = " << index << " " << SanitizeLine(message) << "\n";
  }
  std::string payload = out.str();
  AppendCrcTrailer(&payload);
  return payload;
}

StatusOr<EvalCheckpoint> DecodeEvalCheckpoint(const std::string& text) {
  StatusOr<std::string> payload = StripAndVerifyCrc(text);
  if (!payload.ok()) return payload.status();
  StatusOr<TextReader> reader = TextReader::Parse(payload.value());
  if (!reader.ok()) return reader.status();

  const StatusOr<std::string> format = reader.value().Get("format");
  if (!format.ok()) return format.status();
  if (format.value() != kCheckpointFormat) {
    return Status::InvalidArgument("not an eval checkpoint: format = " +
                                   format.value());
  }
  const StatusOr<int64_t> version = reader.value().GetInt("version");
  if (!version.ok()) return version.status();
  if (version.value() != EvalCheckpoint::kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported eval-checkpoint version " +
        std::to_string(version.value()) + " (expected " +
        std::to_string(EvalCheckpoint::kFormatVersion) + ")");
  }

  EvalCheckpoint checkpoint;
  const StatusOr<std::string> config = reader.value().Get("config");
  if (!config.ok()) return config.status();
  checkpoint.config_fingerprint = config.value();
  const StatusOr<int64_t> count = reader.value().GetInt("candidates");
  if (!count.ok()) return count.status();
  if (count.value() <= 0) {
    return Status::InvalidArgument("non-positive candidate count");
  }
  checkpoint.candidate_count = count.value();
  const StatusOr<int64_t> completed = reader.value().GetInt("completed");
  const StatusOr<int64_t> failures = reader.value().GetInt("failures");
  if (!completed.ok()) return completed.status();
  if (!failures.ok()) return failures.status();

  const auto check_index = [&checkpoint](int64_t index) {
    return index >= 0 && index < checkpoint.candidate_count;
  };

  for (const std::string& record : reader.value().GetAll("result")) {
    int64_t index = -1;
    models::EvalResult result;
    Status parsed = ParseResultRecord(record, &index, &result);
    if (!parsed.ok()) return parsed;
    if (!check_index(index)) {
      return Status::InvalidArgument("result index out of range: " +
                                     std::to_string(index));
    }
    if (!checkpoint.completed.empty() &&
        index <= checkpoint.completed.back().first) {
      return Status::InvalidArgument("result records not strictly ascending");
    }
    checkpoint.completed.emplace_back(index, std::move(result));
  }
  if (static_cast<int64_t>(checkpoint.completed.size()) != completed.value()) {
    return Status::InvalidArgument("completed count mismatch");
  }

  for (const std::string& record : reader.value().GetAll("anomaly")) {
    int64_t index = -1;
    std::string message;
    Status parsed = ParseIndexedText(record, &index, &message);
    if (!parsed.ok()) return parsed;
    const auto it = std::find_if(
        checkpoint.completed.begin(), checkpoint.completed.end(),
        [index](const auto& entry) { return entry.first == index; });
    if (it == checkpoint.completed.end()) {
      return Status::InvalidArgument(
          "anomaly record without a matching result: " + record);
    }
    it->second.last_anomaly = message;
  }

  for (const std::string& record : reader.value().GetAll("failed")) {
    int64_t index = -1;
    std::string message;
    Status parsed = ParseIndexedText(record, &index, &message);
    if (!parsed.ok()) return parsed;
    if (!check_index(index)) {
      return Status::InvalidArgument("failure index out of range: " +
                                     std::to_string(index));
    }
    if (!checkpoint.failed.empty() &&
        index <= checkpoint.failed.back().first) {
      return Status::InvalidArgument(
          "failure records not strictly ascending");
    }
    const bool also_completed = std::any_of(
        checkpoint.completed.begin(), checkpoint.completed.end(),
        [index](const auto& entry) { return entry.first == index; });
    if (also_completed) {
      return Status::InvalidArgument("candidate " + std::to_string(index) +
                                     " both completed and failed");
    }
    checkpoint.failed.emplace_back(index, std::move(message));
  }
  if (static_cast<int64_t>(checkpoint.failed.size()) != failures.value()) {
    return Status::InvalidArgument("failure count mismatch");
  }
  return checkpoint;
}

Status SaveEvalCheckpoint(const EvalCheckpoint& checkpoint,
                          const std::string& path) {
  return AtomicWriteFile(path, EncodeEvalCheckpoint(checkpoint));
}

StatusOr<EvalCheckpoint> LoadEvalCheckpoint(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return DecodeEvalCheckpoint(text.value());
}

StatusOr<EvalCheckpoint> LoadEvalCheckpointOrPrev(const std::string& path,
                                                  bool* used_prev) {
  if (used_prev != nullptr) *used_prev = false;
  StatusOr<EvalCheckpoint> primary = LoadEvalCheckpoint(path);
  if (primary.ok()) return primary;
  const std::string prev_path = path + ".prev";
  if (!FileExists(prev_path)) return primary.status();
  StatusOr<EvalCheckpoint> previous = LoadEvalCheckpoint(prev_path);
  if (!previous.ok()) {
    return Status(primary.status().code(),
                  primary.status().message() +
                      "; fallback also failed: " + previous.status().message());
  }
  if (used_prev != nullptr) *used_prev = true;
  return previous;
}

// --------------------------------------------------------------------------
// The scheduler.
// --------------------------------------------------------------------------

EvalScheduler::EvalScheduler(EvalSchedulerOptions options)
    : options_(std::move(options)) {
  AUTOCTS_CHECK_GE(options_.hidden_dim, 1);
  // Per-candidate observability belongs to the scheduler (workers must not
  // share the driver's registry or the global tracer session).
  AUTOCTS_CHECK(options_.train.metrics == nullptr)
      << "set EvalSchedulerOptions::metrics, not train.metrics";
  AUTOCTS_CHECK(options_.train.metrics_path.empty())
      << "set EvalSchedulerOptions::metrics_path, not train.metrics_path";
  AUTOCTS_CHECK(options_.train.trace_path.empty())
      << "per-candidate trace paths are not supported";
}

StatusOr<EvalBatchResult> EvalScheduler::Evaluate(
    const std::vector<Genotype>& candidates,
    const models::PreparedData& data) {
  const int64_t count = static_cast<int64_t>(candidates.size());
  if (count == 0) {
    return Status::InvalidArgument("no candidates to evaluate");
  }
  for (int64_t i = 0; i < count; ++i) {
    Status valid = candidates[i].Validate();
    if (!valid.ok()) {
      return Status::InvalidArgument("candidate " + std::to_string(i) +
                                     " invalid: " + valid.message());
    }
  }
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return options_.cancel->ToStatus("evaluation cancelled before start");
  }

  std::unique_ptr<obs::MetricsRegistry> owned_registry;
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr && !options_.metrics_path.empty()) {
    owned_registry = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry.get();
  }
  if (registry != nullptr) RegisterEvalMetrics(registry);

  const std::string fingerprint =
      EvalConfigFingerprint(candidates, data, options_.hidden_dim,
                            options_.train);

  EvalBatchResult batch;
  batch.candidates.resize(count);
  std::vector<bool> done(count, false);

  EvalCheckpoint checkpoint;
  checkpoint.config_fingerprint = fingerprint;
  checkpoint.candidate_count = count;

  // ---- Resume ----
  if (!options_.checkpoint_path.empty() &&
      (FileExists(options_.checkpoint_path) ||
       FileExists(options_.checkpoint_path + ".prev"))) {
    bool used_prev = false;
    StatusOr<EvalCheckpoint> loaded =
        LoadEvalCheckpointOrPrev(options_.checkpoint_path, &used_prev);
    if (!loaded.ok()) {
      AUTOCTS_LOG(WARNING) << "eval checkpoint at "
                           << options_.checkpoint_path << " unusable ("
                           << loaded.status().message()
                           << "); starting fresh";
    } else if (loaded.value().config_fingerprint != fingerprint ||
               loaded.value().candidate_count != count) {
      AUTOCTS_LOG(WARNING) << "eval checkpoint at "
                           << options_.checkpoint_path
                           << " fingerprints a different batch; "
                              "starting fresh";
    } else {
      checkpoint = std::move(loaded).value();
      for (const auto& [index, result] : checkpoint.completed) {
        CandidateOutcome& outcome = batch.candidates[index];
        outcome.result = result;
        outcome.resumed = true;
        done[index] = true;
        ++batch.resumed;
      }
      for (const auto& [index, message] : checkpoint.failed) {
        CandidateOutcome& outcome = batch.candidates[index];
        outcome.status = DecodeFailureMessage(message);
        outcome.resumed = true;
        done[index] = true;
        ++batch.resumed;
        ++batch.failed;
      }
      if (options_.verbose || used_prev) {
        AUTOCTS_LOG(INFO) << "resumed eval batch: " << batch.resumed << "/"
                          << count << " candidates from "
                          << options_.checkpoint_path
                          << (used_prev ? " (.prev generation)" : "");
      }
    }
  }

  std::vector<int64_t> pending;
  for (int64_t i = 0; i < count; ++i) {
    if (!done[i]) pending.push_back(i);
  }
  const int64_t workers = std::max<int64_t>(
      1, std::min<int64_t>(options_.workers,
                           static_cast<int64_t>(pending.size())));

  // ---- Driver-side metrics state ----
  obs::Counter* total_counter = nullptr;
  obs::Counter* done_counter = nullptr;
  obs::Counter* failed_counter = nullptr;
  obs::Counter* resumed_counter = nullptr;
  if (registry != nullptr) {
    total_counter = registry->GetCounter(kEvalMetricCandidatesTotal);
    done_counter = registry->GetCounter(kEvalMetricCandidatesDone);
    failed_counter = registry->GetCounter(kEvalMetricCandidatesFailed);
    resumed_counter = registry->GetCounter(kEvalMetricCandidatesResumed);
    total_counter->Set(count);
    registry->GetGauge(kEvalMetricWorkers)->Set(static_cast<double>(workers));
  }

  // Rows are appended strictly in candidate order: the cursor advances over
  // the longest done-prefix, so the deterministic columns depend only on
  // candidate order, never on completion order.
  int64_t row_cursor = 0;
  int64_t outstanding = static_cast<int64_t>(pending.size());
  const auto append_ready_rows = [&]() {
    if (registry == nullptr) return;
    while (row_cursor < count && done[row_cursor]) {
      const CandidateOutcome& outcome = batch.candidates[row_cursor];
      const bool ok = outcome.status.ok();
      done_counter->Increment();
      if (!ok) failed_counter->Increment();
      if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
        registry->GetCounter(kEvalMetricDeadlineExceeded)->Increment();
      }
      if (outcome.resumed) resumed_counter->Increment();
      registry->GetGauge(kEvalMetricTrainLoss)
          ->Set(ok ? outcome.result.final_train_loss : 0.0);
      registry->GetGauge(kEvalMetricMae)
          ->Set(ok ? outcome.result.average.mae : 0.0);
      registry->GetGauge(kEvalMetricRmse)
          ->Set(ok ? outcome.result.average.rmse : 0.0);
      registry->GetGauge(kEvalMetricStatusOk)->Set(ok ? 1.0 : 0.0);
      registry->GetGauge(kEvalMetricCandidateSec)->Set(outcome.wall_seconds);
      registry->GetGauge(kEvalMetricQueueDepth)
          ->Set(static_cast<double>(outstanding));
      registry->AppendRow("candidate", row_cursor, 0);
      ++row_cursor;
    }
  };
  append_ready_rows();  // resumed prefix

  // ---- Worker pool ----
  Stopwatch batch_watch;
  struct Completion {
    int64_t index = -1;
    Status status = Status::Ok();
    models::EvalResult result;
    double wall_seconds = 0.0;
  };
  std::mutex mutex;
  std::condition_variable completions_ready;
  std::deque<Completion> inbox;
  std::atomic<int64_t> next_slot{0};
  std::atomic<bool> abort{false};
  std::atomic<int64_t> workers_alive{0};

  // In-flight table for the watchdog: each running candidate's private
  // cancellation token and wall deadline. Entries are registered before
  // training starts and removed before the token leaves scope.
  struct InflightCandidate {
    int64_t index = -1;
    CancellationToken* token = nullptr;
    Deadline deadline;
  };
  std::mutex inflight_mutex;
  std::vector<InflightCandidate> inflight;

  const auto worker_main = [&]() {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      const int64_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= static_cast<int64_t>(pending.size())) break;
      const int64_t index = pending[slot];
      models::TrainConfig config = options_.train;
      config.seed = CandidateSeed(options_.train.seed, index);
      config.verbose = false;
      // Private interruption wiring: the watchdog cancels this token on a
      // blown wall budget (kDeadline) or external shutdown (swept with the
      // external token's reason); the trainer also polls the deadline and
      // step budget itself at every batch boundary.
      CancellationToken token;
      const Deadline deadline =
          Deadline::AfterBudget(options_.candidate_wall_budget_seconds);
      config.cancel = &token;
      config.deadline = deadline;
      config.step_budget = options_.candidate_step_budget;
      if (options_.candidate_setup_hook) {
        options_.candidate_setup_hook(index, &config);
      }
      {
        std::lock_guard<std::mutex> lock(inflight_mutex);
        inflight.push_back({index, &token, deadline});
      }
      Completion completion;
      completion.index = index;
      Stopwatch watch;
      {
        trace::Scope span("eval/candidate");
        StatusOr<models::EvalResult> result = EvaluateGenotypeWithStatus(
            candidates[index], data, options_.hidden_dim, config);
        if (result.ok()) {
          completion.result = std::move(result).value();
        } else {
          completion.status = result.status();
        }
      }
      completion.wall_seconds = watch.Seconds();
      {
        // Deregister before the token goes out of scope (and before the
        // completion hook, which tests use to stall this thread).
        std::lock_guard<std::mutex> lock(inflight_mutex);
        inflight.erase(
            std::remove_if(inflight.begin(), inflight.end(),
                           [index](const InflightCandidate& entry) {
                             return entry.index == index;
                           }),
            inflight.end());
      }
      if (options_.completion_hook) options_.completion_hook(index);
      {
        std::lock_guard<std::mutex> lock(mutex);
        inbox.push_back(std::move(completion));
      }
      completions_ready.notify_one();
    }
    workers_alive.fetch_sub(1, std::memory_order_acq_rel);
    completions_ready.notify_one();
  };

  // Watchdog: a few-millisecond scan over the in-flight table, cancelling
  // tokens whose wall deadline expired (kDeadline) and sweeping everything
  // on external shutdown. Purely cooperative — it only sets flags the
  // trainer polls — and it reads the same FakeClock-compatible clock the
  // deadlines were minted from, so tests drive it with virtual time.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  const bool need_watchdog =
      !pending.empty() && (options_.candidate_wall_budget_seconds > 0.0 ||
                           options_.cancel != nullptr);
  if (need_watchdog) {
    watchdog = std::thread([&] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        {
          std::lock_guard<std::mutex> lock(inflight_mutex);
          const bool shutdown =
              options_.cancel != nullptr && options_.cancel->cancelled();
          for (const InflightCandidate& entry : inflight) {
            if (shutdown) {
              entry.token->Cancel(options_.cancel->reason());
            } else if (entry.deadline.expired()) {
              entry.token->Cancel(CancelReason::kDeadline);
            }
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  std::vector<std::thread> threads;
  if (!pending.empty()) {
    threads.reserve(workers);
    workers_alive.store(workers, std::memory_order_release);
    for (int64_t w = 0; w < workers; ++w) {
      threads.emplace_back(worker_main);
    }
  }
  const auto join_all = [&] {
    for (std::thread& thread : threads) thread.join();
    watchdog_stop.store(true, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();
  };

  // ---- Driver loop: drain completions, persist, record ----
  double busy_seconds = 0.0;
  bool warned_save_failure = false;
  bool external_cancel = false;
  const auto record_io = [&](const fault::RetryOutcome& outcome) {
    if (registry == nullptr) return;
    if (outcome.retries() > 0) {
      registry->GetCounter(kEvalMetricIoRetries)->Increment(outcome.retries());
    }
    if (!outcome.status.ok()) {
      registry->GetCounter(kEvalMetricIoFailures)->Increment();
    }
  };
  try {
    int64_t drained = 0;
    for (;;) {
      // External shutdown: stop handing out new candidates, sweep the
      // in-flight tokens once (the watchdog keeps sweeping late joiners),
      // then keep draining so every completed result is persisted before
      // returning.
      if (!external_cancel && options_.cancel != nullptr &&
          options_.cancel->cancelled()) {
        external_cancel = true;
        abort.store(true, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(inflight_mutex);
          for (const InflightCandidate& entry : inflight) {
            entry.token->Cancel(options_.cancel->reason());
          }
        }
        AUTOCTS_LOG(WARNING)
            << "eval scheduler interrupted; draining in-flight candidates";
      }
      if (external_cancel) {
        std::unique_lock<std::mutex> lock(mutex);
        if (inbox.empty() &&
            workers_alive.load(std::memory_order_acquire) == 0) {
          break;
        }
      } else if (drained >= static_cast<int64_t>(pending.size())) {
        break;
      }
      Completion completion;
      {
        std::unique_lock<std::mutex> lock(mutex);
        completions_ready.wait_for(lock, std::chrono::milliseconds(50),
                                   [&] { return !inbox.empty(); });
        if (inbox.empty()) continue;  // re-check cancel / worker exit
        completion = std::move(inbox.front());
        inbox.pop_front();
      }
      ++drained;
      --outstanding;
      busy_seconds += completion.wall_seconds;

      if (completion.status.code() == StatusCode::kCancelled) {
        // Shutdown interrupted this candidate mid-training: record nothing.
        // done[] stays false, so a resumed run re-trains it from scratch
        // with its deterministic per-candidate seed — bit-identical to a
        // never-interrupted run.
        continue;
      }

      CandidateOutcome& outcome = batch.candidates[completion.index];
      outcome.status = completion.status;
      outcome.result = std::move(completion.result);
      outcome.wall_seconds = completion.wall_seconds;
      done[completion.index] = true;
      ++batch.evaluated;
      if (!outcome.status.ok()) ++batch.failed;
      if (options_.verbose) {
        AUTOCTS_LOG(INFO) << "eval candidate " << completion.index << "/"
                          << count << ": "
                          << (outcome.status.ok()
                                  ? "mae=" + std::to_string(
                                                 outcome.result.average.mae)
                                  : outcome.status.ToString());
      }

      // Insert into the checkpoint's index-sorted record lists. Failure
      // messages are encoded so a deadline-exceeded record round-trips its
      // status code across save/resume.
      if (outcome.status.ok()) {
        const auto at = std::upper_bound(
            checkpoint.completed.begin(), checkpoint.completed.end(),
            completion.index,
            [](int64_t index, const auto& entry) {
              return index < entry.first;
            });
        checkpoint.completed.insert(at, {completion.index, outcome.result});
      } else {
        const auto at = std::upper_bound(
            checkpoint.failed.begin(), checkpoint.failed.end(),
            completion.index,
            [](int64_t index, const auto& entry) {
              return index < entry.first;
            });
        checkpoint.failed.insert(
            at, {completion.index, EncodeFailureMessage(outcome.status)});
      }

      append_ready_rows();

      if (!options_.checkpoint_path.empty()) {
        const fault::RetryOutcome saved = fault::RetryCall(
            options_.io_retry,
            "eval checkpoint " + options_.checkpoint_path, [&] {
              return SaveEvalCheckpoint(checkpoint, options_.checkpoint_path);
            });
        record_io(saved);
        if (!saved.status.ok()) {
          if (!warned_save_failure) {
            AUTOCTS_LOG(WARNING) << "eval checkpoint write failed ("
                                 << saved.status.message()
                                 << "); continuing without persistence";
            warned_save_failure = true;
          }
        } else {
          if (registry != nullptr && !options_.metrics_path.empty()) {
            const fault::RetryOutcome sinks = fault::RetryCall(
                options_.io_retry,
                "eval metrics sinks " + options_.metrics_path,
                [&] { return registry->WriteSinks(options_.metrics_path); });
            record_io(sinks);
            if (!sinks.status.ok()) {
              AUTOCTS_LOG(WARNING) << "eval metrics sinks write failed: "
                                   << sinks.status.message();
            }
          }
          if (options_.post_persist_hook) {
            options_.post_persist_hook(
                static_cast<int64_t>(checkpoint.completed.size() +
                                     checkpoint.failed.size()));
          }
        }
      }
    }
  } catch (...) {
    // A test hook simulated a crash: stop handing out work, let in-flight
    // candidates finish (training is not interruptible), and rethrow with
    // no worker or watchdog threads left running.
    abort.store(true, std::memory_order_relaxed);
    join_all();
    throw;
  }
  join_all();
  batch.wall_seconds = batch_watch.Seconds();

  if (external_cancel) {
    // Every completed candidate was persisted above; the interrupted ones
    // were never recorded, so a --resume run re-trains exactly those and
    // lands on the same final checkpoint as an uninterrupted run.
    return options_.cancel->ToStatus("evaluation interrupted after " +
                                     std::to_string(batch.evaluated) + "/" +
                                     std::to_string(count) + " candidates");
  }

  for (int64_t i = 0; i < count; ++i) {
    const CandidateOutcome& outcome = batch.candidates[i];
    if (!outcome.status.ok()) continue;
    if (batch.best_index < 0 ||
        outcome.result.average.mae <
            batch.candidates[batch.best_index].result.average.mae) {
      batch.best_index = i;
    }
  }

  if (registry != nullptr) {
    AUTOCTS_CHECK_EQ(row_cursor, count);
    const double capacity = static_cast<double>(workers) * batch.wall_seconds;
    registry->GetGauge(kEvalMetricOccupancy)
        ->Set(capacity > 0.0 ? busy_seconds / capacity : 0.0);
    registry->GetGauge(kEvalMetricBatchSec)->Set(batch.wall_seconds);
    registry->GetGauge(kEvalMetricQueueDepth)->Set(0.0);
    registry->AppendRow("batch", count, 0);
    if (!options_.metrics_path.empty()) {
      Status sinks = registry->WriteSinks(options_.metrics_path);
      if (!sinks.ok()) {
        AUTOCTS_LOG(WARNING) << "eval metrics sinks write failed: "
                             << sinks.message();
      }
    }
  }
  return batch;
}

StatusOr<SearchEvaluateResult> SearchAndEvaluateTopK(
    const SearchOptions& search_options,
    const EvalSchedulerOptions& scheduler_options,
    const models::PreparedData& data) {
  JointSearcher searcher(search_options);
  StatusOr<SearchResult> search = searcher.SearchWithStatus(data);
  if (!search.ok()) return search.status();

  EvalSchedulerOptions options = scheduler_options;
  if (options.train.seed == 0) options.train.seed = search_options.seed;
  EvalScheduler scheduler(std::move(options));
  StatusOr<EvalBatchResult> eval =
      scheduler.Evaluate(search.value().top_genotypes, data);
  if (!eval.ok()) return eval.status();

  SearchEvaluateResult result;
  result.search = std::move(search).value();
  result.eval = std::move(eval).value();
  return result;
}

}  // namespace autocts::core
