#include "core/cost_model.h"

#include "ops/op_registry.h"

namespace autocts::core {
namespace {

// Relative per-application forward cost of each built-in operator,
// normalized to GDCC = 1. Derived from the dominant term of each
// operator's arithmetic on a [B, T, N, D] input:
//   conv ~ K*D^2, gdcc ~ 2*K*D^2, rnn ~ T-sequential 4*D^2 (and
//   unparallelizable, so weighted up), attention ~ L*D + 4*D^2 projections,
//   dgcn ~ 2*(K+1)*D^2 + propagation, cheb ~ K*D^2 + propagation.
struct CostEntry {
  const char* name;
  double cost;
};

constexpr CostEntry kCosts[] = {
    {"zero", 0.0},     {"identity", 0.0}, {"conv1d", 0.5},
    {"gdcc", 1.0},     {"lstm", 2.5},     {"gru", 2.0},
    {"trans_t", 1.6},  {"inf_t", 1.2},    {"cheb_gcn", 0.9},
    {"dgcn", 1.4},     {"trans_s", 1.5},  {"inf_s", 1.1},
};

}  // namespace

double OperatorCost(const std::string& op_name, double default_cost) {
  for (const CostEntry& entry : kCosts) {
    if (op_name == entry.name) return entry.cost;
  }
  AUTOCTS_CHECK(ops::OpRegistry::Global().Contains(op_name))
      << "unknown operator: " << op_name;
  return default_cost;
}

double GenotypeCost(const Genotype& genotype) {
  double total = 0.0;
  for (const BlockGenotype& block : genotype.blocks) {
    for (const EdgeGene& edge : block.edges) {
      total += OperatorCost(edge.op);
    }
  }
  return total;
}

Variable ExpectedSupernetCost(const Supernet& supernet, double tau) {
  const OperatorSet& op_set = supernet.config().op_set;
  Tensor costs({op_set.size(), 1});
  for (int64_t o = 0; o < op_set.size(); ++o) {
    costs.data()[o] = OperatorCost(op_set.op_names[o]);
  }
  const Variable cost_column = ag::Constant(costs);

  Variable total;
  for (int64_t c = 0; c < supernet.num_cells(); ++c) {
    // softmax(alpha / tau) [pairs, |O|] x costs [|O|, 1] -> [pairs, 1].
    const Variable weights = ag::SoftmaxWithTemperature(
        supernet.cell(c).alpha_parameter(), /*axis=*/1, tau);
    const Variable cell_cost = ag::SumAll(ag::MatMul(weights, cost_column));
    total = total.defined() ? ag::Add(total, cell_cost) : cell_cost;
  }
  return total;
}

}  // namespace autocts::core
