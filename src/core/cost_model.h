// Operator cost model and efficiency-aware search regularization.
//
// This implements the paper's stated future-work direction (Section 6):
// "include model efficiency as an additional criterion into the search
// strategy to automatically identify both accurate and efficient models".
//
// Each operator gets a relative cost (a FLOP-count proxy per [B,T,N,D]
// forward, normalized so identity = 0 and GDCC = 1). During the search the
// expected cost of the supernet under the current architecture
// distribution,
//
//   E[cost] = sum_cells sum_pairs sum_o softmax(alpha)_o * cost(o),
//
// is added to the architecture loss with weight lambda, steering the
// softmax mass toward cheaper operators without touching the weight
// updates. Differentiable end-to-end through the alpha softmax.
#ifndef AUTOCTS_CORE_COST_MODEL_H_
#define AUTOCTS_CORE_COST_MODEL_H_

#include <string>

#include "autograd/variable_ops.h"
#include "core/genotype.h"
#include "core/supernet.h"

namespace autocts::core {

// Relative forward cost of one operator application; CHECK-fails on
// unknown built-in names, returns `default_cost` for registered custom
// operators.
double OperatorCost(const std::string& op_name, double default_cost = 1.0);

// Total relative cost of a derived architecture (sum over kept edges).
double GenotypeCost(const Genotype& genotype);

// Differentiable expected cost of `supernet` under its current alpha
// distribution at temperature tau (scalar Variable). Gradients flow into
// the alpha parameters only.
Variable ExpectedSupernetCost(const Supernet& supernet, double tau);

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_COST_MODEL_H_
