#include "core/supernet.h"

#include "tensor/tensor_ops.h"

namespace autocts::core {

Supernet::Supernet(const SupernetConfig& config,
                   const models::ModelContext& model_context)
    : config_(config),
      rng_(model_context.seed),
      adaptive_(model_context.adjacency.defined()
                    ? nullptr
                    : std::make_shared<graph::AdaptiveAdjacency>(
                          model_context.num_nodes, /*embedding_dim=*/8,
                          &rng_)),
      embedding_(model_context.in_features, config.hidden_dim, &rng_),
      head_(config.hidden_dim, model_context.output_length, &rng_) {
  AUTOCTS_CHECK_GE(config_.macro_blocks, 1);
  models::ModelContext context = model_context;
  context.hidden_dim = config_.hidden_dim;
  const ops::OpContext op_context =
      models::MakeOpContext(context, adaptive_, &rng_);
  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    cells_.push_back(std::make_unique<MicroDagCell>(
        config_.micro_nodes, config_.op_set, op_context,
        config_.partial_denominator, &rng_));
    RegisterModule("cell" + std::to_string(b), cells_.back().get());
    gammas_.emplace_back(Tensor::Randn({b + 1}, &rng_, 0.0, 1e-3),
                         /*requires_grad=*/true);
  }
  RegisterModule("embedding", &embedding_);
  RegisterModule("head", &head_);
  if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
}

Variable Supernet::Forward(const Variable& x) {
  const Variable embedded = embedding_.Forward(x);
  // outputs[0] = embedding; outputs[1 + b] = block b's output.
  std::vector<Variable> outputs;
  outputs.push_back(embedded);
  Variable merged;
  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    // Eq. 18: softmax(gamma)-weighted sum over all predecessors.
    const Variable weights = ag::Softmax(gammas_[b], /*axis=*/0);
    Variable block_input;
    for (int64_t i = 0; i <= b; ++i) {
      const Variable weight = ag::Slice(weights, 0, i, 1);
      const Variable term = ag::Mul(outputs[i], weight);
      block_input = i == 0 ? term : ag::Add(block_input, term);
    }
    const Variable block_output = cells_[b]->Forward(block_input, tau_);
    outputs.push_back(block_output);
    // Hard-coded connection from every ST-block to the output layer.
    merged = b == 0 ? block_output : ag::Add(merged, block_output);
  }
  return head_.Forward(merged, x);
}

std::vector<Variable> Supernet::ArchParameters() const {
  std::vector<Variable> parameters;
  for (const auto& cell : cells_) {
    for (const Variable& p : cell->ArchParameters()) parameters.push_back(p);
  }
  for (const Variable& gamma : gammas_) parameters.push_back(gamma);
  return parameters;
}

std::vector<std::pair<std::string, Variable>> Supernet::NamedArchParameters()
    const {
  std::vector<std::pair<std::string, Variable>> parameters;
  for (size_t b = 0; b < cells_.size(); ++b) {
    for (const auto& [name, p] : cells_[b]->NamedArchParameters()) {
      parameters.emplace_back("cell" + std::to_string(b) + "." + name, p);
    }
  }
  for (size_t b = 0; b < gammas_.size(); ++b) {
    parameters.emplace_back("gamma" + std::to_string(b), gammas_[b]);
  }
  return parameters;
}

Genotype Supernet::Derive() const {
  Genotype genotype;
  genotype.nodes_per_block = config_.micro_nodes;
  const int64_t num_ops = config_.op_set.size();

  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    const MicroDagCell& cell = *cells_[b];
    BlockGenotype block;
    for (int64_t j = 1; j < config_.micro_nodes; ++j) {
      const Tensor beta = cell.BetaWeights(j);  // [j]
      // Eq. 7 weights for every (incoming edge i, operator o), with Zero
      // excluded so derived blocks always compute something.
      auto best_op_for = [&](int64_t i, double* weight) {
        const Tensor alpha = cell.AlphaWeights(PairIndex(i, j));
        int64_t best = -1;
        double best_weight = -1.0;
        for (int64_t o = 0; o < num_ops; ++o) {
          if (config_.op_set.op_names[o] == "zero") continue;
          const double w = beta.data()[i] * alpha.data()[o];
          if (w > best_weight) {
            best_weight = w;
            best = o;
          }
        }
        *weight = best_weight;
        return best;
      };

      // Rule 1: always keep the edge from the immediate predecessor.
      double weight = 0.0;
      const int64_t op_prev = best_op_for(j - 1, &weight);
      block.edges.push_back({j - 1, j, config_.op_set.op_names[op_prev]});

      // Rule 2: keep the strongest (edges_per_node - 1) other edges.
      std::vector<std::pair<double, std::pair<int64_t, int64_t>>> candidates;
      for (int64_t i = 0; i < j - 1; ++i) {
        double w = 0.0;
        const int64_t op = best_op_for(i, &w);
        candidates.push_back({w, {i, op}});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const int64_t extra = std::min<int64_t>(
          config_.edges_per_node - 1, static_cast<int64_t>(candidates.size()));
      for (int64_t e = 0; e < extra; ++e) {
        const auto& [w, edge] = candidates[e];
        block.edges.push_back(
            {edge.first, j, config_.op_set.op_names[edge.second]});
      }
    }
    genotype.blocks.push_back(std::move(block));

    // Macro: keep the predecessor with the largest gamma.
    const Tensor gamma = gammas_[b].value();
    int64_t best_input = 0;
    for (int64_t i = 1; i <= b; ++i) {
      if (gamma.data()[i] > gamma.data()[best_input]) best_input = i;
    }
    genotype.block_inputs.push_back(best_input);
  }
  AUTOCTS_CHECK(genotype.Validate().ok());
  return genotype;
}

}  // namespace autocts::core
