#include "core/supernet.h"

#include <algorithm>
#include <functional>

#include "tensor/tensor_ops.h"

namespace autocts::core {

Supernet::Supernet(const SupernetConfig& config,
                   const models::ModelContext& model_context)
    : config_(config),
      rng_(model_context.seed),
      adaptive_(model_context.adjacency.defined()
                    ? nullptr
                    : std::make_shared<graph::AdaptiveAdjacency>(
                          model_context.num_nodes, /*embedding_dim=*/8,
                          &rng_)),
      embedding_(model_context.in_features, config.hidden_dim, &rng_),
      head_(config.hidden_dim, model_context.output_length, &rng_) {
  AUTOCTS_CHECK_GE(config_.macro_blocks, 1);
  models::ModelContext context = model_context;
  context.hidden_dim = config_.hidden_dim;
  const ops::OpContext op_context =
      models::MakeOpContext(context, adaptive_, &rng_);
  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    cells_.push_back(std::make_unique<MicroDagCell>(
        config_.micro_nodes, config_.op_set, op_context,
        config_.partial_denominator, &rng_));
    RegisterModule("cell" + std::to_string(b), cells_.back().get());
    gammas_.emplace_back(Tensor::Randn({b + 1}, &rng_, 0.0, 1e-3),
                         /*requires_grad=*/true);
  }
  RegisterModule("embedding", &embedding_);
  RegisterModule("head", &head_);
  if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
}

Variable Supernet::Forward(const Variable& x) {
  const Variable embedded = embedding_.Forward(x);
  // outputs[0] = embedding; outputs[1 + b] = block b's output.
  std::vector<Variable> outputs;
  outputs.push_back(embedded);
  Variable merged;
  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    // Eq. 18: softmax(gamma)-weighted sum over all predecessors.
    const Variable weights = ag::Softmax(gammas_[b], /*axis=*/0);
    Variable block_input;
    for (int64_t i = 0; i <= b; ++i) {
      const Variable weight = ag::Slice(weights, 0, i, 1);
      const Variable term = ag::Mul(outputs[i], weight);
      block_input = i == 0 ? term : ag::Add(block_input, term);
    }
    const Variable block_output = cells_[b]->Forward(block_input, tau_);
    outputs.push_back(block_output);
    // Hard-coded connection from every ST-block to the output layer.
    merged = b == 0 ? block_output : ag::Add(merged, block_output);
  }
  return head_.Forward(merged, x);
}

std::vector<Variable> Supernet::ArchParameters() const {
  std::vector<Variable> parameters;
  for (const auto& cell : cells_) {
    for (const Variable& p : cell->ArchParameters()) parameters.push_back(p);
  }
  for (const Variable& gamma : gammas_) parameters.push_back(gamma);
  return parameters;
}

std::vector<std::pair<std::string, Variable>> Supernet::NamedArchParameters()
    const {
  std::vector<std::pair<std::string, Variable>> parameters;
  for (size_t b = 0; b < cells_.size(); ++b) {
    for (const auto& [name, p] : cells_[b]->NamedArchParameters()) {
      parameters.emplace_back("cell" + std::to_string(b) + "." + name, p);
    }
  }
  for (size_t b = 0; b < gammas_.size(); ++b) {
    parameters.emplace_back("gamma" + std::to_string(b), gammas_[b]);
  }
  return parameters;
}

Genotype Supernet::Derive() const {
  Genotype genotype;
  genotype.nodes_per_block = config_.micro_nodes;
  const int64_t num_ops = config_.op_set.size();

  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    const MicroDagCell& cell = *cells_[b];
    BlockGenotype block;
    for (int64_t j = 1; j < config_.micro_nodes; ++j) {
      const Tensor beta = cell.BetaWeights(j);  // [j]
      // Eq. 7 weights for every (incoming edge i, operator o), with Zero
      // excluded so derived blocks always compute something.
      auto best_op_for = [&](int64_t i, double* weight) {
        const Tensor alpha = cell.AlphaWeights(PairIndex(i, j));
        int64_t best = -1;
        double best_weight = -1.0;
        for (int64_t o = 0; o < num_ops; ++o) {
          if (config_.op_set.op_names[o] == "zero") continue;
          const double w = beta.data()[i] * alpha.data()[o];
          if (w > best_weight) {
            best_weight = w;
            best = o;
          }
        }
        *weight = best_weight;
        return best;
      };

      // Rule 1: always keep the edge from the immediate predecessor.
      double weight = 0.0;
      const int64_t op_prev = best_op_for(j - 1, &weight);
      block.edges.push_back({j - 1, j, config_.op_set.op_names[op_prev]});

      // Rule 2: keep the strongest (edges_per_node - 1) other edges.
      std::vector<std::pair<double, std::pair<int64_t, int64_t>>> candidates;
      for (int64_t i = 0; i < j - 1; ++i) {
        double w = 0.0;
        const int64_t op = best_op_for(i, &w);
        candidates.push_back({w, {i, op}});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const int64_t extra = std::min<int64_t>(
          config_.edges_per_node - 1, static_cast<int64_t>(candidates.size()));
      for (int64_t e = 0; e < extra; ++e) {
        const auto& [w, edge] = candidates[e];
        block.edges.push_back(
            {edge.first, j, config_.op_set.op_names[edge.second]});
      }
    }
    genotype.blocks.push_back(std::move(block));

    // Macro: keep the predecessor with the largest gamma.
    const Tensor gamma = gammas_[b].value();
    int64_t best_input = 0;
    for (int64_t i = 1; i <= b; ++i) {
      if (gamma.data()[i] > gamma.data()[best_input]) best_input = i;
    }
    genotype.block_inputs.push_back(best_input);
  }
  AUTOCTS_CHECK(genotype.Validate().ok());
  return genotype;
}

std::vector<Genotype> Supernet::DeriveTopK(int64_t k) const {
  AUTOCTS_CHECK_GE(k, 1);
  const Genotype base = Derive();
  std::vector<Genotype> candidates;
  candidates.push_back(base);
  if (k == 1) return candidates;

  // One single-decision swap away from the base derivation. `penalty` is
  // the architecture-parameter score the swap gives up (>= 0 by
  // construction); `order` breaks exact ties by decision position so the
  // ranking never depends on sort implementation details.
  struct Substitution {
    double penalty = 0.0;
    int64_t order = 0;
    std::function<void(Genotype*)> apply;
  };
  std::vector<Substitution> substitutions;
  int64_t order = 0;
  const int64_t num_ops = config_.op_set.size();

  for (int64_t b = 0; b < config_.macro_blocks; ++b) {
    const MicroDagCell& cell = *cells_[b];
    // Derive() appends node j's edges as [predecessor, extras...]; walk the
    // same layout so `slot` addresses the matching entry of
    // base.blocks[b].edges.
    int64_t slot = 0;
    for (int64_t j = 1; j < config_.micro_nodes; ++j) {
      const Tensor beta = cell.BetaWeights(j);
      // Eq. 7 weights for edge i -> j over all non-Zero operators, best
      // first (ties to the lower operator index, matching Derive's argmax).
      const auto ranked_ops = [&](int64_t i) {
        std::vector<std::pair<double, int64_t>> ranked;
        const Tensor alpha = cell.AlphaWeights(PairIndex(i, j));
        for (int64_t o = 0; o < num_ops; ++o) {
          if (config_.op_set.op_names[o] == "zero") continue;
          ranked.push_back({beta.data()[i] * alpha.data()[o], o});
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& x, const auto& y) {
                    return x.first != y.first ? x.first > y.first
                                             : x.second < y.second;
                  });
        return ranked;
      };

      const int64_t node_edges = static_cast<int64_t>(
          1 + std::min<int64_t>(config_.edges_per_node - 1, j - 1));
      // Operator swaps: every kept edge can fall back to its runner-up op.
      for (int64_t e = 0; e < node_edges; ++e) {
        const EdgeGene& edge = base.blocks[b].edges[slot + e];
        const auto ranked = ranked_ops(edge.from);
        if (ranked.size() < 2) continue;
        const std::string runner_up = config_.op_set.op_names[ranked[1].second];
        const int64_t edge_slot = slot + e;
        substitutions.push_back(
            {ranked[0].first - ranked[1].first, order++,
             [b, edge_slot, runner_up](Genotype* genotype) {
               genotype->blocks[b].edges[edge_slot].op = runner_up;
             }});
      }
      // Edge swaps: every kept non-predecessor edge can be replaced by the
      // strongest candidate edge Derive() left out.
      std::vector<bool> kept(std::max<int64_t>(j - 1, 0), false);
      for (int64_t e = 1; e < node_edges; ++e) {
        kept[base.blocks[b].edges[slot + e].from] = true;
      }
      int64_t best_unkept = -1;
      int64_t best_unkept_op = -1;
      double best_unkept_weight = 0.0;
      for (int64_t i = 0; i < j - 1; ++i) {
        if (kept[i]) continue;
        const auto ranked = ranked_ops(i);
        if (ranked.empty()) continue;
        if (best_unkept < 0 || ranked[0].first > best_unkept_weight) {
          best_unkept = i;
          best_unkept_op = ranked[0].second;
          best_unkept_weight = ranked[0].first;
        }
      }
      if (best_unkept >= 0) {
        const std::string unkept_op = config_.op_set.op_names[best_unkept_op];
        for (int64_t e = 1; e < node_edges; ++e) {
          const EdgeGene& edge = base.blocks[b].edges[slot + e];
          const double kept_weight = ranked_ops(edge.from)[0].first;
          const int64_t edge_slot = slot + e;
          const int64_t from = best_unkept;
          substitutions.push_back(
              {kept_weight - best_unkept_weight, order++,
               [b, edge_slot, from, unkept_op](Genotype* genotype) {
                 genotype->blocks[b].edges[edge_slot].from = from;
                 genotype->blocks[b].edges[edge_slot].op = unkept_op;
               }});
        }
      }
      slot += node_edges;
    }

    // Macro swaps: block b can read from the second-largest gamma instead.
    if (b >= 1) {
      const Tensor gamma = gammas_[b].value();
      const int64_t best = base.block_inputs[b];
      int64_t second = -1;
      for (int64_t i = 0; i <= b; ++i) {
        if (i == best) continue;
        if (second < 0 || gamma.data()[i] > gamma.data()[second]) second = i;
      }
      if (second >= 0) {
        substitutions.push_back(
            {gamma.data()[best] - gamma.data()[second], order++,
             [b, second](Genotype* genotype) {
               genotype->block_inputs[b] = second;
             }});
      }
    }
  }

  std::sort(substitutions.begin(), substitutions.end(),
            [](const Substitution& x, const Substitution& y) {
              return x.penalty != y.penalty ? x.penalty < y.penalty
                                            : x.order < y.order;
            });
  for (const Substitution& substitution : substitutions) {
    if (static_cast<int64_t>(candidates.size()) >= k) break;
    Genotype variant = base;
    substitution.apply(&variant);
    AUTOCTS_CHECK(variant.Validate().ok());
    candidates.push_back(std::move(variant));
  }
  return candidates;
}

}  // namespace autocts::core
