#include "core/searcher.h"

#include "core/cost_model.h"
#include "core/search_checkpoint.h"
#include "core/search_metrics.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/buffer_pool.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "optim/adam.h"
#include "optim/lr_schedule.h"
#include "tensor/tensor_ops.h"

#include <cmath>

namespace autocts::core {

SearchOptions AutoStgLiteOptions() {
  SearchOptions options;
  options.supernet.op_set = AutoStgOperatorSet();
  options.use_macro = false;  // AutoSTG stacks homogeneous ST-blocks.
  return options;
}

JointSearcher::JointSearcher(SearchOptions options)
    : options_(std::move(options)) {}

namespace {

// Gradient tensors of `parameters` (zeros where no grad was accumulated).
std::vector<Tensor> CollectGrads(const std::vector<Variable>& parameters) {
  std::vector<Tensor> grads;
  grads.reserve(parameters.size());
  for (const Variable& parameter : parameters) {
    grads.push_back(parameter.has_grad() ? parameter.grad().Clone()
                                         : Tensor::Zeros(parameter.shape()));
  }
  return grads;
}

void ZeroAll(std::vector<Variable>* parameters) {
  for (Variable& parameter : *parameters) parameter.ClearGrad();
}

// parameters += scale * deltas.
void AxpyInPlace(std::vector<Variable>* parameters,
                 const std::vector<Tensor>& deltas, double scale) {
  for (size_t i = 0; i < parameters->size(); ++i) {
    autocts::AddInPlace(&(*parameters)[i].mutable_value(),
               autocts::MulScalar(deltas[i], scale));
  }
}

// Owns the tracer lifetime for one Search() call: starts the trace on
// construction (when a path is given and no trace is already running) and
// on destruction — any exit path, including error returns — closes the
// root "search" span, stops collection, and writes the Chrome JSON plus
// the "<path>.ops.csv" aggregate table.
class TraceSession {
 public:
  explicit TraceSession(const std::string& path) {
    if (path.empty() || trace::Active()) return;
    path_ = path;
    trace::Start();
    root_.emplace("search");
  }
  ~TraceSession() {
    if (path_.empty()) return;
    root_.reset();  // close the root while collection is still active
    trace::Stop();
    if (!trace::WriteChromeTrace(path_) ||
        !trace::WriteAggregateCsv(path_ + ".ops.csv")) {
      AUTOCTS_LOG(WARNING) << "failed to write trace output at " << path_;
    }
  }

 private:
  std::string path_;
  std::optional<trace::Scope> root_;
};

// Writes the metrics sinks on every exit path, retrying transient I/O
// failures; telemetry that still cannot be written degrades to a warning.
class MetricsSinkGuard {
 public:
  MetricsSinkGuard(const obs::MetricsRegistry* registry, std::string path,
                   fault::RetryPolicy policy)
      : registry_(registry), path_(std::move(path)),
        policy_(std::move(policy)) {}
  ~MetricsSinkGuard() {
    if (registry_ == nullptr || path_.empty()) return;
    const fault::RetryOutcome outcome =
        fault::RetryCall(policy_, "metrics sinks " + path_,
                         [&] { return registry_->WriteSinks(path_); });
    if (!outcome.status.ok()) {
      AUTOCTS_LOG(WARNING) << "failed to write metrics sinks: "
                           << outcome.status.ToString();
    }
  }

 private:
  const obs::MetricsRegistry* registry_;
  std::string path_;
  fault::RetryPolicy policy_;
};

}  // namespace

double JointSearcher::UnrolledThetaStep(
    Supernet* supernet, optim::Adam* theta_optimizer,
    optim::Adam* weight_optimizer,
    const std::function<Variable()>& train_loss_fn,
    const std::function<Variable()>& val_loss_fn,
    numerics::HealthMonitor* monitor, numerics::Anomaly* anomaly) const {
  std::vector<Variable> weights = supernet->Parameters();
  std::vector<Variable> thetas = supernet->ArchParameters();
  const double xi = options_.w_learning_rate;

  // 1. grad_w L_train at (w, Theta).
  ZeroAll(&weights);
  ZeroAll(&thetas);
  train_loss_fn().Backward();
  const std::vector<Tensor> grad_w_train = CollectGrads(weights);

  // 2. Virtual step: w' = w - xi * grad_w L_train.
  AxpyInPlace(&weights, grad_w_train, -xi);

  // 3. At w': grad_Theta L_val (leading term) and v = grad_w' L_val.
  ZeroAll(&weights);
  ZeroAll(&thetas);
  Variable val_loss = val_loss_fn();
  val_loss.Backward();
  const double val_loss_value = val_loss.value().item();
  const std::vector<Tensor> leading_term = CollectGrads(thetas);
  const std::vector<Tensor> v = CollectGrads(weights);

  // Undo the virtual step: back to w.
  AxpyInPlace(&weights, grad_w_train, xi);

  // Bail out before the expensive Hessian-vector product when the loss is
  // already bad; w has been restored (a NaN in grad_w_train is not undone
  // by the Axpy pair, but the caller's parameter check catches that).
  *anomaly = monitor->ObserveLoss(val_loss_value);
  if (*anomaly != numerics::Anomaly::kNone) {
    ZeroAll(&weights);
    ZeroAll(&thetas);
    (void)weight_optimizer;
    return val_loss_value;
  }

  // 4. Hessian-vector product by central finite differences:
  //    grad2_{Theta,w} L_train . v
  //      ~ [grad_Theta L_train(w + eps v) - grad_Theta L_train(w - eps v)]
  //        / (2 eps)
  double v_norm_sq = 0.0;
  for (const Tensor& g : v) v_norm_sq += autocts::SumSquares(g);
  const double v_norm = std::sqrt(v_norm_sq);
  const double eps = options_.unrolled_epsilon / std::max(v_norm, 1e-12);

  AxpyInPlace(&weights, v, eps);
  ZeroAll(&weights);
  ZeroAll(&thetas);
  train_loss_fn().Backward();
  const std::vector<Tensor> grad_theta_plus = CollectGrads(thetas);

  AxpyInPlace(&weights, v, -2.0 * eps);
  ZeroAll(&weights);
  ZeroAll(&thetas);
  train_loss_fn().Backward();
  const std::vector<Tensor> grad_theta_minus = CollectGrads(thetas);

  AxpyInPlace(&weights, v, eps);  // Restore w exactly.

  // 5. Assemble grad_Theta = leading - xi * (g+ - g-) / (2 eps) and step.
  ZeroAll(&weights);
  ZeroAll(&thetas);
  for (size_t i = 0; i < thetas.size(); ++i) {
    Tensor correction = autocts::Sub(grad_theta_plus[i], grad_theta_minus[i]);
    autocts::ScaleInPlace(&correction, -xi / (2.0 * eps));
    Tensor total = leading_term[i].Clone();
    autocts::AddInPlace(&total, correction);
    thetas[i].AccumulateGrad(total);
  }
  double pre_clip_norm = 0.0;
  optim::ClipGradNormChecked(thetas, options_.clip_norm, &pre_clip_norm);
  *anomaly = monitor->ObserveGradientNorm(pre_clip_norm);
  if (*anomaly == numerics::Anomaly::kNone) theta_optimizer->Step();
  ZeroAll(&thetas);
  (void)weight_optimizer;
  return val_loss_value;
}

SearchResult JointSearcher::Search(const models::PreparedData& data) {
  StatusOr<SearchResult> result = SearchWithStatus(data);
  AUTOCTS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

StatusOr<SearchResult> JointSearcher::SearchWithStatus(
    const models::PreparedData& data) {
  Stopwatch timer;
  Rng rng(options_.seed);

  // Observability. The registry and tracer are passive recorders: every
  // value below is read from state the search computed anyway, so the
  // trajectory is bit-identical with or without them.
  obs::MetricsRegistry own_registry;
  obs::MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr && !options_.metrics_path.empty()) {
    metrics = &own_registry;
  }
  if (metrics != nullptr) RegisterSearchMetrics(metrics);
  MetricsSinkGuard metrics_sink(metrics, options_.metrics_path,
                                options_.io_retry);
  TraceSession trace_session(options_.trace_path);
  // Covers everything up to the epoch loop (supernet + optimizer
  // construction, pseudo-split shuffle, checkpoint restore), which would
  // otherwise show up as unattributed root self-time in the aggregate
  // table.
  std::optional<trace::Scope> setup_span;
  if (trace::Active()) setup_span.emplace("search/setup");

  // Build the supernet; the "w/o macro search" variant searches a single
  // block.
  SupernetConfig supernet_config = options_.supernet;
  const int64_t eval_blocks = supernet_config.macro_blocks;
  if (!options_.use_macro) supernet_config.macro_blocks = 1;

  models::ModelContext model_context;
  model_context.num_nodes = data.num_nodes;
  model_context.in_features = data.in_features;
  model_context.input_length = data.window.input_length;
  model_context.output_length = data.window.output_length;
  model_context.hidden_dim = supernet_config.hidden_dim;
  model_context.adjacency = data.adjacency;
  model_context.seed = rng.Next();
  Supernet supernet(supernet_config, model_context);

  optim::Adam weight_optimizer(supernet.Parameters(),
                               {.learning_rate = options_.w_learning_rate,
                                .weight_decay = options_.w_weight_decay});
  optim::Adam theta_optimizer(supernet.ArchParameters(),
                              {.learning_rate = options_.theta_learning_rate,
                               .beta1 = options_.theta_beta1,
                               .beta2 = options_.theta_beta2,
                               .weight_decay = options_.theta_weight_decay});
  const optim::ExponentialSchedule tau_schedule(
      options_.tau_init, options_.tau_decay, options_.tau_min);

  // Divide the training windows evenly into pseudo-train / pseudo-val.
  const int64_t total = data.train().NumSamples();
  AUTOCTS_CHECK_GT(total, 1) << "not enough training windows to search";
  std::vector<int64_t> order(total);
  for (int64_t i = 0; i < total; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<int64_t> pseudo_train(order.begin(), order.begin() + total / 2);
  std::vector<int64_t> pseudo_val(order.begin() + total / 2, order.end());

  SearchResult result;
  result.supernet_parameters = supernet.NumParameters();

  // Crash-safe resume: restore the newest loadable checkpoint generation
  // whose configuration matches, then continue from its cursor. Everything
  // that shapes the remaining trajectory (weights, Theta, Adam moments,
  // Rng, tau, split orders, loss accumulator) is restored bit-for-bit, so
  // the resumed run equals an uninterrupted one exactly.
  const bool checkpointing = !options_.checkpoint_path.empty() &&
                             options_.checkpoint_every_n_batches > 0;
  const std::string fingerprint = SearchConfigFingerprint(options_, total);
  int64_t start_epoch = 0;
  int64_t start_step = 0;
  double val_loss_sum = 0.0;
  int64_t steps = 0;
  bool resume_mid_epoch = false;
  if (options_.resume && !options_.checkpoint_path.empty()) {
    bool used_prev = false;
    StatusOr<SearchCheckpoint> loaded =
        LoadSearchCheckpointOrPrev(options_.checkpoint_path, &used_prev);
    // Last-good generation tracking: a checkpoint that decodes cleanly but
    // holds non-finite state (it predates the write-side health gate, or
    // was produced elsewhere) must never be resumed; fall back to the
    // previous generation before giving up.
    if (loaded.ok()) {
      Status health = CheckpointNumericHealth(loaded.value());
      if (!health.ok() && !used_prev) {
        AUTOCTS_LOG(WARNING)
            << "checkpoint at " << options_.checkpoint_path
            << " is numerically unhealthy (" << health.ToString()
            << "); trying previous generation";
        used_prev = true;
        loaded = LoadSearchCheckpoint(options_.checkpoint_path + ".prev");
        if (loaded.ok()) health = CheckpointNumericHealth(loaded.value());
      }
      if (loaded.ok() && !health.ok()) loaded = health;
    }
    if (!loaded.ok()) {
      AUTOCTS_LOG(WARNING) << "resume requested but no usable checkpoint at "
                           << options_.checkpoint_path << " ("
                           << loaded.status().ToString()
                           << "); starting fresh";
    } else if (loaded.value().config_fingerprint != fingerprint) {
      AUTOCTS_LOG(WARNING) << "checkpoint at " << options_.checkpoint_path
                           << " was written by a differently-configured "
                              "search; starting fresh";
    } else {
      const SearchCheckpoint& checkpoint = loaded.value();
      const Status status = RestoreSearchState(
          checkpoint, &supernet, &weight_optimizer, &theta_optimizer, &rng,
          &pseudo_train, &pseudo_val);
      if (!status.ok()) {
        AUTOCTS_LOG(WARNING) << "checkpoint restore failed ("
                             << status.ToString() << "); starting fresh";
      } else {
        if (metrics != nullptr && !checkpoint.metrics_state.empty()) {
          const Status metrics_status =
              metrics->DecodeState(checkpoint.metrics_state);
          if (!metrics_status.ok()) {
            // Telemetry only: a bad metrics block must not block resume.
            AUTOCTS_LOG(WARNING) << "checkpoint metrics state unreadable ("
                                 << metrics_status.ToString()
                                 << "); metrics restart empty";
            metrics->Reset();
            RegisterSearchMetrics(metrics);
          }
        }
        start_epoch = checkpoint.epoch;
        start_step = checkpoint.step;
        val_loss_sum = checkpoint.val_loss_sum;
        steps = checkpoint.epoch_steps;
        // step > 0 means the epoch preamble (temperature + shuffles)
        // already ran before the crash; its effects were restored above.
        resume_mid_epoch = start_step > 0;
        // Mid-epoch the uninterrupted run still reports the last completed
        // epoch's average (the restored accumulator is partial); at an
        // epoch boundary the just-finished epoch's accumulator IS final.
        result.final_validation_loss =
            (start_step == 0 && steps > 0)
                ? val_loss_sum / static_cast<double>(steps)
                : checkpoint.final_validation_loss;
        if (options_.verbose || used_prev) {
          AUTOCTS_LOG(INFO) << "resumed search from "
                            << (used_prev
                                    ? options_.checkpoint_path + ".prev"
                                    : options_.checkpoint_path)
                            << " at epoch " << start_epoch << " step "
                            << start_step;
        }
      }
    }
  }

  // Snapshots every instrument into one metrics row. Deterministic columns
  // (losses, τ, entropies, counters) depend only on the trajectory;
  // wall-clock columns carry the "wall/" prefix so determinism comparisons
  // can strip them.
  const auto emit_metrics_row = [&](const char* kind, int64_t epoch,
                                    int64_t step) {
    if (metrics == nullptr) return;
    AUTOCTS_TRACE_SCOPE("search/metrics_row");
    const double tau = supernet.temperature();
    metrics->GetGauge(kMetricTau)->Set(tau);
    const ArchEntropy entropy = ComputeArchEntropy(supernet, tau);
    metrics->GetGauge(kMetricAlphaEntropy)->Set(entropy.alpha);
    metrics->GetGauge(kMetricBetaEntropy)->Set(entropy.beta);
    metrics->GetGauge(kMetricGammaEntropy)->Set(entropy.gamma);
    metrics->GetGauge(kMetricValLossEpoch)
        ->Set(steps > 0 ? val_loss_sum / static_cast<double>(steps) : 0.0);
    const double elapsed = timer.Seconds();
    metrics->GetGauge(kMetricElapsedSec)->Set(elapsed);
    const double total_steps = static_cast<double>(
        metrics->GetCounter(kMetricStepsTotal)->value());
    metrics->GetGauge(kMetricBatchesPerSec)
        ->Set(elapsed > 0.0 ? total_steps / elapsed : 0.0);
    const PoolStats pool = GetPoolStats();
    metrics->GetGauge(kMetricPoolOccupancy)
        ->Set(pool.chunks > 0 ? static_cast<double>(pool.worker_chunks) /
                                    static_cast<double>(pool.chunks)
                              : 0.0);
    UpdateBufferPoolMetrics(metrics);
    metrics->AppendRow(kind, epoch, step);
  };

  int64_t batches_since_checkpoint = 0;
  int64_t checkpoint_ordinal = 0;
  int64_t executed_steps = 0;  // healthy steps this process run (budgets)

  // Numerical-health guard state. The monitor always observes; the
  // recovery tiers only engage when options_.recovery.enabled.
  const numerics::RecoveryOptions& recovery = options_.recovery;
  numerics::HealthMonitor monitor(options_.health);
  SearchCheckpoint last_good;
  bool have_last_good = false;
  double lr_scale = 1.0;
  int64_t recoveries_left = recovery.max_recoveries;
  int64_t consecutive_skips = 0;
  int64_t healthy_steps_since_snapshot = 0;

  // In-memory last-good snapshot for the rollback tier; cursor semantics
  // match the on-disk checkpoint block (the first batch a restarted run
  // executes, rolling over at epoch boundaries).
  const auto capture_snapshot = [&](int64_t epoch, int64_t next_step,
                                    int64_t max_steps, double val_loss_sum,
                                    int64_t steps, double final_loss) {
    last_good = CaptureSearchState(supernet, weight_optimizer,
                                   theta_optimizer, rng, pseudo_train,
                                   pseudo_val);
    last_good.config_fingerprint = fingerprint;
    last_good.epoch = epoch;
    last_good.step = next_step;
    if (max_steps > 0 && last_good.step >= max_steps) {
      last_good.epoch = epoch + 1;
      last_good.step = 0;
    }
    last_good.val_loss_sum = val_loss_sum;
    last_good.epoch_steps = steps;
    last_good.final_validation_loss = final_loss;
    last_good.metrics_state =
        metrics != nullptr ? metrics->EncodeState() : std::string();
    have_last_good = true;
    healthy_steps_since_snapshot = 0;
  };
  if (recovery.enabled) {
    capture_snapshot(start_epoch, start_step, /*max_steps=*/0, val_loss_sum,
                     steps, result.final_validation_loss);
  }

  setup_span.reset();
  bool restart = true;
  while (restart) {
    restart = false;
  for (int64_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    const bool continuing = resume_mid_epoch && epoch == start_epoch;
    if (!continuing) {
      supernet.SetTemperature(
          options_.use_temperature ? tau_schedule.At(epoch) : 1.0);
      rng.Shuffle(&pseudo_train);
      rng.Shuffle(&pseudo_val);
      val_loss_sum = 0.0;
      steps = 0;
    }
    const int64_t max_steps =
        options_.max_batches_per_epoch > 0
            ? options_.max_batches_per_epoch
            : (total / 2 + options_.batch_size - 1) / options_.batch_size;
    for (int64_t step = continuing ? start_step : 0; step < max_steps;
         ++step) {
      // One span per search batch: op spans nest beneath it, and its
      // self-time attributes the per-step glue (topo sort, health scans,
      // snapshot capture) that has no op span of its own.
      AUTOCTS_TRACE_SCOPE("search/step");
      auto take_batch = [&](const std::vector<int64_t>& pool) {
        std::vector<int64_t> batch;
        batch.reserve(options_.batch_size);
        for (int64_t k = 0; k < options_.batch_size; ++k) {
          batch.push_back(pool[(step * options_.batch_size + k) %
                               static_cast<int64_t>(pool.size())]);
        }
        return batch;
      };

      // Computes the (possibly cost-regularized) loss on a batch.
      auto batch_loss = [&](const std::vector<int64_t>& batch,
                            bool with_cost) {
        Tensor x, y;
        data.train().GetBatch(batch, &x, &y);
        Variable loss = ag::L1Loss(supernet.Forward(ag::Constant(x)),
                                   ag::Constant(y));
        if (with_cost && options_.cost_weight > 0.0) {
          // Efficiency-aware criterion (Section 6 future work).
          loss = ag::Add(loss, ag::MulScalar(
                                   ExpectedSupernetCost(
                                       supernet, supernet.temperature()),
                                   options_.cost_weight));
        }
        return loss;
      };

      // Line 3-4 of Algorithm 1: update Theta on a pseudo-validation batch.
      // (take_batch is a pure function of `step`, so the w update below
      // reuses train_batch — the same indices the original double call
      // produced.)
      const std::vector<int64_t> val_batch = take_batch(pseudo_val);
      const std::vector<int64_t> train_batch = take_batch(pseudo_train);
      numerics::Anomaly anomaly = numerics::Anomaly::kNone;
      double step_val_loss = 0.0;
      bool w_stage = false;
      // Read-only taps for the metrics gauges; populated from values the
      // step computes anyway (never recomputed, so metrics stay
      // bit-transparent).
      double theta_grad_norm = 0.0;
      double w_train_loss = 0.0;
      double w_grad_norm = 0.0;
      if (options_.bilevel_order <= 1) {
        // First-order approximation: w is treated as constant.
        Variable loss = batch_loss(val_batch, /*with_cost=*/true);
        theta_optimizer.ZeroGrad();
        weight_optimizer.ZeroGrad();
        step_val_loss = loss.value().item();
        anomaly = monitor.ObserveLoss(step_val_loss);
        if (anomaly == numerics::Anomaly::kNone) {
          loss.Backward();
          double pre_clip_norm = 0.0;
          optim::ClipGradNormChecked(supernet.ArchParameters(),
                                     options_.clip_norm, &pre_clip_norm);
          theta_grad_norm = pre_clip_norm;
          anomaly = monitor.ObserveGradientNorm(pre_clip_norm);
          if (anomaly == numerics::Anomaly::kNone) theta_optimizer.Step();
        }
      } else {
        step_val_loss = UnrolledThetaStep(
            &supernet, &theta_optimizer, &weight_optimizer,
            [&] { return batch_loss(train_batch, /*with_cost=*/false); },
            [&] { return batch_loss(val_batch, /*with_cost=*/true); },
            &monitor, &anomaly);
      }

      // Line 5-6: update w on a pseudo-training batch.
      if (anomaly == numerics::Anomaly::kNone) {
        w_stage = true;
        Tensor x, y;
        data.train().GetBatch(train_batch, &x, &y);
        Variable loss = ag::L1Loss(supernet.Forward(ag::Constant(x)),
                                         ag::Constant(y));
        weight_optimizer.ZeroGrad();
        theta_optimizer.ZeroGrad();
        w_train_loss = loss.value().item();
        anomaly = monitor.ObserveLoss(w_train_loss);
        if (anomaly == numerics::Anomaly::kNone) {
          loss.Backward();
          if (options_.fault_injection_hook) {
            options_.fault_injection_hook(epoch, step, &supernet);
          }
          double pre_clip_norm = 0.0;
          optim::ClipGradNormChecked(supernet.Parameters(),
                                     options_.clip_norm, &pre_clip_norm);
          w_grad_norm = pre_clip_norm;
          anomaly = monitor.ObserveGradientNorm(pre_clip_norm);
          if (anomaly == numerics::Anomaly::kNone) weight_optimizer.Step();
        }
      }
      // Post-update sweep: catches an update that overflowed a parameter
      // and a weight corrupted directly (e.g. by the fault-injection hook).
      if (anomaly == numerics::Anomaly::kNone) {
        anomaly = monitor.CheckParameters(supernet.Parameters());
        if (anomaly == numerics::Anomaly::kNone) {
          anomaly = monitor.CheckParameters(supernet.ArchParameters());
        }
      }

      if (anomaly != numerics::Anomaly::kNone) {
        const std::string anomaly_context =
            "search epoch " + std::to_string(epoch) + " step " +
            std::to_string(step) + ": " + numerics::AnomalyName(anomaly);
        result.last_anomaly = anomaly_context;
        weight_optimizer.ZeroGrad();
        theta_optimizer.ZeroGrad();
        if (!recovery.enabled) {
          // Re-run the failing stage under the autograd numeric trace to
          // name the first op that produced a non-finite value.
          std::vector<std::pair<std::string, Variable>> named =
              supernet.NamedParameters();
          const std::vector<std::pair<std::string, Variable>> arch_named =
              supernet.NamedArchParameters();
          named.insert(named.end(), arch_named.begin(), arch_named.end());
          const std::vector<int64_t>& attr_batch =
              w_stage ? train_batch : val_batch;
          std::function<void()> replay_hook;
          if (w_stage && options_.fault_injection_hook) {
            replay_hook = [&, epoch, step] {
              options_.fault_injection_hook(epoch, step, &supernet);
            };
          }
          const std::string attribution = numerics::AttributeDivergence(
              [&] {
                Tensor x, y;
                data.train().GetBatch(attr_batch, &x, &y);
                return ag::L1Loss(supernet.Forward(ag::Constant(x)),
                                  ag::Constant(y));
              },
              named, replay_hook);
          return Status::Internal(anomaly_context + "; " + attribution);
        }
        // Step-skip tier: dropping the poisoned update is enough while the
        // parameters themselves are still clean (an anomaly caught before
        // any optimizer step, e.g. a bad gradient). The unrolled Theta path
        // can corrupt weights before its anomaly is classified, so re-check
        // instead of trusting the anomaly kind alone.
        const bool params_poisoned =
            anomaly == numerics::Anomaly::kNonFiniteParameter ||
            monitor.CheckParameters(supernet.Parameters()) !=
                numerics::Anomaly::kNone ||
            monitor.CheckParameters(supernet.ArchParameters()) !=
                numerics::Anomaly::kNone;
        if (!params_poisoned &&
            ++consecutive_skips <= recovery.max_consecutive_skips) {
          ++result.skipped_steps;
          if (metrics != nullptr) {
            metrics->GetCounter(kMetricSkippedSteps)->Increment();
          }
          continue;
        }
        // Rollback tier: restore the last-good snapshot, back off both
        // learning rates, and perturb the Rng so subsequent shuffles
        // diverge from the poisoned trajectory.
        if (recoveries_left <= 0 || !have_last_good) {
          return Status::Internal(
              anomaly_context + "; recovery budget exhausted after " +
              std::to_string(recovery.max_recoveries) + " rollbacks");
        }
        --recoveries_left;
        ++result.recoveries;
        const Status restore_status = RestoreSearchState(
            last_good, &supernet, &weight_optimizer, &theta_optimizer, &rng,
            &pseudo_train, &pseudo_val);
        AUTOCTS_CHECK(restore_status.ok()) << restore_status.ToString();
        lr_scale *= recovery.lr_backoff;
        weight_optimizer.SetLearningRate(options_.w_learning_rate * lr_scale);
        theta_optimizer.SetLearningRate(options_.theta_learning_rate *
                                        lr_scale);
        (void)rng.Next();
        monitor.Reset();
        consecutive_skips = 0;
        start_epoch = last_good.epoch;
        start_step = last_good.step;
        val_loss_sum = last_good.val_loss_sum;
        steps = last_good.epoch_steps;
        resume_mid_epoch = last_good.step > 0;
        result.final_validation_loss =
            (last_good.step == 0 && steps > 0)
                ? val_loss_sum / static_cast<double>(steps)
                : last_good.final_validation_loss;
        if (metrics != nullptr) {
          // Roll the registry back with the rest of the state, then resync
          // the outcome counters from the result fields, which deliberately
          // are not rolled back (a recovery happened; the row log should
          // say so).
          const Status metrics_status =
              last_good.metrics_state.empty()
                  ? Status::Ok()
                  : metrics->DecodeState(last_good.metrics_state);
          if (last_good.metrics_state.empty() || !metrics_status.ok()) {
            metrics->Reset();
            RegisterSearchMetrics(metrics);
          }
          metrics->GetCounter(kMetricRecoveries)->Set(result.recoveries);
          metrics->GetCounter(kMetricSkippedSteps)->Set(result.skipped_steps);
        }
        if (options_.verbose) {
          AUTOCTS_LOG(INFO) << "search recovery #" << result.recoveries
                            << ": " << anomaly_context << "; lr scale now "
                            << lr_scale << ", restarting from epoch "
                            << start_epoch << " step " << start_step;
        }
        restart = true;
        break;
      }

      val_loss_sum += step_val_loss;
      ++steps;
      ++executed_steps;
      if (metrics != nullptr) {
        metrics->GetCounter(kMetricStepsTotal)->Increment();
        metrics->GetGauge(kMetricTrainLoss)->Set(w_train_loss);
        metrics->GetGauge(kMetricValLossStep)->Set(step_val_loss);
        metrics->GetGauge(kMetricGradNormW)->Set(w_grad_norm);
        metrics->GetGauge(kMetricGradNormTheta)->Set(theta_grad_norm);
        metrics->GetHistogram(kMetricGradNormWHist, {})->Observe(w_grad_norm);
        // Row emission precedes the snapshot and checkpoint captures below
        // so a rolled-back or resumed run replays exactly the rows an
        // uninterrupted run would have logged.
        if (options_.metrics_every_n_batches > 0 &&
            metrics->GetCounter(kMetricStepsTotal)->value() %
                    options_.metrics_every_n_batches ==
                0) {
          emit_metrics_row("step", epoch, step);
        }
        // The epoch row is emitted here — not after the step loop — so it
        // lands before an epoch-boundary checkpoint rolls the cursor; a run
        // resumed from that checkpoint then has the identical row log.
        if (step + 1 == max_steps) {
          emit_metrics_row("epoch", epoch, step);
        }
      }
      consecutive_skips = 0;
      if (recovery.enabled &&
          ++healthy_steps_since_snapshot >= recovery.snapshot_every_n_batches) {
        capture_snapshot(epoch, step + 1, max_steps, val_loss_sum, steps,
                         result.final_validation_loss);
      }

      if (checkpointing &&
          ++batches_since_checkpoint >= options_.checkpoint_every_n_batches) {
        batches_since_checkpoint = 0;
        AUTOCTS_TRACE_SCOPE("search/checkpoint");
        if (metrics != nullptr) {
          // Incremented before the capture so a resumed run's counter
          // already reflects the checkpoint it restarted from.
          metrics->GetCounter(kMetricCheckpoints)->Increment();
        }
        SearchCheckpoint checkpoint =
            CaptureSearchState(supernet, weight_optimizer, theta_optimizer,
                               rng, pseudo_train, pseudo_val);
        checkpoint.metrics_state =
            metrics != nullptr ? metrics->EncodeState() : std::string();
        checkpoint.config_fingerprint = fingerprint;
        // Cursor = the first batch the resumed run executes; a checkpoint
        // on the last batch of an epoch rolls over to the next epoch's
        // preamble.
        checkpoint.epoch = epoch;
        checkpoint.step = step + 1;
        if (checkpoint.step >= max_steps) {
          checkpoint.epoch = epoch + 1;
          checkpoint.step = 0;
        }
        checkpoint.val_loss_sum = val_loss_sum;
        checkpoint.epoch_steps = steps;
        checkpoint.final_validation_loss = result.final_validation_loss;
        // Write-side half of last-good generation tracking: never replace a
        // healthy on-disk generation with an unhealthy one. Unreachable
        // when the per-step checks above work, but cheap insurance for the
        // scalar fields they do not cover.
        const Status health = CheckpointNumericHealth(checkpoint);
        Status status = health;
        if (health.ok()) {
          const fault::RetryOutcome outcome = fault::RetryCall(
              options_.io_retry,
              "search checkpoint " + options_.checkpoint_path, [&] {
                return SaveSearchCheckpoint(checkpoint,
                                            options_.checkpoint_path);
              });
          status = outcome.status;
          if (metrics != nullptr) {
            if (outcome.retries() > 0) {
              metrics->GetCounter(kMetricIoRetries)
                  ->Increment(outcome.retries());
            }
            if (!outcome.status.ok()) {
              metrics->GetCounter(kMetricIoFailures)->Increment();
            }
          }
        }
        if (!status.ok()) {
          AUTOCTS_LOG(WARNING)
              << "checkpoint write failed: " << status.ToString();
        } else {
          if (metrics != nullptr && !options_.metrics_path.empty()) {
            const fault::RetryOutcome sink_outcome = fault::RetryCall(
                options_.io_retry,
                "metrics sinks " + options_.metrics_path,
                [&] { return metrics->WriteSinks(options_.metrics_path); });
            if (sink_outcome.retries() > 0) {
              metrics->GetCounter(kMetricIoRetries)
                  ->Increment(sink_outcome.retries());
            }
            if (!sink_outcome.status.ok()) {
              // Telemetry only: degrade to a warning, never kill the search.
              metrics->GetCounter(kMetricIoFailures)->Increment();
              AUTOCTS_LOG(WARNING) << "metrics sink write failed: "
                                   << sink_outcome.status.ToString();
            }
          }
          if (options_.post_checkpoint_hook) {
            options_.post_checkpoint_hook(checkpoint_ordinal,
                                          options_.checkpoint_path);
          }
          ++checkpoint_ordinal;
        }
      }

      // Cooperative interruption, honored at the end of the step — after
      // the periodic-checkpoint block, so the graceful-shutdown cursor uses
      // the same math and a resumed run re-enters exactly where an
      // uninterrupted one would be (never re-running an epoch preamble).
      const Status interrupt =
          CheckInterrupt(options_.cancel, options_.deadline, executed_steps,
                         options_.step_budget, "search");
      if (!interrupt.ok()) {
        if (checkpointing) {
          AUTOCTS_TRACE_SCOPE("search/checkpoint");
          // Unlike the periodic block this does not advance the checkpoints
          // metric: only periodic writes count, so a run resumed from this
          // checkpoint reports the same counter an uninterrupted run does.
          SearchCheckpoint checkpoint =
              CaptureSearchState(supernet, weight_optimizer, theta_optimizer,
                                 rng, pseudo_train, pseudo_val);
          checkpoint.metrics_state =
              metrics != nullptr ? metrics->EncodeState() : std::string();
          checkpoint.config_fingerprint = fingerprint;
          checkpoint.epoch = epoch;
          checkpoint.step = step + 1;
          if (checkpoint.step >= max_steps) {
            checkpoint.epoch = epoch + 1;
            checkpoint.step = 0;
          }
          checkpoint.val_loss_sum = val_loss_sum;
          checkpoint.epoch_steps = steps;
          checkpoint.final_validation_loss = result.final_validation_loss;
          const Status health = CheckpointNumericHealth(checkpoint);
          Status save = health;
          if (health.ok()) {
            save = fault::RetryCall(
                       options_.io_retry,
                       "final checkpoint " + options_.checkpoint_path,
                       [&] {
                         return SaveSearchCheckpoint(
                             checkpoint, options_.checkpoint_path);
                       })
                       .status;
          }
          if (!save.ok()) {
            AUTOCTS_LOG(WARNING)
                << "final checkpoint write failed: " << save.ToString();
          } else if (options_.verbose) {
            AUTOCTS_LOG(INFO) << "final checkpoint written to "
                              << options_.checkpoint_path;
          }
        }
        AUTOCTS_LOG(WARNING) << "search interrupted: " << interrupt.ToString();
        return interrupt;
      }
    }
    if (restart) break;
    result.final_validation_loss =
        steps > 0 ? val_loss_sum / static_cast<double>(steps) : 0.0;
    if (options_.verbose) {
      AUTOCTS_LOG(INFO) << "search epoch " << epoch + 1 << "/"
                        << options_.epochs << " tau "
                        << supernet.temperature() << " val loss "
                        << result.final_validation_loss;
    }
  }
  }  // while (restart)

  {
    AUTOCTS_TRACE_SCOPE("search/derive");
    result.top_genotypes =
        supernet.DeriveTopK(std::max<int64_t>(1, options_.derive_top_k));
    result.genotype = result.top_genotypes.front();
  }
  if (!options_.use_macro) {
    // Replicate the single searched block into a homogeneous sequential
    // stack (the paper's "w/o macro search" evaluation protocol).
    Genotype stacked;
    stacked.nodes_per_block = result.genotype.nodes_per_block;
    for (int64_t b = 0; b < eval_blocks; ++b) {
      stacked.blocks.push_back(result.genotype.blocks[0]);
      stacked.block_inputs.push_back(b);  // Sequential chain.
    }
    result.genotype = stacked;
    // The stacked rewrite invalidates the per-block candidate ranking;
    // the ablation protocol evaluates the single stacked architecture.
    result.top_genotypes = {result.genotype};
  }

  // Rough peak memory: parameters + Adam moments (x3) + one batch of mixed
  // activations across all cells/edges/ops.
  const double param_bytes =
      static_cast<double>(result.supernet_parameters) * 8.0 * 3.0;
  const double act_elems =
      static_cast<double>(options_.batch_size) * data.window.input_length *
      data.num_nodes * supernet_config.hidden_dim *
      supernet_config.op_set.size() * NumPairs(supernet_config.micro_nodes) *
      supernet_config.macro_blocks /
      std::max<int64_t>(1, supernet_config.partial_denominator);
  result.estimated_memory_mb = (param_bytes + act_elems * 8.0) / (1024.0 * 1024.0);
  result.search_seconds = timer.Seconds();
  return result;
}

}  // namespace autocts::core
