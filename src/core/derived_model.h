// Builds a concrete forecasting model from a derived Genotype for the
// architecture evaluation stage (Section 3.4): the discrete architecture is
// retrained from scratch with fresh weights.
#ifndef AUTOCTS_CORE_DERIVED_MODEL_H_
#define AUTOCTS_CORE_DERIVED_MODEL_H_

#include <memory>
#include <vector>

#include "core/genotype.h"
#include "core/micro_dag.h"
#include "models/forecasting_model.h"

namespace autocts::core {

// A discrete ST-block: only the kept edges exist; each node sums its
// incoming transformations; the last node is the block output.
class DerivedCell : public nn::Module {
 public:
  DerivedCell(const BlockGenotype& block, int64_t num_nodes,
              const ops::OpContext& context);

  Variable Forward(const Variable& input);

 private:
  int64_t num_nodes_;
  std::vector<EdgeGene> edges_;
  std::vector<std::unique_ptr<WrappedOp>> edge_ops_;  // parallel to edges_
};

// The full derived forecasting model: embedding -> ST-backbone (blocks
// wired per block_inputs, all outputs merged) -> output head.
class DerivedModel : public models::ForecastingModel {
 public:
  DerivedModel(const Genotype& genotype,
               const models::ModelContext& model_context);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "AutoCTS"; }

  const Genotype& genotype() const { return genotype_; }

 private:
  Genotype genotype_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  std::vector<std::unique_ptr<DerivedCell>> cells_;
  models::OutputHead head_;
};

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_DERIVED_MODEL_H_
