#include "core/evaluator.h"

namespace autocts::core {

std::unique_ptr<DerivedModel> BuildDerivedModel(
    const Genotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, uint64_t seed) {
  models::ModelContext context;
  context.num_nodes = data.num_nodes;
  context.in_features = data.in_features;
  context.input_length = data.window.input_length;
  context.output_length = data.window.output_length;
  context.hidden_dim = hidden_dim;
  context.adjacency = data.adjacency;
  context.seed = seed;
  return std::make_unique<DerivedModel>(genotype, context);
}

models::EvalResult EvaluateGenotype(const Genotype& genotype,
                                    const models::PreparedData& data,
                                    int64_t hidden_dim,
                                    const models::TrainConfig& config) {
  std::unique_ptr<DerivedModel> model =
      BuildDerivedModel(genotype, data, hidden_dim, config.seed);
  return models::TrainAndEvaluate(model.get(), data, config);
}

StatusOr<models::EvalResult> EvaluateGenotypeWithStatus(
    const Genotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, const models::TrainConfig& config) {
  std::unique_ptr<DerivedModel> model =
      BuildDerivedModel(genotype, data, hidden_dim, config.seed);
  return models::TrainAndEvaluateWithStatus(model.get(), data, config);
}

StatusOr<TrainedGenotype> TrainGenotypeWithStatus(
    const Genotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, const models::TrainConfig& config) {
  TrainedGenotype result;
  result.model = BuildDerivedModel(genotype, data, hidden_dim, config.seed);
  StatusOr<models::EvalResult> eval =
      models::TrainAndEvaluateWithStatus(result.model.get(), data, config);
  if (!eval.ok()) return eval.status();
  result.eval = eval.value();
  result.model->SetTraining(false);
  return StatusOr<TrainedGenotype>(std::move(result));
}

}  // namespace autocts::core
