// The micro search space (Section 3.2): a DAG over M latent representations
// whose edges are temperature-annealed softmax mixtures over the operator
// set (Eqs. 4-6), with PC-DARTS style partial channel connections
// (Section 4.1.4) for memory efficiency.
#ifndef AUTOCTS_CORE_MICRO_DAG_H_
#define AUTOCTS_CORE_MICRO_DAG_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/operator_set.h"
#include "nn/batch_norm.h"
#include "ops/op_registry.h"

namespace autocts::core {

// Index of node pair (i, j), i < j, in the flattened pair list.
int64_t PairIndex(int64_t i, int64_t j);
// Number of pairs for an M-node micro-DAG: M(M-1)/2.
int64_t NumPairs(int64_t num_nodes);

// ReLU - operator - BN wrapper applied to parametric operators (the DARTS
// ordering the paper adopts, Section 4.1.4). Non-parametric operators
// (zero, identity) pass through unwrapped.
class WrappedOp : public nn::Module {
 public:
  WrappedOp(const std::string& op_name, const ops::OpContext& context);

  Variable Forward(const Variable& x);
  const std::string& op_name() const { return op_name_; }

 private:
  std::string op_name_;
  bool parametric_;
  ops::StOperatorPtr op_;
  std::unique_ptr<nn::BatchNorm> batch_norm_;
};

// One mixed edge: all |O| candidate operators evaluated and combined with
// the provided softmax weights (Eq. 4). With partial channels, only the
// first channels/denominator channels go through the operators; the rest
// bypass, and the output channels are shuffled.
class MixedEdge : public nn::Module {
 public:
  MixedEdge(const OperatorSet& op_set, const ops::OpContext& context,
            int64_t partial_denominator);

  // x: [B, T, N, D]; op_weights: [|O|] mixture weights.
  Variable Forward(const Variable& x, const Variable& op_weights);

  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }

 private:
  int64_t channels_;
  int64_t active_channels_;
  std::vector<std::unique_ptr<WrappedOp>> ops_;
};

// A full micro-DAG cell: M nodes, a MixedEdge per pair, architecture
// parameters alpha (per pair, over operators) and beta (per node, over
// incoming groups). Arch parameters are NOT in Parameters(); they are
// returned by ArchParameters() and optimized by the Theta optimizer.
class MicroDagCell : public nn::Module {
 public:
  MicroDagCell(int64_t num_nodes, const OperatorSet& op_set,
               const ops::OpContext& context, int64_t partial_denominator,
               Rng* rng);

  // Computes h_{M-1} from the input representation h_0 (Eq. 6), using
  // temperature `tau` on the alpha softmax.
  Variable Forward(const Variable& input, double tau);

  std::vector<Variable> ArchParameters() const;

  // ArchParameters() with stable names ("alpha", "beta1" .. "beta{M-1}"),
  // in the same order; used by checkpoint serialization.
  std::vector<std::pair<std::string, Variable>> NamedArchParameters() const;

  // The raw alpha parameter [num_pairs, |O|] (for cost-aware search
  // regularizers; see core/cost_model.h).
  const Variable& alpha_parameter() const { return alpha_; }

  // Current (post-softmax, tau=1) alpha weights for pair p: [|O|] tensor.
  Tensor AlphaWeights(int64_t pair) const;
  // Current beta weights for node j: [j] tensor.
  Tensor BetaWeights(int64_t node) const;

  int64_t num_nodes() const { return num_nodes_; }
  const OperatorSet& op_set() const { return op_set_; }

 private:
  int64_t num_nodes_;
  OperatorSet op_set_;
  std::vector<std::unique_ptr<MixedEdge>> edges_;  // indexed by PairIndex
  Variable alpha_;                 // [num_pairs, |O|]
  std::vector<Variable> betas_;    // betas_[j-1] has shape [j], j = 1..M-1
};

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_MICRO_DAG_H_
