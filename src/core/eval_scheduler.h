// Parallel top-K candidate evaluation (the final AutoCTS stage, made
// concurrent): an EvalScheduler takes the K genotypes derived from the
// trained supernet (Supernet::DeriveTopK) and trains/evaluates them on a
// bounded pool of dedicated worker threads — its own std::threads, not the
// tensor ParallelFor pool, so candidate-level and kernel-level parallelism
// compose without deadlock (concurrent kernel calls serialize on the tensor
// pool's job mutex and stay bit-identical by its fixed-chunk contract).
//
// Guarantees:
//
//  * Determinism. Candidate i trains with its own RNG stream split from the
//    batch seed as a pure function of (seed, i) (CandidateSeed), reads the
//    shared PreparedData strictly read-only, and owns every other piece of
//    mutable state. Results are returned in candidate order regardless of
//    completion order, so a batch evaluated with 4 workers is bit-identical
//    to the same batch evaluated with 1 — tests/eval_scheduler_test.cc
//    enforces this, including under artificially shuffled completion.
//
//  * Fault isolation. Each candidate runs through
//    models::TrainAndEvaluateWithStatus (the PR 3 status/recovery path): a
//    diverging candidate yields a per-candidate non-OK Status carrying the
//    anomaly attribution and never aborts the batch or disturbs its
//    neighbours.
//
//  * Crash-safe resume. With a checkpoint path set, every completed
//    candidate's EvalResult (or terminal failure) is persisted through the
//    PR 2 codec conventions — exact hex-float doubles, CRC32 trailer,
//    atomic write-tmp-then-rename with a retained ".prev" generation — and
//    a re-run over the same configuration skips the persisted candidates
//    and evaluates only the remainder, reproducing the uninterrupted
//    batch's results bit-for-bit.
//
//  * Observability. Worker threads record per-candidate "eval/candidate"
//    spans in the PR 4 tracer; the driver thread owns the (non-thread-safe)
//    metrics registry and records the "eval/" instrument set: queue depth
//    and worker occupancy (wall/ columns, excluded from determinism
//    comparisons), plus deterministic per-candidate loss/metric columns.
#ifndef AUTOCTS_CORE_EVAL_SCHEDULER_H_
#define AUTOCTS_CORE_EVAL_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"
#include "core/genotype.h"
#include "core/searcher.h"
#include "models/trainer.h"

namespace autocts::core {

// --------------------------------------------------------------------------
// Deterministic per-candidate RNG stream splitting.
// --------------------------------------------------------------------------

// Seed of candidate `index`'s private RNG stream: a SplitMix64 mix of the
// batch seed and the candidate index. A pure function of its arguments —
// never of worker count, scheduling, or completion order — so candidate i
// trains identically no matter which worker picks it up or when.
uint64_t CandidateSeed(uint64_t base_seed, int64_t index);

// --------------------------------------------------------------------------
// Candidate-set text codec (search output -> evaluate-topk input).
// --------------------------------------------------------------------------

// Serializes ranked candidates as a versioned multi-genotype document:
//
//   format = autocts-candidate-set
//   version = 1
//   count = <K>
//   candidate = <index>
//   <genotype text (core/genotype.h)>        (x K)
//
// Decode also accepts a bare single-genotype document (no format header)
// as a 1-candidate set, so `evaluate-topk --candidates` works on plain
// `search --out` files.
std::string EncodeCandidateSet(const std::vector<Genotype>& candidates);
StatusOr<std::vector<Genotype>> DecodeCandidateSet(const std::string& text);
Status SaveCandidateSet(const std::vector<Genotype>& candidates,
                        const std::string& path);
StatusOr<std::vector<Genotype>> LoadCandidateSet(const std::string& path);

// --------------------------------------------------------------------------
// Eval metrics (instrument names follow the "wall/" determinism convention
// of common/metrics_registry.h).
// --------------------------------------------------------------------------

inline constexpr char kEvalMetricCandidatesTotal[] = "eval/candidates_total";
inline constexpr char kEvalMetricCandidatesDone[] = "eval/candidates_done";
inline constexpr char kEvalMetricCandidatesFailed[] =
    "eval/candidates_failed";
inline constexpr char kEvalMetricCandidatesResumed[] =
    "eval/candidates_resumed";
inline constexpr char kEvalMetricTrainLoss[] = "eval/train_loss";
inline constexpr char kEvalMetricMae[] = "eval/mae";
inline constexpr char kEvalMetricRmse[] = "eval/rmse";
inline constexpr char kEvalMetricStatusOk[] = "eval/status_ok";
// Candidates terminated by the per-candidate watchdog (wall budget) or the
// training step budget. A deterministic function of the configured budgets
// when the step budget is the trigger, so it stays un-prefixed; failure
// records round-trip through checkpoints with their DEADLINE_EXCEEDED code
// intact, keeping resumed counts equal to fresh ones.
inline constexpr char kEvalMetricDeadlineExceeded[] =
    "eval/deadline_exceeded";
// Resilient-I/O counters (common/fault.h): checkpoint/sink write retries
// and final failures. Zero on healthy runs, a pure function of the
// installed fault plan otherwise.
inline constexpr char kEvalMetricIoRetries[] = "io/retries";
inline constexpr char kEvalMetricIoFailures[] = "io/failures";
// Scheduling/wall-clock derived (and configuration that varies with the
// schedule): legitimately different between otherwise identical runs.
inline constexpr char kEvalMetricWorkers[] = "wall/eval_workers";
inline constexpr char kEvalMetricQueueDepth[] = "wall/eval_queue_depth";
inline constexpr char kEvalMetricCandidateSec[] = "wall/eval_candidate_sec";
inline constexpr char kEvalMetricOccupancy[] = "wall/eval_worker_occupancy";
inline constexpr char kEvalMetricBatchSec[] = "wall/eval_batch_sec";

// Registers the eval instrument set (idempotent; fixes sink column order).
void RegisterEvalMetrics(obs::MetricsRegistry* registry);

// --------------------------------------------------------------------------
// Crash-safe eval checkpoint.
// --------------------------------------------------------------------------

// Persisted progress of one evaluation batch. Failed candidates are
// recorded too: divergence is deterministic under this codebase's
// bit-identity contract, so re-evaluating a candidate that already failed
// would burn the same compute to reach the same anomaly.
struct EvalCheckpoint {
  static constexpr int64_t kFormatVersion = 1;

  // Fingerprint of (candidates, data extents, hidden_dim, TrainConfig);
  // resume refuses to restore progress into a different batch.
  std::string config_fingerprint;
  int64_t candidate_count = 0;

  // Completed evaluations keyed by candidate index, ascending.
  std::vector<std::pair<int64_t, models::EvalResult>> completed;
  // Terminal per-candidate failures: (index, status message), ascending.
  std::vector<std::pair<int64_t, std::string>> failed;
};

// Deterministic fingerprint of everything that shapes a batch's results.
std::string EvalConfigFingerprint(const std::vector<Genotype>& candidates,
                                  const models::PreparedData& data,
                                  int64_t hidden_dim,
                                  const models::TrainConfig& config);

// Text codec, following the search-checkpoint conventions: exact hex-float
// doubles and a crc32 trailer over every preceding byte. Decode returns a
// non-OK Status on any mismatch, truncation, or malformed record.
std::string EncodeEvalCheckpoint(const EvalCheckpoint& checkpoint);
StatusOr<EvalCheckpoint> DecodeEvalCheckpoint(const std::string& text);

// File wrappers (AtomicWriteFile protocol, ".prev" generation retained).
Status SaveEvalCheckpoint(const EvalCheckpoint& checkpoint,
                          const std::string& path);
StatusOr<EvalCheckpoint> LoadEvalCheckpoint(const std::string& path);
// Loads `path`, falling back to "<path>.prev" when the primary generation
// is missing or corrupt. `used_prev` (optional) reports which one loaded.
StatusOr<EvalCheckpoint> LoadEvalCheckpointOrPrev(const std::string& path,
                                                  bool* used_prev);

// --------------------------------------------------------------------------
// The scheduler.
// --------------------------------------------------------------------------

struct EvalSchedulerOptions {
  // Worker threads evaluating candidates concurrently; clamped to
  // [1, candidate count]. Any value yields bit-identical results.
  int64_t workers = 1;

  int64_t hidden_dim = 16;

  // Base training configuration. Candidate i trains under a copy with
  // seed = CandidateSeed(train.seed, i). Per-candidate observability is
  // owned by the scheduler: trace_path/metrics_path/metrics on this config
  // must stay unset (workers must not share a registry or the global
  // tracer session).
  models::TrainConfig train;

  // When non-empty: load completed progress from this path (skipping those
  // candidates), and persist every newly completed candidate.
  std::string checkpoint_path;

  // Driver-thread metrics (optional external registry, not owned;
  // metrics_path may be empty when `metrics` is set). Per-candidate rows
  // (kind "candidate", epoch = candidate index) are appended in candidate
  // order, one batch row (kind "batch") at the end; sinks are rewritten at
  // every checkpoint persist and at exit.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_path;

  bool verbose = false;

  // Cooperative interruption (common/cancellation.h). When the external
  // token is cancelled (signal-driven shutdown), the scheduler stops
  // handing out candidates, sweeps every in-flight candidate's private
  // token, drains the workers, and Evaluate returns kCancelled — progress
  // up to that point is already persisted per completion, so a resumed run
  // re-evaluates only the interrupted candidates, bit-identically.
  const CancellationToken* cancel = nullptr;  // not owned

  // Per-candidate budgets. A candidate that exceeds either is terminated
  // cooperatively by the watchdog (wall budget, checked every few
  // milliseconds against the FakeClock-compatible monotonic clock) or the
  // trainer's own step check, and recorded as a deterministic
  // DEADLINE_EXCEEDED failure — persisted like any other terminal failure,
  // while the remaining candidates continue undisturbed. The step budget
  // (total training batches) is the deterministic, machine-independent
  // knob; the wall budget is the real-deployment guard. 0 disables either.
  double candidate_wall_budget_seconds = 0.0;
  int64_t candidate_step_budget = 0;

  // Retry policy for checkpoint and metrics-sink writes (common/fault.h);
  // retries/failures land in the io/ counters, and a sink that still fails
  // degrades to a logged warning.
  fault::RetryPolicy io_retry;

  // ---- test seams (library code never installs these) ----

  // Tweak candidate `index`'s TrainConfig before it runs, e.g. to install
  // a fault_injection_hook on one candidate. Called on the worker thread,
  // before any training; must not touch shared mutable state.
  std::function<void(int64_t index, models::TrainConfig* config)>
      candidate_setup_hook;

  // Invoked on the worker thread after candidate `index`'s evaluation
  // finishes, before the result is published to the driver. Tests use it
  // to stall completions into an adversarial order.
  std::function<void(int64_t index)> completion_hook;

  // Invoked on the driver thread after each checkpoint persist, with the
  // number of candidates persisted so far (resumed ones included). Tests
  // throw from it to simulate a mid-batch crash at an exact kill point.
  std::function<void(int64_t persisted_count)> post_persist_hook;
};

// Outcome of one candidate, in candidate order.
struct CandidateOutcome {
  Status status = Status::Ok();
  models::EvalResult result;  // meaningful iff status.ok()
  bool resumed = false;       // restored from the checkpoint, not re-run
  // Wall-clock seconds this run spent evaluating the candidate (0 when
  // resumed). Nondeterministic, like every wall measurement.
  double wall_seconds = 0.0;
};

struct EvalBatchResult {
  std::vector<CandidateOutcome> candidates;  // index == candidate index
  int64_t evaluated = 0;  // freshly evaluated by this run
  int64_t resumed = 0;    // restored from the checkpoint
  int64_t failed = 0;     // non-OK outcomes (resumed failures included)
  // Best successful candidate by average MAE (ties to the lower index);
  // -1 when every candidate failed.
  int64_t best_index = -1;
  double wall_seconds = 0.0;
};

class EvalScheduler {
 public:
  explicit EvalScheduler(EvalSchedulerOptions options);

  // Evaluates every candidate. Per-candidate divergence never fails the
  // batch (it lands in that candidate's CandidateOutcome::status); the
  // batch itself fails only on an empty candidate list or an invalid
  // genotype. A checkpoint that cannot be written is logged and skipped; a
  // checkpoint that cannot be read (or fingerprints a different batch)
  // logs a warning and starts fresh.
  StatusOr<EvalBatchResult> Evaluate(const std::vector<Genotype>& candidates,
                                     const models::PreparedData& data);

  const EvalSchedulerOptions& options() const { return options_; }

 private:
  EvalSchedulerOptions options_;
};

// Convenience pipeline: run the joint search, then route its top-K derived
// candidates through an EvalScheduler. `scheduler.train.seed` defaulting to
// 0 is replaced by the search seed, so the one-seed CLI flow stays
// one-seed. Fails when the search itself fails; per-candidate evaluation
// failures are reported per candidate as above.
struct SearchEvaluateResult {
  SearchResult search;
  EvalBatchResult eval;
};
StatusOr<SearchEvaluateResult> SearchAndEvaluateTopK(
    const SearchOptions& search_options,
    const EvalSchedulerOptions& scheduler_options,
    const models::PreparedData& data);

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_EVAL_SCHEDULER_H_
