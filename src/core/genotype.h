// The derived architecture description: which operator sits on each kept
// edge of every ST-block's micro-DAG, and how the blocks connect in the
// ST-backbone. Serializable so searched architectures can be stored,
// transferred across datasets (Table 35), and inspected (Figure 8).
#ifndef AUTOCTS_CORE_GENOTYPE_H_
#define AUTOCTS_CORE_GENOTYPE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace autocts::core {

// One kept edge h_from -> h_to inside an ST-block, labelled with the
// operator applied along it.
struct EdgeGene {
  int64_t from = 0;
  int64_t to = 0;
  std::string op;

  bool operator==(const EdgeGene& other) const = default;
};

struct BlockGenotype {
  std::vector<EdgeGene> edges;

  bool operator==(const BlockGenotype& other) const = default;
};

struct Genotype {
  int64_t nodes_per_block = 5;  // M
  std::vector<BlockGenotype> blocks;
  // Macro topology: for block j (0-based), the index of the node feeding
  // it: 0 = the embedding layer, i >= 1 = block i-1's output.
  std::vector<int64_t> block_inputs;

  int64_t num_blocks() const { return static_cast<int64_t>(blocks.size()); }

  bool operator==(const Genotype& other) const = default;

  // Round-trippable text form (common/text_codec format).
  std::string ToText() const;
  static StatusOr<Genotype> FromText(const std::string& text);

  // Pretty multi-line description for logs and the Figure 8 case study.
  std::string ToPrettyString() const;

  // Count of each operator across all blocks (Figure 8 reports these).
  std::vector<std::pair<std::string, int64_t>> OperatorHistogram() const;

  // Structural validity: edge indices within range, edges acyclic (from <
  // to), block inputs referencing earlier nodes only.
  Status Validate() const;
};

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_GENOTYPE_H_
