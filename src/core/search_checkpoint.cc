#include "core/search_checkpoint.h"

#include <cstdlib>
#include <sstream>

#include "common/file_io.h"
#include "common/numerics.h"
#include "common/text_codec.h"

namespace autocts::core {
namespace {

constexpr char kFormatName[] = "autocts-search-checkpoint";
constexpr char kCrcKey[] = "crc32 = ";
// Sanity bound on serialized tensor extents; real checkpoints are far
// smaller, and the bound keeps a corrupt dimension from driving a huge
// allocation before the record is rejected.
constexpr int64_t kMaxTensorElements = int64_t{1} << 31;

void AppendTensor(std::ostringstream* out, const Tensor& tensor) {
  *out << " " << tensor.ndim();
  for (int64_t d : tensor.shape()) *out << " " << d;
  for (int64_t i = 0; i < tensor.size(); ++i) {
    *out << " " << FormatExactDouble(tensor.data()[i]);
  }
}

Status ParseTensor(std::istringstream* stream, const std::string& label,
                   Tensor* out) {
  int64_t ndim = 0;
  if (!(*stream >> ndim) || ndim < 0 || ndim > 8) {
    return Status::InvalidArgument("bad tensor rank in record: " + label);
  }
  Shape shape(ndim);
  int64_t elements = 1;
  for (int64_t d = 0; d < ndim; ++d) {
    if (!(*stream >> shape[d]) || shape[d] < 0 ||
        shape[d] > kMaxTensorElements || elements * std::max<int64_t>(shape[d], 1) > kMaxTensorElements) {
      return Status::InvalidArgument("bad tensor shape in record: " + label);
    }
    elements *= shape[d];
  }
  Tensor value(shape);
  std::string token;
  for (int64_t i = 0; i < value.size(); ++i) {
    if (!(*stream >> token) || !ParseExactDouble(token, &value.data()[i])) {
      return Status::InvalidArgument("truncated or malformed values in record: " +
                                     label);
    }
  }
  *out = value;
  return Status::Ok();
}

Status ExpectEndOfRecord(std::istringstream* stream, const std::string& label) {
  std::string extra;
  if (*stream >> extra) {
    return Status::InvalidArgument("trailing tokens in record: " + label);
  }
  return Status::Ok();
}

void AppendAdamState(std::ostringstream* out, const std::string& key,
                     const optim::AdamState& state) {
  *out << key << " = " << state.step_count << " " << state.first_moment.size()
       << "\n";
  for (size_t slot = 0; slot < state.first_moment.size(); ++slot) {
    *out << key << "_m = " << slot << " "
         << (state.first_moment[slot].defined() ? 1 : 0);
    if (state.first_moment[slot].defined()) {
      AppendTensor(out, state.first_moment[slot]);
    }
    *out << "\n";
    *out << key << "_v = " << slot << " "
         << (state.second_moment[slot].defined() ? 1 : 0);
    if (state.second_moment[slot].defined()) {
      AppendTensor(out, state.second_moment[slot]);
    }
    *out << "\n";
  }
}

Status ParseMomentRecords(const TextReader& reader, const std::string& key,
                          int64_t slots, std::vector<Tensor>* out) {
  const std::vector<std::string> records = reader.GetAll(key);
  if (static_cast<int64_t>(records.size()) != slots) {
    return Status::InvalidArgument(
        key + " record count mismatch: expected " + std::to_string(slots) +
        ", found " + std::to_string(records.size()));
  }
  out->assign(slots, Tensor());
  std::vector<bool> seen(slots, false);
  for (const std::string& record : records) {
    std::istringstream stream(record);
    int64_t slot = 0;
    int defined = 0;
    if (!(stream >> slot >> defined) || slot < 0 || slot >= slots ||
        (defined != 0 && defined != 1) || seen[slot]) {
      return Status::InvalidArgument("malformed " + key + " record: " + record);
    }
    seen[slot] = true;
    if (defined == 1) {
      Status status = ParseTensor(&stream, key, &(*out)[slot]);
      if (!status.ok()) return status;
    }
    Status status = ExpectEndOfRecord(&stream, key);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status ParseAdamState(const TextReader& reader, const std::string& key,
                      optim::AdamState* out) {
  StatusOr<std::string> header = reader.Get(key);
  if (!header.ok()) return header.status();
  std::istringstream stream(header.value());
  int64_t slots = 0;
  if (!(stream >> out->step_count >> slots) || out->step_count < 0 ||
      slots < 0 || slots > (int64_t{1} << 20)) {
    return Status::InvalidArgument("malformed " + key + " header: " +
                                   header.value());
  }
  Status status = ExpectEndOfRecord(&stream, key);
  if (!status.ok()) return status;
  status = ParseMomentRecords(reader, key + "_m", slots, &out->first_moment);
  if (!status.ok()) return status;
  return ParseMomentRecords(reader, key + "_v", slots, &out->second_moment);
}

Status ParseNamedTensors(
    const TextReader& reader, const std::string& key,
    std::vector<std::pair<std::string, Tensor>>* out) {
  StatusOr<int64_t> count = reader.GetInt(key + "_count");
  if (!count.ok()) return count.status();
  const std::vector<std::string> records = reader.GetAll(key);
  if (static_cast<int64_t>(records.size()) != count.value()) {
    return Status::InvalidArgument(
        key + " record count mismatch: header says " +
        std::to_string(count.value()) + ", found " +
        std::to_string(records.size()));
  }
  out->clear();
  for (const std::string& record : records) {
    std::istringstream stream(record);
    std::string name;
    if (!(stream >> name)) {
      return Status::InvalidArgument("missing name in " + key + " record");
    }
    Tensor value;
    Status status = ParseTensor(&stream, key + " " + name, &value);
    if (!status.ok()) return status;
    status = ExpectEndOfRecord(&stream, key + " " + name);
    if (!status.ok()) return status;
    out->emplace_back(name, value);
  }
  return Status::Ok();
}

Status ParseIndexOrder(const TextReader& reader, const std::string& key,
                       std::vector<int64_t>* out) {
  StatusOr<std::string> record = reader.Get(key);
  if (!record.ok()) return record.status();
  std::istringstream stream(record.value());
  int64_t n = 0;
  if (!(stream >> n) || n < 0 || n > (int64_t{1} << 32)) {
    return Status::InvalidArgument("malformed " + key + " record");
  }
  out->assign(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    if (!(stream >> (*out)[i]) || (*out)[i] < 0) {
      return Status::InvalidArgument("truncated " + key + " record");
    }
  }
  return ExpectEndOfRecord(&stream, key);
}

// Rolls an Adam optimizer back to its freshly-constructed state (step 0,
// all moment slots lazy-undefined); used when a multi-part restore fails
// halfway so the caller can safely fall back to a fresh search.
void ResetAdam(optim::Adam* optimizer, size_t slots) {
  optim::AdamState fresh;
  fresh.first_moment.resize(slots);
  fresh.second_moment.resize(slots);
  const Status status = optimizer->ImportState(fresh);
  AUTOCTS_CHECK(status.ok()) << status.ToString();
}

}  // namespace

std::string SearchConfigFingerprint(const SearchOptions& options,
                                    int64_t num_train_samples) {
  std::ostringstream out;
  out << "v" << SearchCheckpoint::kFormatVersion
      << " seed=" << options.seed << " epochs=" << options.epochs
      << " batch=" << options.batch_size
      << " max_batches=" << options.max_batches_per_epoch
      << " bilevel=" << options.bilevel_order
      << " macro=" << options.use_macro
      << " temp=" << options.use_temperature
      << " tau=" << FormatExactDouble(options.tau_init) << ","
      << FormatExactDouble(options.tau_decay) << ","
      << FormatExactDouble(options.tau_min)
      << " theta=" << FormatExactDouble(options.theta_learning_rate) << ","
      << FormatExactDouble(options.theta_beta1) << ","
      << FormatExactDouble(options.theta_beta2) << ","
      << FormatExactDouble(options.theta_weight_decay)
      << " w=" << FormatExactDouble(options.w_learning_rate) << ","
      << FormatExactDouble(options.w_weight_decay)
      << " clip=" << FormatExactDouble(options.clip_norm)
      << " cost=" << FormatExactDouble(options.cost_weight)
      << " eps=" << FormatExactDouble(options.unrolled_epsilon)
      << " supernet=" << options.supernet.micro_nodes << "x"
      << options.supernet.macro_blocks << "x" << options.supernet.hidden_dim
      << "/" << options.supernet.partial_denominator << "/"
      << options.supernet.edges_per_node << " ops=" << options.supernet.op_set.name;
  for (const std::string& op : options.supernet.op_set.op_names) {
    out << "," << op;
  }
  out << " train_samples=" << num_train_samples;
  return out.str();
}

std::string EncodeSearchCheckpoint(const SearchCheckpoint& checkpoint) {
  std::ostringstream out;
  out << "format = " << kFormatName << "\n";
  out << "version = " << SearchCheckpoint::kFormatVersion << "\n";
  out << "config = " << checkpoint.config_fingerprint << "\n";
  out << "cursor = " << checkpoint.epoch << " " << checkpoint.step << "\n";
  out << "tau = " << FormatExactDouble(checkpoint.tau) << "\n";
  out << "val_loss = " << FormatExactDouble(checkpoint.val_loss_sum) << " "
      << checkpoint.epoch_steps << " "
      << FormatExactDouble(checkpoint.final_validation_loss) << "\n";
  out << "rng = " << checkpoint.rng.words[0] << " " << checkpoint.rng.words[1]
      << " " << checkpoint.rng.words[2] << " " << checkpoint.rng.words[3]
      << " " << (checkpoint.rng.has_cached_normal ? 1 : 0) << " "
      << FormatExactDouble(checkpoint.rng.cached_normal) << "\n";
  out << "order_train = " << checkpoint.pseudo_train.size();
  for (int64_t index : checkpoint.pseudo_train) out << " " << index;
  out << "\n";
  out << "order_val = " << checkpoint.pseudo_val.size();
  for (int64_t index : checkpoint.pseudo_val) out << " " << index;
  out << "\n";
  out << "param_count = " << checkpoint.parameters.size() << "\n";
  for (const auto& [name, value] : checkpoint.parameters) {
    out << "param = " << name;
    AppendTensor(&out, value);
    out << "\n";
  }
  out << "arch_count = " << checkpoint.arch_parameters.size() << "\n";
  for (const auto& [name, value] : checkpoint.arch_parameters) {
    out << "arch = " << name;
    AppendTensor(&out, value);
    out << "\n";
  }
  AppendAdamState(&out, "adam_w", checkpoint.weight_optimizer);
  AppendAdamState(&out, "adam_t", checkpoint.theta_optimizer);
  // Metrics state rides along as repeated single-line records so the
  // line-oriented reader (and the byte-flip corruption sweep) treat it
  // like any other payload. Zero lines — not an absent record — is the
  // "metrics off" encoding; absence only occurs in pre-observability
  // files, which still decode.
  {
    std::vector<std::string> metric_lines;
    if (!checkpoint.metrics_state.empty()) {
      std::istringstream stream(checkpoint.metrics_state);
      std::string line;
      while (std::getline(stream, line)) {
        if (!line.empty()) metric_lines.push_back(line);
      }
    }
    out << "metrics_count = " << metric_lines.size() << "\n";
    for (const std::string& line : metric_lines) {
      out << "metrics = " << line << "\n";
    }
  }
  std::string payload = out.str();
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "%s%08x\n", kCrcKey, Crc32(payload));
  payload += trailer;
  return payload;
}

StatusOr<SearchCheckpoint> DecodeSearchCheckpoint(const std::string& text) {
  // 1. Locate and verify the CRC trailer (the last line of the file). Any
  // truncation or byte flip anywhere above it fails here.
  const size_t marker = text.rfind(kCrcKey);
  if (marker == std::string::npos ||
      (marker != 0 && text[marker - 1] != '\n')) {
    return Status::InvalidArgument("checkpoint missing crc32 trailer");
  }
  // Strict trailer: exactly eight lowercase hex digits (the encoder's %08x)
  // plus an optional final newline. Anything else — including stray bytes
  // after the digits — is a corrupt file.
  std::string trailer = text.substr(marker + sizeof(kCrcKey) - 1);
  if (!trailer.empty() && trailer.back() == '\n') trailer.pop_back();
  if (trailer.size() != 8 ||
      trailer.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::InvalidArgument("malformed crc32 trailer: " + trailer);
  }
  const uint32_t expected =
      static_cast<uint32_t>(std::strtoul(trailer.c_str(), nullptr, 16));
  const std::string payload = text.substr(0, marker);
  const uint32_t actual = Crc32(payload);
  if (actual != expected) {
    return Status::InvalidArgument("checkpoint crc32 mismatch");
  }

  // 2. Parse the verified payload.
  StatusOr<TextReader> parsed = TextReader::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const TextReader& reader = parsed.value();

  StatusOr<std::string> format = reader.Get("format");
  if (!format.ok()) return format.status();
  if (format.value() != kFormatName) {
    return Status::InvalidArgument("not a search checkpoint: " +
                                   format.value());
  }
  StatusOr<int64_t> version = reader.GetInt("version");
  if (!version.ok()) return version.status();
  if (version.value() != SearchCheckpoint::kFormatVersion) {
    return Status::InvalidArgument("unsupported checkpoint version: " +
                                   std::to_string(version.value()));
  }

  SearchCheckpoint checkpoint;
  StatusOr<std::string> config = reader.Get("config");
  if (!config.ok()) return config.status();
  checkpoint.config_fingerprint = config.value();

  StatusOr<std::string> cursor = reader.Get("cursor");
  if (!cursor.ok()) return cursor.status();
  {
    std::istringstream stream(cursor.value());
    if (!(stream >> checkpoint.epoch >> checkpoint.step) ||
        checkpoint.epoch < 0 || checkpoint.step < 0) {
      return Status::InvalidArgument("malformed cursor: " + cursor.value());
    }
    Status status = ExpectEndOfRecord(&stream, "cursor");
    if (!status.ok()) return status;
  }

  StatusOr<std::string> tau = reader.Get("tau");
  if (!tau.ok()) return tau.status();
  if (!ParseExactDouble(tau.value(), &checkpoint.tau)) {
    return Status::InvalidArgument("malformed tau: " + tau.value());
  }

  StatusOr<std::string> val_loss = reader.Get("val_loss");
  if (!val_loss.ok()) return val_loss.status();
  {
    std::istringstream stream(val_loss.value());
    std::string sum_token, final_token;
    if (!(stream >> sum_token >> checkpoint.epoch_steps >> final_token) ||
        checkpoint.epoch_steps < 0 ||
        !ParseExactDouble(sum_token, &checkpoint.val_loss_sum) ||
        !ParseExactDouble(final_token, &checkpoint.final_validation_loss)) {
      return Status::InvalidArgument("malformed val_loss: " + val_loss.value());
    }
    Status status = ExpectEndOfRecord(&stream, "val_loss");
    if (!status.ok()) return status;
  }

  StatusOr<std::string> rng = reader.Get("rng");
  if (!rng.ok()) return rng.status();
  {
    std::istringstream stream(rng.value());
    int has_cached = 0;
    std::string cached_token;
    if (!(stream >> checkpoint.rng.words[0] >> checkpoint.rng.words[1] >>
          checkpoint.rng.words[2] >> checkpoint.rng.words[3] >> has_cached >>
          cached_token) ||
        (has_cached != 0 && has_cached != 1) ||
        !ParseExactDouble(cached_token, &checkpoint.rng.cached_normal)) {
      return Status::InvalidArgument("malformed rng record: " + rng.value());
    }
    checkpoint.rng.has_cached_normal = has_cached == 1;
    Status status = ExpectEndOfRecord(&stream, "rng");
    if (!status.ok()) return status;
  }

  Status status =
      ParseIndexOrder(reader, "order_train", &checkpoint.pseudo_train);
  if (!status.ok()) return status;
  status = ParseIndexOrder(reader, "order_val", &checkpoint.pseudo_val);
  if (!status.ok()) return status;

  status = ParseNamedTensors(reader, "param", &checkpoint.parameters);
  if (!status.ok()) return status;
  status = ParseNamedTensors(reader, "arch", &checkpoint.arch_parameters);
  if (!status.ok()) return status;

  status = ParseAdamState(reader, "adam_w", &checkpoint.weight_optimizer);
  if (!status.ok()) return status;
  status = ParseAdamState(reader, "adam_t", &checkpoint.theta_optimizer);
  if (!status.ok()) return status;

  // Optional metrics block: pre-observability checkpoints (still version
  // 1, so their fingerprints remain valid) simply lack the record.
  StatusOr<int64_t> metrics_count = reader.GetInt("metrics_count");
  if (metrics_count.ok()) {
    const int64_t count = metrics_count.value();
    const std::vector<std::string> lines = reader.GetAll("metrics");
    if (count < 0 || count > (1 << 24) ||
        static_cast<int64_t>(lines.size()) != count) {
      return Status::InvalidArgument(
          "metrics_count does not match metrics records");
    }
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i > 0) checkpoint.metrics_state += '\n';
      checkpoint.metrics_state += lines[i];
    }
  } else if (metrics_count.status().code() != StatusCode::kNotFound) {
    return metrics_count.status();
  }
  return checkpoint;
}

Status SaveSearchCheckpoint(const SearchCheckpoint& checkpoint,
                            const std::string& path) {
  return AtomicWriteFile(path, EncodeSearchCheckpoint(checkpoint),
                         /*keep_previous=*/true);
}

StatusOr<SearchCheckpoint> LoadSearchCheckpoint(const std::string& path) {
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  StatusOr<SearchCheckpoint> checkpoint =
      DecodeSearchCheckpoint(content.value());
  if (!checkpoint.ok()) {
    return Status(checkpoint.status().code(),
                  path + ": " + checkpoint.status().message());
  }
  return checkpoint;
}

StatusOr<SearchCheckpoint> LoadSearchCheckpointOrPrev(const std::string& path,
                                                      bool* used_prev) {
  if (used_prev != nullptr) *used_prev = false;
  StatusOr<SearchCheckpoint> primary = LoadSearchCheckpoint(path);
  if (primary.ok()) return primary;
  const std::string prev_path = path + ".prev";
  if (!FileExists(prev_path)) return primary.status();
  StatusOr<SearchCheckpoint> previous = LoadSearchCheckpoint(prev_path);
  if (!previous.ok()) {
    return Status(primary.status().code(),
                  primary.status().message() +
                      "; fallback also failed: " + previous.status().message());
  }
  if (used_prev != nullptr) *used_prev = true;
  return previous;
}

Status CheckpointNumericHealth(const SearchCheckpoint& checkpoint) {
  if (!numerics::IsFiniteValue(checkpoint.tau)) {
    return Status::Internal("non-finite tau");
  }
  if (!numerics::IsFiniteValue(checkpoint.val_loss_sum)) {
    return Status::Internal("non-finite val_loss_sum");
  }
  if (!numerics::IsFiniteValue(checkpoint.final_validation_loss)) {
    return Status::Internal("non-finite final_validation_loss");
  }
  for (const auto& [name, tensor] : checkpoint.parameters) {
    if (!numerics::IsFinite(tensor)) {
      return Status::Internal("non-finite values in parameter '" + name + "'");
    }
  }
  for (const auto& [name, tensor] : checkpoint.arch_parameters) {
    if (!numerics::IsFinite(tensor)) {
      return Status::Internal("non-finite values in arch parameter '" + name +
                              "'");
    }
  }
  const auto check_adam = [](const optim::AdamState& state,
                             const char* label) -> Status {
    for (size_t slot = 0; slot < state.first_moment.size(); ++slot) {
      const Tensor& m = state.first_moment[slot];
      if (m.defined() && !numerics::IsFinite(m)) {
        return Status::Internal(std::string("non-finite first moment in ") +
                                label + " slot " + std::to_string(slot));
      }
    }
    for (size_t slot = 0; slot < state.second_moment.size(); ++slot) {
      const Tensor& v = state.second_moment[slot];
      if (v.defined() && !numerics::IsFinite(v)) {
        return Status::Internal(std::string("non-finite second moment in ") +
                                label + " slot " + std::to_string(slot));
      }
    }
    return Status::Ok();
  };
  Status status = check_adam(checkpoint.weight_optimizer, "weight optimizer");
  if (!status.ok()) return status;
  return check_adam(checkpoint.theta_optimizer, "theta optimizer");
}

SearchCheckpoint CaptureSearchState(const Supernet& supernet,
                                    const optim::Adam& weight_optimizer,
                                    const optim::Adam& theta_optimizer,
                                    const Rng& rng,
                                    const std::vector<int64_t>& pseudo_train,
                                    const std::vector<int64_t>& pseudo_val) {
  SearchCheckpoint checkpoint;
  checkpoint.tau = supernet.temperature();
  for (const auto& [name, parameter] : supernet.NamedParameters()) {
    checkpoint.parameters.emplace_back(name, parameter.value().Clone());
  }
  for (const auto& [name, parameter] : supernet.NamedArchParameters()) {
    checkpoint.arch_parameters.emplace_back(name, parameter.value().Clone());
  }
  checkpoint.weight_optimizer = weight_optimizer.ExportState();
  checkpoint.theta_optimizer = theta_optimizer.ExportState();
  checkpoint.rng = rng.GetState();
  checkpoint.pseudo_train = pseudo_train;
  checkpoint.pseudo_val = pseudo_val;
  return checkpoint;
}

Status RestoreSearchState(const SearchCheckpoint& checkpoint,
                          Supernet* supernet, optim::Adam* weight_optimizer,
                          optim::Adam* theta_optimizer, Rng* rng,
                          std::vector<int64_t>* pseudo_train,
                          std::vector<int64_t>* pseudo_val) {
  AUTOCTS_CHECK(supernet != nullptr);
  std::vector<std::pair<std::string, Variable>> parameters =
      supernet->NamedParameters();
  std::vector<std::pair<std::string, Variable>> arch_parameters =
      supernet->NamedArchParameters();

  // Phase 1: validate everything against the live searcher before touching
  // any state, so a rejected checkpoint leaves the fresh run intact.
  if (checkpoint.parameters.size() != parameters.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " +
        std::to_string(checkpoint.parameters.size()) + ", supernet has " +
        std::to_string(parameters.size()));
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (checkpoint.parameters[i].first != parameters[i].first) {
      return Status::InvalidArgument(
          "parameter name mismatch at slot " + std::to_string(i) + ": " +
          checkpoint.parameters[i].first + " vs " + parameters[i].first);
    }
    if (checkpoint.parameters[i].second.shape() != parameters[i].second.shape()) {
      return Status::InvalidArgument("parameter shape mismatch for: " +
                                     parameters[i].first);
    }
  }
  if (checkpoint.arch_parameters.size() != arch_parameters.size()) {
    return Status::InvalidArgument(
        "arch parameter count mismatch: checkpoint has " +
        std::to_string(checkpoint.arch_parameters.size()) +
        ", supernet has " + std::to_string(arch_parameters.size()));
  }
  for (size_t i = 0; i < arch_parameters.size(); ++i) {
    if (checkpoint.arch_parameters[i].first != arch_parameters[i].first) {
      return Status::InvalidArgument(
          "arch parameter name mismatch at slot " + std::to_string(i) + ": " +
          checkpoint.arch_parameters[i].first + " vs " +
          arch_parameters[i].first);
    }
    if (checkpoint.arch_parameters[i].second.shape() !=
        arch_parameters[i].second.shape()) {
      return Status::InvalidArgument("arch parameter shape mismatch for: " +
                                     arch_parameters[i].first);
    }
  }
  if (checkpoint.pseudo_train.size() != pseudo_train->size() ||
      checkpoint.pseudo_val.size() != pseudo_val->size()) {
    return Status::InvalidArgument("pseudo-split size mismatch");
  }
  const int64_t total = static_cast<int64_t>(pseudo_train->size()) +
                        static_cast<int64_t>(pseudo_val->size());
  for (int64_t index : checkpoint.pseudo_train) {
    if (index >= total) return Status::InvalidArgument("pseudo-train index out of range");
  }
  for (int64_t index : checkpoint.pseudo_val) {
    if (index >= total) return Status::InvalidArgument("pseudo-val index out of range");
  }

  // Phase 2: apply. The optimizer imports validate their own slots; if the
  // second import fails after the first succeeded, roll the first back to
  // its fresh state so the caller can safely fall back to a fresh search.
  Status status = weight_optimizer->ImportState(checkpoint.weight_optimizer);
  if (!status.ok()) return status;
  status = theta_optimizer->ImportState(checkpoint.theta_optimizer);
  if (!status.ok()) {
    ResetAdam(weight_optimizer, checkpoint.weight_optimizer.first_moment.size());
    return status;
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    parameters[i].second.mutable_value() =
        checkpoint.parameters[i].second.Clone();
  }
  for (size_t i = 0; i < arch_parameters.size(); ++i) {
    arch_parameters[i].second.mutable_value() =
        checkpoint.arch_parameters[i].second.Clone();
  }
  supernet->SetTemperature(checkpoint.tau);
  rng->SetState(checkpoint.rng);
  *pseudo_train = checkpoint.pseudo_train;
  *pseudo_val = checkpoint.pseudo_val;
  return Status::Ok();
}

}  // namespace autocts::core
