#include "core/micro_dag.h"

#include "tensor/tensor_ops.h"

namespace autocts::core {

int64_t PairIndex(int64_t i, int64_t j) {
  AUTOCTS_CHECK_LT(i, j);
  return j * (j - 1) / 2 + i;
}

int64_t NumPairs(int64_t num_nodes) {
  return num_nodes * (num_nodes - 1) / 2;
}

WrappedOp::WrappedOp(const std::string& op_name, const ops::OpContext& context)
    : op_name_(op_name), parametric_(IsParametricOp(op_name)) {
  op_ = ops::CreateOp(op_name, context);
  RegisterModule("op", op_.get());
  if (parametric_) {
    batch_norm_ = std::make_unique<nn::BatchNorm>(context.channels);
    RegisterModule("bn", batch_norm_.get());
  }
}

Variable WrappedOp::Forward(const Variable& x) {
  if (!parametric_) return op_->Forward(x);
  return batch_norm_->Forward(op_->Forward(ag::Relu(x)));
}

MixedEdge::MixedEdge(const OperatorSet& op_set, const ops::OpContext& context,
                     int64_t partial_denominator)
    : channels_(context.channels) {
  AUTOCTS_CHECK_GE(partial_denominator, 1);
  active_channels_ = std::max<int64_t>(1, channels_ / partial_denominator);
  ops::OpContext partial_context = context;
  partial_context.channels = active_channels_;
  for (const std::string& op_name : op_set.op_names) {
    ops_.push_back(std::make_unique<WrappedOp>(op_name, partial_context));
    RegisterModule(op_name, ops_.back().get());
  }
}

Variable MixedEdge::Forward(const Variable& x, const Variable& op_weights) {
  AUTOCTS_CHECK_EQ(op_weights.size(), num_ops());
  const Variable active =
      active_channels_ == channels_
          ? x
          : ag::Slice(x, /*axis=*/-1, 0, active_channels_);
  Variable mixed;
  for (int64_t o = 0; o < num_ops(); ++o) {
    const Variable weight = ag::Slice(op_weights, 0, o, 1);  // [1], broadcasts
    const Variable term = ag::Mul(ops_[o]->Forward(active), weight);
    mixed = o == 0 ? term : ag::Add(mixed, term);
  }
  if (active_channels_ == channels_) return mixed;
  // Bypass the remaining channels and shuffle so subsequent layers see a
  // mix of processed and raw channels (PC-DARTS channel shuffle).
  const Variable rest =
      ag::Slice(x, /*axis=*/-1, active_channels_, channels_ - active_channels_);
  return ag::Concat({rest, mixed}, /*axis=*/-1);
}

MicroDagCell::MicroDagCell(int64_t num_nodes, const OperatorSet& op_set,
                           const ops::OpContext& context,
                           int64_t partial_denominator, Rng* rng)
    : num_nodes_(num_nodes), op_set_(op_set) {
  AUTOCTS_CHECK_GE(num_nodes, 2);
  for (int64_t j = 1; j < num_nodes_; ++j) {
    for (int64_t i = 0; i < j; ++i) {
      edges_.push_back(std::make_unique<MixedEdge>(op_set, context,
                                                   partial_denominator));
      RegisterModule(
          "edge_" + std::to_string(i) + "_" + std::to_string(j),
          edges_.back().get());
    }
  }
  // Small random init so softmax starts near-uniform but symmetry is broken.
  alpha_ = Variable(
      Tensor::Randn({NumPairs(num_nodes_), op_set_.size()}, rng, 0.0, 1e-3),
      /*requires_grad=*/true);
  for (int64_t j = 1; j < num_nodes_; ++j) {
    betas_.emplace_back(Tensor::Randn({j}, rng, 0.0, 1e-3),
                        /*requires_grad=*/true);
  }
}

Variable MicroDagCell::Forward(const Variable& input, double tau) {
  std::vector<Variable> nodes;
  nodes.push_back(input);  // h_0
  for (int64_t j = 1; j < num_nodes_; ++j) {
    const Variable beta_weights =
        ag::Softmax(betas_[j - 1], /*axis=*/0);  // [j]
    Variable h_j;
    for (int64_t i = 0; i < j; ++i) {
      const int64_t pair = PairIndex(i, j);
      const Variable alpha_row = ag::Reshape(
          ag::Slice(alpha_, 0, pair, 1), {op_set_.size()});
      const Variable op_weights =
          ag::SoftmaxWithTemperature(alpha_row, /*axis=*/0, tau);
      const Variable transform = edges_[pair]->Forward(nodes[i], op_weights);
      const Variable weight = ag::Slice(beta_weights, 0, i, 1);  // [1]
      const Variable term = ag::Mul(transform, weight);
      h_j = i == 0 ? term : ag::Add(h_j, term);
    }
    nodes.push_back(h_j);
  }
  return nodes.back();
}

std::vector<Variable> MicroDagCell::ArchParameters() const {
  std::vector<Variable> parameters;
  parameters.push_back(alpha_);
  for (const Variable& beta : betas_) parameters.push_back(beta);
  return parameters;
}

std::vector<std::pair<std::string, Variable>> MicroDagCell::NamedArchParameters()
    const {
  std::vector<std::pair<std::string, Variable>> parameters;
  parameters.emplace_back("alpha", alpha_);
  for (size_t j = 0; j < betas_.size(); ++j) {
    parameters.emplace_back("beta" + std::to_string(j + 1), betas_[j]);
  }
  return parameters;
}

Tensor MicroDagCell::AlphaWeights(int64_t pair) const {
  const Tensor row = Slice(alpha_.value(), 0, pair, 1);
  return Softmax(row.Reshape({op_set_.size()}), 0);
}

Tensor MicroDagCell::BetaWeights(int64_t node) const {
  AUTOCTS_CHECK_GE(node, 1);
  AUTOCTS_CHECK_LT(node, num_nodes_);
  return Softmax(betas_[node - 1].value(), 0);
}

}  // namespace autocts::core
