// The "macro only" ablation variant (Section 4.2.3): the atomic search
// units are four existing human-designed ST-blocks (from STGCN, DCRNN,
// Graph WaveNet, and MTGNN) and only the backbone topology plus the block
// kind per slot are searched.
#ifndef AUTOCTS_CORE_MACRO_ONLY_H_
#define AUTOCTS_CORE_MACRO_ONLY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "models/st_blocks.h"

namespace autocts::core {

struct MacroOnlyGenotype {
  std::vector<std::string> block_kinds;  // one of HumanDesignedBlockKinds()
  std::vector<int64_t> block_inputs;     // same convention as Genotype
};

struct MacroOnlyResult {
  MacroOnlyGenotype genotype;
  double search_seconds = 0.0;
  double final_validation_loss = 0.0;
};

// Differentiable search over {block kind} x {topology}: each slot holds a
// softmax mixture of the four human-designed blocks; gamma parameterizes
// the information flows exactly as in the full macro space.
MacroOnlyResult SearchMacroOnly(const models::PreparedData& data,
                                const SearchOptions& options);

// Instantiates the discrete macro-only model for evaluation.
std::unique_ptr<models::ForecastingModel> BuildMacroOnlyModel(
    const MacroOnlyGenotype& genotype, const models::PreparedData& data,
    int64_t hidden_dim, uint64_t seed);

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_MACRO_ONLY_H_
