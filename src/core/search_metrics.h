// Search-specific observability wiring on top of the generic typed
// registry in common/metrics_registry.h: the canonical instrument set
// recorded by JointSearcher, and the α/β/γ softmax-entropy probes that
// summarize how far the architecture distribution has collapsed
// (Section 3.2.2 of the AutoCTS paper: as τ anneals toward 0 the
// mixtures approach one-hot and these entropies approach 0).
//
// Everything here is read-only with respect to the search: entropy is
// computed with serial scalar loops on copies of the logits, so enabling
// metrics cannot change a single bit of the trajectory.
#ifndef AUTOCTS_CORE_SEARCH_METRICS_H_
#define AUTOCTS_CORE_SEARCH_METRICS_H_

#include "common/metrics_registry.h"
#include "core/supernet.h"

namespace autocts::core {

// Canonical instrument names recorded per search step/epoch. Instruments
// prefixed "wall/" are wall-clock/scheduling derived and excluded from
// determinism comparisons (see MetricsRegistry::StripWallColumns).
inline constexpr char kMetricTau[] = "tau";
inline constexpr char kMetricStepsTotal[] = "steps_total";
inline constexpr char kMetricSkippedSteps[] = "skipped_steps";
inline constexpr char kMetricRecoveries[] = "recoveries";
inline constexpr char kMetricCheckpoints[] = "checkpoints";
inline constexpr char kMetricTrainLoss[] = "train_loss";
inline constexpr char kMetricValLossStep[] = "val_loss_step";
inline constexpr char kMetricValLossEpoch[] = "val_loss_epoch";
inline constexpr char kMetricGradNormW[] = "grad_norm_w";
inline constexpr char kMetricGradNormTheta[] = "grad_norm_theta";
inline constexpr char kMetricGradNormWHist[] = "grad_norm_w_hist";
inline constexpr char kMetricAlphaEntropy[] = "alpha_entropy";
inline constexpr char kMetricBetaEntropy[] = "beta_entropy";
inline constexpr char kMetricGammaEntropy[] = "gamma_entropy";
// Resilient-I/O counters (common/fault.h): retry-wrapped checkpoint and
// sink writes record their re-attempts and final failures here. Zero on
// every healthy run, and a pure function of the installed fault plan
// otherwise, so they participate in determinism comparisons un-prefixed.
inline constexpr char kMetricIoRetries[] = "io/retries";
inline constexpr char kMetricIoFailures[] = "io/failures";
inline constexpr char kMetricBatchesPerSec[] = "wall/batches_per_sec";
inline constexpr char kMetricElapsedSec[] = "wall/elapsed_sec";
inline constexpr char kMetricPoolOccupancy[] = "wall/pool_occupancy";

// Registers the full search instrument set (idempotent; fixes the sink
// column order). Called by JointSearcher before the first row and again
// after a metrics-state restore failure.
void RegisterSearchMetrics(obs::MetricsRegistry* registry);

// Mean softmax entropies (nats) of the architecture distributions.
struct ArchEntropy {
  double alpha = 0.0;  // operator mixtures, temperature-τ softmax
  double beta = 0.0;   // micro-cell input mixtures
  double gamma = 0.0;  // macro-block input mixtures
};

// Computes ArchEntropy from the supernet's current Θ. Pure and serial:
// reads logits, touches no RNG or parameter state.
ArchEntropy ComputeArchEntropy(const Supernet& supernet, double tau);

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_SEARCH_METRICS_H_
