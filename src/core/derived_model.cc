#include "core/derived_model.h"

namespace autocts::core {

DerivedCell::DerivedCell(const BlockGenotype& block, int64_t num_nodes,
                         const ops::OpContext& context)
    : num_nodes_(num_nodes), edges_(block.edges) {
  for (size_t e = 0; e < edges_.size(); ++e) {
    edge_ops_.push_back(std::make_unique<WrappedOp>(edges_[e].op, context));
    RegisterModule("edge" + std::to_string(e), edge_ops_.back().get());
  }
}

Variable DerivedCell::Forward(const Variable& input) {
  std::vector<Variable> nodes(num_nodes_);
  nodes[0] = input;
  for (int64_t j = 1; j < num_nodes_; ++j) {
    Variable h_j;
    for (size_t e = 0; e < edges_.size(); ++e) {
      if (edges_[e].to != j) continue;
      AUTOCTS_CHECK(nodes[edges_[e].from].defined());
      const Variable term = edge_ops_[e]->Forward(nodes[edges_[e].from]);
      h_j = h_j.defined() ? ag::Add(h_j, term) : term;
    }
    AUTOCTS_CHECK(h_j.defined()) << "node " << j << " has no incoming edges";
    nodes[j] = h_j;
  }
  return nodes.back();
}

DerivedModel::DerivedModel(const Genotype& genotype,
                           const models::ModelContext& model_context)
    : genotype_(genotype),
      rng_(model_context.seed),
      adaptive_(model_context.adjacency.defined()
                    ? nullptr
                    : std::make_shared<graph::AdaptiveAdjacency>(
                          model_context.num_nodes, /*embedding_dim=*/8,
                          &rng_)),
      embedding_(model_context.in_features, model_context.hidden_dim, &rng_),
      head_(model_context.hidden_dim, model_context.output_length, &rng_) {
  AUTOCTS_CHECK(genotype_.Validate().ok());
  const ops::OpContext op_context =
      models::MakeOpContext(model_context, adaptive_, &rng_);
  for (int64_t b = 0; b < genotype_.num_blocks(); ++b) {
    cells_.push_back(std::make_unique<DerivedCell>(
        genotype_.blocks[b], genotype_.nodes_per_block, op_context));
    RegisterModule("cell" + std::to_string(b), cells_.back().get());
  }
  RegisterModule("embedding", &embedding_);
  RegisterModule("head", &head_);
  if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
}

Variable DerivedModel::Forward(const Variable& x) {
  const Variable embedded = embedding_.Forward(x);
  std::vector<Variable> outputs;
  outputs.push_back(embedded);
  Variable merged;
  for (int64_t b = 0; b < genotype_.num_blocks(); ++b) {
    const Variable block_input = outputs[genotype_.block_inputs[b]];
    const Variable block_output = cells_[b]->Forward(block_input);
    outputs.push_back(block_output);
    merged = b == 0 ? block_output : ag::Add(merged, block_output);
  }
  return head_.Forward(merged, x);
}

}  // namespace autocts::core
