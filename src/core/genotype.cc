#include "core/genotype.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/text_codec.h"

namespace autocts::core {

std::string Genotype::ToText() const {
  TextWriter writer;
  writer.AddInt("nodes_per_block", nodes_per_block);
  writer.AddInt("num_blocks", num_blocks());
  for (int64_t b = 0; b < num_blocks(); ++b) {
    writer.AddInt("block_input", block_inputs[b]);
    for (const EdgeGene& edge : blocks[b].edges) {
      std::ostringstream value;
      value << b << " " << edge.from << " " << edge.to << " " << edge.op;
      writer.Add("edge", value.str());
    }
  }
  return writer.ToString();
}

StatusOr<Genotype> Genotype::FromText(const std::string& text) {
  StatusOr<TextReader> reader = TextReader::Parse(text);
  if (!reader.ok()) return reader.status();
  Genotype genotype;
  StatusOr<int64_t> nodes = reader.value().GetInt("nodes_per_block");
  if (!nodes.ok()) return nodes.status();
  genotype.nodes_per_block = nodes.value();
  StatusOr<int64_t> num_blocks = reader.value().GetInt("num_blocks");
  if (!num_blocks.ok()) return num_blocks.status();
  genotype.blocks.resize(num_blocks.value());
  for (const std::string& input : reader.value().GetAll("block_input")) {
    genotype.block_inputs.push_back(std::strtoll(input.c_str(), nullptr, 10));
  }
  if (static_cast<int64_t>(genotype.block_inputs.size()) !=
      num_blocks.value()) {
    return Status::InvalidArgument("block_input count != num_blocks");
  }
  for (const std::string& edge_text : reader.value().GetAll("edge")) {
    std::istringstream stream(edge_text);
    int64_t block = 0;
    EdgeGene edge;
    if (!(stream >> block >> edge.from >> edge.to >> edge.op)) {
      return Status::InvalidArgument("malformed edge: " + edge_text);
    }
    if (block < 0 || block >= num_blocks.value()) {
      return Status::InvalidArgument("edge block out of range: " + edge_text);
    }
    genotype.blocks[block].edges.push_back(edge);
  }
  Status valid = genotype.Validate();
  if (!valid.ok()) return valid;
  return genotype;
}

std::string Genotype::ToPrettyString() const {
  std::ostringstream out;
  out << "ST-backbone with " << num_blocks() << " blocks (M="
      << nodes_per_block << "):\n";
  for (int64_t b = 0; b < num_blocks(); ++b) {
    out << "  block " << b + 1 << " <- "
        << (block_inputs[b] == 0 ? std::string("embedding")
                                 : "block " + std::to_string(block_inputs[b]))
        << "\n";
    for (const EdgeGene& edge : blocks[b].edges) {
      out << "    h" << edge.from << " -[" << edge.op << "]-> h" << edge.to
          << "\n";
    }
  }
  out << "  operator histogram:";
  for (const auto& [op, count] : OperatorHistogram()) {
    out << " " << op << "=" << count;
  }
  out << "\n";
  return out.str();
}

std::vector<std::pair<std::string, int64_t>> Genotype::OperatorHistogram()
    const {
  std::map<std::string, int64_t> counts;
  for (const BlockGenotype& block : blocks) {
    for (const EdgeGene& edge : block.edges) ++counts[edge.op];
  }
  return {counts.begin(), counts.end()};
}

Status Genotype::Validate() const {
  if (nodes_per_block < 2) {
    return Status::InvalidArgument("nodes_per_block must be >= 2");
  }
  if (blocks.size() != block_inputs.size()) {
    return Status::InvalidArgument("blocks/block_inputs size mismatch");
  }
  for (int64_t b = 0; b < num_blocks(); ++b) {
    if (block_inputs[b] < 0 || block_inputs[b] > b) {
      return Status::InvalidArgument(
          "block " + std::to_string(b) + " input must reference the "
          "embedding (0) or an earlier block");
    }
    for (const EdgeGene& edge : blocks[b].edges) {
      if (edge.from < 0 || edge.to >= nodes_per_block ||
          edge.from >= edge.to) {
        return Status::InvalidArgument("edge violates DAG order");
      }
      if (edge.op.empty()) {
        return Status::InvalidArgument("edge with empty operator");
      }
    }
  }
  return Status::Ok();
}

}  // namespace autocts::core
