#include "core/operator_set.h"

namespace autocts::core {

OperatorSet CompactOperatorSet() {
  return {"compact", {"zero", "identity", "gdcc", "inf_t", "dgcn", "inf_s"}};
}

OperatorSet FullOperatorSet() {
  return {"full",
          {"zero", "identity", "conv1d", "gdcc", "lstm", "gru", "trans_t",
           "inf_t", "cheb_gcn", "dgcn", "trans_s", "inf_s"}};
}

OperatorSet AutoStgOperatorSet() {
  return {"autostg", {"zero", "identity", "conv1d", "dgcn"}};
}

bool IsParametricOp(const std::string& op_name) {
  return op_name != "zero" && op_name != "identity";
}

}  // namespace autocts::core
