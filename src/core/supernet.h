// The joint search space (Sections 3.2 + 3.3): embedding layer, B
// micro-DAG cells with per-cell architecture parameters (heterogeneous
// ST-blocks), macro connection parameters gamma (Eq. 18), hard-coded
// merged connections from every block to the output layer, and the output
// head. Deriving the final architecture (Eq. 7 + macro argmax) yields a
// Genotype.
#ifndef AUTOCTS_CORE_SUPERNET_H_
#define AUTOCTS_CORE_SUPERNET_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/genotype.h"
#include "core/micro_dag.h"
#include "models/forecasting_model.h"

namespace autocts::core {

struct SupernetConfig {
  int64_t micro_nodes = 5;      // M (Table 17-26 vary 3/5/7)
  int64_t macro_blocks = 4;     // B (2/4/6)
  OperatorSet op_set;           // defaults to CompactOperatorSet()
  int64_t hidden_dim = 16;
  // PC-DARTS partial channels: 4 selects 1/4 of features (Section 4.1.4);
  // 1 disables.
  int64_t partial_denominator = 4;
  // Edges kept per node at derivation (Tables 36-37 vary 2/3).
  int64_t edges_per_node = 2;

  SupernetConfig() : op_set(CompactOperatorSet()) {}
};

class Supernet : public models::ForecastingModel {
 public:
  Supernet(const SupernetConfig& config,
           const models::ModelContext& model_context);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "AutoCTS-Supernet"; }

  // Temperature for the alpha softmax (annealed by the searcher).
  void SetTemperature(double tau) { tau_ = tau; }
  double temperature() const { return tau_; }

  // All architecture parameters Theta = ({alpha_i, beta_i}, gamma).
  std::vector<Variable> ArchParameters() const;

  // ArchParameters() with stable dotted names ("cell0.alpha",
  // "cell0.beta1", ..., "gamma0", ...), in the same order; the name-keyed
  // form is what core/search_checkpoint.{h,cc} serializes so that resume
  // can reject architecture mismatches explicitly.
  std::vector<std::pair<std::string, Variable>> NamedArchParameters() const;

  // Derives the discrete architecture: per node keep the edge from its
  // immediate predecessor plus the strongest other edge by Eq. 7 (Zero
  // excluded); per block keep the incoming macro edge with the largest
  // gamma.
  Genotype Derive() const;

  // Derives up to `k` distinct candidate architectures for the evaluation
  // stage (core/eval_scheduler.h), ranked by architecture-parameter score.
  // Candidate 0 is exactly Derive(); candidates 1..k-1 are the base
  // genotype with one derivation decision — an edge's operator, a kept
  // non-predecessor edge, or a block's macro input — swapped for its
  // runner-up, ordered by ascending score penalty (ties broken by decision
  // position, so the ranking is deterministic and thread-count
  // independent). Returns fewer than `k` genotypes when the space has
  // fewer distinct single-swap variants.
  std::vector<Genotype> DeriveTopK(int64_t k) const;

  const SupernetConfig& config() const { return config_; }

  // Read access to the searched cells (cost model, diagnostics).
  int64_t num_cells() const { return static_cast<int64_t>(cells_.size()); }
  const MicroDagCell& cell(int64_t index) const { return *cells_.at(index); }

 private:
  SupernetConfig config_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  std::vector<std::unique_ptr<MicroDagCell>> cells_;
  std::vector<Variable> gammas_;  // gammas_[j] has shape [j+1] (preds of b_j)
  models::OutputHead head_;
  double tau_ = 1.0;
};

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_SUPERNET_H_
