// Crash-safe serialization of the joint searcher's complete mutable state.
//
// A SearchCheckpoint captures *every* bit of state that influences the
// remainder of a `JointSearcher::Search` run: supernet weights, the
// architecture parameters Theta (alpha/beta/gamma), both Adam optimizers'
// step counters and first/second moments, the search Rng, the temperature
// tau, the pseudo-train/-validation index orders, the per-epoch validation
// loss accumulator, and the epoch/batch cursor. Because the tensor kernels
// are bit-identical across thread counts (see DESIGN.md "Threading model"),
// a run killed at any checkpoint boundary and resumed produces the exact
// genotype and final validation loss of an uninterrupted run; the
// fault-injection suite in tests/checkpoint_test.cc enforces this.
//
// On-disk format (extends the nn/state_dict line-oriented codec):
//
//   format = autocts-search-checkpoint
//   version = 1
//   config = <fingerprint of the SearchOptions + data extents>
//   cursor = <next_epoch> <next_step>
//   tau = <hex-float>
//   val_loss = <sum hex-float> <epoch_steps> <final hex-float>
//   rng = <w0> <w1> <w2> <w3> <has_cached 0|1> <cached hex-float>
//   order_train = <n> <i0> <i1> ...
//   order_val = <n> <i0> <i1> ...
//   param_count = <P>
//   param = <name> <ndim> <dim...> <hex-float values...>       (x P)
//   arch_count = <A>
//   arch = <name> <ndim> <dim...> <hex-float values...>        (x A)
//   adam_w = <step_count> <slots>
//   adam_w_m = <slot> <defined 0|1> [<ndim> <dim...> <values...>]
//   adam_w_v = ...                                             (x slots each)
//   adam_t / adam_t_m / adam_t_v = ...
//   crc32 = <8 hex digits over every preceding byte>
//
// All doubles use the exact hex-float codec (common/text_codec.h), so a
// load restores bit-identical values. The CRC trailer makes any truncation
// or byte flip a detectable (non-OK Status) load failure; files are written
// via the atomic rename protocol of common/file_io.h, which retains the
// previous generation at "<path>.prev" as a fallback.
#ifndef AUTOCTS_CORE_SEARCH_CHECKPOINT_H_
#define AUTOCTS_CORE_SEARCH_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/searcher.h"
#include "core/supernet.h"
#include "optim/adam.h"

namespace autocts::core {

struct SearchCheckpoint {
  static constexpr int64_t kFormatVersion = 1;

  // Fingerprint of the search configuration the state belongs to; resume
  // refuses to restore into a differently-configured searcher.
  std::string config_fingerprint;

  // Cursor: the next (epoch, step) the resumed run executes. step == 0
  // means the epoch preamble (temperature + shuffles) has not run yet.
  int64_t epoch = 0;
  int64_t step = 0;

  double tau = 1.0;
  // Per-epoch validation loss accumulator at the cursor.
  double val_loss_sum = 0.0;
  int64_t epoch_steps = 0;
  // Last fully-computed epoch average (the SearchResult field).
  double final_validation_loss = 0.0;

  RngState rng;
  std::vector<int64_t> pseudo_train;
  std::vector<int64_t> pseudo_val;

  // Supernet weights by dotted parameter name, and Theta by arch name.
  std::vector<std::pair<std::string, Tensor>> parameters;
  std::vector<std::pair<std::string, Tensor>> arch_parameters;

  optim::AdamState weight_optimizer;
  optim::AdamState theta_optimizer;

  // Serialized obs::MetricsRegistry state (EncodeState) captured at the
  // cursor, so metrics rows survive crash/resume. Optional on disk
  // (absent in pre-observability files and when metrics are off) and
  // excluded from CheckpointNumericHealth: it is derived telemetry, never
  // an input to the search trajectory.
  std::string metrics_state;
};

// Deterministic fingerprint of everything that shapes the search trajectory
// (options, supernet dimensions, operator set, data extents).
std::string SearchConfigFingerprint(const SearchOptions& options,
                                    int64_t num_train_samples);

// Text codec. Encode always succeeds; Decode returns a non-OK Status on any
// CRC mismatch, truncation, or malformed record — it never crashes and
// never returns a partially-parsed checkpoint.
std::string EncodeSearchCheckpoint(const SearchCheckpoint& checkpoint);
StatusOr<SearchCheckpoint> DecodeSearchCheckpoint(const std::string& text);

// File wrappers. Save uses AtomicWriteFile (temp + rename, previous
// generation kept at "<path>.prev").
Status SaveSearchCheckpoint(const SearchCheckpoint& checkpoint,
                            const std::string& path);
StatusOr<SearchCheckpoint> LoadSearchCheckpoint(const std::string& path);

// Loads `path`, falling back to "<path>.prev" when the primary generation
// is missing or corrupt. `used_prev` (optional) reports which one loaded.
StatusOr<SearchCheckpoint> LoadSearchCheckpointOrPrev(const std::string& path,
                                                      bool* used_prev);

// Snapshots the searcher's live state into a checkpoint (cursor and loss
// fields are left for the caller to fill in).
SearchCheckpoint CaptureSearchState(const Supernet& supernet,
                                    const optim::Adam& weight_optimizer,
                                    const optim::Adam& theta_optimizer,
                                    const Rng& rng,
                                    const std::vector<int64_t>& pseudo_train,
                                    const std::vector<int64_t>& pseudo_val);

// Scans every numeric field of a checkpoint — tau, the loss accumulators,
// all weight and Theta tensors, and the defined Adam moment slots — and
// returns a non-OK Status naming the first non-finite one. The searcher
// refuses to write an unhealthy generation and refuses to resume from one
// (falling back to "<path>.prev"), so surviving on-disk generations are
// always last-good.
Status CheckpointNumericHealth(const SearchCheckpoint& checkpoint);

// Restores a checkpoint into live searcher state. Validates every record
// (names, shapes, order sizes, optimizer slots) before mutating anything,
// so a failed restore leaves the searcher in its freshly-initialized state.
Status RestoreSearchState(const SearchCheckpoint& checkpoint,
                          Supernet* supernet, optim::Adam* weight_optimizer,
                          optim::Adam* theta_optimizer, Rng* rng,
                          std::vector<int64_t>* pseudo_train,
                          std::vector<int64_t>* pseudo_val);

}  // namespace autocts::core

#endif  // AUTOCTS_CORE_SEARCH_CHECKPOINT_H_
