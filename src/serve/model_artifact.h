// Versioned on-disk bundle of everything needed to serve forecasts from a
// derived architecture without the training pipeline: the genotype, the
// trained weights (parameters + non-trainable buffers such as BatchNorm
// running statistics), the fitted normalization scaler, and the dataset
// window geometry. The format follows the search-checkpoint codec: a
// line-oriented "key = value" document whose last line is a CRC32 trailer
// over every preceding byte, written via AtomicWriteFile so a crash leaves
// either the old generation at `path`, the new one, or the old one at
// "<path>.prev" — never a torn file.
//
// Round-trip contract: a model rebuilt from a loaded artifact produces
// forecasts bit-identical to the exported model's (eval mode, same input).
#ifndef AUTOCTS_SERVE_MODEL_ARTIFACT_H_
#define AUTOCTS_SERVE_MODEL_ARTIFACT_H_

#include <memory>
#include <string>

#include "core/derived_model.h"
#include "data/scaler.h"
#include "models/trainer.h"

namespace autocts::serve {

// Dataset/window geometry the model was trained with — enough to rebuild
// the ModelContext and to validate incoming raw windows at serve time.
struct ArtifactMeta {
  int64_t num_nodes = 0;
  int64_t in_features = 0;
  int64_t input_length = 0;   // P
  int64_t output_length = 0;  // Q
  int64_t horizon = 0;        // single-step forecast offset (0 = multi-step)
  int64_t target_feature = 0;
  int64_t hidden_dim = 0;
  uint64_t seed = 0;          // init seed the model was built with
  bool zero_is_missing = false;
};

struct ModelArtifact {
  static constexpr int64_t kFormatVersion = 1;

  ArtifactMeta meta;
  core::Genotype genotype;
  data::StandardScaler::State scaler;
  // nn::SaveStateDict text of the trained model (params + buffers).
  std::string state_dict;
  // Predefined adjacency; undefined when the graph is learned (the rebuilt
  // model then re-registers its adaptive adjacency, whose embeddings are
  // restored from the state dict).
  Tensor adjacency;
};

// Bundles a trained model with the data it was trained on. The scaler,
// window geometry, and adjacency come from `data`; weights and buffers are
// captured as the model's current state dict.
ModelArtifact MakeModelArtifact(const core::DerivedModel& model,
                                const models::PreparedData& data,
                                int64_t hidden_dim, uint64_t seed);

// Text codec. Decode rejects any corruption: a flipped byte or truncation
// anywhere fails the CRC trailer check before field parsing begins.
std::string EncodeModelArtifact(const ModelArtifact& artifact);
StatusOr<ModelArtifact> DecodeModelArtifact(const std::string& text);

// File wrappers: atomic write (previous generation kept as "<path>.prev"),
// load, and load-with-fallback mirroring LoadSearchCheckpointOrPrev.
Status SaveModelArtifact(const ModelArtifact& artifact,
                         const std::string& path);
StatusOr<ModelArtifact> LoadModelArtifact(const std::string& path);
StatusOr<ModelArtifact> LoadModelArtifactOrPrev(const std::string& path,
                                                bool* used_prev = nullptr);

// Rebuilds the derived model from the artifact: fresh DerivedModel from the
// genotype + geometry, trained state restored, switched to eval mode.
StatusOr<std::unique_ptr<core::DerivedModel>> BuildModelFromArtifact(
    const ModelArtifact& artifact);

}  // namespace autocts::serve

#endif  // AUTOCTS_SERVE_MODEL_ARTIFACT_H_
