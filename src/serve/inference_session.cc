#include "serve/inference_session.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/trace.h"

namespace autocts::serve {

StatusOr<std::unique_ptr<InferenceSession>> InferenceSession::Create(
    const ModelArtifact& artifact) {
  StatusOr<std::unique_ptr<core::DerivedModel>> model =
      BuildModelFromArtifact(artifact);
  if (!model.ok()) return model.status();
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(artifact, std::move(model).value()));
}

InferenceSession::InferenceSession(const ModelArtifact& artifact,
                                   std::unique_ptr<core::DerivedModel> model)
    : meta_(artifact.meta),
      scaler_(data::StandardScaler::FromState(artifact.scaler)),
      model_(std::move(model)),
      ring_(Tensor::Zeros(
          {artifact.meta.input_length, artifact.meta.num_nodes,
           artifact.meta.in_features})) {}

StatusOr<Tensor> InferenceSession::Predict(const Tensor& window) {
  if (window.ndim() != 3 || window.dim(0) != meta_.input_length ||
      window.dim(1) != meta_.num_nodes ||
      window.dim(2) != meta_.in_features) {
    return Status::InvalidArgument(
        "window shape " + ShapeToString(window.shape()) + ", expected [" +
        std::to_string(meta_.input_length) + ", " +
        std::to_string(meta_.num_nodes) + ", " +
        std::to_string(meta_.in_features) + "]");
  }
  StatusOr<Tensor> batched = PredictBatch(window.Reshape(
      {1, meta_.input_length, meta_.num_nodes, meta_.in_features}));
  if (!batched.ok()) return batched.status();
  return batched.value().Reshape({meta_.output_length, meta_.num_nodes});
}

StatusOr<Tensor> InferenceSession::PredictBatch(const Tensor& windows) {
  if (windows.ndim() != 4 || windows.dim(0) < 1 ||
      windows.dim(1) != meta_.input_length ||
      windows.dim(2) != meta_.num_nodes ||
      windows.dim(3) != meta_.in_features) {
    return Status::InvalidArgument(
        "batch shape " + ShapeToString(windows.shape()) + ", expected [K, " +
        std::to_string(meta_.input_length) + ", " +
        std::to_string(meta_.num_nodes) + ", " +
        std::to_string(meta_.in_features) + "]");
  }
  // The eval-mode guarantee of the serving layer: a model accidentally left
  // in training mode would consume dropout RNG and normalize with batch
  // statistics, silently breaking both reproducibility and the
  // batched-vs-sequential bit-identity contract.
  AUTOCTS_CHECK(!model_->training())
      << "InferenceSession model must stay in eval mode";
  AUTOCTS_TRACE_SCOPE("serve/forward");
  const int64_t batch = windows.dim(0);
  const Tensor normalized = scaler_.Transform(windows);
  // No-grad forward: the input is a non-differentiable constant and no
  // backward pass ever runs, so the tape is transient scratch.
  const Variable x(normalized, /*requires_grad=*/false);
  const Tensor out = model_->Forward(x).value();  // [K, Q, N, 1]
  const Tensor denormalized =
      scaler_.InverseTransformFeature(out, meta_.target_feature);
  return denormalized.Reshape({batch, meta_.output_length, meta_.num_nodes});
}

void InferenceSession::Observe(const Tensor& tick) {
  AUTOCTS_CHECK(tick.ndim() == 2 && tick.dim(0) == meta_.num_nodes &&
                tick.dim(1) == meta_.in_features)
      << "tick shape " << ShapeToString(tick.shape());
  const int64_t row_size = meta_.num_nodes * meta_.in_features;
  std::memcpy(ring_.data() + ring_head_ * row_size, tick.data(),
              static_cast<size_t>(row_size) * sizeof(double));
  ring_head_ = (ring_head_ + 1) % meta_.input_length;
  ring_count_ = std::min(ring_count_ + 1, meta_.input_length);
  ++ticks_observed_;
}

Tensor InferenceSession::CurrentWindow() const {
  AUTOCTS_CHECK(Ready()) << "window not full: " << ring_count_ << " of "
                         << meta_.input_length << " ticks observed";
  Tensor window = Tensor::Uninitialized(
      {meta_.input_length, meta_.num_nodes, meta_.in_features});
  const int64_t row_size = meta_.num_nodes * meta_.in_features;
  for (int64_t i = 0; i < meta_.input_length; ++i) {
    const int64_t source = (ring_head_ + i) % meta_.input_length;
    std::memcpy(window.data() + i * row_size,
                ring_.data() + source * row_size,
                static_cast<size_t>(row_size) * sizeof(double));
  }
  return window;
}

StatusOr<Tensor> InferenceSession::PredictNext() {
  if (!Ready()) {
    return Status::InvalidArgument(
        "window not full: " + std::to_string(ring_count_) + " of " +
        std::to_string(meta_.input_length) + " ticks observed");
  }
  return Predict(CurrentWindow());
}

void InferenceSession::ResetWindow() {
  ring_head_ = 0;
  ring_count_ = 0;
}

}  // namespace autocts::serve
