#include "serve/forecast_server.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "common/trace.h"

namespace autocts::serve {

ForecastServer::ForecastServer(const ModelArtifact& artifact,
                               const ServeOptions& options)
    : meta_(artifact.meta), artifact_(artifact), options_(options) {}

ForecastServer::~ForecastServer() { Stop(); }

namespace {

// ServeOptions come straight from CLI flags and remote configs, so a bad
// knob is a recoverable input error (typed Status at Start), not a
// programming error (CHECK).
Status ValidateServeOptions(const ServeOptions& options) {
  const std::pair<int64_t, const char*> knobs[] = {
      {options.workers, "workers"},
      {options.max_batch, "max_batch"},
      {options.queue_capacity, "queue_capacity"},
  };
  for (const auto& [value, name] : knobs) {
    if (value < 1) {
      return Status::InvalidArgument(
          std::string("ServeOptions.") + name + " must be >= 1, got " +
          std::to_string(value));
    }
  }
  return Status::Ok();
}

}  // namespace

Status ForecastServer::Start() {
  AUTOCTS_CHECK(!running_.load() && !stopped_.load())
      << "Start() must be called exactly once";
  const Status options_ok = ValidateServeOptions(options_);
  if (!options_ok.ok()) return options_ok;
  sessions_.reserve(options_.workers);
  for (int64_t i = 0; i < options_.workers; ++i) {
    StatusOr<std::unique_ptr<InferenceSession>> session =
        InferenceSession::Create(artifact_);
    if (!session.ok()) {
      sessions_.clear();
      return session.status();
    }
    sessions_.push_back(std::move(session).value());
  }
  queue_ = std::make_unique<BoundedQueue<Request>>(
      static_cast<size_t>(options_.queue_capacity));
  worker_logs_.resize(options_.workers);
  running_.store(true);
  threads_.reserve(options_.workers);
  for (int64_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::Ok();
}

void ForecastServer::Stop() {
  if (!running_.load() || stopped_.exchange(true)) return;
  queue_->Close();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  running_.store(false);
  FlushMetrics();
}

std::future<StatusOr<Tensor>> ForecastServer::Submit(Tensor window,
                                                     Deadline deadline) {
  Request request;
  request.window = std::move(window);
  request.deadline = deadline;
  request.submit_nanos = SteadyNowNanos();
  std::future<StatusOr<Tensor>> future = request.promise.get_future();
  if (!running_.load() || stopped_.load()) {
    rejected_.fetch_add(1);
    request.promise.set_value(Status::Unavailable("server not running"));
    return future;
  }
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    cancelled_.fetch_add(1);
    request.promise.set_value(
        options_.cancel->ToStatus("forecast request rejected"));
    return future;
  }
  if (!queue_->TryPush(request)) {
    rejected_.fetch_add(1);
    request.promise.set_value(
        Status::Unavailable("request queue full or closed"));
  }
  return future;
}

StatusOr<Tensor> ForecastServer::Predict(const Tensor& window,
                                         Deadline deadline) {
  return Submit(window.Clone(), deadline).get();
}

void ForecastServer::WorkerLoop(int64_t worker_index) {
  InferenceSession* session = sessions_[worker_index].get();
  WorkerLog* log = &worker_logs_[worker_index];
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    const size_t popped = queue_->PopBatch(
        static_cast<size_t>(options_.max_batch), &batch);
    if (popped == 0) return;  // closed and drained
    AUTOCTS_TRACE_SCOPE("serve/batch");

    // Fail fast on cancellation; answer expired requests without running
    // the model for them.
    std::vector<Request*> live;
    live.reserve(batch.size());
    for (Request& request : batch) {
      if (options_.cancel != nullptr && options_.cancel->cancelled()) {
        cancelled_.fetch_add(1);
        request.promise.set_value(
            options_.cancel->ToStatus("forecast request dropped"));
      } else if (request.deadline.expired()) {
        expired_.fetch_add(1);
        request.promise.set_value(Status::DeadlineExceeded(
            "request deadline expired before the forward"));
      } else {
        live.push_back(&request);
      }
    }
    if (live.empty()) continue;

    const int64_t k = static_cast<int64_t>(live.size());
    Tensor windows = Tensor::Uninitialized({k, meta_.input_length,
                                            meta_.num_nodes,
                                            meta_.in_features});
    const int64_t window_size =
        meta_.input_length * meta_.num_nodes * meta_.in_features;
    StatusOr<Tensor> forecasts = Status::Internal("unset");
    {
      bool shapes_ok = true;
      for (int64_t i = 0; i < k; ++i) {
        const Tensor& window = live[i]->window;
        if (window.ndim() != 3 || window.dim(0) != meta_.input_length ||
            window.dim(1) != meta_.num_nodes ||
            window.dim(2) != meta_.in_features) {
          shapes_ok = false;
          break;
        }
        std::copy(window.data(), window.data() + window_size,
                  windows.data() + i * window_size);
      }
      if (shapes_ok) {
        forecasts = session->PredictBatch(windows);
      } else {
        // Mixed shapes: serve each request individually so one malformed
        // window cannot fail its batch mates.
        for (Request* request : live) {
          AUTOCTS_TRACE_SCOPE("serve/request");
          StatusOr<Tensor> result = session->Predict(request->window);
          if (result.ok()) requests_served_.fetch_add(1);
          log->latencies_ms.push_back(
              static_cast<double>(SteadyNowNanos() -
                                  request->submit_nanos) * 1e-6);
          request->promise.set_value(std::move(result));
        }
        batches_.fetch_add(1);
        log->batch_fills.push_back(k);
        continue;
      }
    }

    batches_.fetch_add(1);
    log->batch_fills.push_back(k);
    int64_t observed = max_batch_observed_.load();
    while (k > observed &&
           !max_batch_observed_.compare_exchange_weak(observed, k)) {
    }
    const int64_t forecast_size = meta_.output_length * meta_.num_nodes;
    for (int64_t i = 0; i < k; ++i) {
      AUTOCTS_TRACE_SCOPE("serve/request");
      if (!forecasts.ok()) {
        live[i]->promise.set_value(forecasts.status());
        continue;
      }
      Tensor response =
          Tensor::Uninitialized({meta_.output_length, meta_.num_nodes});
      std::copy(forecasts.value().data() + i * forecast_size,
                forecasts.value().data() + (i + 1) * forecast_size,
                response.data());
      requests_served_.fetch_add(1);
      log->latencies_ms.push_back(
          static_cast<double>(SteadyNowNanos() - live[i]->submit_nanos) *
          1e-6);
      live[i]->promise.set_value(std::move(response));
    }
  }
}

void ForecastServer::FlushMetrics() {
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry* metrics = options_.metrics;
  metrics->GetCounter(kMetricRequestsServed)->Set(requests_served_.load());
  metrics->GetCounter(kMetricBatches)->Set(batches_.load());
  metrics->GetCounter(kMetricRejected)->Set(rejected_.load());
  metrics->GetCounter(kMetricExpired)->Set(expired_.load());
  metrics->GetCounter(kMetricCancelled)->Set(cancelled_.load());
  obs::Histogram* fill = metrics->GetHistogram(
      kMetricBatchFill, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  obs::Histogram* latency = metrics->GetHistogram(
      kMetricLatencyMs, {1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0});
  for (const WorkerLog& log : worker_logs_) {
    for (int64_t f : log.batch_fills) fill->Observe(static_cast<double>(f));
    for (double ms : log.latencies_ms) latency->Observe(ms);
  }
}

ForecastServer::Stats ForecastServer::stats() const {
  Stats stats;
  stats.requests_served = requests_served_.load();
  stats.batches = batches_.load();
  stats.rejected = rejected_.load();
  stats.expired = expired_.load();
  stats.cancelled = cancelled_.load();
  stats.max_batch_observed = max_batch_observed_.load();
  return stats;
}

}  // namespace autocts::serve
