// Multi-threaded batched forecast server: a bounded request queue feeds N
// worker threads, each owning its own InferenceSession (model replica).
// A worker wakeup drains up to `max_batch` queued requests in one lock
// acquisition (common/bounded_queue.h) and answers them with a single
// batched forward — the micro-batching coalescer that amortizes per-forward
// overhead (tape allocation, kernel launch, the parallel pool's job mutex)
// across requests.
//
// Determinism: which requests share a batch depends on arrival timing and
// is NOT deterministic — but each request's forecast is. The session layer
// guarantees a batched forward is bit-identical, row for row, to the
// sequential single-request forwards (see serve/inference_session.h), so
// batching and worker count never change any response bit. That contract is
// what makes the server safe to scale: tests sweep workers x max_batch and
// compare responses byte-for-byte.
//
// Integration: cancellation/deadline from common/cancellation.h (a
// cancelled token fails queued + new requests; per-request deadlines are
// checked when a worker picks the request up), "serve/..." spans via the
// tracer, and serve metrics flushed into a driver-owned MetricsRegistry on
// Stop() (the registry is not thread-safe, so workers record into private
// counters that Stop() merges).
#ifndef AUTOCTS_SERVE_FORECAST_SERVER_H_
#define AUTOCTS_SERVE_FORECAST_SERVER_H_

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/metrics_registry.h"
#include "serve/inference_session.h"

namespace autocts::serve {

// Metric names recorded into ServeOptions::metrics on Stop(). The "wall/"
// prefix marks wall-clock-derived columns that comparison tooling strips
// (see common/metrics_registry.h).
inline constexpr char kMetricRequestsServed[] = "serve/requests_served";
inline constexpr char kMetricBatches[] = "serve/batches";
inline constexpr char kMetricRejected[] = "serve/rejected";
inline constexpr char kMetricExpired[] = "serve/expired";
inline constexpr char kMetricCancelled[] = "serve/cancelled";
inline constexpr char kMetricBatchFill[] = "serve/batch_fill";
inline constexpr char kMetricLatencyMs[] = "wall/serve/latency_ms";

// All three integer knobs must be >= 1; Start() validates them and
// returns InvalidArgument instead of accepting a zero/negative
// configuration (these arrive straight from CLI flags).
struct ServeOptions {
  int64_t workers = 1;
  // Max requests coalesced into one batched forward (>= 1).
  int64_t max_batch = 8;
  // Bounded queue capacity; TryPush back-pressure beyond this.
  int64_t queue_capacity = 256;
  // Optional cooperative shutdown: once cancelled, queued and newly
  // submitted requests fail with the token's status. Not owned.
  const CancellationToken* cancel = nullptr;
  // Optional driver-owned registry; serve counters/histograms are recorded
  // when Stop() returns. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

class ForecastServer {
 public:
  // Builds one InferenceSession per worker from `artifact`.
  ForecastServer(const ModelArtifact& artifact, const ServeOptions& options);
  ~ForecastServer();  // calls Stop()
  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  // Validates the options (InvalidArgument on a non-positive knob) and
  // the artifact (session construction), then launches the worker
  // threads. Must be called exactly once before Submit.
  Status Start();

  // Graceful shutdown: rejects new submissions, serves every request
  // already accepted into the queue, joins the workers, then flushes
  // metrics. Idempotent.
  void Stop();

  // Enqueues a raw window [P, N, F]; the future resolves to the forecast
  // [Q, N] or to a non-OK status (queue full -> Unavailable immediately;
  // deadline expired before a worker picked it up -> DeadlineExceeded;
  // cancellation -> the token's status).
  std::future<StatusOr<Tensor>> Submit(
      Tensor window, Deadline deadline = Deadline::Infinite());

  // Convenience synchronous round trip: Submit + wait.
  StatusOr<Tensor> Predict(const Tensor& window,
                           Deadline deadline = Deadline::Infinite());

  struct Stats {
    int64_t requests_served = 0;
    int64_t batches = 0;        // batched forwards executed
    int64_t rejected = 0;       // queue-full / not-running submissions
    int64_t expired = 0;        // deadline fired before the forward
    int64_t cancelled = 0;      // failed via the cancellation token
    int64_t max_batch_observed = 0;
  };
  Stats stats() const;

  const ArtifactMeta& meta() const { return meta_; }
  int64_t workers() const { return static_cast<int64_t>(sessions_.size()); }

 private:
  struct Request {
    Tensor window;
    Deadline deadline;
    int64_t submit_nanos = 0;
    std::promise<StatusOr<Tensor>> promise;
  };
  // Latency samples a worker collected; merged into the registry by Stop().
  struct WorkerLog {
    std::vector<double> latencies_ms;
    std::vector<int64_t> batch_fills;
  };

  void WorkerLoop(int64_t worker_index);
  void FlushMetrics();

  ArtifactMeta meta_;
  ModelArtifact artifact_;
  ServeOptions options_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  std::unique_ptr<BoundedQueue<Request>> queue_;
  std::vector<std::thread> threads_;
  std::vector<WorkerLog> worker_logs_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> max_batch_observed_{0};
};

}  // namespace autocts::serve

#endif  // AUTOCTS_SERVE_FORECAST_SERVER_H_
