// A loaded model ready to answer forecast requests: no-grad eval-mode
// forwards over a DerivedModel rebuilt from a ModelArtifact, plus a
// per-session sliding input-window ring buffer so a steady-state client
// ships only the newest observation tick instead of the full window.
//
// Determinism contract (enforced by tests/serve_test.cc):
//   - The model stays in eval mode for the session's lifetime; every
//     forward CHECKs this. Eval mode is what makes forecasts reproducible:
//     Dropout consumes no RNG and BatchNorm normalizes with its running
//     statistics instead of batch statistics, so
//   - PredictBatch over K windows is bit-identical, row for row, to K
//     single-window Predict calls (every kernel in the forward path
//     accumulates per output element in an order independent of the batch
//     extent), and repeated identical calls return identical bits.
//
// Sessions are not thread-safe; the ForecastServer gives each worker its
// own session (model replica).
#ifndef AUTOCTS_SERVE_INFERENCE_SESSION_H_
#define AUTOCTS_SERVE_INFERENCE_SESSION_H_

#include <memory>

#include "serve/model_artifact.h"

namespace autocts::serve {

class InferenceSession {
 public:
  // Rebuilds the model from the artifact (eval mode); fails when the state
  // dict does not match the genotype's architecture.
  static StatusOr<std::unique_ptr<InferenceSession>> Create(
      const ModelArtifact& artifact);

  const ArtifactMeta& meta() const { return meta_; }
  const core::DerivedModel& model() const { return *model_; }

  // Stateless one-shot forecast: a raw (denormalized) window [P, N, F]
  // -> denormalized target forecast [Q, N].
  StatusOr<Tensor> Predict(const Tensor& window);

  // Batched forecast: raw windows [K, P, N, F] -> forecasts [K, Q, N].
  // Row k is bit-identical to Predict(windows[k]).
  StatusOr<Tensor> PredictBatch(const Tensor& windows);

  // Streaming interface: pushes the newest raw observation tick [N, F]
  // into the sliding window (the oldest tick falls out once full).
  void Observe(const Tensor& tick);
  // True once input_length ticks have been observed.
  bool Ready() const { return ring_count_ >= meta_.input_length; }
  int64_t ticks_observed() const { return ticks_observed_; }
  // The current window [P, N, F] in chronological order (requires Ready()).
  Tensor CurrentWindow() const;
  // Forecast from the current window (requires Ready()); bit-identical to
  // Predict(CurrentWindow()).
  StatusOr<Tensor> PredictNext();
  // Clears the sliding window (the model is untouched).
  void ResetWindow();

 private:
  InferenceSession(const ModelArtifact& artifact,
                   std::unique_ptr<core::DerivedModel> model);

  ArtifactMeta meta_;
  data::StandardScaler scaler_;
  std::unique_ptr<core::DerivedModel> model_;

  // Ring buffer of the last P raw ticks: row (ring_head_ + i) % P holds the
  // (i+1)-th oldest tick once full.
  Tensor ring_;  // [P, N, F]
  int64_t ring_head_ = 0;   // next write slot == oldest row when full
  int64_t ring_count_ = 0;
  int64_t ticks_observed_ = 0;
};

}  // namespace autocts::serve

#endif  // AUTOCTS_SERVE_INFERENCE_SESSION_H_
