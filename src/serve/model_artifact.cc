#include "serve/model_artifact.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/file_io.h"
#include "common/text_codec.h"
#include "nn/state_dict.h"

namespace autocts::serve {
namespace {

constexpr char kFormatName[] = "autocts-model-artifact";
constexpr char kCrcKey[] = "crc32 = ";
// Sanity bound on the serialized adjacency extent; a corrupt dimension must
// not drive a huge allocation before the record is rejected.
constexpr int64_t kMaxTensorElements = int64_t{1} << 31;

void AppendTensor(std::ostringstream* out, const Tensor& tensor) {
  *out << " " << tensor.ndim();
  for (int64_t d : tensor.shape()) *out << " " << d;
  for (int64_t i = 0; i < tensor.size(); ++i) {
    *out << " " << FormatExactDouble(tensor.data()[i]);
  }
}

Status ParseTensor(std::istringstream* stream, const std::string& label,
                   Tensor* out) {
  int64_t ndim = 0;
  if (!(*stream >> ndim) || ndim < 0 || ndim > 8) {
    return Status::InvalidArgument("bad tensor rank in record: " + label);
  }
  Shape shape(ndim);
  int64_t elements = 1;
  for (int64_t d = 0; d < ndim; ++d) {
    if (!(*stream >> shape[d]) || shape[d] < 0 ||
        shape[d] > kMaxTensorElements ||
        elements * std::max<int64_t>(shape[d], 1) > kMaxTensorElements) {
      return Status::InvalidArgument("bad tensor shape in record: " + label);
    }
    elements *= shape[d];
  }
  Tensor value(shape);
  std::string token;
  for (int64_t i = 0; i < value.size(); ++i) {
    if (!(*stream >> token) || !ParseExactDouble(token, &value.data()[i])) {
      return Status::InvalidArgument("truncated or malformed values in: " +
                                     label);
    }
  }
  *out = value;
  return Status::Ok();
}

Status ParseDoubleList(const std::string& text, const std::string& label,
                       int64_t expected, std::vector<double>* out) {
  std::istringstream stream(text);
  out->assign(expected, 0.0);
  std::string token;
  for (int64_t i = 0; i < expected; ++i) {
    if (!(stream >> token) || !ParseExactDouble(token, &(*out)[i])) {
      return Status::InvalidArgument("truncated values in: " + label);
    }
  }
  if (stream >> token) {
    return Status::InvalidArgument("trailing values in: " + label);
  }
  return Status::Ok();
}

// Embeds a multi-line sub-document as `count_key = N` followed by N
// repeated `line_key = <line>` records; decode re-joins them in order.
void AppendLines(TextWriter* writer, const std::string& count_key,
                 const std::string& line_key, const std::string& text) {
  std::istringstream stream(text);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  writer->AddInt(count_key, static_cast<int64_t>(lines.size()));
  for (const std::string& l : lines) writer->Add(line_key, l);
}

Status ParseLines(const TextReader& reader, const std::string& count_key,
                  const std::string& line_key, std::string* out) {
  StatusOr<int64_t> count = reader.GetInt(count_key);
  if (!count.ok()) return count.status();
  const std::vector<std::string> lines = reader.GetAll(line_key);
  if (static_cast<int64_t>(lines.size()) != count.value()) {
    return Status::InvalidArgument(
        line_key + " line count mismatch: expected " +
        std::to_string(count.value()) + ", found " +
        std::to_string(lines.size()));
  }
  std::ostringstream joined;
  for (const std::string& l : lines) joined << l << "\n";
  *out = joined.str();
  return Status::Ok();
}

}  // namespace

ModelArtifact MakeModelArtifact(const core::DerivedModel& model,
                                const models::PreparedData& data,
                                int64_t hidden_dim, uint64_t seed) {
  ModelArtifact artifact;
  artifact.meta.num_nodes = data.num_nodes;
  artifact.meta.in_features = data.in_features;
  artifact.meta.input_length = data.window.input_length;
  artifact.meta.output_length = data.window.output_length;
  artifact.meta.horizon = data.window.horizon;
  artifact.meta.target_feature = data.target_feature;
  artifact.meta.hidden_dim = hidden_dim;
  artifact.meta.seed = seed;
  artifact.meta.zero_is_missing = data.zero_is_missing;
  artifact.genotype = model.genotype();
  artifact.scaler = data.scaler.GetState();
  artifact.state_dict = nn::SaveStateDict(model);
  artifact.adjacency = data.adjacency;
  return artifact;
}

std::string EncodeModelArtifact(const ModelArtifact& artifact) {
  TextWriter writer;
  writer.Add("format", kFormatName);
  writer.AddInt("version", ModelArtifact::kFormatVersion);
  writer.AddInt("num_nodes", artifact.meta.num_nodes);
  writer.AddInt("in_features", artifact.meta.in_features);
  writer.AddInt("input_length", artifact.meta.input_length);
  writer.AddInt("output_length", artifact.meta.output_length);
  writer.AddInt("horizon", artifact.meta.horizon);
  writer.AddInt("target_feature", artifact.meta.target_feature);
  writer.AddInt("hidden_dim", artifact.meta.hidden_dim);
  writer.AddInt("seed", static_cast<int64_t>(artifact.meta.seed));
  writer.AddInt("zero_is_missing", artifact.meta.zero_is_missing ? 1 : 0);

  writer.AddInt("scaler_mask_null", artifact.scaler.mask_null ? 1 : 0);
  writer.Add("scaler_null_value",
             FormatExactDouble(artifact.scaler.null_value));
  writer.AddInt("scaler_features",
                static_cast<int64_t>(artifact.scaler.means.size()));
  std::ostringstream means;
  for (size_t f = 0; f < artifact.scaler.means.size(); ++f) {
    means << (f == 0 ? "" : " ") << FormatExactDouble(artifact.scaler.means[f]);
  }
  writer.Add("scaler_means", means.str());
  std::ostringstream stddevs;
  for (size_t f = 0; f < artifact.scaler.stddevs.size(); ++f) {
    stddevs << (f == 0 ? "" : " ")
            << FormatExactDouble(artifact.scaler.stddevs[f]);
  }
  writer.Add("scaler_stddevs", stddevs.str());

  std::ostringstream adjacency;
  adjacency << (artifact.adjacency.defined() ? 1 : 0);
  if (artifact.adjacency.defined()) {
    AppendTensor(&adjacency, artifact.adjacency);
  }
  writer.Add("adjacency", adjacency.str());

  AppendLines(&writer, "genotype_lines", "genotype",
              artifact.genotype.ToText());
  AppendLines(&writer, "state_lines", "state", artifact.state_dict);

  const std::string payload = writer.ToString();
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "%s%08x\n", kCrcKey, Crc32(payload));
  return payload + trailer;
}

StatusOr<ModelArtifact> DecodeModelArtifact(const std::string& text) {
  // 1. Locate and verify the CRC trailer (the last line). Any truncation or
  // byte flip anywhere above it fails here.
  const size_t marker = text.rfind(kCrcKey);
  if (marker == std::string::npos ||
      (marker != 0 && text[marker - 1] != '\n')) {
    return Status::InvalidArgument("artifact missing crc32 trailer");
  }
  std::string trailer = text.substr(marker + sizeof(kCrcKey) - 1);
  // The trailer must be newline-terminated: losing even the final byte of
  // the file is a truncation and must be rejected, not tolerated.
  if (trailer.empty() || trailer.back() != '\n') {
    return Status::InvalidArgument("artifact truncated: unterminated trailer");
  }
  trailer.pop_back();
  if (trailer.size() != 8 ||
      trailer.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::InvalidArgument("malformed crc32 trailer: " + trailer);
  }
  const uint32_t expected =
      static_cast<uint32_t>(std::strtoul(trailer.c_str(), nullptr, 16));
  const std::string payload = text.substr(0, marker);
  if (Crc32(payload) != expected) {
    return Status::InvalidArgument("artifact crc32 mismatch");
  }

  // 2. Parse the verified payload.
  StatusOr<TextReader> parsed = TextReader::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const TextReader& reader = parsed.value();

  StatusOr<std::string> format = reader.Get("format");
  if (!format.ok()) return format.status();
  if (format.value() != kFormatName) {
    return Status::InvalidArgument("not a model artifact: " + format.value());
  }
  StatusOr<int64_t> version = reader.GetInt("version");
  if (!version.ok()) return version.status();
  if (version.value() != ModelArtifact::kFormatVersion) {
    return Status::InvalidArgument("unsupported artifact version: " +
                                   std::to_string(version.value()));
  }

  ModelArtifact artifact;
  struct IntField {
    const char* key;
    int64_t* out;
    int64_t min;
  };
  int64_t seed = 0;
  int64_t zero_is_missing = 0;
  int64_t mask_null = 0;
  const IntField fields[] = {
      {"num_nodes", &artifact.meta.num_nodes, 1},
      {"in_features", &artifact.meta.in_features, 1},
      {"input_length", &artifact.meta.input_length, 1},
      {"output_length", &artifact.meta.output_length, 1},
      {"horizon", &artifact.meta.horizon, 0},
      {"target_feature", &artifact.meta.target_feature, 0},
      {"hidden_dim", &artifact.meta.hidden_dim, 1},
      {"seed", &seed, 0},
      {"zero_is_missing", &zero_is_missing, 0},
      {"scaler_mask_null", &mask_null, 0},
  };
  for (const IntField& field : fields) {
    StatusOr<int64_t> value = reader.GetInt(field.key);
    if (!value.ok()) return value.status();
    if (value.value() < field.min) {
      return Status::InvalidArgument(std::string("bad value for ") +
                                     field.key);
    }
    *field.out = value.value();
  }
  artifact.meta.seed = static_cast<uint64_t>(seed);
  artifact.meta.zero_is_missing = zero_is_missing != 0;
  artifact.scaler.mask_null = mask_null != 0;
  if (artifact.meta.target_feature >= artifact.meta.in_features) {
    return Status::InvalidArgument("target_feature out of range");
  }

  StatusOr<std::string> null_value = reader.Get("scaler_null_value");
  if (!null_value.ok()) return null_value.status();
  if (!ParseExactDouble(null_value.value(), &artifact.scaler.null_value)) {
    return Status::InvalidArgument("bad scaler_null_value: " +
                                   null_value.value());
  }
  StatusOr<int64_t> features = reader.GetInt("scaler_features");
  if (!features.ok()) return features.status();
  if (features.value() != artifact.meta.in_features) {
    return Status::InvalidArgument("scaler feature count mismatch");
  }
  StatusOr<std::string> means = reader.Get("scaler_means");
  if (!means.ok()) return means.status();
  Status status = ParseDoubleList(means.value(), "scaler_means",
                                  features.value(), &artifact.scaler.means);
  if (!status.ok()) return status;
  StatusOr<std::string> stddevs = reader.Get("scaler_stddevs");
  if (!stddevs.ok()) return stddevs.status();
  status = ParseDoubleList(stddevs.value(), "scaler_stddevs",
                           features.value(), &artifact.scaler.stddevs);
  if (!status.ok()) return status;

  StatusOr<std::string> adjacency = reader.Get("adjacency");
  if (!adjacency.ok()) return adjacency.status();
  {
    std::istringstream stream(adjacency.value());
    int defined = 0;
    if (!(stream >> defined) || (defined != 0 && defined != 1)) {
      return Status::InvalidArgument("malformed adjacency record");
    }
    if (defined == 1) {
      status = ParseTensor(&stream, "adjacency", &artifact.adjacency);
      if (!status.ok()) return status;
    }
    std::string extra;
    if (stream >> extra) {
      return Status::InvalidArgument("trailing tokens in adjacency record");
    }
  }

  std::string genotype_text;
  status = ParseLines(reader, "genotype_lines", "genotype", &genotype_text);
  if (!status.ok()) return status;
  StatusOr<core::Genotype> genotype = core::Genotype::FromText(genotype_text);
  if (!genotype.ok()) return genotype.status();
  artifact.genotype = genotype.value();

  status = ParseLines(reader, "state_lines", "state", &artifact.state_dict);
  if (!status.ok()) return status;

  return artifact;
}

Status SaveModelArtifact(const ModelArtifact& artifact,
                         const std::string& path) {
  return AtomicWriteFile(path, EncodeModelArtifact(artifact),
                         /*keep_previous=*/true);
}

StatusOr<ModelArtifact> LoadModelArtifact(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return DecodeModelArtifact(text.value());
}

StatusOr<ModelArtifact> LoadModelArtifactOrPrev(const std::string& path,
                                                bool* used_prev) {
  if (used_prev != nullptr) *used_prev = false;
  StatusOr<ModelArtifact> primary = LoadModelArtifact(path);
  if (primary.ok()) return primary;
  const std::string prev_path = path + ".prev";
  if (!FileExists(prev_path)) return primary.status();
  StatusOr<ModelArtifact> previous = LoadModelArtifact(prev_path);
  if (!previous.ok()) {
    return Status(primary.status().code(),
                  primary.status().message() +
                      "; fallback also failed: " + previous.status().message());
  }
  if (used_prev != nullptr) *used_prev = true;
  return previous;
}

StatusOr<std::unique_ptr<core::DerivedModel>> BuildModelFromArtifact(
    const ModelArtifact& artifact) {
  models::ModelContext context;
  context.num_nodes = artifact.meta.num_nodes;
  context.in_features = artifact.meta.in_features;
  context.input_length = artifact.meta.input_length;
  context.output_length = artifact.meta.output_length;
  context.hidden_dim = artifact.meta.hidden_dim;
  context.adjacency = artifact.adjacency;
  context.seed = artifact.meta.seed;
  auto model = std::make_unique<core::DerivedModel>(artifact.genotype,
                                                    context);
  Status status = nn::LoadStateDict(model.get(), artifact.state_dict);
  if (!status.ok()) {
    return Status(status.code(),
                  "artifact state dict does not match the genotype's "
                  "architecture: " + status.message());
  }
  model->SetTraining(false);
  return StatusOr<std::unique_ptr<core::DerivedModel>>(std::move(model));
}

}  // namespace autocts::serve
