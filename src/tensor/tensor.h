// Dense row-major N-dimensional tensor of doubles.
//
// Design notes:
//  - Storage is a shared, contiguous buffer; Reshape shares the buffer,
//    every other shape-changing operation copies. This keeps aliasing rules
//    trivial for the autograd layer built on top.
//  - Buffers come from the size-bucketed recycling pool in
//    common/buffer_pool.h (AUTOCTS_TENSOR_POOL=0 falls back to plain heap
//    allocation). The default constructor zero-fills like a fresh
//    allocation; Uninitialized() skips the fill for kernels that overwrite
//    every element, and such kernels must honor that contract or pooled
//    and unpooled runs diverge.
//  - `double` is used throughout so finite-difference gradient checks in the
//    test suite are numerically stable (see DESIGN.md).
#ifndef AUTOCTS_TENSOR_TENSOR_H_
#define AUTOCTS_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "common/macros.h"
#include "common/random.h"

namespace autocts {

using Shape = std::vector<int64_t>;

// Returns the number of elements of a shape (product of dims; 1 for scalars).
int64_t NumElements(const Shape& shape);

// Row-major strides for `shape`.
std::vector<int64_t> RowMajorStrides(const Shape& shape);

// Human-readable shape, e.g. "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

// Dense tensor. Copying a Tensor is cheap (shares the buffer); use Clone()
// for a deep copy. Mutating a Tensor through data() mutates all copies.
class Tensor {
 public:
  // An empty (rank-0, zero-element) placeholder tensor.
  Tensor();
  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor of the given shape with UNSPECIFIED contents (pooled storage
  // keeps its recycled values). Only for callers that write every element
  // before any read; everyone else wants Tensor(shape) / Zeros().
  static Tensor Uninitialized(Shape shape);

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, double value);
  // A scalar (shape [1]) tensor.
  static Tensor Scalar(double value);
  // Takes ownership of `values`; requires values.size() == NumElements(shape).
  static Tensor FromVector(Shape shape, std::vector<double> values);
  // Uniform random values in [lo, hi).
  static Tensor Rand(Shape shape, Rng* rng, double lo = 0.0, double hi = 1.0);
  // Normal random values.
  static Tensor Randn(Shape shape, Rng* rng, double mean = 0.0,
                      double stddev = 1.0);
  // [n, n] identity matrix.
  static Tensor Eye(int64_t n);
  // 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  bool defined() const { return buffer_.defined(); }
  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t axis) const;
  int64_t size() const { return size_; }

  double* data() { return buffer_.data(); }
  const double* data() const { return buffer_.data(); }

  // Element access by multi-index (slow; intended for tests and setup code).
  double& At(const std::vector<int64_t>& index);
  double At(const std::vector<int64_t>& index) const;

  // Value of a single-element tensor.
  double item() const;

  // Deep copy.
  Tensor Clone() const;

  // Overwrites this tensor's elements with `other`'s (shapes must match).
  // Reuses this tensor's buffer — the in-place counterpart of Clone().
  void CopyFrom(const Tensor& other);

  // Returns a tensor viewing the same buffer with a new shape.
  // Requires NumElements(new_shape) == size(). One dim may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const;

  // Copying permutation of axes; perm must be a permutation of [0, ndim).
  Tensor Permute(const std::vector<int64_t>& perm) const;

  // Swaps two axes (copying).
  Tensor Transpose(int64_t axis_a, int64_t axis_b) const;

  // Fills every element with `value`.
  void Fill(double value);

  // True if shapes are equal and all elements differ by at most `tolerance`.
  bool AllClose(const Tensor& other, double tolerance = 1e-9) const;

  // Debug representation including shape and (truncated) values.
  std::string ToString() const;

 private:
  BufferRef buffer_;
  Shape shape_;
  int64_t size_ = 0;
};

}  // namespace autocts

#endif  // AUTOCTS_TENSOR_TENSOR_H_
