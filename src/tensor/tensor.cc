#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace autocts {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    AUTOCTS_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream stream;
  stream << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) stream << ", ";
    stream << shape[i];
  }
  stream << "]";
  return stream.str();
}

Tensor::Tensor() = default;

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  size_ = NumElements(shape_);
  buffer_ = BufferPool::Global().Acquire(size_);
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = NumElements(t.shape_);
  t.buffer_ = BufferPool::Global().AcquireUninitialized(t.size_);
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0); }

Tensor Tensor::Full(Shape shape, double value) {
  Tensor t = Uninitialized(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(double value) { return Full({1}, value); }

Tensor Tensor::FromVector(Shape shape, std::vector<double> values) {
  AUTOCTS_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = static_cast<int64_t>(values.size());
  t.buffer_ = BufferPool::Global().Adopt(std::move(values));
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng* rng, double lo, double hi) {
  Tensor t = Uninitialized(std::move(shape));
  for (int64_t i = 0; i < t.size_; ++i) t.data()[i] = rng->Uniform(lo, hi);
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng* rng, double mean, double stddev) {
  Tensor t = Uninitialized(std::move(shape));
  for (int64_t i = 0; i < t.size_; ++i) t.data()[i] = rng->Normal(mean, stddev);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t({n, n});
  for (int64_t i = 0; i < n; ++i) t.data()[i * n + i] = 1.0;
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Uninitialized({n});
  for (int64_t i = 0; i < n; ++i) t.data()[i] = static_cast<double>(i);
  return t;
}

int64_t Tensor::dim(int64_t axis) const {
  if (axis < 0) axis += ndim();
  AUTOCTS_CHECK_GE(axis, 0);
  AUTOCTS_CHECK_LT(axis, ndim());
  return shape_[axis];
}

double& Tensor::At(const std::vector<int64_t>& index) {
  AUTOCTS_CHECK_EQ(static_cast<int64_t>(index.size()), ndim());
  const std::vector<int64_t> strides = RowMajorStrides(shape_);
  int64_t offset = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    AUTOCTS_CHECK_GE(index[i], 0);
    AUTOCTS_CHECK_LT(index[i], shape_[i]);
    offset += index[i] * strides[i];
  }
  return data()[offset];
}

double Tensor::At(const std::vector<int64_t>& index) const {
  return const_cast<Tensor*>(this)->At(index);
}

double Tensor::item() const {
  AUTOCTS_CHECK_EQ(size_, 1) << "item() requires a single-element tensor";
  return data()[0];
}

Tensor Tensor::Clone() const {
  AUTOCTS_CHECK(defined());
  Tensor copy = Uninitialized(shape_);
  if (size_ > 0) {
    std::memcpy(copy.data(), data(), static_cast<size_t>(size_) * sizeof(double));
  }
  return copy;
}

void Tensor::CopyFrom(const Tensor& other) {
  AUTOCTS_CHECK(defined());
  AUTOCTS_CHECK(shape_ == other.shape_)
      << "CopyFrom " << ShapeToString(other.shape_) << " into "
      << ShapeToString(shape_);
  if (size_ > 0 && data() != other.data()) {
    std::memcpy(data(), other.data(), static_cast<size_t>(size_) * sizeof(double));
  }
}

Tensor Tensor::Reshape(Shape new_shape) const {
  AUTOCTS_CHECK(defined());
  int64_t inferred_axis = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      AUTOCTS_CHECK_EQ(inferred_axis, -1) << "at most one -1 dim";
      inferred_axis = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_axis >= 0) {
    AUTOCTS_CHECK_GT(known, 0);
    AUTOCTS_CHECK_EQ(size_ % known, 0)
        << "cannot infer dim for " << ShapeToString(new_shape);
    new_shape[inferred_axis] = size_ / known;
  }
  AUTOCTS_CHECK_EQ(NumElements(new_shape), size_)
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor view;
  view.buffer_ = buffer_;
  view.shape_ = std::move(new_shape);
  view.size_ = size_;
  return view;
}

Tensor Tensor::Permute(const std::vector<int64_t>& perm) const {
  AUTOCTS_CHECK_EQ(static_cast<int64_t>(perm.size()), ndim());
  std::vector<bool> seen(perm.size(), false);
  Shape out_shape(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    AUTOCTS_CHECK_GE(perm[i], 0);
    AUTOCTS_CHECK_LT(perm[i], ndim());
    AUTOCTS_CHECK(!seen[perm[i]]) << "perm is not a permutation";
    seen[perm[i]] = true;
    out_shape[i] = shape_[perm[i]];
  }
  Tensor out = Uninitialized(out_shape);
  const std::vector<int64_t> in_strides = RowMajorStrides(shape_);
  const std::vector<int64_t> out_strides = RowMajorStrides(out_shape);
  const int64_t rank = ndim();
  std::vector<int64_t> index(rank, 0);
  const double* src = data();
  double* dst = out.data();
  for (int64_t flat = 0; flat < size_; ++flat) {
    // `index` is the multi-index into the output tensor.
    int64_t src_offset = 0;
    for (int64_t axis = 0; axis < rank; ++axis) {
      src_offset += index[axis] * in_strides[perm[axis]];
    }
    dst[flat] = src[src_offset];
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      if (++index[axis] < out_shape[axis]) break;
      index[axis] = 0;
    }
  }
  (void)out_strides;
  return out;
}

Tensor Tensor::Transpose(int64_t axis_a, int64_t axis_b) const {
  if (axis_a < 0) axis_a += ndim();
  if (axis_b < 0) axis_b += ndim();
  std::vector<int64_t> perm(ndim());
  for (int64_t i = 0; i < ndim(); ++i) perm[i] = i;
  std::swap(perm[axis_a], perm[axis_b]);
  return Permute(perm);
}

void Tensor::Fill(double value) {
  AUTOCTS_CHECK(defined());
  for (int64_t i = 0; i < size_; ++i) data()[i] = value;
}

bool Tensor::AllClose(const Tensor& other, double tolerance) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < size_; ++i) {
    if (std::abs(data()[i] - other.data()[i]) > tolerance) return false;
  }
  return true;
}

std::string Tensor::ToString() const {
  std::ostringstream stream;
  stream << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t limit = std::min<int64_t>(size_, 16);
  for (int64_t i = 0; i < limit; ++i) {
    if (i > 0) stream << ", ";
    stream << data()[i];
  }
  if (size_ > limit) stream << ", ...";
  stream << "}";
  return stream.str();
}

}  // namespace autocts
