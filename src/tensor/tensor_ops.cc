#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace autocts {
namespace {

// Strides of `shape` expanded to broadcast against `out_shape`: axes of size
// 1 (or missing on the left) get stride 0.
std::vector<int64_t> BroadcastStrides(const Shape& shape,
                                      const Shape& out_shape) {
  const std::vector<int64_t> strides = RowMajorStrides(shape);
  const int64_t out_rank = static_cast<int64_t>(out_shape.size());
  const int64_t rank = static_cast<int64_t>(shape.size());
  std::vector<int64_t> result(out_rank, 0);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t out_axis = out_rank - rank + i;
    if (shape[i] != 1) {
      AUTOCTS_CHECK_EQ(shape[i], out_shape[out_axis])
          << "broadcast mismatch " << ShapeToString(shape) << " vs "
          << ShapeToString(out_shape);
      result[out_axis] = strides[i];
    }
  }
  return result;
}

template <typename Fn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fn fn) {
  if (a.shape() == b.shape()) {  // Fast path: no broadcasting.
    Tensor out(a.shape());
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out.data();
    const int64_t n = a.size();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out(out_shape);
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> sb = BroadcastStrides(b.shape(), out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> index(rank, 0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  int64_t oa = 0;
  int64_t ob = 0;
  const int64_t n = out.size();
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = fn(pa[oa], pb[ob]);
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      oa += sa[axis];
      ob += sb[axis];
      if (index[axis] < out_shape[axis]) break;
      index[axis] = 0;
      oa -= sa[axis] * out_shape[axis];
      ob -= sb[axis] * out_shape[axis];
    }
  }
  return out;
}

template <typename Fn>
Tensor UnaryOp(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const double* pa = a.data();
  double* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

int64_t NormalizeAxis(int64_t axis, int64_t rank) {
  if (axis < 0) axis += rank;
  AUTOCTS_CHECK_GE(axis, 0);
  AUTOCTS_CHECK_LT(axis, rank);
  return axis;
}

// Decomposes `shape` around `axis` into (outer, axis_size, inner) extents so
// reductions can run as three nested loops.
void AxisExtents(const Shape& shape, int64_t axis, int64_t* outer,
                 int64_t* mid, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *mid = shape[axis];
  for (int64_t i = axis + 1; i < static_cast<int64_t>(shape.size()); ++i) {
    *inner *= shape[i];
  }
}

Shape ReducedShape(const Shape& shape, int64_t axis, bool keepdim) {
  Shape out = shape;
  if (keepdim) {
    out[axis] = 1;
  } else {
    out.erase(out.begin() + axis);
    if (out.empty()) out.push_back(1);
  }
  return out;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < static_cast<int64_t>(a.size()) ? a[a.size() - 1 - i] : 1;
    const int64_t db =
        i < static_cast<int64_t>(b.size()) ? b[b.size() - 1 - i] : 1;
    AUTOCTS_CHECK(da == db || da == 1 || db == 1)
        << "incompatible shapes " << ShapeToString(a) << " and "
        << ShapeToString(b);
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, double value) {
  return UnaryOp(a, [value](double x) { return x + value; });
}
Tensor MulScalar(const Tensor& a, double value) {
  return UnaryOp(a, [value](double x) { return x * value; });
}
Tensor PowScalar(const Tensor& a, double exponent) {
  return UnaryOp(a, [exponent](double x) { return std::pow(x, exponent); });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](double x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::abs(x); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](double x) { return x > 0.0 ? x : 0.0; });
}
Tensor Apply(const Tensor& a, const std::function<double(double)>& fn) {
  return UnaryOp(a, fn);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  AUTOCTS_CHECK_GE(a.ndim(), 2);
  AUTOCTS_CHECK_GE(b.ndim(), 2);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t k2 = b.dim(-2);
  const int64_t n = b.dim(-1);
  AUTOCTS_CHECK_EQ(k, k2) << "matmul inner dims " << ShapeToString(a.shape())
                          << " x " << ShapeToString(b.shape());
  const Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  const Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = BroadcastShapes(a_batch, b_batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out(out_shape);

  const std::vector<int64_t> sa = BroadcastStrides(a_batch, batch);
  const std::vector<int64_t> sb = BroadcastStrides(b_batch, batch);
  const int64_t batch_rank = static_cast<int64_t>(batch.size());
  const int64_t num_batches = NumElements(batch);
  // Per-matrix strides: batch strides of a/b are in units of elements of the
  // trailing matrix, so multiply by the matrix sizes.
  std::vector<int64_t> index(batch_rank, 0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  const int64_t a_mat = m * k;
  const int64_t b_mat = k * n;
  const int64_t o_mat = m * n;
  int64_t oa = 0;
  int64_t ob = 0;
  for (int64_t batch_idx = 0; batch_idx < num_batches; ++batch_idx) {
    const double* ma = pa + oa * a_mat;
    const double* mb = pb + ob * b_mat;
    double* mo = po + batch_idx * o_mat;
    for (int64_t i = 0; i < m; ++i) {
      double* row_out = mo + i * n;
      const double* row_a = ma + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const double va = row_a[kk];
        if (va == 0.0) continue;
        const double* row_b = mb + kk * n;
        for (int64_t j = 0; j < n; ++j) row_out[j] += va * row_b[j];
      }
    }
    for (int64_t axis = batch_rank - 1; axis >= 0; --axis) {
      ++index[axis];
      oa += sa[axis];
      ob += sb[axis];
      if (index[axis] < batch[axis]) break;
      index[axis] = 0;
      oa -= sa[axis] * batch[axis];
      ob -= sb[axis] * batch[axis];
    }
  }
  return out;
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  Tensor out(ReducedShape(a.shape(), axis, keepdim));
  const double* pa = a.data();
  double* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const double* src = pa + (o * mid + m) * inner;
      double* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  Tensor out = Sum(a, axis, keepdim);
  ScaleInPlace(&out, 1.0 / static_cast<double>(a.shape()[axis]));
  return out;
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  AUTOCTS_CHECK_GT(mid, 0);
  Tensor out(ReducedShape(a.shape(), axis, keepdim));
  const double* pa = a.data();
  double* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    double* dst = po + o * inner;
    for (int64_t i = 0; i < inner; ++i) {
      dst[i] = pa[o * mid * inner + i];
    }
    for (int64_t m = 1; m < mid; ++m) {
      const double* src = pa + (o * mid + m) * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] = std::max(dst[i], src[i]);
    }
  }
  return out;
}

Tensor ArgMax(const Tensor& a, int64_t axis) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  Tensor out(ReducedShape(a.shape(), axis, /*keepdim=*/false));
  const double* pa = a.data();
  double* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      int64_t best = 0;
      double best_value = pa[o * mid * inner + i];
      for (int64_t m = 1; m < mid; ++m) {
        const double value = pa[(o * mid + m) * inner + i];
        if (value > best_value) {
          best_value = value;
          best = m;
        }
      }
      po[o * inner + i] = static_cast<double>(best);
    }
  }
  return out;
}

double SumAll(const Tensor& a) {
  double total = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) total += a.data()[i];
  return total;
}

double MeanAll(const Tensor& a) {
  AUTOCTS_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<double>(a.size());
}

double MaxAll(const Tensor& a) {
  AUTOCTS_CHECK_GT(a.size(), 0);
  double best = a.data()[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, a.data()[i]);
  return best;
}

double MinAll(const Tensor& a) {
  AUTOCTS_CHECK_GT(a.size(), 0);
  double best = a.data()[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::min(best, a.data()[i]);
  return best;
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  axis = NormalizeAxis(axis, a.ndim());
  const Tensor max = Max(a, axis, /*keepdim=*/true);
  const Tensor shifted = Sub(a, max);
  const Tensor exps = Exp(shifted);
  const Tensor total = Sum(exps, axis, /*keepdim=*/true);
  return Div(exps, total);
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  AUTOCTS_CHECK(!tensors.empty());
  axis = NormalizeAxis(axis, tensors[0].ndim());
  Shape out_shape = tensors[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& t : tensors) {
    AUTOCTS_CHECK_EQ(t.ndim(), tensors[0].ndim());
    for (int64_t i = 0; i < t.ndim(); ++i) {
      if (i != axis) {
        AUTOCTS_CHECK_EQ(t.shape()[i], out_shape[i])
            << "concat shape mismatch on axis " << i;
      }
    }
    total_axis += t.shape()[axis];
  }
  out_shape[axis] = total_axis;
  Tensor out(out_shape);
  int64_t outer, mid, inner;
  AxisExtents(out_shape, axis, &outer, &mid, &inner);
  (void)mid;
  double* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& t : tensors) {
    const int64_t t_axis = t.shape()[axis];
    const double* pt = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      double* dst = po + (o * total_axis + axis_offset) * inner;
      const double* src = pt + o * t_axis * inner;
      std::copy(src, src + t_axis * inner, dst);
    }
    axis_offset += t_axis;
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length) {
  axis = NormalizeAxis(axis, a.ndim());
  AUTOCTS_CHECK_GE(start, 0);
  AUTOCTS_CHECK_GE(length, 0);
  AUTOCTS_CHECK_LE(start + length, a.shape()[axis]);
  Shape out_shape = a.shape();
  out_shape[axis] = length;
  Tensor out(out_shape);
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  const double* pa = a.data();
  double* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    const double* src = pa + (o * mid + start) * inner;
    double* dst = po + o * length * inner;
    std::copy(src, src + length * inner, dst);
  }
  return out;
}

Tensor Pad(const Tensor& a, int64_t axis, int64_t before, int64_t after) {
  axis = NormalizeAxis(axis, a.ndim());
  AUTOCTS_CHECK_GE(before, 0);
  AUTOCTS_CHECK_GE(after, 0);
  Shape out_shape = a.shape();
  out_shape[axis] += before + after;
  Tensor out(out_shape);
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  const int64_t out_mid = out_shape[axis];
  const double* pa = a.data();
  double* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    const double* src = pa + o * mid * inner;
    double* dst = po + (o * out_mid + before) * inner;
    std::copy(src, src + mid * inner, dst);
  }
  return out;
}

Tensor BroadcastTo(const Tensor& a, const Shape& target) {
  return BinaryOp(a, Tensor::Zeros(target),
                  [](double x, double) { return x; });
}

Tensor ReduceTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  Tensor current = a;
  // Remove extra leading axes by summing them away.
  while (current.ndim() > static_cast<int64_t>(target.size())) {
    current = Sum(current, 0, /*keepdim=*/false);
    if (current.ndim() == 1 && target.empty()) break;
  }
  // Sum broadcast (stretched) axes back down to size 1.
  for (int64_t i = 0; i < current.ndim(); ++i) {
    if (target[i] == 1 && current.shape()[i] != 1) {
      current = Sum(current, i, /*keepdim=*/true);
    } else {
      AUTOCTS_CHECK_EQ(current.shape()[i], target[i])
          << "cannot reduce " << ShapeToString(a.shape()) << " to "
          << ShapeToString(target);
    }
  }
  return current;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  AUTOCTS_CHECK(a->shape() == b.shape())
      << ShapeToString(a->shape()) << " vs " << ShapeToString(b.shape());
  double* pa = a->data();
  const double* pb = b.data();
  const int64_t n = a->size();
  for (int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void ScaleInPlace(Tensor* a, double value) {
  double* pa = a->data();
  const int64_t n = a->size();
  for (int64_t i = 0; i < n; ++i) pa[i] *= value;
}

double Norm(const Tensor& a) {
  double total = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) total += a.data()[i] * a.data()[i];
  return std::sqrt(total);
}

}  // namespace autocts
