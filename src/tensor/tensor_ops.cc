#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace autocts {
namespace {

// Fixed chunk sizes for ParallelFor. These are part of the determinism
// contract: reductions combine per-chunk partials in chunk order, so chunk
// boundaries must depend only on problem extents (see common/parallel.h).
constexpr int64_t kElementwiseGrain = 16384;
constexpr int64_t kReduceGrain = 8192;
constexpr int64_t kCopyGrain = 16384;

// Zero-initialized per-axis scratch (strides, multi-indices) for the kernel
// hot paths. Inline storage covers every rank this codebase produces; a
// hypothetical deeper tensor spills to the heap rather than corrupting the
// stack, so correctness never depends on the inline bound.
class AxisScratch {
 public:
  explicit AxisScratch(int64_t size) : size_(size) {
    if (size_ > kInlineRank) {
      heap_.resize(static_cast<size_t>(size_));
      ptr_ = heap_.data();
    }
    std::fill(ptr_, ptr_ + size_, int64_t{0});
  }
  AxisScratch(const AxisScratch&) = delete;
  AxisScratch& operator=(const AxisScratch&) = delete;

  int64_t* data() { return ptr_; }
  const int64_t* data() const { return ptr_; }
  int64_t& operator[](int64_t i) { return ptr_[i]; }
  int64_t operator[](int64_t i) const { return ptr_[i]; }
  int64_t size() const { return size_; }

 private:
  static constexpr int64_t kInlineRank = 8;
  int64_t inline_[kInlineRank];
  std::vector<int64_t> heap_;
  int64_t* ptr_ = inline_;
  int64_t size_;
};

// Strides of `shape` expanded to broadcast against `out_shape`: axes of size
// 1 (or missing on the left) get stride 0. Writes into `result`, which must
// hold out_shape.size() zeroed entries (an AxisScratch).
void BroadcastStridesInto(const Shape& shape, const Shape& out_shape,
                          int64_t* result) {
  const int64_t out_rank = static_cast<int64_t>(out_shape.size());
  const int64_t rank = static_cast<int64_t>(shape.size());
  AxisScratch strides(rank);
  int64_t stride = 1;
  for (int64_t i = rank - 1; i >= 0; --i) {
    strides[i] = stride;
    stride *= shape[i];
  }
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t out_axis = out_rank - rank + i;
    if (shape[i] != 1) {
      AUTOCTS_CHECK_EQ(shape[i], out_shape[out_axis])
          << "broadcast mismatch " << ShapeToString(shape) << " vs "
          << ShapeToString(out_shape);
      result[out_axis] = strides[i];
    }
  }
}

// Walks flat indices [lo, hi) of a tensor of shape `out_shape`, maintaining
// two broadcast input offsets with strides `sa` / `sb`, and calls
// emit(flat, oa, ob) for each element. Seeking to `lo` is O(rank), so
// chunked parallel execution pays no per-chunk rescan.
template <typename Emit>
void ForEachBroadcast(const Shape& out_shape, const int64_t* sa,
                      const int64_t* sb, int64_t lo, int64_t hi, Emit emit) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  AxisScratch index(rank);
  int64_t oa = 0;
  int64_t ob = 0;
  int64_t rem = lo;
  for (int64_t axis = rank - 1; axis >= 0; --axis) {
    index[axis] = rem % out_shape[axis];
    rem /= out_shape[axis];
    oa += index[axis] * sa[axis];
    ob += index[axis] * sb[axis];
  }
  for (int64_t flat = lo; flat < hi; ++flat) {
    emit(flat, oa, ob);
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      oa += sa[axis];
      ob += sb[axis];
      if (index[axis] < out_shape[axis]) break;
      index[axis] = 0;
      oa -= sa[axis] * out_shape[axis];
      ob -= sb[axis] * out_shape[axis];
    }
  }
}

template <typename Fn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fn fn) {
  if (a.shape() == b.shape()) {  // Fast path: no broadcasting.
    Tensor out = Tensor::Uninitialized(a.shape());
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out.data();
    ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
    });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t out_rank = static_cast<int64_t>(out_shape.size());
  AxisScratch sa(out_rank);
  AxisScratch sb(out_rank);
  BroadcastStridesInto(a.shape(), out_shape, sa.data());
  BroadcastStridesInto(b.shape(), out_shape, sb.data());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  ParallelFor(0, out.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    ForEachBroadcast(out_shape, sa.data(), sb.data(), lo, hi,
                     [&](int64_t flat, int64_t oa, int64_t ob) {
                       po[flat] = fn(pa[oa], pb[ob]);
                     });
  });
  return out;
}

template <typename Fn>
Tensor UnaryOp(const Tensor& a, Fn fn) {
  Tensor out = Tensor::Uninitialized(a.shape());
  const double* pa = a.data();
  double* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

int64_t NormalizeAxis(int64_t axis, int64_t rank) {
  if (axis < 0) axis += rank;
  AUTOCTS_CHECK_GE(axis, 0);
  AUTOCTS_CHECK_LT(axis, rank);
  return axis;
}

// Decomposes `shape` around `axis` into (outer, axis_size, inner) extents so
// reductions can run as three nested loops.
void AxisExtents(const Shape& shape, int64_t axis, int64_t* outer,
                 int64_t* mid, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape[i];
  *mid = shape[axis];
  for (int64_t i = axis + 1; i < static_cast<int64_t>(shape.size()); ++i) {
    *inner *= shape[i];
  }
}

Shape ReducedShape(const Shape& shape, int64_t axis, bool keepdim) {
  Shape out = shape;
  if (keepdim) {
    out[axis] = 1;
  } else {
    out.erase(out.begin() + axis);
    if (out.empty()) out.push_back(1);
  }
  return out;
}

// Runs fn(o, ilo, ihi) over chunks of the flattened (outer x inner) output
// space of an axis reduction, splitting chunks at `o` boundaries so each
// call stays within one outer slice. Every output element is written by
// exactly one chunk, and per-element accumulation over the reduced axis is
// in ascending order inside fn — deterministic for any thread count.
template <typename Fn>
void ParallelOverReducedOutput(int64_t outer, int64_t inner, Fn fn) {
  ParallelFor(0, outer * inner, kReduceGrain, [&](int64_t lo, int64_t hi) {
    int64_t flat = lo;
    while (flat < hi) {
      const int64_t o = flat / inner;
      const int64_t ilo = flat - o * inner;
      const int64_t ihi = std::min(inner, ilo + (hi - flat));
      fn(o, ilo, ihi);
      flat += ihi - ilo;
    }
  });
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < static_cast<int64_t>(a.size()) ? a[a.size() - 1 - i] : 1;
    const int64_t db =
        i < static_cast<int64_t>(b.size()) ? b[b.size() - 1 - i] : 1;
    AUTOCTS_CHECK(da == db || da == 1 || db == 1)
        << "incompatible shapes " << ShapeToString(a) << " and "
        << ShapeToString(b);
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](double x, double y) { return std::max(x, y); });
}

Tensor AddScalar(const Tensor& a, double value) {
  return UnaryOp(a, [value](double x) { return x + value; });
}
Tensor MulScalar(const Tensor& a, double value) {
  return UnaryOp(a, [value](double x) { return x * value; });
}
Tensor PowScalar(const Tensor& a, double exponent) {
  return UnaryOp(a, [exponent](double x) { return std::pow(x, exponent); });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](double x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::abs(x); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](double x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](double x) { return x > 0.0 ? x : 0.0; });
}
Tensor Apply(const Tensor& a, const std::function<double(double)>& fn) {
  return UnaryOp(a, fn);
}

namespace {

// Shared shape/stride setup for the matmul variants.
struct MatMulPlan {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  int64_t num_batches = 0;
  Shape out_shape;
  // Per-batch matrix offsets (in units of whole matrices) for a and b,
  // following broadcast over the leading dims.
  std::vector<int64_t> a_offset;
  std::vector<int64_t> b_offset;
};

MatMulPlan PlanMatMul(const Tensor& a, const Tensor& b) {
  AUTOCTS_CHECK_GE(a.ndim(), 2);
  AUTOCTS_CHECK_GE(b.ndim(), 2);
  MatMulPlan plan;
  plan.m = a.dim(-2);
  plan.k = a.dim(-1);
  plan.n = b.dim(-1);
  AUTOCTS_CHECK_EQ(plan.k, b.dim(-2))
      << "matmul inner dims " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape());
  const Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  const Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = BroadcastShapes(a_batch, b_batch);
  plan.out_shape = batch;
  plan.out_shape.push_back(plan.m);
  plan.out_shape.push_back(plan.n);
  plan.num_batches = NumElements(batch);
  const int64_t batch_rank = static_cast<int64_t>(batch.size());
  AxisScratch sa(batch_rank);
  AxisScratch sb(batch_rank);
  BroadcastStridesInto(a_batch, batch, sa.data());
  BroadcastStridesInto(b_batch, batch, sb.data());
  plan.a_offset.resize(plan.num_batches);
  plan.b_offset.resize(plan.num_batches);
  AxisScratch index(batch_rank);
  int64_t oa = 0;
  int64_t ob = 0;
  for (int64_t batch_idx = 0; batch_idx < plan.num_batches; ++batch_idx) {
    plan.a_offset[batch_idx] = oa;
    plan.b_offset[batch_idx] = ob;
    for (int64_t axis = batch_rank - 1; axis >= 0; --axis) {
      ++index[axis];
      oa += sa[axis];
      ob += sb[axis];
      if (index[axis] < batch[axis]) break;
      index[axis] = 0;
      oa -= sa[axis] * batch[axis];
      ob -= sb[axis] * batch[axis];
    }
  }
  return plan;
}

// Rows of A per parallel work item; also the register-tile height.
constexpr int64_t kRowBlock = 4;

// C[rows x n] += A-rows[rows x k] * B[k x n] with a 4x4 register tile: the
// 16 accumulators live in registers across the whole k loop and each loaded
// element of B feeds four multiply-adds. Every accumulator starts at +0.0
// and sums its k terms in strictly ascending order — the same order as the
// naive i-k-j loop — so blocked and naive results are bit-identical.
inline void MicroKernel(const double* __restrict__ ma,
                        const double* __restrict__ mb,
                        double* __restrict__ mo, int64_t rows, int64_t n,
                        int64_t k) {
  int64_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* a0 = ma + (i + 0) * k;
    const double* a1 = ma + (i + 1) * k;
    const double* a2 = ma + (i + 2) * k;
    const double* a3 = ma + (i + 3) * k;
    int64_t j0 = 0;
    for (; j0 + 4 <= n; j0 += 4) {
      double c00 = 0, c01 = 0, c02 = 0, c03 = 0;
      double c10 = 0, c11 = 0, c12 = 0, c13 = 0;
      double c20 = 0, c21 = 0, c22 = 0, c23 = 0;
      double c30 = 0, c31 = 0, c32 = 0, c33 = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const double* __restrict__ rb = mb + kk * n + j0;
        const double b0 = rb[0], b1 = rb[1], b2 = rb[2], b3 = rb[3];
        const double va0 = a0[kk], va1 = a1[kk], va2 = a2[kk],
                     va3 = a3[kk];
        c00 += va0 * b0; c01 += va0 * b1; c02 += va0 * b2; c03 += va0 * b3;
        c10 += va1 * b0; c11 += va1 * b1; c12 += va1 * b2; c13 += va1 * b3;
        c20 += va2 * b0; c21 += va2 * b1; c22 += va2 * b2; c23 += va2 * b3;
        c30 += va3 * b0; c31 += va3 * b1; c32 += va3 * b2; c33 += va3 * b3;
      }
      double* r0 = mo + (i + 0) * n + j0;
      double* r1 = mo + (i + 1) * n + j0;
      double* r2 = mo + (i + 2) * n + j0;
      double* r3 = mo + (i + 3) * n + j0;
      r0[0] += c00; r0[1] += c01; r0[2] += c02; r0[3] += c03;
      r1[0] += c10; r1[1] += c11; r1[2] += c12; r1[3] += c13;
      r2[0] += c20; r2[1] += c21; r2[2] += c22; r2[3] += c23;
      r3[0] += c30; r3[1] += c31; r3[2] += c32; r3[3] += c33;
    }
    // Column tail (n % 4): one accumulator per (row, column).
    for (; j0 < n; ++j0) {
      double c0 = 0, c1 = 0, c2 = 0, c3 = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const double vb = mb[kk * n + j0];
        c0 += a0[kk] * vb;
        c1 += a1[kk] * vb;
        c2 += a2[kk] * vb;
        c3 += a3[kk] * vb;
      }
      mo[(i + 0) * n + j0] += c0;
      mo[(i + 1) * n + j0] += c1;
      mo[(i + 2) * n + j0] += c2;
      mo[(i + 3) * n + j0] += c3;
    }
  }
  // Row tail (rows % 4).
  for (; i < rows; ++i) {
    const double* row_a = ma + i * k;
    double* row_out = mo + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double va = row_a[kk];
      const double* __restrict__ rb = mb + kk * n;
      for (int64_t j = 0; j < n; ++j) row_out[j] += va * rb[j];
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const MatMulPlan plan = PlanMatMul(a, b);
  Tensor out(plan.out_shape);  // zero-initialized: MicroKernel accumulates
  const int64_t m = plan.m;
  const int64_t k = plan.k;
  const int64_t n = plan.n;
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  const int64_t a_mat = m * k;
  const int64_t b_mat = k * n;
  const int64_t o_mat = m * n;
  // Parallelize over batch x row-block work items: each item owns a
  // disjoint slab of kRowBlock output rows, so scheduling cannot change any
  // accumulation order.
  const int64_t row_blocks = (m + kRowBlock - 1) / kRowBlock;
  ParallelFor(
      0, plan.num_batches * row_blocks, /*grain=*/1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t item = lo; item < hi; ++item) {
          const int64_t batch_idx = item / row_blocks;
          const int64_t i0 = (item - batch_idx * row_blocks) * kRowBlock;
          const int64_t rows = std::min(kRowBlock, m - i0);
          const double* ma = pa + plan.a_offset[batch_idx] * a_mat + i0 * k;
          const double* mb = pb + plan.b_offset[batch_idx] * b_mat;
          double* mo = po + batch_idx * o_mat + i0 * n;
          MicroKernel(ma, mb, mo, rows, n, k);
        }
      });
  return out;
}

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  const MatMulPlan plan = PlanMatMul(a, b);
  Tensor out(plan.out_shape);
  const int64_t m = plan.m;
  const int64_t k = plan.k;
  const int64_t n = plan.n;
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (int64_t batch_idx = 0; batch_idx < plan.num_batches; ++batch_idx) {
    const double* ma = pa + plan.a_offset[batch_idx] * m * k;
    const double* mb = pb + plan.b_offset[batch_idx] * k * n;
    double* mo = po + batch_idx * m * n;
    for (int64_t i = 0; i < m; ++i) {
      const double* row_a = ma + i * k;
      double* row_out = mo + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const double va = row_a[kk];
        const double* row_b = mb + kk * n;
        for (int64_t j = 0; j < n; ++j) row_out[j] += va * row_b[j];
      }
    }
  }
  return out;
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  Tensor out(ReducedShape(a.shape(), axis, keepdim));
  const double* pa = a.data();
  double* po = out.data();
  ParallelOverReducedOutput(
      outer, inner, [&](int64_t o, int64_t ilo, int64_t ihi) {
        double* dst = po + o * inner;
        for (int64_t m = 0; m < mid; ++m) {
          const double* src = pa + (o * mid + m) * inner;
          for (int64_t i = ilo; i < ihi; ++i) dst[i] += src[i];
        }
      });
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  Tensor out = Sum(a, axis, keepdim);
  ScaleInPlace(&out, 1.0 / static_cast<double>(a.shape()[axis]));
  return out;
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdim) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  AUTOCTS_CHECK_GT(mid, 0);
  Tensor out = Tensor::Uninitialized(ReducedShape(a.shape(), axis, keepdim));
  const double* pa = a.data();
  double* po = out.data();
  ParallelOverReducedOutput(
      outer, inner, [&](int64_t o, int64_t ilo, int64_t ihi) {
        double* dst = po + o * inner;
        const double* first = pa + o * mid * inner;
        for (int64_t i = ilo; i < ihi; ++i) dst[i] = first[i];
        for (int64_t m = 1; m < mid; ++m) {
          const double* src = pa + (o * mid + m) * inner;
          for (int64_t i = ilo; i < ihi; ++i) {
            dst[i] = std::max(dst[i], src[i]);
          }
        }
      });
  return out;
}

Tensor ArgMax(const Tensor& a, int64_t axis) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  Tensor out =
      Tensor::Uninitialized(ReducedShape(a.shape(), axis, /*keepdim=*/false));
  const double* pa = a.data();
  double* po = out.data();
  ParallelOverReducedOutput(
      outer, inner, [&](int64_t o, int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) {
          int64_t best = 0;
          double best_value = pa[o * mid * inner + i];
          for (int64_t m = 1; m < mid; ++m) {
            const double value = pa[(o * mid + m) * inner + i];
            if (value > best_value) {
              best_value = value;
              best = m;
            }
          }
          po[o * inner + i] = static_cast<double>(best);
        }
      });
  return out;
}

double SumAll(const Tensor& a) {
  const double* pa = a.data();
  return ParallelSum(0, a.size(), kReduceGrain, [&](int64_t lo, int64_t hi) {
    double total = 0.0;
    for (int64_t i = lo; i < hi; ++i) total += pa[i];
    return total;
  });
}

double MeanAll(const Tensor& a) {
  AUTOCTS_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<double>(a.size());
}

namespace {

// Per-chunk partials for the full-tensor min/max reductions, stack-backed
// for the common case (mirrors ParallelSum's inline partials).
class PartialsScratch {
 public:
  PartialsScratch(int64_t size, double fill) : size_(size) {
    if (size_ > kInlineChunks) {
      heap_.resize(static_cast<size_t>(size_));
      ptr_ = heap_.data();
    }
    std::fill(ptr_, ptr_ + size_, fill);
  }
  PartialsScratch(const PartialsScratch&) = delete;
  PartialsScratch& operator=(const PartialsScratch&) = delete;

  double& operator[](int64_t i) { return ptr_[i]; }
  double operator[](int64_t i) const { return ptr_[i]; }
  int64_t size() const { return size_; }

 private:
  static constexpr int64_t kInlineChunks = 64;
  double inline_[kInlineChunks];
  std::vector<double> heap_;
  double* ptr_ = inline_;
  int64_t size_;
};

}  // namespace

double MaxAll(const Tensor& a) {
  AUTOCTS_CHECK_GT(a.size(), 0);
  const double* pa = a.data();
  double best = pa[0];
  const int64_t n = a.size();
  const int64_t num_chunks = (n + kReduceGrain - 1) / kReduceGrain;
  PartialsScratch partials(num_chunks, pa[0]);
  ParallelFor(0, n, kReduceGrain, [&](int64_t lo, int64_t hi) {
    double local = pa[lo];
    for (int64_t i = lo; i < hi; ++i) local = std::max(local, pa[i]);
    partials[lo / kReduceGrain] = local;
  });
  for (int64_t i = 0; i < partials.size(); ++i) {
    best = std::max(best, partials[i]);
  }
  return best;
}

double MinAll(const Tensor& a) {
  AUTOCTS_CHECK_GT(a.size(), 0);
  const double* pa = a.data();
  double best = pa[0];
  const int64_t n = a.size();
  const int64_t num_chunks = (n + kReduceGrain - 1) / kReduceGrain;
  PartialsScratch partials(num_chunks, pa[0]);
  ParallelFor(0, n, kReduceGrain, [&](int64_t lo, int64_t hi) {
    double local = pa[lo];
    for (int64_t i = lo; i < hi; ++i) local = std::min(local, pa[i]);
    partials[lo / kReduceGrain] = local;
  });
  for (int64_t i = 0; i < partials.size(); ++i) {
    best = std::min(best, partials[i]);
  }
  return best;
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  axis = NormalizeAxis(axis, a.ndim());
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  Tensor out = Tensor::Uninitialized(a.shape());
  const double* pa = a.data();
  double* po = out.data();
  // Fused max/exp-sum/divide per (outer, inner) lane; one pass over memory
  // instead of the former five-tensor composition. Per-lane accumulation
  // over `mid` is in ascending order, matching the old Max/Sum kernels
  // bit-for-bit.
  ParallelOverReducedOutput(
      outer, inner, [&](int64_t o, int64_t ilo, int64_t ihi) {
        const int64_t base = o * mid * inner;
        for (int64_t i = ilo; i < ihi; ++i) {
          const double* lane = pa + base + i;
          double* lane_out = po + base + i;
          double mx = lane[0];
          for (int64_t m = 1; m < mid; ++m) {
            mx = std::max(mx, lane[m * inner]);
          }
          double total = 0.0;
          for (int64_t m = 0; m < mid; ++m) {
            const double e = std::exp(lane[m * inner] - mx);
            lane_out[m * inner] = e;
            total += e;
          }
          for (int64_t m = 0; m < mid; ++m) lane_out[m * inner] /= total;
        }
      });
  return out;
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  AUTOCTS_CHECK(!tensors.empty());
  axis = NormalizeAxis(axis, tensors[0].ndim());
  Shape out_shape = tensors[0].shape();
  int64_t total_axis = 0;
  for (const Tensor& t : tensors) {
    AUTOCTS_CHECK_EQ(t.ndim(), tensors[0].ndim());
    for (int64_t i = 0; i < t.ndim(); ++i) {
      if (i != axis) {
        AUTOCTS_CHECK_EQ(t.shape()[i], out_shape[i])
            << "concat shape mismatch on axis " << i;
      }
    }
    total_axis += t.shape()[axis];
  }
  out_shape[axis] = total_axis;
  // Every output element is covered by exactly one input copy (the axis
  // segments partition the output), so uninitialized storage is safe.
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer, mid, inner;
  AxisExtents(out_shape, axis, &outer, &mid, &inner);
  (void)mid;
  double* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& t : tensors) {
    const int64_t t_axis = t.shape()[axis];
    const double* pt = t.data();
    const int64_t row = t_axis * inner;
    const int64_t outer_grain = std::max<int64_t>(1, kCopyGrain / std::max<int64_t>(row, 1));
    ParallelFor(0, outer, outer_grain, [&](int64_t olo, int64_t ohi) {
      for (int64_t o = olo; o < ohi; ++o) {
        double* dst = po + (o * total_axis + axis_offset) * inner;
        const double* src = pt + o * row;
        std::copy(src, src + row, dst);
      }
    });
    axis_offset += t_axis;
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length) {
  axis = NormalizeAxis(axis, a.ndim());
  AUTOCTS_CHECK_GE(start, 0);
  AUTOCTS_CHECK_GE(length, 0);
  AUTOCTS_CHECK_LE(start + length, a.shape()[axis]);
  Shape out_shape = a.shape();
  out_shape[axis] = length;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  const double* pa = a.data();
  double* po = out.data();
  const int64_t row = length * inner;
  const int64_t outer_grain =
      std::max<int64_t>(1, kCopyGrain / std::max<int64_t>(row, 1));
  ParallelFor(0, outer, outer_grain, [&](int64_t olo, int64_t ohi) {
    for (int64_t o = olo; o < ohi; ++o) {
      const double* src = pa + (o * mid + start) * inner;
      double* dst = po + o * row;
      std::copy(src, src + row, dst);
    }
  });
  return out;
}

Tensor Pad(const Tensor& a, int64_t axis, int64_t before, int64_t after) {
  axis = NormalizeAxis(axis, a.ndim());
  AUTOCTS_CHECK_GE(before, 0);
  AUTOCTS_CHECK_GE(after, 0);
  Shape out_shape = a.shape();
  out_shape[axis] += before + after;
  Tensor out(out_shape);  // zero-initialized: the padding is never written
  int64_t outer, mid, inner;
  AxisExtents(a.shape(), axis, &outer, &mid, &inner);
  const int64_t out_mid = out_shape[axis];
  const double* pa = a.data();
  double* po = out.data();
  const int64_t row = mid * inner;
  const int64_t outer_grain =
      std::max<int64_t>(1, kCopyGrain / std::max<int64_t>(row, 1));
  ParallelFor(0, outer, outer_grain, [&](int64_t olo, int64_t ohi) {
    for (int64_t o = olo; o < ohi; ++o) {
      const double* src = pa + o * row;
      double* dst = po + (o * out_mid + before) * inner;
      std::copy(src, src + row, dst);
    }
  });
  return out;
}

Tensor BroadcastTo(const Tensor& a, const Shape& target) {
  // Direct stride-0 gather; no throwaway zero tensor to drive BinaryOp.
  const Shape out_shape = BroadcastShapes(a.shape(), target);
  AUTOCTS_CHECK(out_shape == target)
      << "cannot broadcast " << ShapeToString(a.shape()) << " to "
      << ShapeToString(target);
  if (a.shape() == target) return a;
  Tensor out = Tensor::Uninitialized(target);
  const int64_t out_rank = static_cast<int64_t>(target.size());
  AxisScratch sa(out_rank);
  AxisScratch zero(out_rank);
  BroadcastStridesInto(a.shape(), target, sa.data());
  const double* pa = a.data();
  double* po = out.data();
  ParallelFor(0, out.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    ForEachBroadcast(target, sa.data(), zero.data(), lo, hi,
                     [&](int64_t flat, int64_t oa, int64_t /*ob*/) {
                       po[flat] = pa[oa];
                     });
  });
  return out;
}

Tensor ReduceTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  // An empty target is the rank-0 spelling of a scalar; reduce to the
  // canonical scalar shape [1] instead of indexing into an empty vector.
  const Shape effective = target.empty() ? Shape{1} : target;
  AUTOCTS_CHECK_LE(static_cast<int64_t>(effective.size()), a.ndim())
      << "cannot reduce " << ShapeToString(a.shape()) << " to higher-rank "
      << ShapeToString(target);
  Tensor current = a;
  // Remove extra leading axes by summing them away. Sum never drops below
  // rank 1, so this terminates with current.ndim() == effective.size().
  while (current.ndim() > static_cast<int64_t>(effective.size())) {
    current = Sum(current, 0, /*keepdim=*/false);
  }
  // Sum broadcast (stretched) axes back down to size 1.
  for (int64_t i = 0; i < current.ndim(); ++i) {
    if (effective[i] == 1 && current.shape()[i] != 1) {
      current = Sum(current, i, /*keepdim=*/true);
    } else {
      AUTOCTS_CHECK_EQ(current.shape()[i], effective[i])
          << "cannot reduce " << ShapeToString(a.shape()) << " to "
          << ShapeToString(target);
    }
  }
  return current;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  AUTOCTS_CHECK(a->shape() == b.shape())
      << ShapeToString(a->shape()) << " vs " << ShapeToString(b.shape());
  double* pa = a->data();
  const double* pb = b.data();
  ParallelFor(0, a->size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
  });
}

void ScaleInPlace(Tensor* a, double value) {
  double* pa = a->data();
  ParallelFor(0, a->size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] *= value;
  });
}

double SumSquares(const Tensor& a) {
  const double* pa = a.data();
  return ParallelSum(0, a.size(), kReduceGrain, [&](int64_t lo, int64_t hi) {
    double total = 0.0;
    for (int64_t i = lo; i < hi; ++i) total += pa[i] * pa[i];
    return total;
  });
}

double Norm(const Tensor& a) { return std::sqrt(SumSquares(a)); }

}  // namespace autocts
