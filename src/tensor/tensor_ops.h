// Dense numeric kernels on Tensor. All functions return new tensors; none
// mutate their inputs (except the explicitly named *InPlace helpers).
//
// Binary operations follow NumPy broadcasting rules (shapes aligned on the
// right; size-1 dims stretch).
#ifndef AUTOCTS_TENSOR_TENSOR_OPS_H_
#define AUTOCTS_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace autocts {

// Returns the broadcast result shape of `a` and `b`; CHECK-fails if the
// shapes are incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

// Elementwise binary operations with broadcasting.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// Elementwise operations with a scalar.
Tensor AddScalar(const Tensor& a, double value);
Tensor MulScalar(const Tensor& a, double value);
Tensor PowScalar(const Tensor& a, double exponent);

// Elementwise unary operations.
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
// Applies `fn` to every element (test/metrics helper; not differentiable).
Tensor Apply(const Tensor& a, const std::function<double(double)>& fn);

// Batched matrix multiplication: a [..., m, k] x b [..., k, n] -> [..., m, n]
// with broadcasting over the leading (batch) dimensions. Cache-blocked and
// parallelized over batch x row blocks; bit-identical to MatMulNaive (the
// per-element accumulation order over k is the same ascending order).
Tensor MatMul(const Tensor& a, const Tensor& b);

// Unblocked serial reference implementation of MatMul, kept for parity
// tests and benchmark baselines.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);

// Reductions. `axis` may be negative. With keepdim the reduced axis stays as
// size 1; otherwise it is removed (scalars become shape [1]).
Tensor Sum(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor Mean(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor Max(const Tensor& a, int64_t axis, bool keepdim = false);
// Index of the maximum along `axis` (values are integral doubles).
Tensor ArgMax(const Tensor& a, int64_t axis);
double SumAll(const Tensor& a);
double MeanAll(const Tensor& a);
double MaxAll(const Tensor& a);
double MinAll(const Tensor& a);

// Numerically stable softmax along `axis`.
Tensor Softmax(const Tensor& a, int64_t axis);

// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis);

// Slice of length `length` starting at `start` along `axis` (copying).
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length);

// Zero padding along `axis`: `before` leading and `after` trailing zeros.
Tensor Pad(const Tensor& a, int64_t axis, int64_t before, int64_t after);

// Materializes `a` broadcast to `target` shape.
Tensor BroadcastTo(const Tensor& a, const Shape& target);

// Sums `a` down to `target` shape (the adjoint of BroadcastTo); used by the
// autograd layer to reduce gradients of broadcast operands.
Tensor ReduceTo(const Tensor& a, const Shape& target);

// a += b (shapes must match exactly).
void AddInPlace(Tensor* a, const Tensor& b);
// a *= value.
void ScaleInPlace(Tensor* a, double value);

// Sum of squared elements (== Norm(a)^2, in one pass and without the sqrt
// round-trip).
double SumSquares(const Tensor& a);

// Frobenius / L2 norm of all elements.
double Norm(const Tensor& a);

}  // namespace autocts

#endif  // AUTOCTS_TENSOR_TENSOR_OPS_H_
