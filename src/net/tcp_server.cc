#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

#include "net/wire_codec.h"

namespace autocts::net {
namespace {

// Reads exactly `size` bytes. Returns the byte count actually read: `size`
// on success, 0 on a clean EOF before the first byte, a partial count on
// EOF mid-buffer, or -1 on a socket error.
ssize_t ReadExact(int fd, char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(fd, data + done, size - done, 0);
    if (got == 0) return static_cast<ssize_t>(done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(got);
  }
  return static_cast<ssize_t>(done);
}

// Writes the whole buffer; MSG_NOSIGNAL so a vanished client surfaces as
// EPIPE instead of killing the process.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t sent = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(sent);
  }
  return true;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

TcpForecastServer::TcpForecastServer(const serve::ModelArtifact& artifact,
                                     const TcpServeOptions& options)
    : server_(artifact, options.serve), options_(options) {}

TcpForecastServer::~TcpForecastServer() { Stop(); }

Status TcpForecastServer::Start() {
  AUTOCTS_CHECK(!running_.load() && !stopping_.load())
      << "Start() must be called exactly once";
  const Status started = server_.Start();  // validates ServeOptions
  if (!started.ok()) return started;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    server_.Stop();
    return ErrnoStatus("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  Status failure = Status::Ok();
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    failure = Status::InvalidArgument("bad bind address \"" +
                                      options_.bind_address + "\"");
  } else if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
    failure = ErrnoStatus("bind " + options_.bind_address + ":" +
                          std::to_string(options_.port));
  } else if (::listen(listen_fd_, options_.backlog) != 0) {
    failure = ErrnoStatus("listen");
  }
  if (!failure.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    server_.Stop();
    return failure;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  running_.store(true);
  listener_ = std::thread([this] { ListenLoop(); });
  return Status::Ok();
}

void TcpForecastServer::Stop() {
  if (stopping_.exchange(true)) {
    // A second Stop() (e.g. the destructor after an explicit call) still
    // waits for nothing: the first call already joined everything.
    return;
  }
  if (running_.load()) {
    // Unblock accept(2); close the fd only after the listener exits so the
    // descriptor cannot be recycled under it.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (listener_.joinable()) listener_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;

    // Half-close every open connection: blocked reads return EOF and the
    // handlers wind down, but in-flight responses still get written — the
    // accepted work drains instead of being dropped.
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (auto& [id, connection] : connections_) {
        ::shutdown(connection.fd, SHUT_RD);
      }
    }
    while (true) {
      Connection connection;
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        if (connections_.empty()) break;
        auto it = connections_.begin();
        connection = Connection{it->second.fd,
                                std::move(it->second.thread)};
        connections_.erase(it);
      }
      if (connection.thread.joinable()) connection.thread.join();
      ::close(connection.fd);
    }
    finished_connections_.clear();
    running_.store(false);
  }
  // The inner server drains every request already accepted into its queue.
  server_.Stop();
}

void TcpForecastServer::ListenLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal); Stop() owns cleanup
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      const int64_t id = next_connection_id_++;
      Connection& connection = connections_[id];
      connection.fd = fd;
      connection.thread =
          std::thread([this, id, fd] { ConnectionLoop(id, fd); });
    }
    ReapFinishedConnections();
  }
}

void TcpForecastServer::ConnectionLoop(int64_t id, int fd) {
  while (true) {
    std::string frame_bytes(kFrameHeaderBytes, '\0');
    const ssize_t header_read =
        ReadExact(fd, frame_bytes.data(), kFrameHeaderBytes);
    if (header_read == 0) break;  // clean close between frames
    if (header_read != static_cast<ssize_t>(kFrameHeaderBytes)) {
      disconnects_mid_frame_.fetch_add(1);
      break;
    }
    const StatusOr<size_t> frame_size =
        PeekFrameSize(frame_bytes.data(), frame_bytes.size());
    if (!frame_size.ok()) {
      // The stream framing cannot be trusted after a bad header: report
      // the error and close.
      protocol_errors_.fetch_add(1);
      const std::string reply = EncodeStatusFrame(frame_size.status());
      if (WriteAll(fd, reply.data(), reply.size())) {
        error_frames_sent_.fetch_add(1);
      }
      break;
    }
    frame_bytes.resize(frame_size.value());
    const size_t remainder = frame_size.value() - kFrameHeaderBytes;
    if (remainder > 0 &&
        ReadExact(fd, frame_bytes.data() + kFrameHeaderBytes, remainder) !=
            static_cast<ssize_t>(remainder)) {
      disconnects_mid_frame_.fetch_add(1);
      break;
    }
    StatusOr<Frame> frame = DecodeFrame(frame_bytes);
    if (frame.ok() && frame.value().type != FrameType::kPredictRequest) {
      frame = Status::InvalidArgument(
          "the server only accepts predict request frames");
    }
    if (!frame.ok()) {
      protocol_errors_.fetch_add(1);
      const std::string reply = EncodeStatusFrame(frame.status());
      if (WriteAll(fd, reply.data(), reply.size())) {
        error_frames_sent_.fetch_add(1);
      }
      break;
    }
    requests_decoded_.fetch_add(1);

    // Arm the wire deadline against this host's clock the moment the
    // request is understood — from here on it is exactly an in-process
    // deadline (a non-positive budget is already expired).
    const int64_t budget = frame.value().deadline_budget_nanos;
    const Deadline deadline = budget == 0
                                  ? Deadline::Infinite()
                                  : Deadline::After(static_cast<double>(
                                                        budget) *
                                                    1e-9);
    StatusOr<Tensor> forecast =
        server_.Submit(std::move(frame.value().window), deadline).get();
    const std::string reply =
        forecast.ok() ? EncodePredictResponse(forecast.value())
                      : EncodeStatusFrame(forecast.status());
    if (!WriteAll(fd, reply.data(), reply.size())) break;
    if (forecast.ok()) {
      responses_sent_.fetch_add(1);
    } else {
      error_frames_sent_.fetch_add(1);
    }
  }
  // Tell the peer we are done NOW (FIN). The fd itself is closed later by
  // the reaper / Stop() after this thread is joined, so the descriptor
  // number cannot be recycled while anything may still touch it.
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  finished_connections_.push_back(id);
}

void TcpForecastServer::ReapFinishedConnections() {
  std::vector<Connection> done;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const int64_t id : finished_connections_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Stop() already took it
      done.push_back(
          Connection{it->second.fd, std::move(it->second.thread)});
      connections_.erase(it);
    }
    finished_connections_.clear();
  }
  for (Connection& connection : done) {
    if (connection.thread.joinable()) connection.thread.join();
    ::close(connection.fd);
  }
}

TcpForecastServer::Stats TcpForecastServer::stats() const {
  Stats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.requests_decoded = requests_decoded_.load();
  stats.responses_sent = responses_sent_.load();
  stats.error_frames_sent = error_frames_sent_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.disconnects_mid_frame = disconnects_mid_frame_.load();
  return stats;
}

}  // namespace autocts::net
