// TCP front-end for the forecast server: a listener thread accepts
// loopback/LAN connections, a per-connection handler decodes wire frames
// (net/wire_codec.h) and bridges them into the ForecastServer's
// micro-batching queue (serve/forecast_server.h).
//
// Request lifecycle on one connection (requests are served in order; a
// client pipelines by opening several connections):
//   read frame -> decode (corrupt frame: reply kInvalidArgument status and
//   close — the stream framing cannot be trusted after damage) -> arm the
//   wire deadline (Deadline::After of the carried budget, so a wire
//   deadline behaves exactly like an in-process one) -> Submit into the
//   ForecastServer (a rejected Submit becomes a kUnavailable status frame:
//   load shedding crosses the wire unchanged) -> wait for the forecast ->
//   write the response (or the typed status) frame.
//
// Graceful Stop(): stop accepting, close the listener, shut down the read
// side of every open connection (in-flight requests still get their
// responses written), join the connection handlers, then stop the inner
// ForecastServer — which itself drains every request already accepted into
// the queue. The cancellation token in ServeOptions works as in-process:
// once cancelled, queued and new requests fail with the token's status,
// which the wire carries back as a typed frame.
//
// Determinism: the transport moves IEEE-754 bit images, so a forecast
// fetched through this server is byte-identical to the in-process
// InferenceSession::PredictBatch result at any workers x max_batch
// combination (tests/net_test.cc sweeps this).
#ifndef AUTOCTS_NET_TCP_SERVER_H_
#define AUTOCTS_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/forecast_server.h"

namespace autocts::net {

struct TcpServeOptions {
  // Inner micro-batching server configuration (workers, max_batch,
  // queue_capacity, cancellation token, metrics). Validated by Start().
  serve::ServeOptions serve;
  // TCP port to listen on; 0 picks an ephemeral port (read it back via
  // port() after Start()).
  int port = 0;
  // Bind address. The default only accepts loopback connections; use
  // "0.0.0.0" to serve a network.
  std::string bind_address = "127.0.0.1";
  // listen(2) backlog.
  int backlog = 64;
};

class TcpForecastServer {
 public:
  TcpForecastServer(const serve::ModelArtifact& artifact,
                    const TcpServeOptions& options);
  ~TcpForecastServer();  // calls Stop()
  TcpForecastServer(const TcpForecastServer&) = delete;
  TcpForecastServer& operator=(const TcpForecastServer&) = delete;

  // Validates the options (InvalidArgument on a non-positive worker /
  // batch / queue knob, Internal on a socket failure such as a busy port),
  // starts the inner ForecastServer, binds + listens, and launches the
  // listener thread. Must be called exactly once before connections land.
  Status Start();

  // Graceful shutdown as documented above. Idempotent.
  void Stop();

  // The bound port (the chosen ephemeral port when options.port == 0).
  int port() const { return port_; }

  // The inner micro-batching server (tests stop it directly to exercise
  // the load-shed frame path deterministically).
  serve::ForecastServer& forecast_server() { return server_; }

  struct Stats {
    int64_t connections_accepted = 0;
    int64_t requests_decoded = 0;     // well-formed request frames
    int64_t responses_sent = 0;       // PredictResponse frames written
    int64_t error_frames_sent = 0;    // Status frames written
    int64_t protocol_errors = 0;      // corrupt/malformed/unexpected frames
    int64_t disconnects_mid_frame = 0;  // client vanished inside a frame
  };
  Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void ListenLoop();
  void ConnectionLoop(int64_t id, int fd);
  // Joins finished connection threads (called from the listener between
  // accepts and from Stop(), so the map stays bounded by the number of
  // concurrently open connections).
  void ReapFinishedConnections();

  serve::ForecastServer server_;
  TcpServeOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex connections_mutex_;
  std::map<int64_t, Connection> connections_;
  std::vector<int64_t> finished_connections_;
  int64_t next_connection_id_ = 0;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_decoded_{0};
  std::atomic<int64_t> responses_sent_{0};
  std::atomic<int64_t> error_frames_sent_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> disconnects_mid_frame_{0};
};

}  // namespace autocts::net

#endif  // AUTOCTS_NET_TCP_SERVER_H_
