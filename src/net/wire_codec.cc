#include "net/wire_codec.h"

#include <cstring>
#include <utility>

#include "common/file_io.h"
#include "common/macros.h"

namespace autocts::net {
namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. Encoding goes through explicit byte shifts (not
// memcpy of host integers) so the wire format — and the checked-in golden
// frames — are identical on every host.
// ---------------------------------------------------------------------------

void PutU16(std::string* out, uint16_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutDouble(std::string* out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

uint16_t GetU16(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return static_cast<uint16_t>(bytes[0]) |
         static_cast<uint16_t>(bytes[1]) << 8;
}

uint32_t GetU32(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  }
  return value;
}

uint64_t GetU64(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

double GetDouble(const char* data) {
  const uint64_t bits = GetU64(data);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// Wraps a finished payload in the header + CRC trailer.
std::string SealFrame(FrameType type, const std::string& payload) {
  AUTOCTS_CHECK_LE(payload.size(), kMaxPayloadBytes);
  std::string frame;
  frame.reserve(kFrameOverheadBytes + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  frame.push_back(static_cast<char>(kWireVersion));
  frame.push_back(static_cast<char>(type));
  PutU16(&frame, 0);  // reserved
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  PutU32(&frame, Crc32(frame.data(), frame.size()));
  return frame;
}

// Per-node dimension bound: a corrupt dimension field must not drive a
// giant allocation even when the element count happens to match the
// payload length arithmetic.
constexpr uint32_t kMaxDim = 1u << 24;

Status CheckDim(uint32_t value, const char* name) {
  if (value == 0 || value > kMaxDim) {
    return Status::InvalidArgument(
        std::string("wire frame: dimension ") + name + " = " +
        std::to_string(value) + " out of range [1, " +
        std::to_string(kMaxDim) + "]");
  }
  return Status::Ok();
}

StatusOr<Frame> DecodePredictRequestPayload(const char* payload, size_t size) {
  constexpr size_t kFixed = 4 + 4 + 4 + 8;  // P, N, F, deadline budget
  if (size < kFixed) {
    return Status::InvalidArgument("predict request payload too short");
  }
  const uint32_t p = GetU32(payload);
  const uint32_t n = GetU32(payload + 4);
  const uint32_t f = GetU32(payload + 8);
  const std::pair<uint32_t, const char*> dims[] = {{p, "P"}, {n, "N"},
                                                   {f, "F"}};
  for (const auto& [value, name] : dims) {
    const Status status = CheckDim(value, name);
    if (!status.ok()) return status;
  }
  const uint64_t elements =
      uint64_t{p} * uint64_t{n} * uint64_t{f};
  if (size != kFixed + elements * sizeof(double)) {
    return Status::InvalidArgument(
        "predict request payload length does not match [P, N, F]");
  }
  Frame frame;
  frame.type = FrameType::kPredictRequest;
  frame.deadline_budget_nanos = static_cast<int64_t>(GetU64(payload + 12));
  frame.window = Tensor::Uninitialized({static_cast<int64_t>(p),
                                        static_cast<int64_t>(n),
                                        static_cast<int64_t>(f)});
  const char* cursor = payload + kFixed;
  for (uint64_t i = 0; i < elements; ++i, cursor += sizeof(double)) {
    frame.window.data()[i] = GetDouble(cursor);
  }
  return frame;
}

StatusOr<Frame> DecodePredictResponsePayload(const char* payload,
                                             size_t size) {
  constexpr size_t kFixed = 4 + 4;  // Q, N
  if (size < kFixed) {
    return Status::InvalidArgument("predict response payload too short");
  }
  const uint32_t q = GetU32(payload);
  const uint32_t n = GetU32(payload + 4);
  const std::pair<uint32_t, const char*> dims[] = {{q, "Q"}, {n, "N"}};
  for (const auto& [value, name] : dims) {
    const Status status = CheckDim(value, name);
    if (!status.ok()) return status;
  }
  const uint64_t elements = uint64_t{q} * uint64_t{n};
  if (size != kFixed + elements * sizeof(double)) {
    return Status::InvalidArgument(
        "predict response payload length does not match [Q, N]");
  }
  Frame frame;
  frame.type = FrameType::kPredictResponse;
  frame.forecast = Tensor::Uninitialized(
      {static_cast<int64_t>(q), static_cast<int64_t>(n)});
  const char* cursor = payload + kFixed;
  for (uint64_t i = 0; i < elements; ++i, cursor += sizeof(double)) {
    frame.forecast.data()[i] = GetDouble(cursor);
  }
  return frame;
}

StatusOr<Frame> DecodeStatusPayload(const char* payload, size_t size) {
  constexpr size_t kFixed = 4 + 4;  // code, message length
  if (size < kFixed) {
    return Status::InvalidArgument("status payload too short");
  }
  const uint32_t code = GetU32(payload);
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("status frame carries unknown code " +
                                   std::to_string(code));
  }
  const uint32_t message_length = GetU32(payload + 4);
  if (size != kFixed + message_length) {
    return Status::InvalidArgument(
        "status payload length does not match the message length field");
  }
  Frame frame;
  frame.type = FrameType::kStatus;
  frame.status = Status(static_cast<StatusCode>(code),
                        std::string(payload + kFixed, message_length));
  return frame;
}

}  // namespace

std::string EncodePredictRequest(const Tensor& window,
                                 int64_t deadline_budget_nanos) {
  AUTOCTS_CHECK_EQ(window.ndim(), 3)
      << "predict request window must be [P, N, F]";
  std::string payload;
  payload.reserve(20 + static_cast<size_t>(window.size()) * sizeof(double));
  PutU32(&payload, static_cast<uint32_t>(window.dim(0)));
  PutU32(&payload, static_cast<uint32_t>(window.dim(1)));
  PutU32(&payload, static_cast<uint32_t>(window.dim(2)));
  PutU64(&payload, static_cast<uint64_t>(deadline_budget_nanos));
  for (int64_t i = 0; i < window.size(); ++i) {
    PutDouble(&payload, window.data()[i]);
  }
  return SealFrame(FrameType::kPredictRequest, payload);
}

std::string EncodePredictResponse(const Tensor& forecast) {
  AUTOCTS_CHECK_EQ(forecast.ndim(), 2)
      << "predict response forecast must be [Q, N]";
  std::string payload;
  payload.reserve(8 + static_cast<size_t>(forecast.size()) * sizeof(double));
  PutU32(&payload, static_cast<uint32_t>(forecast.dim(0)));
  PutU32(&payload, static_cast<uint32_t>(forecast.dim(1)));
  for (int64_t i = 0; i < forecast.size(); ++i) {
    PutDouble(&payload, forecast.data()[i]);
  }
  return SealFrame(FrameType::kPredictResponse, payload);
}

std::string EncodeStatusFrame(const Status& status) {
  AUTOCTS_CHECK(!status.ok()) << "an OK status is never a frame";
  std::string payload;
  payload.reserve(8 + status.message().size());
  PutU32(&payload, static_cast<uint32_t>(status.code()));
  PutU32(&payload, static_cast<uint32_t>(status.message().size()));
  payload.append(status.message());
  return SealFrame(FrameType::kStatus, payload);
}

StatusOr<size_t> PeekFrameSize(const char* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header needs " +
                                   std::to_string(kFrameHeaderBytes) +
                                   " bytes, have " + std::to_string(size));
  }
  if (std::memcmp(data, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  const auto version = static_cast<uint8_t>(data[4]);
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  const auto type = static_cast<uint8_t>(data[5]);
  if (type < static_cast<uint8_t>(FrameType::kPredictRequest) ||
      type > static_cast<uint8_t>(FrameType::kStatus)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (GetU16(data + 6) != 0) {
    return Status::InvalidArgument("reserved header bytes must be zero");
  }
  const uint32_t payload_length = GetU32(data + 8);
  if (payload_length > kMaxPayloadBytes) {
    return Status::InvalidArgument("payload length " +
                                   std::to_string(payload_length) +
                                   " exceeds the frame size limit");
  }
  return kFrameOverheadBytes + static_cast<size_t>(payload_length);
}

StatusOr<Frame> DecodeFrame(const std::string& bytes) {
  StatusOr<size_t> frame_size = PeekFrameSize(bytes.data(), bytes.size());
  if (!frame_size.ok()) return frame_size.status();
  if (bytes.size() != frame_size.value()) {
    return Status::InvalidArgument(
        "frame is " + std::to_string(bytes.size()) + " bytes, header says " +
        std::to_string(frame_size.value()));
  }
  const size_t crc_offset = bytes.size() - 4;
  const uint32_t stored_crc = GetU32(bytes.data() + crc_offset);
  const uint32_t actual_crc = Crc32(bytes.data(), crc_offset);
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  const char* payload = bytes.data() + kFrameHeaderBytes;
  const size_t payload_size = crc_offset - kFrameHeaderBytes;
  switch (static_cast<FrameType>(static_cast<uint8_t>(bytes[5]))) {
    case FrameType::kPredictRequest:
      return DecodePredictRequestPayload(payload, payload_size);
    case FrameType::kPredictResponse:
      return DecodePredictResponsePayload(payload, payload_size);
    case FrameType::kStatus:
      return DecodeStatusPayload(payload, payload_size);
  }
  return Status::InvalidArgument("unknown frame type");  // unreachable
}

}  // namespace autocts::net
