#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/cancellation.h"
#include "net/wire_codec.h"

namespace autocts::net {
namespace {

bool SendAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t sent = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(sent);
  }
  return true;
}

// Reads exactly `size` bytes, bounded by `timeout`. On the local timeout
// the reply may still be in flight, leaving the stream desynchronized —
// the caller must drop the connection.
Status ReadExactTimed(int fd, char* data, size_t size,
                      const Deadline& timeout) {
  size_t done = 0;
  while (done < size) {
    if (!timeout.infinite()) {
      const double remaining = timeout.remaining_seconds();
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded("request timed out");
      }
      pollfd pfd{fd, POLLIN, 0};
      const int timeout_ms = static_cast<int>(
          std::min(remaining * 1e3 + 1.0, 2.0e9));
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0) {
        return Status::DeadlineExceeded("request timed out");
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(std::string("poll: ") +
                                   std::strerror(errno));
      }
    }
    const ssize_t got = ::recv(fd, data + done, size - done, 0);
    if (got == 0) {
      return Status::Unavailable("connection closed by server");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

}  // namespace

ForecastClient::ForecastClient(const ForecastClientOptions& options)
    : options_(options) {}

ForecastClient::~ForecastClient() { Disconnect(); }

Status ForecastClient::ConnectOnce() {
  Disconnect();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address \"" + options_.host +
                                   "\" (an IPv4 literal is required)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable("connect " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::Ok();
}

Status ForecastClient::Connect() {
  if (connected()) return Status::Ok();
  return fault::RetryCall(options_.retry,
                          "connect " + options_.host + ":" +
                              std::to_string(options_.port),
                          [this] { return ConnectOnce(); })
      .status;
}

void ForecastClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Tensor> ForecastClient::RoundTrip(const std::string& request,
                                           bool* transport) {
  *transport = true;
  const Deadline timeout =
      Deadline::AfterBudget(options_.request_timeout_seconds);
  if (!SendAll(fd_, request.data(), request.size())) {
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  std::string reply(kFrameHeaderBytes, '\0');
  Status read = ReadExactTimed(fd_, reply.data(), reply.size(), timeout);
  StatusOr<size_t> frame_size = Status::Internal("unset");
  if (read.ok()) {
    frame_size = PeekFrameSize(reply.data(), reply.size());
    if (frame_size.ok()) {
      reply.resize(frame_size.value());
      read = ReadExactTimed(fd_, reply.data() + kFrameHeaderBytes,
                            frame_size.value() - kFrameHeaderBytes, timeout);
    } else {
      // A garbled reply: forecasts are idempotent, so the resilient move
      // is reconnect + resend (transport stays true).
      read = frame_size.status();
    }
  }
  if (!read.ok()) {
    if (read.code() == StatusCode::kDeadlineExceeded) {
      // The reply may still arrive later; the stream is desynchronized.
      // Drop the connection but do NOT retry — the server may already
      // have spent the forward on this request.
      Disconnect();
      *transport = false;
    }
    return read;
  }
  StatusOr<Frame> frame = DecodeFrame(reply);
  if (!frame.ok()) return frame.status();  // corrupt reply: retryable
  if (frame.value().type == FrameType::kStatus) {
    *transport = false;  // the server's own answer — return it verbatim
    return frame.value().status;
  }
  if (frame.value().type != FrameType::kPredictResponse) {
    return Status::Unavailable("unexpected frame type from the server");
  }
  return std::move(frame.value().forecast);
}

StatusOr<Tensor> ForecastClient::Predict(const Tensor& window,
                                         double deadline_seconds) {
  if (window.ndim() != 3) {
    return Status::InvalidArgument("predict window must be [P, N, F]");
  }
  int64_t budget_nanos = 0;
  if (deadline_seconds != 0.0) {
    budget_nanos = static_cast<int64_t>(deadline_seconds * 1e9);
    // Keep the sign even when the magnitude rounds away: 0 means "no
    // deadline" on the wire.
    if (budget_nanos == 0) budget_nanos = deadline_seconds > 0.0 ? 1 : -1;
  }
  const std::string request = EncodePredictRequest(window, budget_nanos);
  const int64_t attempts = std::max<int64_t>(1, options_.retry.max_attempts);
  Status last = Status::Unavailable("no attempt made");
  for (int64_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      fault::SleepForBackoff(options_.retry,
                             fault::BackoffSeconds(options_.retry, attempt));
    }
    if (!connected()) {
      const Status connect = ConnectOnce();
      if (!connect.ok()) {
        last = connect;
        continue;
      }
    }
    bool transport = false;
    StatusOr<Tensor> result = RoundTrip(request, &transport);
    if (result.ok() || !transport) return result;
    last = result.status();
    Disconnect();  // reconnect on the next attempt
  }
  return last;
}

}  // namespace autocts::net
