// Blocking forecast client for the TCP wire protocol: connects to a
// TcpForecastServer, round-trips PredictRequest/PredictResponse frames,
// and rebuilds typed server errors as the exact Status the server produced.
//
// Resilience (PR 7 machinery, common/fault.h):
//   * Connect() runs under the configured RetryPolicy — bounded attempts
//     with deterministic exponential backoff — so a client started before
//     its server wins the race instead of failing.
//   * Predict() retries TRANSPORT failures (connection refused/broken
//     before a complete reply arrived) under the same policy, reconnecting
//     between attempts. Typed status frames from the server — load shed
//     (kUnavailable), expired deadline, cancellation, bad request — are
//     application answers, not transport failures: they are returned
//     verbatim, never retried, so callers observe exactly the status the
//     server decided on.
//   * A per-request timeout (ClientOptions.request_timeout_seconds) bounds
//     the wait for the reply bytes; on expiry Predict returns
//     kDeadlineExceeded without retrying (the request may have been
//     served — retrying would double-spend server work).
//
// The deadline passed to Predict() travels on the wire as a relative
// budget and is armed server-side on arrival, so it shows the same
// semantics as an in-process ForecastServer::Submit deadline.
//
// Clients are not thread-safe: one connection serves one request at a
// time. Open one client per concurrent stream (see bench/bench_net.cc).
#ifndef AUTOCTS_NET_CLIENT_H_
#define AUTOCTS_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/fault.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace autocts::net {

struct ForecastClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  // Connect + transport-failure retry schedule (attempts include the
  // first; see common/fault.h).
  fault::RetryPolicy retry;
  // Wall-clock bound on one request round trip; 0 = wait forever.
  double request_timeout_seconds = 0.0;
};

class ForecastClient {
 public:
  explicit ForecastClient(const ForecastClientOptions& options);
  ~ForecastClient();
  ForecastClient(const ForecastClient&) = delete;
  ForecastClient& operator=(const ForecastClient&) = delete;

  // Establishes the connection under the retry policy. Predict() calls
  // this lazily, so calling it up front is optional (but surfaces
  // connectivity errors early).
  Status Connect();
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // Blocking forecast round trip for a raw window [P, N, F].
  // `deadline_seconds` is the server-side budget: 0 = none, negative =
  // already expired on arrival (a deterministic test seam, mirroring
  // Deadline::After(-1)), positive = seconds from server receipt.
  StatusOr<Tensor> Predict(const Tensor& window,
                           double deadline_seconds = 0.0);

  const ForecastClientOptions& options() const { return options_; }

 private:
  Status ConnectOnce();
  // One request/reply exchange on the live connection. A non-OK return
  // with transport == true means the connection died (retryable); with
  // transport == false it is the server's own answer (returned verbatim).
  StatusOr<Tensor> RoundTrip(const std::string& request, bool* transport);

  ForecastClientOptions options_;
  int fd_ = -1;
};

}  // namespace autocts::net

#endif  // AUTOCTS_NET_CLIENT_H_
