// Binary wire protocol for the forecast service: length-prefixed,
// CRC32-guarded, versioned frames carrying forecast requests, responses,
// and typed errors between a ForecastClient and a TcpForecastServer.
//
// Frame layout (all multi-byte fields little-endian on the wire,
// independent of host endianness):
//
//   offset  size  field
//   0       4     magic "ACTS"
//   4       1     protocol version (kWireVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be zero
//   8       4     payload length L (u32, <= kMaxPayloadBytes)
//   12      L     payload (per-type encoding below)
//   12+L    4     CRC32 (common/file_io.h, IEEE) over bytes [0, 12+L)
//
// Payload encodings:
//   kPredictRequest   u32 P, u32 N, u32 F, i64 deadline_budget_nanos,
//                     then P*N*F doubles. A zero budget means no deadline;
//                     otherwise the server arms Deadline::After(budget) the
//                     moment it decodes the frame, so a wire deadline
//                     behaves exactly like an in-process one (a
//                     non-positive budget is already expired on arrival).
//   kPredictResponse  u32 Q, u32 N, then Q*N doubles.
//   kStatus           i32 status code (common/status.h StatusCode), u32
//                     message length, message bytes. Carries every non-OK
//                     outcome — load shed (kUnavailable), expired deadline
//                     (kDeadlineExceeded), cancellation (kCancelled),
//                     malformed request (kInvalidArgument) — so the client
//                     rebuilds the exact Status the server produced.
//
// Doubles travel as their IEEE-754 bit images (u64, little-endian): the
// wire is exact, and a forecast fetched remotely is byte-identical to the
// in-process PredictBatch result — the contract tests/net_test.cc enforces.
//
// Corruption rejection: DecodeFrame consumes a complete frame and rejects
// ANY corruption — a flipped bit anywhere fails the CRC trailer (or the
// magic/version/length validation before it), any truncation fails the
// length check, and trailing garbage fails the exact-size check. The codec
// never crashes on hostile bytes; it returns a non-OK Status
// (tests/wire_codec_test.cc sweeps every single-byte flip, every
// truncation, and a seeded random-bytes fuzz loop).
#ifndef AUTOCTS_NET_WIRE_CODEC_H_
#define AUTOCTS_NET_WIRE_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace autocts::net {

inline constexpr char kFrameMagic[4] = {'A', 'C', 'T', 'S'};
inline constexpr uint8_t kWireVersion = 1;

// Bytes before the payload (magic + version + type + reserved + length).
inline constexpr size_t kFrameHeaderBytes = 12;
// Header + CRC trailer: a frame with payload length L is
// kFrameOverheadBytes + L bytes long.
inline constexpr size_t kFrameOverheadBytes = 16;
// Upper bound on the payload length field: rejects absurd length prefixes
// (a corrupt or hostile header) before any allocation happens.
inline constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 28;  // 256 MiB

enum class FrameType : uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kStatus = 3,
};

// A decoded frame: `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kStatus;
  // kPredictRequest:
  Tensor window;                      // [P, N, F]
  int64_t deadline_budget_nanos = 0;  // 0 = no deadline
  // kPredictResponse:
  Tensor forecast;  // [Q, N]
  // kStatus: the transported (non-OK) status.
  Status status = Status::Ok();
};

// Encoders. EncodePredictRequest CHECKs window.ndim() == 3;
// EncodePredictResponse CHECKs forecast.ndim() == 2; EncodeStatusFrame
// CHECKs !status.ok() (an OK status is never a frame).
std::string EncodePredictRequest(const Tensor& window,
                                 int64_t deadline_budget_nanos = 0);
std::string EncodePredictResponse(const Tensor& forecast);
std::string EncodeStatusFrame(const Status& status);

// Validates the fixed header (magic, version, type, reserved, length
// bound) and returns the total frame size in bytes — what an incremental
// reader must accumulate before calling DecodeFrame. Requires
// size >= kFrameHeaderBytes (InvalidArgument otherwise).
StatusOr<size_t> PeekFrameSize(const char* data, size_t size);

// Decodes exactly one complete frame: `bytes` must be the frame and
// nothing else. Rejects any corruption, truncation, or trailing garbage
// with a non-OK status; never crashes on arbitrary input.
StatusOr<Frame> DecodeFrame(const std::string& bytes);

}  // namespace autocts::net

#endif  // AUTOCTS_NET_WIRE_CODEC_H_
