#include "models/model_zoo.h"

#include "models/agcrn.h"
#include "models/dcrnn.h"
#include "models/graph_wavenet.h"
#include "models/lstnet.h"
#include "models/mtgnn.h"
#include "models/stgcn.h"
#include "models/tpa_lstm.h"

namespace autocts::models {

ForecastingModelPtr CreateBaseline(const std::string& name,
                                   const ModelContext& context) {
  if (name == "DCRNN") return std::make_unique<Dcrnn>(context);
  if (name == "STGCN") return std::make_unique<Stgcn>(context);
  if (name == "GraphWaveNet") return std::make_unique<GraphWaveNet>(context);
  if (name == "AGCRN") return std::make_unique<Agcrn>(context);
  if (name == "LSTNet") return std::make_unique<LstNet>(context);
  if (name == "TPA-LSTM") return std::make_unique<TpaLstm>(context);
  if (name == "MTGNN") return std::make_unique<Mtgnn>(context);
  AUTOCTS_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

std::vector<std::string> MultiStepBaselineNames() {
  return {"DCRNN", "STGCN", "GraphWaveNet", "AGCRN", "MTGNN"};
}

std::vector<std::string> SingleStepBaselineNames() {
  return {"LSTNet", "TPA-LSTM", "MTGNN"};
}

std::vector<std::string> AllBaselineNames() {
  return {"DCRNN", "STGCN", "GraphWaveNet", "AGCRN",
          "LSTNet", "TPA-LSTM", "MTGNN"};
}

}  // namespace autocts::models
