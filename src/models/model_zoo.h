// Name-keyed factory over all baseline models, used by tests, benches, and
// examples.
#ifndef AUTOCTS_MODELS_MODEL_ZOO_H_
#define AUTOCTS_MODELS_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "models/forecasting_model.h"

namespace autocts::models {

// Builds a baseline by name; known names: "DCRNN", "STGCN",
// "GraphWaveNet", "AGCRN", "LSTNet", "TPA-LSTM", "MTGNN".
ForecastingModelPtr CreateBaseline(const std::string& name,
                                   const ModelContext& context);

// The multi-step baselines of Tables 5-6 (excluding the NAS methods).
std::vector<std::string> MultiStepBaselineNames();

// The single-step baselines of Table 8.
std::vector<std::string> SingleStepBaselineNames();

// Every registered baseline, each buildable via CreateBaseline; used by
// zoo-wide property tests (e.g. the state-dict round-trip suite).
std::vector<std::string> AllBaselineNames();

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_MODEL_ZOO_H_
