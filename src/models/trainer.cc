#include "models/trainer.h"

#include <limits>
#include <memory>

#include "autograd/variable_ops.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/state_dict.h"
#include "optim/adam.h"
#include "tensor/tensor_ops.h"

namespace autocts::models {

PreparedData PrepareData(const data::CtsDataset& dataset,
                         const data::WindowSpec& window,
                         double train_fraction, double validation_fraction) {
  PreparedData prepared;
  prepared.window = window;
  prepared.num_nodes = dataset.num_nodes();
  prepared.in_features = dataset.num_features();
  prepared.target_feature = window.target_feature;
  prepared.adjacency = dataset.adjacency;

  const data::DataSplit raw = data::ChronologicalSplit(
      dataset.values, train_fraction, validation_fraction);
  prepared.scaler.Fit(raw.train, /*mask_null=*/true);
  prepared.splits.emplace_back(prepared.scaler.Transform(raw.train), window);
  prepared.splits.emplace_back(prepared.scaler.Transform(raw.validation),
                               window);
  prepared.splits.emplace_back(prepared.scaler.Transform(raw.test), window);
  return prepared;
}

EvalResult TrainAndEvaluate(ForecastingModel* model, const PreparedData& data,
                            const TrainConfig& config) {
  AUTOCTS_CHECK(model != nullptr);
  EvalResult result;
  result.parameter_count = model->NumParameters();

  optim::Adam optimizer(model->Parameters(),
                        {.learning_rate = config.learning_rate,
                         .weight_decay = config.weight_decay});
  Rng rng(config.seed);

  model->SetTraining(true);
  double total_train_seconds = 0.0;
  double best_validation_loss = std::numeric_limits<double>::infinity();
  int64_t epochs_without_improvement = 0;
  std::unique_ptr<nn::ParameterSnapshot> best_weights;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch epoch_timer;
    double epoch_loss = 0.0;
    int64_t batches_done = 0;
    for (const std::vector<int64_t>& batch :
         data.train().EpochBatches(config.batch_size, &rng)) {
      if (config.max_batches_per_epoch > 0 &&
          batches_done >= config.max_batches_per_epoch) {
        break;
      }
      Tensor x, y;
      data.train().GetBatch(batch, &x, &y);
      const Variable prediction = model->Forward(ag::Constant(x));
      Variable loss = ag::L1Loss(prediction, ag::Constant(y));
      optimizer.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(model->Parameters(), config.clip_norm);
      optimizer.Step();
      epoch_loss += loss.value().item();
      ++batches_done;
    }
    total_train_seconds += epoch_timer.Seconds();
    result.final_train_loss =
        batches_done > 0 ? epoch_loss / static_cast<double>(batches_done)
                         : 0.0;
    ++result.epochs_run;
    if (config.verbose) {
      AUTOCTS_LOG(INFO) << model->name() << " epoch " << epoch + 1 << "/"
                        << config.epochs << " loss "
                        << result.final_train_loss;
    }
    if (config.early_stop_patience > 0) {
      const double validation_loss = EvaluateLoss(
          model, data, data.validation(), config.batch_size);
      if (validation_loss < best_validation_loss - 1e-9) {
        best_validation_loss = validation_loss;
        epochs_without_improvement = 0;
        if (config.restore_best_weights) {
          best_weights = std::make_unique<nn::ParameterSnapshot>(*model);
        }
      } else if (++epochs_without_improvement >=
                 config.early_stop_patience) {
        if (config.verbose) {
          AUTOCTS_LOG(INFO) << model->name() << " early stop after epoch "
                            << epoch + 1;
        }
        break;
      }
      model->SetTraining(true);
    }
  }
  result.train_seconds_per_epoch =
      result.epochs_run > 0 ? total_train_seconds / result.epochs_run : 0.0;
  if (best_weights != nullptr) best_weights->Restore(model);

  // Test evaluation with denormalized masked metrics.
  model->SetTraining(false);
  Tensor predictions, truths;
  Stopwatch inference_timer;
  Predict(model, data, data.test(), config.batch_size, &predictions, &truths);
  const int64_t windows = predictions.dim(0);
  result.inference_ms_per_window =
      windows > 0 ? inference_timer.Millis() / static_cast<double>(windows)
                  : 0.0;

  result.average = metrics::ComputeMetrics(predictions, truths);
  const int64_t horizons = predictions.dim(1);
  result.per_horizon.reserve(horizons);
  for (int64_t h = 0; h < horizons; ++h) {
    result.per_horizon.push_back(
        metrics::ComputeHorizonMetrics(predictions, truths, h));
  }
  result.rrse = metrics::Rrse(predictions, truths);
  result.corr = metrics::Corr(predictions, truths);
  model->SetTraining(true);
  return result;
}

void Predict(ForecastingModel* model, const PreparedData& data,
             const data::WindowDataset& windows, int64_t batch_size,
             Tensor* predictions, Tensor* truths) {
  const bool was_training = model->training();
  model->SetTraining(false);
  std::vector<Tensor> prediction_parts;
  std::vector<Tensor> truth_parts;
  const std::vector<int64_t> all = windows.AllIndices();
  for (int64_t start = 0; start < static_cast<int64_t>(all.size());
       start += batch_size) {
    const int64_t end = std::min<int64_t>(all.size(), start + batch_size);
    const std::vector<int64_t> batch(all.begin() + start, all.begin() + end);
    Tensor x, y;
    windows.GetBatch(batch, &x, &y);
    const Variable prediction = model->Forward(ag::Constant(x));
    prediction_parts.push_back(prediction.value());
    truth_parts.push_back(y);
  }
  AUTOCTS_CHECK(!prediction_parts.empty());
  *predictions = data.scaler.InverseTransformFeature(
      Concat(prediction_parts, 0), data.target_feature);
  *truths = data.scaler.InverseTransformFeature(Concat(truth_parts, 0),
                                                data.target_feature);
  model->SetTraining(was_training);
}

double EvaluateLoss(ForecastingModel* model, const PreparedData& data,
                    const data::WindowDataset& windows, int64_t batch_size) {
  (void)data;
  const bool was_training = model->training();
  model->SetTraining(false);
  double total = 0.0;
  int64_t batches = 0;
  const std::vector<int64_t> all = windows.AllIndices();
  for (int64_t start = 0; start < static_cast<int64_t>(all.size());
       start += batch_size) {
    const int64_t end = std::min<int64_t>(all.size(), start + batch_size);
    const std::vector<int64_t> batch(all.begin() + start, all.begin() + end);
    Tensor x, y;
    windows.GetBatch(batch, &x, &y);
    const Variable prediction = model->Forward(ag::Constant(x));
    total += ag::L1Loss(prediction, ag::Constant(y)).value().item();
    ++batches;
  }
  model->SetTraining(was_training);
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

}  // namespace autocts::models
