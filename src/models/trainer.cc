#include "models/trainer.h"

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "autograd/variable_ops.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "nn/state_dict.h"
#include "optim/adam.h"
#include "tensor/tensor_ops.h"

namespace autocts::models {

namespace {

// Trainer instrument set (registration order == CSV column order). Names
// follow the "wall/" determinism convention of common/metrics_registry.h.
constexpr char kTrainLoss[] = "train_loss";
constexpr char kValLoss[] = "val_loss";
constexpr char kGradNorm[] = "grad_norm";
constexpr char kBatchesTotal[] = "batches_total";
constexpr char kSkippedSteps[] = "skipped_steps";
constexpr char kRecoveries[] = "recoveries";
constexpr char kEpochSec[] = "wall/epoch_sec";
constexpr char kBatchesPerSec[] = "wall/batches_per_sec";

void RegisterTrainMetrics(obs::MetricsRegistry* registry) {
  registry->GetGauge(kTrainLoss);
  registry->GetGauge(kValLoss);
  registry->GetGauge(kGradNorm);
  registry->GetCounter(kBatchesTotal);
  registry->GetCounter(kSkippedSteps);
  registry->GetCounter(kRecoveries);
  registry->GetGauge(kEpochSec);
  registry->GetGauge(kBatchesPerSec);
}

// Same RAII shape as the searcher's TraceSession: starts the tracer when a
// path is given and no trace is already running; on destruction writes the
// Chrome JSON and the "<path>.ops.csv" aggregate table.
class TraceSession {
 public:
  explicit TraceSession(const std::string& path) {
    if (path.empty() || trace::Active()) return;
    path_ = path;
    trace::Start();
    root_.emplace("train");
  }
  ~TraceSession() {
    if (path_.empty()) return;
    root_.reset();
    trace::Stop();
    if (!trace::WriteChromeTrace(path_) ||
        !trace::WriteAggregateCsv(path_ + ".ops.csv")) {
      AUTOCTS_LOG(WARNING) << "failed to write trace output at " << path_;
    }
  }

 private:
  std::string path_;
  std::optional<trace::Scope> root_;
};

// Writes the metrics sinks on exit, retrying transient I/O failures under
// the default policy; telemetry that still cannot be written degrades to a
// warning (training results never die of a sink).
class MetricsSinkGuard {
 public:
  MetricsSinkGuard(const obs::MetricsRegistry* registry, std::string path)
      : registry_(registry), path_(std::move(path)) {}
  ~MetricsSinkGuard() {
    if (registry_ == nullptr || path_.empty()) return;
    const fault::RetryOutcome outcome =
        fault::RetryCall(fault::RetryPolicy(), "metrics sinks " + path_,
                         [&] { return registry_->WriteSinks(path_); });
    if (!outcome.status.ok()) {
      AUTOCTS_LOG(WARNING) << "failed to write metrics sinks: "
                           << outcome.status.ToString();
    }
  }

 private:
  const obs::MetricsRegistry* registry_;
  std::string path_;
};

}  // namespace

PreparedData PrepareData(const data::CtsDataset& dataset,
                         const data::WindowSpec& window,
                         double train_fraction, double validation_fraction) {
  PreparedData prepared;
  prepared.window = window;
  prepared.num_nodes = dataset.num_nodes();
  prepared.in_features = dataset.num_features();
  prepared.target_feature = window.target_feature;
  prepared.adjacency = dataset.adjacency;
  prepared.zero_is_missing = dataset.zero_is_missing;

  const data::DataSplit raw = data::ChronologicalSplit(
      dataset.values, train_fraction, validation_fraction);
  // Masking is a per-dataset property: traffic-speed zeros are sensor
  // dropouts (mask and pass through unscaled), solar nighttime zeros are
  // real values (scale like everything else).
  prepared.scaler.Fit(raw.train, /*mask_null=*/dataset.zero_is_missing);
  prepared.splits.emplace_back(prepared.scaler.Transform(raw.train), window);
  prepared.splits.emplace_back(prepared.scaler.Transform(raw.validation),
                               window);
  prepared.splits.emplace_back(prepared.scaler.Transform(raw.test), window);
  return prepared;
}

EvalResult TrainAndEvaluate(ForecastingModel* model, const PreparedData& data,
                            const TrainConfig& config) {
  StatusOr<EvalResult> result = TrainAndEvaluateWithStatus(model, data, config);
  AUTOCTS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

StatusOr<EvalResult> TrainAndEvaluateWithStatus(ForecastingModel* model,
                                                const PreparedData& data,
                                                const TrainConfig& config) {
  AUTOCTS_CHECK(model != nullptr);
  EvalResult result;
  result.parameter_count = model->NumParameters();

  obs::MetricsRegistry own_registry;
  obs::MetricsRegistry* metrics = config.metrics;
  if (metrics == nullptr && !config.metrics_path.empty()) {
    metrics = &own_registry;
  }
  if (metrics != nullptr) RegisterTrainMetrics(metrics);
  MetricsSinkGuard metrics_sink(metrics, config.metrics_path);
  TraceSession trace_session(config.trace_path);

  optim::Adam optimizer(model->Parameters(),
                        {.learning_rate = config.learning_rate,
                         .weight_decay = config.weight_decay});
  Rng rng(config.seed);
  numerics::HealthMonitor monitor(config.health);
  const numerics::RecoveryOptions& recovery = config.recovery;
  const std::vector<Variable> parameters = model->Parameters();

  // Last-good state for the rollback tier: captured at the start of every
  // epoch while healthy, restored wholesale when an epoch diverges beyond
  // what step-skipping can absorb.
  std::unique_ptr<nn::ParameterSnapshot> good_weights;
  optim::AdamState good_optimizer_state;
  RngState good_rng_state;
  double good_best_validation_loss = 0.0;
  int64_t good_epochs_without_improvement = 0;

  double lr_scale = 1.0;
  int64_t recoveries_left = recovery.max_recoveries;
  int64_t consecutive_skips = 0;

  model->SetTraining(true);
  double total_train_seconds = 0.0;
  double best_validation_loss = std::numeric_limits<double>::infinity();
  int64_t epochs_without_improvement = 0;
  std::unique_ptr<nn::ParameterSnapshot> best_weights;
  bool stop_early = false;
  int64_t total_batches = 0;  // across epochs, retries included
  for (int64_t epoch = 0; epoch < config.epochs && !stop_early; ++epoch) {
    if (recovery.enabled) {
      good_weights = std::make_unique<nn::ParameterSnapshot>(*model);
      good_optimizer_state = optimizer.ExportState();
      good_rng_state = rng.GetState();
      good_best_validation_loss = best_validation_loss;
      good_epochs_without_improvement = epochs_without_improvement;
    }
    bool rollback = false;
    std::string anomaly_context;
    Stopwatch epoch_timer;
    double epoch_loss = 0.0;
    int64_t batches_done = 0;
    int64_t batch_index = -1;
    for (const std::vector<int64_t>& batch :
         data.train().EpochBatches(config.batch_size, &rng)) {
      ++batch_index;
      if (config.max_batches_per_epoch > 0 &&
          batches_done >= config.max_batches_per_epoch) {
        break;
      }
      const Status interrupt =
          CheckInterrupt(config.cancel, config.deadline, total_batches,
                         config.step_budget, model->name() + " training");
      if (!interrupt.ok()) return interrupt;
      ++total_batches;
      Tensor x, y;
      data.train().GetBatch(batch, &x, &y);
      const auto batch_loss_fn = [&] {
        return ag::L1Loss(model->Forward(ag::Constant(x)), ag::Constant(y));
      };
      Variable loss = batch_loss_fn();
      optimizer.ZeroGrad();
      const double loss_value = loss.value().item();
      double batch_grad_norm = 0.0;
      numerics::Anomaly anomaly = monitor.ObserveLoss(loss_value);
      if (anomaly == numerics::Anomaly::kNone) {
        loss.Backward();
        if (config.fault_injection_hook) {
          config.fault_injection_hook(epoch, batch_index, model);
        }
        // A false return means a non-finite norm (gradients untouched),
        // which ObserveGradientNorm flags from the norm value itself.
        double pre_clip_norm = 0.0;
        optim::ClipGradNormChecked(parameters, config.clip_norm,
                                   &pre_clip_norm);
        batch_grad_norm = pre_clip_norm;
        anomaly = monitor.ObserveGradientNorm(pre_clip_norm);
        if (anomaly == numerics::Anomaly::kNone) {
          optimizer.Step();
          // Catches both an update that overflowed a weight and a weight
          // corrupted directly (e.g. by the fault-injection hook).
          anomaly = monitor.CheckParameters(parameters);
        }
      }
      if (anomaly == numerics::Anomaly::kNone) {
        epoch_loss += loss_value;
        ++batches_done;
        consecutive_skips = 0;
        if (metrics != nullptr) {
          metrics->GetCounter(kBatchesTotal)->Increment();
          metrics->GetGauge(kTrainLoss)->Set(loss_value);
          metrics->GetGauge(kGradNorm)->Set(batch_grad_norm);
          if (config.metrics_every_n_batches > 0 &&
              metrics->GetCounter(kBatchesTotal)->value() %
                      config.metrics_every_n_batches ==
                  0) {
            metrics->AppendRow("step", epoch, batch_index);
          }
        }
        continue;
      }

      anomaly_context = model->name() + " epoch " + std::to_string(epoch) +
                        " batch " + std::to_string(batch_index) + ": " +
                        numerics::AnomalyName(anomaly);
      result.last_anomaly = anomaly_context;
      optimizer.ZeroGrad();
      if (!recovery.enabled) {
        std::function<void()> replay_hook;
        if (config.fault_injection_hook) {
          replay_hook = [&, epoch, batch_index] {
            config.fault_injection_hook(epoch, batch_index, model);
          };
        }
        const std::string attribution = numerics::AttributeDivergence(
            batch_loss_fn, model->NamedParameters(), replay_hook);
        return Status::Internal(anomaly_context + "; " + attribution);
      }
      // Step-skip tier: the parameters are still clean, so dropping this
      // one optimizer step is enough — unless skips pile up, which means
      // the run itself has gone bad.
      if (anomaly != numerics::Anomaly::kNonFiniteParameter &&
          ++consecutive_skips <= recovery.max_consecutive_skips) {
        ++result.skipped_steps;
        if (metrics != nullptr) {
          metrics->GetCounter(kSkippedSteps)->Increment();
        }
        continue;
      }
      rollback = true;
      break;
    }
    double attempt_seconds = 0.0;
    if (!rollback) {
      attempt_seconds = epoch_timer.Seconds();
      total_train_seconds += attempt_seconds;
      result.final_train_loss =
          batches_done > 0 ? epoch_loss / static_cast<double>(batches_done)
                           : std::numeric_limits<double>::quiet_NaN();
      ++result.epochs_run;
      if (config.verbose) {
        AUTOCTS_LOG(INFO) << model->name() << " epoch " << epoch + 1 << "/"
                          << config.epochs << " loss "
                          << result.final_train_loss;
      }
      if (config.early_stop_patience > 0) {
        const double validation_loss = EvaluateLoss(
            model, data, data.validation(), config.batch_size);
        if (metrics != nullptr && numerics::IsFiniteValue(validation_loss)) {
          metrics->GetGauge(kValLoss)->Set(validation_loss);
        }
        if (!numerics::IsFiniteValue(validation_loss)) {
          // A non-finite validation loss is an immediate anomaly: it must
          // never be compared against the best (NaN comparisons are false)
          // or snapshotted as "best weights".
          anomaly_context = model->name() + " epoch " + std::to_string(epoch) +
                            ": non-finite validation loss";
          result.last_anomaly = anomaly_context;
          if (recovery.enabled) {
            rollback = true;
            // The aborted attempt's bookkeeping is undone; the retry will
            // re-run this epoch from the last-good snapshot.
            --result.epochs_run;
            total_train_seconds -= attempt_seconds;
          } else if (++epochs_without_improvement >=
                     config.early_stop_patience) {
            stop_early = true;
          }
        } else if (validation_loss < best_validation_loss - 1e-9) {
          best_validation_loss = validation_loss;
          epochs_without_improvement = 0;
          if (config.restore_best_weights) {
            best_weights = std::make_unique<nn::ParameterSnapshot>(*model);
          }
        } else if (++epochs_without_improvement >=
                   config.early_stop_patience) {
          if (config.verbose) {
            AUTOCTS_LOG(INFO) << model->name() << " early stop after epoch "
                              << epoch + 1;
          }
          stop_early = true;
        }
        model->SetTraining(true);
      }
      if (metrics != nullptr && !rollback) {
        // The aggregate gauges already hold the last batch's values; the
        // loss gauge is re-pointed at the epoch mean, which is what the
        // per-epoch row should report.
        metrics->GetGauge(kTrainLoss)->Set(result.final_train_loss);
        metrics->GetGauge(kEpochSec)->Set(attempt_seconds);
        metrics->GetGauge(kBatchesPerSec)
            ->Set(attempt_seconds > 0.0
                      ? static_cast<double>(batches_done) / attempt_seconds
                      : 0.0);
        metrics->AppendRow("epoch", epoch, batches_done);
      }
    }
    if (rollback) {
      if (recoveries_left <= 0) {
        return Status::Internal(anomaly_context +
                                "; recovery budget exhausted after " +
                                std::to_string(recovery.max_recoveries) +
                                " rollbacks");
      }
      --recoveries_left;
      ++result.recoveries;
      if (metrics != nullptr) {
        metrics->GetCounter(kRecoveries)->Increment();
      }
      good_weights->Restore(model);
      const Status import_status = optimizer.ImportState(good_optimizer_state);
      AUTOCTS_CHECK(import_status.ok()) << import_status.ToString();
      rng.SetState(good_rng_state);
      // One extra draw perturbs the retry's shuffle so the epoch does not
      // replay the exact batch sequence that diverged.
      (void)rng.Next();
      best_validation_loss = good_best_validation_loss;
      epochs_without_improvement = good_epochs_without_improvement;
      lr_scale *= recovery.lr_backoff;
      optimizer.SetLearningRate(config.learning_rate * lr_scale);
      monitor.Reset();
      consecutive_skips = 0;
      model->SetTraining(true);
      if (config.verbose) {
        AUTOCTS_LOG(INFO) << model->name() << " recovery #" << result.recoveries
                          << ": " << anomaly_context << "; lr scaled to "
                          << config.learning_rate * lr_scale;
      }
      --epoch;  // retry the same epoch index from the restored snapshot
    }
  }
  result.train_seconds_per_epoch =
      result.epochs_run > 0 ? total_train_seconds / result.epochs_run : 0.0;
  if (best_weights != nullptr) best_weights->Restore(model);

  // A token cancelled (or a deadline expired) during the last epoch's tail
  // is honored before the test evaluation, which can be long on large
  // datasets. The step budget is not re-checked: training completed within
  // it, so the result is owed.
  const Status interrupt =
      CheckInterrupt(config.cancel, config.deadline, /*steps_done=*/0,
                     /*step_budget=*/0,
                     model->name() + " before test evaluation");
  if (!interrupt.ok()) return interrupt;

  // Test evaluation with denormalized masked metrics.
  model->SetTraining(false);
  Tensor predictions, truths;
  Stopwatch inference_timer;
  Predict(model, data, data.test(), config.batch_size, &predictions, &truths);
  const int64_t windows = predictions.dim(0);
  result.inference_ms_per_window =
      windows > 0 ? inference_timer.Millis() / static_cast<double>(windows)
                  : 0.0;

  result.average = metrics::ComputeMetrics(predictions, truths);
  const int64_t horizons = predictions.dim(1);
  result.per_horizon.reserve(horizons);
  for (int64_t h = 0; h < horizons; ++h) {
    result.per_horizon.push_back(
        metrics::ComputeHorizonMetrics(predictions, truths, h));
  }
  result.rrse = metrics::Rrse(predictions, truths);
  result.corr = metrics::Corr(predictions, truths);
  model->SetTraining(true);
  return result;
}

void Predict(ForecastingModel* model, const PreparedData& data,
             const data::WindowDataset& windows, int64_t batch_size,
             Tensor* predictions, Tensor* truths) {
  AUTOCTS_TRACE_SCOPE("train/predict");
  const bool was_training = model->training();
  model->SetTraining(false);
  std::vector<Tensor> prediction_parts;
  std::vector<Tensor> truth_parts;
  const std::vector<int64_t> all = windows.AllIndices();
  for (int64_t start = 0; start < static_cast<int64_t>(all.size());
       start += batch_size) {
    const int64_t end = std::min<int64_t>(all.size(), start + batch_size);
    const std::vector<int64_t> batch(all.begin() + start, all.begin() + end);
    Tensor x, y;
    windows.GetBatch(batch, &x, &y);
    const Variable prediction = model->Forward(ag::Constant(x));
    prediction_parts.push_back(prediction.value());
    truth_parts.push_back(y);
  }
  AUTOCTS_CHECK(!prediction_parts.empty());
  *predictions = data.scaler.InverseTransformFeature(
      Concat(prediction_parts, 0), data.target_feature);
  *truths = data.scaler.InverseTransformFeature(Concat(truth_parts, 0),
                                                data.target_feature);
  model->SetTraining(was_training);
}

double EvaluateLoss(ForecastingModel* model, const PreparedData& data,
                    const data::WindowDataset& windows, int64_t batch_size) {
  (void)data;
  AUTOCTS_TRACE_SCOPE("train/eval_loss");
  const bool was_training = model->training();
  model->SetTraining(false);
  double total = 0.0;
  int64_t batches = 0;
  const std::vector<int64_t> all = windows.AllIndices();
  for (int64_t start = 0; start < static_cast<int64_t>(all.size());
       start += batch_size) {
    const int64_t end = std::min<int64_t>(all.size(), start + batch_size);
    const std::vector<int64_t> batch(all.begin() + start, all.begin() + end);
    Tensor x, y;
    windows.GetBatch(batch, &x, &y);
    const Variable prediction = model->Forward(ag::Constant(x));
    total += ag::L1Loss(prediction, ag::Constant(y)).value().item();
    ++batches;
  }
  model->SetTraining(was_training);
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

}  // namespace autocts::models
