#include "models/dcrnn.h"

namespace autocts::models {
namespace {

std::shared_ptr<graph::AdaptiveAdjacency> MaybeAdaptive(
    const ModelContext& context, Rng* rng) {
  if (context.adjacency.defined()) return nullptr;
  return std::make_shared<graph::AdaptiveAdjacency>(context.num_nodes,
                                                    /*embedding_dim=*/8, rng);
}

}  // namespace

Dcrnn::Dcrnn(const ModelContext& context)
    : output_length_(context.output_length),
      rng_(context.seed),
      adaptive_(MaybeAdaptive(context, &rng_)),
      embedding_(context.in_features, context.hidden_dim, &rng_),
      encoder_cell_(context.hidden_dim,
                    MakeOpContext(context, adaptive_, &rng_)),
      decoder_cell_(context.hidden_dim,
                    MakeOpContext(context, adaptive_, &rng_)),
      decoder_input_proj_(1, context.hidden_dim, &rng_),
      decoder_output_(context.hidden_dim, 1, &rng_) {
  RegisterModule("embedding", &embedding_);
  RegisterModule("encoder_cell", &encoder_cell_);
  RegisterModule("decoder_cell", &decoder_cell_);
  RegisterModule("decoder_input_proj", &decoder_input_proj_);
  RegisterModule("decoder_output", &decoder_output_);
  if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
}

Variable Dcrnn::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0);
  const int64_t steps = x.dim(1);
  const int64_t nodes = x.dim(2);
  const Variable embedded = embedding_.Forward(x);

  // Encoder: run the DCGRU over the P input steps.
  Variable h = ag::Constant(
      Tensor::Zeros({batch, nodes, encoder_cell_.hidden_dim()}));
  for (int64_t t = 0; t < steps; ++t) {
    const Variable x_t =
        ag::Reshape(ag::Slice(embedded, 1, t, 1),
                    {batch, nodes, encoder_cell_.hidden_dim()});
    h = encoder_cell_.Forward(x_t, h);
  }

  // Decoder: autoregressively emit Q predictions, feeding each back in
  // (inference-style unrolling; no teacher forcing).
  Variable previous = ag::Constant(Tensor::Zeros({batch, nodes, 1}));
  std::vector<Variable> outputs;
  outputs.reserve(output_length_);
  for (int64_t q = 0; q < output_length_; ++q) {
    const Variable input = decoder_input_proj_.Forward(previous);
    h = decoder_cell_.Forward(input, h);
    previous = decoder_output_.Forward(h);  // [B, N, 1]
    outputs.push_back(ag::Reshape(previous, {batch, 1, nodes, 1}));
  }
  return ag::Concat(outputs, /*axis=*/1);
}

}  // namespace autocts::models
