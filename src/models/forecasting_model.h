// Base class and shared building blocks for CTS forecasting models: the
// embedding layer -> (ST-)backbone -> output layer structure of Figure 1(a)
// and Figure 2 of the paper.
#ifndef AUTOCTS_MODELS_FORECASTING_MODEL_H_
#define AUTOCTS_MODELS_FORECASTING_MODEL_H_

#include <memory>
#include <string>

#include "nn/linear.h"
#include "ops/st_operator.h"

namespace autocts::models {

// Construction parameters shared by every model.
struct ModelContext {
  int64_t num_nodes = 0;
  int64_t in_features = 1;
  int64_t input_length = 12;   // P
  int64_t output_length = 12;  // Q
  int64_t hidden_dim = 16;
  Tensor adjacency;  // predefined graph; may be undefined
  uint64_t seed = 42;
};

// Interface: x [B, P, N, F] (normalized) -> forecast [B, Q, N, 1]
// (normalized target feature).
class ForecastingModel : public nn::Module {
 public:
  virtual Variable Forward(const Variable& x) = 0;
  virtual std::string name() const = 0;
};

using ForecastingModelPtr = std::unique_ptr<ForecastingModel>;

// Builds an operator context for a model: prefers the predefined adjacency;
// otherwise operators fall back to the given shared adaptive adjacency
// (which the model must register exactly once).
ops::OpContext MakeOpContext(
    const ModelContext& model_context,
    std::shared_ptr<graph::AdaptiveAdjacency> adaptive, Rng* rng,
    int64_t dilation = 1);

// Output layer shared by the backbone-style models: takes the
// representation at the last input timestep [B, N, D] through a two-layer
// MLP to produce Q values per node, shaped [B, Q, N, 1], plus an
// autoregressive highway from the last observed (normalized) target value.
//
// The highway mirrors LSTNet's AR component and the residual/skip stacks
// of Graph WaveNet / MTGNN: the network learns the *deviation* from
// persistence, which is what makes the direct multi-step models
// competitive with DCRNN's autoregressive decoder at small training
// budgets.
class OutputHead : public nn::Module {
 public:
  OutputHead(int64_t hidden_dim, int64_t output_length, Rng* rng);

  // backbone_out: [B, T, N, D]; input: the model input [B, P, N, F] whose
  // `target_feature` channel provides the persistence highway.
  // Returns [B, Q, N, 1].
  Variable Forward(const Variable& backbone_out, const Variable& input,
                   int64_t target_feature = 0) const;

 private:
  int64_t output_length_;
  nn::Linear fc1_;
  nn::Linear fc2_;
  Variable highway_gate_;  // [1]: learnable weight of the persistence term
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_FORECASTING_MODEL_H_
