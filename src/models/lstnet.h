// LSTNet baseline (Lai et al., SIGIR 2018): 1-D convolution for short-term
// patterns, GRU for long-term patterns, a skip-GRU over strided steps for
// periodic patterns, and an autoregressive linear highway. LSTNet does not
// model inter-series (spatial) correlations explicitly — the property the
// paper uses to explain why MTGNN/AutoCTS beat it in Table 8.
#ifndef AUTOCTS_MODELS_LSTNET_H_
#define AUTOCTS_MODELS_LSTNET_H_

#include "models/forecasting_model.h"
#include "nn/conv.h"
#include "ops/rnn_ops.h"

namespace autocts::models {

class LstNet : public ForecastingModel {
 public:
  explicit LstNet(const ModelContext& context, int64_t skip = 4,
                  int64_t ar_window = 4);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "LSTNet"; }

 private:
  int64_t output_length_;
  int64_t skip_;
  int64_t ar_window_;
  Rng rng_;
  nn::TemporalConv1d conv_;   // F -> D over time, per series
  ops::GruCell gru_;          // D -> D over time
  ops::GruCell skip_gru_;     // D -> D over strided time
  nn::Linear combine_;        // [gru, skip_gru] -> Q
  nn::Linear autoregressive_;  // last ar_window target values -> Q
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_LSTNET_H_
