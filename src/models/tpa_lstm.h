// TPA-LSTM baseline (Shih et al., Machine Learning 2019): an LSTM over time
// followed by Temporal Pattern Attention — attention weights are computed
// between the final hidden state and (convolution-filtered) historical
// hidden states, with a sigmoid scoring function.
#ifndef AUTOCTS_MODELS_TPA_LSTM_H_
#define AUTOCTS_MODELS_TPA_LSTM_H_

#include "models/forecasting_model.h"
#include "nn/conv.h"
#include "ops/rnn_ops.h"

namespace autocts::models {

class TpaLstm : public ForecastingModel {
 public:
  explicit TpaLstm(const ModelContext& context);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "TPA-LSTM"; }

 private:
  int64_t output_length_;
  Rng rng_;
  nn::Linear embedding_;
  ops::LstmCell lstm_;
  nn::TemporalConv1d pattern_conv_;  // temporal filters over hidden states
  nn::Linear score_proj_;            // pattern features -> hidden (for scoring)
  nn::Linear output_;                // [h_T, context] -> Q
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_TPA_LSTM_H_
