// Shared training / evaluation harness used by all baselines, the AutoCTS
// architecture evaluation stage, and every bench binary.
#ifndef AUTOCTS_MODELS_TRAINER_H_
#define AUTOCTS_MODELS_TRAINER_H_

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/metrics_registry.h"
#include "common/numerics.h"
#include "common/status.h"
#include "data/cts_dataset.h"
#include "data/scaler.h"
#include "data/window_dataset.h"
#include "metrics/metrics.h"
#include "models/forecasting_model.h"

namespace autocts::models {

// Normalized train/val/test window datasets plus everything needed to
// denormalize predictions.
struct PreparedData {
  data::StandardScaler scaler;
  std::vector<data::WindowDataset> splits;  // train, validation, test
  data::WindowSpec window;
  int64_t num_nodes = 0;
  int64_t in_features = 0;
  int64_t target_feature = 0;
  Tensor adjacency;  // undefined when the graph must be learned
  // Copied from CtsDataset: zero readings are missing-data sentinels that
  // the scaler passed through unscaled (see data/scaler.h).
  bool zero_is_missing = false;

  const data::WindowDataset& train() const { return splits[0]; }
  const data::WindowDataset& validation() const { return splits[1]; }
  const data::WindowDataset& test() const { return splits[2]; }
};

// Normalizes a dataset (z-score fitted on the training portion; zero
// readings are excluded from the fit and pass through unscaled only when
// the dataset marks them as missing via zero_is_missing) and slices it
// into window datasets. Fractions follow Table 4 (0.7/0.1 for METR-LA
// style, 0.6/0.2 for the others).
PreparedData PrepareData(const data::CtsDataset& dataset,
                         const data::WindowSpec& window,
                         double train_fraction, double validation_fraction);

struct TrainConfig {
  int64_t epochs = 8;
  int64_t batch_size = 16;
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;
  double clip_norm = 5.0;
  uint64_t seed = 7;
  bool verbose = false;
  // Cap on batches per epoch (0 = no cap); used to keep bench runtimes
  // bounded at the paper's relative scales.
  int64_t max_batches_per_epoch = 0;
  // Early stopping: stop when the validation L1 loss has not improved for
  // this many consecutive epochs (0 disables). The standard protocol of
  // the baselines' reference implementations.
  int64_t early_stop_patience = 0;
  // With early stopping enabled, evaluate the best-validation weights
  // instead of the last ones.
  bool restore_best_weights = true;

  // Numerical-health guard layer (common/numerics.h): every batch the loss
  // value, the pre-clip gradient norm, and the post-step parameters are
  // checked. Detected anomalies either recover (recovery.enabled: skip the
  // poisoned step, or roll back to the epoch-start snapshot with a learning
  // rate backoff) or fail the Status-returning entry point with an
  // attribution message.
  numerics::HealthConfig health;
  numerics::RecoveryOptions recovery;

  // Test hook for fault injection: invoked on every training batch after
  // the backward pass (gradients populated) and before the gradient health
  // check, so tests can corrupt a gradient or weight at an exact batch to
  // prove detection and recovery end-to-end. Library code never installs
  // one.
  std::function<void(int64_t epoch, int64_t batch, ForecastingModel* model)>
      fault_injection_hook;

  // Observability (common/trace.h + common/metrics_registry.h), sharing the
  // searcher's bit-transparency contract: enabling either layer changes no
  // loss or weight bit.
  //
  // When `trace_path` is non-empty the run executes under the span tracer
  // inside a root "train" span; on exit the Chrome trace JSON is written to
  // `trace_path` and the per-op aggregate table to "<trace_path>.ops.csv".
  // Ignored when a trace is already active (e.g. the searcher owns it).
  std::string trace_path;

  // When `metrics_path` is non-empty (or `metrics` is set), the trainer
  // records per-epoch rows (train/val loss, last gradient norm, batch and
  // recovery counters, wall-clock rates) plus a row every
  // `metrics_every_n_batches` healthy batches (0 = epoch rows only).
  // Sinks "<metrics_path>.csv" / "<metrics_path>.jsonl" are written when
  // training finishes. Unlike the searcher, trainer metrics are not
  // rolled back on recovery: the row log keeps the aborted attempt's rows,
  // which is the more useful record for a non-resumable run.
  std::string metrics_path;
  int64_t metrics_every_n_batches = 0;

  // Optional external registry (not owned); `metrics_path` may be empty.
  obs::MetricsRegistry* metrics = nullptr;

  // Cooperative interruption (common/cancellation.h), checked at every
  // batch boundary and before the final test evaluation. When the token is
  // cancelled, the wall `deadline` expires, or `step_budget` total training
  // batches (0 = unlimited; retried batches count — it budgets work done)
  // have run, TrainAndEvaluateWithStatus returns kCancelled /
  // kDeadlineExceeded instead of a result. An uninterrupted run is
  // bit-identical with or without these set: the checks read no training
  // state.
  const CancellationToken* cancel = nullptr;  // not owned
  Deadline deadline;                          // default: Infinite()
  int64_t step_budget = 0;
};

// Everything the evaluation tables report.
struct EvalResult {
  metrics::PointMetrics average;  // all horizons (Tables 6, 11-16)
  std::vector<metrics::PointMetrics> per_horizon;  // indexed by step
  double rrse = 0.0;   // single-step (Tables 8, 15, 16)
  double corr = 0.0;
  double train_seconds_per_epoch = 0.0;   // Tables 27-34
  double inference_ms_per_window = 0.0;   // Tables 27-34
  int64_t parameter_count = 0;            // Tables 27-34
  // Mean training loss of the last completed epoch; quiet_NaN when no batch
  // ever ran (a 0.0 here used to masquerade as a perfect fit).
  double final_train_loss = std::numeric_limits<double>::quiet_NaN();
  int64_t epochs_run = 0;  // < config.epochs when early stopping triggered

  // Numerical-health outcome (see TrainConfig::recovery).
  int64_t recoveries = 0;      // epoch rollbacks performed
  int64_t skipped_steps = 0;   // poisoned optimizer steps skipped
  std::string last_anomaly;    // "" when the run stayed healthy
};

// Trains with Adam + L1 loss on normalized targets, then evaluates on the
// test split with denormalized masked metrics. CHECK-fails on an
// unrecovered numerical anomaly; callers that must survive divergence use
// the Status-returning variant below.
EvalResult TrainAndEvaluate(ForecastingModel* model, const PreparedData& data,
                            const TrainConfig& config);

// Like TrainAndEvaluate, but a numerical anomaly that recovery cannot (or
// may not) handle returns a non-OK Status naming the anomaly and — when it
// reproduces under the autograd numeric trace — the first op that produced
// a non-finite value. Never aborts on divergence.
StatusOr<EvalResult> TrainAndEvaluateWithStatus(ForecastingModel* model,
                                                const PreparedData& data,
                                                const TrainConfig& config);

// Runs the model over a whole window dataset; returns denormalized
// predictions and truths, each [num_windows, Q, N, 1].
void Predict(ForecastingModel* model, const PreparedData& data,
             const data::WindowDataset& windows, int64_t batch_size,
             Tensor* predictions, Tensor* truths);

// Validation loss (L1, normalized) — used by the searcher and early probes.
double EvaluateLoss(ForecastingModel* model, const PreparedData& data,
                    const data::WindowDataset& windows, int64_t batch_size);

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_TRAINER_H_
