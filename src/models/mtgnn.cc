#include "models/mtgnn.h"

namespace autocts::models {

Mtgnn::Mtgnn(const ModelContext& context, int64_t num_blocks)
    : rng_(context.seed),
      // MTGNN's defining feature is its graph-learning layer; it always
      // learns the adjacency from data, even when a predefined one exists.
      adaptive_(std::make_shared<graph::AdaptiveAdjacency>(
          context.num_nodes, /*embedding_dim=*/8, &rng_)),
      embedding_(context.in_features, context.hidden_dim, &rng_),
      head_(context.hidden_dim, context.output_length, &rng_) {
  AUTOCTS_CHECK_GE(num_blocks, 1);
  ModelContext learned = context;
  learned.adjacency = Tensor();  // Force the learned graph in all blocks.
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t dilation = b + 1;
    blocks_.push_back(std::make_unique<MtgnnBlock>(
        MakeOpContext(learned, adaptive_, &rng_, dilation)));
    RegisterModule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterModule("embedding", &embedding_);
  RegisterModule("head", &head_);
  RegisterModule("adaptive", adaptive_.get());
}

Variable Mtgnn::Forward(const Variable& x) {
  Variable features = embedding_.Forward(x);
  Variable skip;
  for (auto& block : blocks_) {
    features = block->Forward(features);
    skip = skip.defined() ? ag::Add(skip, features) : features;
  }
  return head_.Forward(ag::Relu(skip), x);
}

}  // namespace autocts::models
