// Human-designed ST-blocks from the literature, as reusable
// [B, T, N, D] -> [B, T, N, D] modules.
//
// These serve two purposes in the reproduction:
//  1. the building blocks of the baseline models (STGCN, DCRNN,
//     Graph WaveNet, MTGNN), and
//  2. the atomic search units of the "macro only" ablation variant
//     (Section 4.2.3), which searches a topology over exactly these four
//     blocks.
#ifndef AUTOCTS_MODELS_ST_BLOCKS_H_
#define AUTOCTS_MODELS_ST_BLOCKS_H_

#include <string>

#include "nn/conv.h"
#include "ops/gcn_ops.h"
#include "ops/rnn_ops.h"
#include "ops/st_operator.h"
#include "ops/temporal_conv_ops.h"

namespace autocts::models {

// Common interface; same contract as ops::StOperator.
class StBlock : public nn::Module {
 public:
  virtual ~StBlock() = default;
  virtual Variable Forward(const Variable& x) = 0;
  virtual std::string name() const = 0;
};

// STGCN's "sandwich": gated temporal conv - Chebyshev GCN - gated temporal
// conv (Figure 3 of the paper).
class StgcnBlock : public StBlock {
 public:
  explicit StgcnBlock(const ops::OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "stgcn_block"; }

 private:
  nn::TemporalConv1d temporal_in_;   // D -> 2D, followed by GLU
  ops::ChebGcnOp spatial_;
  nn::TemporalConv1d temporal_out_;  // D -> 2D, followed by GLU
};

// Graph WaveNet's block: GDCC then diffusion GCN with a residual
// connection.
class GwnBlock : public StBlock {
 public:
  explicit GwnBlock(const ops::OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "gwn_block"; }

 private:
  ops::GdccOp temporal_;
  ops::DgcnOp spatial_;
};

// One DCGRU step (Li et al., 2018): a GRU cell whose gates are diffusion
// graph convolutions. Shared by DcgruBlock and the DCRNN decoder.
class DcgruCell : public nn::Module {
 public:
  // `context.channels` is the hidden width; `input_dim` the input width.
  DcgruCell(int64_t input_dim, const ops::OpContext& context);

  // x: [B, N, input_dim], h: [B, N, hidden] -> new h.
  Variable Forward(const Variable& x, const Variable& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  ops::GraphDiffusionConv zr_gates_;   // [x, h] -> 2D
  ops::GraphDiffusionConv candidate_;  // [x, r*h] -> D
};

// DCRNN's DCGRU unrolled along time.
class DcgruBlock : public StBlock {
 public:
  explicit DcgruBlock(const ops::OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "dcgru_block"; }

 private:
  DcgruCell cell_;
};

// MTGNN-style block: dilated-inception temporal convolution (kernels 2 and
// 3) with a GLU-style gate, followed by a mix-hop diffusion GCN, with a
// residual connection.
class MtgnnBlock : public StBlock {
 public:
  explicit MtgnnBlock(const ops::OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "mtgnn_block"; }

 private:
  nn::TemporalConv1d filter_k2_;  // D -> D/2
  nn::TemporalConv1d filter_k3_;  // D -> D - D/2
  nn::TemporalConv1d gate_k2_;
  nn::TemporalConv1d gate_k3_;
  ops::GraphDiffusionConv mix_hop_;
};

// Factory for the macro-only search space; `kind` is one of
// "stgcn_block", "gwn_block", "dcgru_block", "mtgnn_block".
std::unique_ptr<StBlock> CreateStBlock(const std::string& kind,
                                       const ops::OpContext& context);

// The four block kinds above, in canonical order.
std::vector<std::string> HumanDesignedBlockKinds();

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_ST_BLOCKS_H_
