#include "models/agcrn.h"

namespace autocts::models {

Agcrn::Agcrn(const ModelContext& context)
    : hidden_dim_(context.hidden_dim),
      rng_(context.seed),
      adaptive_(std::make_shared<graph::AdaptiveAdjacency>(
          context.num_nodes, /*embedding_dim=*/8, &rng_)),
      embedding_(context.in_features, context.hidden_dim, &rng_),
      zr_gates_(2 * context.hidden_dim, 2 * context.hidden_dim,
                /*max_step=*/2, Tensor(), adaptive_, &rng_),
      candidate_(2 * context.hidden_dim, context.hidden_dim, /*max_step=*/2,
                 Tensor(), adaptive_, &rng_),
      head_(context.hidden_dim, context.output_length, &rng_) {
  RegisterModule("embedding", &embedding_);
  RegisterModule("zr_gates", &zr_gates_);
  RegisterModule("candidate", &candidate_);
  RegisterModule("head", &head_);
  RegisterModule("adaptive", adaptive_.get());
}

Variable Agcrn::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0);
  const int64_t steps = x.dim(1);
  const int64_t nodes = x.dim(2);
  const Variable embedded = embedding_.Forward(x);
  Variable h = ag::Constant(Tensor::Zeros({batch, nodes, hidden_dim_}));
  std::vector<Variable> sequence;
  sequence.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    const Variable x_t = ag::Reshape(ag::Slice(embedded, 1, t, 1),
                                     {batch, nodes, hidden_dim_});
    const Variable joined = ag::Concat({x_t, h}, /*axis=*/-1);
    const Variable zr = ag::Sigmoid(zr_gates_.Forward(joined));
    const Variable z = ag::Slice(zr, -1, 0, hidden_dim_);
    const Variable r = ag::Slice(zr, -1, hidden_dim_, hidden_dim_);
    const Variable cand = ag::Tanh(candidate_.Forward(
        ag::Concat({x_t, ag::Mul(r, h)}, /*axis=*/-1)));
    h = ag::Add(ag::Mul(z, h),
                ag::Mul(ag::AddScalar(ag::Neg(z), 1.0), cand));
    sequence.push_back(ag::Reshape(h, {batch, 1, nodes, hidden_dim_}));
  }
  return head_.Forward(ag::Concat(sequence, /*axis=*/1), x);
}

}  // namespace autocts::models
