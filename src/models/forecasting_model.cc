#include "models/forecasting_model.h"

namespace autocts::models {

ops::OpContext MakeOpContext(
    const ModelContext& model_context,
    std::shared_ptr<graph::AdaptiveAdjacency> adaptive, Rng* rng,
    int64_t dilation) {
  ops::OpContext context;
  context.channels = model_context.hidden_dim;
  context.num_nodes = model_context.num_nodes;
  context.dilation = dilation;
  context.adjacency = model_context.adjacency;
  if (!context.adjacency.defined()) context.adaptive = std::move(adaptive);
  context.rng = rng;
  return context;
}

OutputHead::OutputHead(int64_t hidden_dim, int64_t output_length, Rng* rng)
    : output_length_(output_length),
      fc1_(hidden_dim, 2 * hidden_dim, rng),
      fc2_(2 * hidden_dim, output_length, rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
  highway_gate_ = RegisterParameter("highway_gate", Tensor::Ones({1}));
  // Zero-initialize the last layer: the untrained model then predicts pure
  // persistence (the highway), and training only adds useful deviation.
  // Without this, the randomly initialized deviation of deep backbones
  // (e.g. a 4-block derived AutoCTS model) swamps the highway early on.
  for (Variable& parameter : fc2_.Parameters()) {
    parameter.mutable_value().Fill(0.0);
  }
}

Variable OutputHead::Forward(const Variable& backbone_out,
                             const Variable& input,
                             int64_t target_feature) const {
  AUTOCTS_CHECK_EQ(backbone_out.ndim(), 4);
  AUTOCTS_CHECK_EQ(input.ndim(), 4);
  const int64_t batch = backbone_out.dim(0);
  const int64_t steps = backbone_out.dim(1);
  const int64_t nodes = backbone_out.dim(2);
  const int64_t dim = backbone_out.dim(3);
  // Keep only the most recent timestep's representation.
  const Variable last = ag::Reshape(
      ag::Slice(backbone_out, /*axis=*/1, steps - 1, 1), {batch, nodes, dim});
  const Variable hidden = ag::Relu(fc1_.Forward(last));
  const Variable out = fc2_.Forward(hidden);  // [B, N, Q]
  const Variable deviation = ag::Reshape(
      ag::Transpose(out, 1, 2), {batch, output_length_, nodes, 1});
  // Persistence highway: the last observed target value, gated.
  const Variable last_observed = ag::Slice(
      ag::Slice(input, /*axis=*/1, input.dim(1) - 1, 1), /*axis=*/3,
      target_feature, 1);  // [B, 1, N, 1] — broadcasts over Q.
  return ag::Add(deviation, ag::Mul(last_observed, highway_gate_));
}

}  // namespace autocts::models
