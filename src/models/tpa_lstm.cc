#include "models/tpa_lstm.h"

namespace autocts::models {

TpaLstm::TpaLstm(const ModelContext& context)
    : output_length_(context.output_length),
      rng_(context.seed),
      embedding_(context.in_features, context.hidden_dim, &rng_),
      lstm_(context.hidden_dim, context.hidden_dim, &rng_),
      pattern_conv_(context.hidden_dim, context.hidden_dim, /*kernel_size=*/3,
                    /*dilation=*/1, /*causal=*/true, &rng_),
      score_proj_(context.hidden_dim, context.hidden_dim, &rng_),
      output_(2 * context.hidden_dim, context.output_length, &rng_) {
  RegisterModule("embedding", &embedding_);
  RegisterModule("lstm", &lstm_);
  RegisterModule("pattern_conv", &pattern_conv_);
  RegisterModule("score_proj", &score_proj_);
  RegisterModule("output", &output_);
}

Variable TpaLstm::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0);
  const int64_t steps = x.dim(1);
  const int64_t nodes = x.dim(2);
  const int64_t hidden = lstm_.hidden_dim();

  const Variable embedded = embedding_.Forward(x);
  ops::LstmCell::State state;
  state.h = ag::Constant(Tensor::Zeros({batch, nodes, hidden}));
  state.c = ag::Constant(Tensor::Zeros({batch, nodes, hidden}));
  std::vector<Variable> hidden_sequence;
  hidden_sequence.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    const Variable x_t = ag::Reshape(ag::Slice(embedded, 1, t, 1),
                                     {batch, nodes, hidden});
    state = lstm_.Forward(x_t, state);
    hidden_sequence.push_back(
        ag::Reshape(state.h, {batch, 1, nodes, hidden}));
  }
  const Variable history = ag::Concat(hidden_sequence, /*axis=*/1);

  // Temporal pattern attention: score each (filtered) historical hidden
  // state against the final hidden state with a sigmoid.
  const Variable patterns = pattern_conv_.Forward(history);  // [B, T, N, D]
  const Variable projected = score_proj_.Forward(patterns);
  const Variable query =
      ag::Reshape(state.h, {batch, 1, nodes, hidden});  // [B, 1, N, D]
  const Variable scores = ag::Sigmoid(
      ag::Sum(ag::Mul(projected, query), /*axis=*/-1, /*keepdim=*/true));
  const Variable context_vec = ag::Sum(ag::Mul(scores, patterns),
                                       /*axis=*/1, /*keepdim=*/false);

  const Variable out = output_.Forward(
      ag::Concat({state.h, context_vec}, /*axis=*/-1));  // [B, N, Q]
  return ag::Reshape(ag::Transpose(out, 1, 2),
                     {batch, output_length_, nodes, 1});
}

}  // namespace autocts::models
