#include "models/lstnet.h"

namespace autocts::models {

LstNet::LstNet(const ModelContext& context, int64_t skip, int64_t ar_window)
    : output_length_(context.output_length),
      skip_(skip),
      ar_window_(std::min(ar_window, context.input_length)),
      rng_(context.seed),
      conv_(context.in_features, context.hidden_dim, /*kernel_size=*/3,
            /*dilation=*/1, /*causal=*/true, &rng_),
      gru_(context.hidden_dim, context.hidden_dim, &rng_),
      skip_gru_(context.hidden_dim, context.hidden_dim, &rng_),
      combine_(2 * context.hidden_dim, context.output_length, &rng_),
      autoregressive_(ar_window_, context.output_length, &rng_) {
  AUTOCTS_CHECK_GE(skip_, 1);
  RegisterModule("conv", &conv_);
  RegisterModule("gru", &gru_);
  RegisterModule("skip_gru", &skip_gru_);
  RegisterModule("combine", &combine_);
  RegisterModule("autoregressive", &autoregressive_);
}

Variable LstNet::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0);
  const int64_t steps = x.dim(1);
  const int64_t nodes = x.dim(2);
  const int64_t hidden = gru_.hidden_dim();

  const Variable features = ag::Relu(conv_.Forward(x));  // [B, P, N, D]

  auto step_input = [&](int64_t t) {
    return ag::Reshape(ag::Slice(features, 1, t, 1), {batch, nodes, hidden});
  };

  // Long-term GRU over every step.
  Variable h = ag::Constant(Tensor::Zeros({batch, nodes, hidden}));
  for (int64_t t = 0; t < steps; ++t) h = gru_.Forward(step_input(t), h);

  // Skip-GRU over a strided subsequence ending at the last step.
  Variable h_skip = ag::Constant(Tensor::Zeros({batch, nodes, hidden}));
  for (int64_t t = (steps - 1) % skip_; t < steps; t += skip_) {
    h_skip = skip_gru_.Forward(step_input(t), h_skip);
  }

  const Variable neural =
      combine_.Forward(ag::Concat({h, h_skip}, /*axis=*/-1));  // [B, N, Q]

  // Autoregressive highway on the raw target feature.
  const Variable recent = ag::Slice(
      ag::Slice(x, 1, steps - ar_window_, ar_window_), /*axis=*/3, 0, 1);
  const Variable ar_input = ag::Reshape(
      ag::Permute(recent, {0, 2, 1, 3}), {batch, nodes, ar_window_});
  const Variable linear = autoregressive_.Forward(ar_input);  // [B, N, Q]

  const Variable out = ag::Add(neural, linear);
  return ag::Reshape(ag::Transpose(out, 1, 2),
                     {batch, output_length_, nodes, 1});
}

}  // namespace autocts::models
