#include "models/graph_wavenet.h"

namespace autocts::models {

GraphWaveNet::GraphWaveNet(const ModelContext& context, int64_t num_blocks)
    : rng_(context.seed),
      // Graph WaveNet always learns a self-adaptive adjacency, even when a
      // predefined graph exists; the predefined one (if any) is used by the
      // diffusion transitions inside the blocks.
      adaptive_(std::make_shared<graph::AdaptiveAdjacency>(
          context.num_nodes, /*embedding_dim=*/8, &rng_)),
      embedding_(context.in_features, context.hidden_dim, &rng_),
      head_(context.hidden_dim, context.output_length, &rng_) {
  AUTOCTS_CHECK_GE(num_blocks, 1);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t dilation = (b % 2 == 0) ? 1 : 2;
    blocks_.push_back(std::make_unique<GwnBlock>(
        MakeOpContext(context, adaptive_, &rng_, dilation)));
    RegisterModule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterModule("embedding", &embedding_);
  RegisterModule("head", &head_);
  if (!context.adjacency.defined()) {
    RegisterModule("adaptive", adaptive_.get());
  }
}

Variable GraphWaveNet::Forward(const Variable& x) {
  Variable features = embedding_.Forward(x);
  Variable skip;
  for (auto& block : blocks_) {
    features = block->Forward(features);
    skip = skip.defined() ? ag::Add(skip, features) : features;
  }
  return head_.Forward(ag::Relu(skip), x);
}

}  // namespace autocts::models
