// AGCRN baseline (Bai et al., NeurIPS 2020): a GRU whose gates are adaptive
// graph convolutions over a learned (node-embedding) adjacency. AGCRN never
// uses a predefined graph — the learned graph is its hallmark.
#ifndef AUTOCTS_MODELS_AGCRN_H_
#define AUTOCTS_MODELS_AGCRN_H_

#include "models/forecasting_model.h"
#include "ops/gcn_ops.h"

namespace autocts::models {

class Agcrn : public ForecastingModel {
 public:
  explicit Agcrn(const ModelContext& context);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "AGCRN"; }

 private:
  int64_t hidden_dim_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  ops::GraphDiffusionConv zr_gates_;   // [x, h] -> 2D, over the learned graph
  ops::GraphDiffusionConv candidate_;  // [x, r*h] -> D
  OutputHead head_;
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_AGCRN_H_
