#include "models/st_blocks.h"

#include "nn/activations.h"

namespace autocts::models {

StgcnBlock::StgcnBlock(const ops::OpContext& context)
    : temporal_in_(context.channels, 2 * context.channels,
                   context.kernel_size, context.dilation, /*causal=*/true,
                   context.rng),
      spatial_(context),
      temporal_out_(context.channels, 2 * context.channels,
                    context.kernel_size, context.dilation, /*causal=*/true,
                    context.rng) {
  RegisterModule("temporal_in", &temporal_in_);
  RegisterModule("spatial", &spatial_);
  RegisterModule("temporal_out", &temporal_out_);
}

Variable StgcnBlock::Forward(const Variable& x) {
  const Variable t1 = nn::Glu(temporal_in_.Forward(x));
  const Variable s = ag::Relu(spatial_.Forward(t1));
  return nn::Glu(temporal_out_.Forward(s));
}

GwnBlock::GwnBlock(const ops::OpContext& context)
    : temporal_(context), spatial_(context) {
  RegisterModule("temporal", &temporal_);
  RegisterModule("spatial", &spatial_);
}

Variable GwnBlock::Forward(const Variable& x) {
  return ag::Add(spatial_.Forward(temporal_.Forward(x)), x);
}

DcgruCell::DcgruCell(int64_t input_dim, const ops::OpContext& context)
    : hidden_dim_(context.channels),
      zr_gates_(input_dim + context.channels, 2 * context.channels,
                context.max_diffusion_step, context.adjacency,
                context.adaptive, context.rng),
      candidate_(input_dim + context.channels, context.channels,
                 context.max_diffusion_step, context.adjacency,
                 context.adaptive, context.rng) {
  RegisterModule("zr_gates", &zr_gates_);
  RegisterModule("candidate", &candidate_);
}

Variable DcgruCell::Forward(const Variable& x, const Variable& h) const {
  const Variable joined = ag::Concat({x, h}, /*axis=*/-1);
  const Variable zr = ag::Sigmoid(zr_gates_.Forward(joined));
  const Variable z = ag::Slice(zr, -1, 0, hidden_dim_);
  const Variable r = ag::Slice(zr, -1, hidden_dim_, hidden_dim_);
  const Variable cand = ag::Tanh(
      candidate_.Forward(ag::Concat({x, ag::Mul(r, h)}, /*axis=*/-1)));
  return ag::Add(ag::Mul(z, h),
                 ag::Mul(ag::AddScalar(ag::Neg(z), 1.0), cand));
}

DcgruBlock::DcgruBlock(const ops::OpContext& context)
    : cell_(context.channels, context) {
  RegisterModule("cell", &cell_);
}

Variable DcgruBlock::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t batch = x.dim(0);
  const int64_t steps = x.dim(1);
  const int64_t nodes = x.dim(2);
  Variable h =
      ag::Constant(Tensor::Zeros({batch, nodes, cell_.hidden_dim()}));
  std::vector<Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    const Variable x_t = ag::Reshape(ag::Slice(x, 1, t, 1),
                                     {batch, nodes, x.dim(3)});
    h = cell_.Forward(x_t, h);
    outputs.push_back(
        ag::Reshape(h, {batch, 1, nodes, cell_.hidden_dim()}));
  }
  return ag::Concat(outputs, /*axis=*/1);
}

MtgnnBlock::MtgnnBlock(const ops::OpContext& context)
    : filter_k2_(context.channels, context.channels / 2, /*kernel_size=*/2,
                 context.dilation, /*causal=*/true, context.rng),
      filter_k3_(context.channels, context.channels - context.channels / 2,
                 /*kernel_size=*/3, context.dilation, /*causal=*/true,
                 context.rng),
      gate_k2_(context.channels, context.channels / 2, /*kernel_size=*/2,
               context.dilation, /*causal=*/true, context.rng),
      gate_k3_(context.channels, context.channels - context.channels / 2,
               /*kernel_size=*/3, context.dilation, /*causal=*/true,
               context.rng),
      mix_hop_(context.channels, context.channels, context.max_diffusion_step,
               context.adjacency, context.adaptive, context.rng) {
  RegisterModule("filter_k2", &filter_k2_);
  RegisterModule("filter_k3", &filter_k3_);
  RegisterModule("gate_k2", &gate_k2_);
  RegisterModule("gate_k3", &gate_k3_);
  RegisterModule("mix_hop", &mix_hop_);
}

Variable MtgnnBlock::Forward(const Variable& x) {
  const Variable filter = ag::Tanh(ag::Concat(
      {filter_k2_.Forward(x), filter_k3_.Forward(x)}, /*axis=*/-1));
  const Variable gate = ag::Sigmoid(ag::Concat(
      {gate_k2_.Forward(x), gate_k3_.Forward(x)}, /*axis=*/-1));
  const Variable temporal = ag::Mul(filter, gate);
  return ag::Add(mix_hop_.Forward(temporal), x);
}

std::unique_ptr<StBlock> CreateStBlock(const std::string& kind,
                                       const ops::OpContext& context) {
  if (kind == "stgcn_block") return std::make_unique<StgcnBlock>(context);
  if (kind == "gwn_block") return std::make_unique<GwnBlock>(context);
  if (kind == "dcgru_block") return std::make_unique<DcgruBlock>(context);
  if (kind == "mtgnn_block") return std::make_unique<MtgnnBlock>(context);
  AUTOCTS_CHECK(false) << "unknown ST-block kind: " << kind;
  return nullptr;
}

std::vector<std::string> HumanDesignedBlockKinds() {
  return {"stgcn_block", "gwn_block", "dcgru_block", "mtgnn_block"};
}

}  // namespace autocts::models
