#include "models/stgcn.h"

namespace autocts::models {
namespace {

std::shared_ptr<graph::AdaptiveAdjacency> MaybeAdaptive(
    const ModelContext& context, Rng* rng) {
  if (context.adjacency.defined()) return nullptr;
  return std::make_shared<graph::AdaptiveAdjacency>(context.num_nodes,
                                                    /*embedding_dim=*/8, rng);
}

}  // namespace

Stgcn::Stgcn(const ModelContext& context)
    : rng_(context.seed),
      adaptive_(MaybeAdaptive(context, &rng_)),
      embedding_(context.in_features, context.hidden_dim, &rng_),
      block1_(MakeOpContext(context, adaptive_, &rng_)),
      block2_(MakeOpContext(context, adaptive_, &rng_)),
      head_(context.hidden_dim, context.output_length, &rng_) {
  RegisterModule("embedding", &embedding_);
  RegisterModule("block1", &block1_);
  RegisterModule("block2", &block2_);
  RegisterModule("head", &head_);
  if (adaptive_ != nullptr) RegisterModule("adaptive", adaptive_.get());
}

Variable Stgcn::Forward(const Variable& x) {
  const Variable embedded = embedding_.Forward(x);
  const Variable features = block2_.Forward(block1_.Forward(embedded));
  return head_.Forward(features, x);
}

}  // namespace autocts::models
