// MTGNN baseline (Wu et al., KDD 2020): graph-learning layer (adaptive
// adjacency) + blocks of dilated-inception temporal convolution and mix-hop
// graph propagation with residual/skip connections.
#ifndef AUTOCTS_MODELS_MTGNN_H_
#define AUTOCTS_MODELS_MTGNN_H_

#include <vector>

#include "models/forecasting_model.h"
#include "models/st_blocks.h"

namespace autocts::models {

class Mtgnn : public ForecastingModel {
 public:
  explicit Mtgnn(const ModelContext& context, int64_t num_blocks = 3);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "MTGNN"; }

 private:
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  std::vector<std::unique_ptr<MtgnnBlock>> blocks_;
  OutputHead head_;
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_MTGNN_H_
