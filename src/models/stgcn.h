// STGCN baseline (Yu et al., IJCAI 2018): two stacked "sandwich" ST-blocks
// (gated temporal conv - Chebyshev GCN - gated temporal conv), Figure 3 of
// the AutoCTS paper.
#ifndef AUTOCTS_MODELS_STGCN_H_
#define AUTOCTS_MODELS_STGCN_H_

#include "models/forecasting_model.h"
#include "models/st_blocks.h"

namespace autocts::models {

class Stgcn : public ForecastingModel {
 public:
  explicit Stgcn(const ModelContext& context);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "STGCN"; }

 private:
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  StgcnBlock block1_;
  StgcnBlock block2_;
  OutputHead head_;
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_STGCN_H_
