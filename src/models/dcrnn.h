// DCRNN baseline (Li et al., ICLR 2018): diffusion convolutional recurrent
// network with an encoder-decoder (seq2seq) architecture. The sequential
// decoder is why DCRNN has the slowest training/inference in Tables 27-32.
#ifndef AUTOCTS_MODELS_DCRNN_H_
#define AUTOCTS_MODELS_DCRNN_H_

#include "models/forecasting_model.h"
#include "models/st_blocks.h"

namespace autocts::models {

class Dcrnn : public ForecastingModel {
 public:
  explicit Dcrnn(const ModelContext& context);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "DCRNN"; }

 private:
  int64_t output_length_;
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  DcgruCell encoder_cell_;
  DcgruCell decoder_cell_;
  nn::Linear decoder_input_proj_;  // previous prediction (1) -> hidden
  nn::Linear decoder_output_;      // hidden -> 1
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_DCRNN_H_
