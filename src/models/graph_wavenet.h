// Graph WaveNet baseline (Wu et al., IJCAI 2019): stacked GDCC + diffusion
// GCN blocks with residual and skip connections, plus a self-adaptive
// adjacency matrix learned from node embeddings.
#ifndef AUTOCTS_MODELS_GRAPH_WAVENET_H_
#define AUTOCTS_MODELS_GRAPH_WAVENET_H_

#include <vector>

#include "models/forecasting_model.h"
#include "models/st_blocks.h"

namespace autocts::models {

class GraphWaveNet : public ForecastingModel {
 public:
  explicit GraphWaveNet(const ModelContext& context, int64_t num_blocks = 4);

  Variable Forward(const Variable& x) override;
  std::string name() const override { return "GraphWaveNet"; }

 private:
  Rng rng_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  nn::Linear embedding_;
  std::vector<std::unique_ptr<GwnBlock>> blocks_;  // dilations 1,2,1,2,...
  OutputHead head_;
};

}  // namespace autocts::models

#endif  // AUTOCTS_MODELS_GRAPH_WAVENET_H_
