#include "ops/gcn_ops.h"

namespace autocts::ops {
namespace {

// Applies an [N, N] propagation matrix to [.., N, D] representations.
Variable Propagate(const Variable& matrix, const Variable& x) {
  return ag::MatMul(matrix, x);
}

}  // namespace

GraphDiffusionConv::GraphDiffusionConv(
    int64_t in_dim, int64_t out_dim, int64_t max_step, const Tensor& adjacency,
    std::shared_ptr<graph::AdaptiveAdjacency> adaptive, Rng* rng)
    : max_step_(max_step), adaptive_(std::move(adaptive)) {
  AUTOCTS_CHECK(adjacency.defined() || adaptive_ != nullptr)
      << "diffusion GCN requires a graph";
  AUTOCTS_CHECK(rng != nullptr);
  if (adjacency.defined()) {
    graph::DiffusionTransitions transitions =
        graph::BuildDiffusionTransitions(adjacency, max_step_);
    forward_powers_ = std::move(transitions.forward);
    backward_powers_ = std::move(transitions.backward);
    adaptive_ = nullptr;  // Predefined graph takes precedence.
  }
  for (int64_t k = 0; k <= max_step_; ++k) {
    forward_weights_.push_back(std::make_unique<nn::Linear>(in_dim, out_dim, rng));
    backward_weights_.push_back(
        std::make_unique<nn::Linear>(in_dim, out_dim, rng));
    RegisterModule("forward_w" + std::to_string(k),
                   forward_weights_.back().get());
    RegisterModule("backward_w" + std::to_string(k),
                   backward_weights_.back().get());
  }
}

Variable GraphDiffusionConv::Forward(const Variable& x) const {
  Variable result;
  if (!forward_powers_.empty()) {
    for (int64_t k = 0; k <= max_step_; ++k) {
      Variable term = forward_weights_[k]->Forward(
          Propagate(ag::Constant(forward_powers_[k]), x));
      term = ag::Add(term, backward_weights_[k]->Forward(Propagate(
                               ag::Constant(backward_powers_[k]), x)));
      result = k == 0 ? term : ag::Add(result, term);
    }
    return result;
  }
  // Learned graph: build differentiable random-walk powers.
  const Variable forward_adj = adaptive_->Forward();
  const Variable backward_adj = adaptive_->ForwardReverse();
  Variable x_forward = x;
  Variable x_backward = x;
  for (int64_t k = 0; k <= max_step_; ++k) {
    if (k > 0) {
      x_forward = Propagate(forward_adj, x_forward);
      x_backward = Propagate(backward_adj, x_backward);
    }
    Variable term = forward_weights_[k]->Forward(x_forward);
    term = ag::Add(term, backward_weights_[k]->Forward(x_backward));
    result = k == 0 ? term : ag::Add(result, term);
  }
  return result;
}

DgcnOp::DgcnOp(const OpContext& context)
    : conv_(context.channels, context.channels, context.max_diffusion_step,
            context.adjacency, context.adaptive, context.rng) {
  RegisterModule("conv", &conv_);
}

Variable DgcnOp::Forward(const Variable& x) { return conv_.Forward(x); }

ChebGcnOp::ChebGcnOp(const OpContext& context)
    : order_(context.cheb_order), adaptive_(context.adaptive) {
  AUTOCTS_CHECK(context.HasGraph()) << "ChebGCN requires a graph";
  AUTOCTS_CHECK(context.rng != nullptr);
  AUTOCTS_CHECK_GE(order_, 1);
  if (context.adjacency.defined()) {
    polynomials_ = graph::ChebyshevPolynomials(
        graph::ScaledLaplacian(context.adjacency), order_);
    adaptive_ = nullptr;
  }
  for (int64_t k = 0; k < order_; ++k) {
    weights_.push_back(std::make_unique<nn::Linear>(
        context.channels, context.channels, context.rng));
    RegisterModule("w" + std::to_string(k), weights_.back().get());
  }
}

Variable ChebGcnOp::Forward(const Variable& x) {
  if (!polynomials_.empty()) {
    Variable result;
    for (int64_t k = 0; k < order_; ++k) {
      const Variable term = weights_[k]->Forward(
          Propagate(ag::Constant(polynomials_[k]), x));
      result = k == 0 ? term : ag::Add(result, term);
    }
    return result;
  }
  // Learned graph: Chebyshev recursion T_0 = I, T_1 = A,
  // T_k = 2 A T_{k-1} - T_{k-2}, applied to x directly.
  const Variable adj = adaptive_->Forward();
  Variable result = weights_[0]->Forward(x);  // T_0 x = x
  if (order_ == 1) return result;
  Variable prev2 = x;
  Variable prev1 = Propagate(adj, x);
  result = ag::Add(result, weights_[1]->Forward(prev1));
  for (int64_t k = 2; k < order_; ++k) {
    const Variable current =
        ag::Sub(ag::MulScalar(Propagate(adj, prev1), 2.0), prev2);
    result = ag::Add(result, weights_[k]->Forward(current));
    prev2 = prev1;
    prev1 = current;
  }
  return result;
}

}  // namespace autocts::ops
