// GCN-family S-operators of Table 1:
//   Chebyshev GCN (Eq. 14): H_t = sum_k W_k T_k(L~) Z_t
//   Diffusion GCN (Eq. 15): H_t = sum_k (D_O^-1 A)^k Z_t W1_k
//                                  + (D_I^-1 A^T)^k Z_t W2_k
//
// With a predefined adjacency the propagation matrices are precomputed
// constants; without one they are built (differentiably) from the shared
// adaptive adjacency, matching the data-driven graphs of Graph WaveNet /
// AGCRN / MTGNN that the paper cites.
#ifndef AUTOCTS_OPS_GCN_OPS_H_
#define AUTOCTS_OPS_GCN_OPS_H_

#include <vector>

#include "graph/adjacency.h"
#include "nn/linear.h"
#include "ops/st_operator.h"

namespace autocts::ops {

// Generic diffusion graph convolution with independent input/output widths,
// reused by DgcnOp, the DCGRU cell of DCRNN, and MTGNN's mix-hop layer.
class GraphDiffusionConv : public nn::Module {
 public:
  GraphDiffusionConv(int64_t in_dim, int64_t out_dim, int64_t max_step,
                     const Tensor& adjacency,
                     std::shared_ptr<graph::AdaptiveAdjacency> adaptive,
                     Rng* rng);

  // [B, T, N, in_dim] (or [B, N, in_dim]) -> same shape with out_dim.
  Variable Forward(const Variable& x) const;

 private:
  int64_t max_step_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  std::vector<Tensor> forward_powers_;   // precomputed when adjacency given
  std::vector<Tensor> backward_powers_;
  std::vector<std::unique_ptr<nn::Linear>> forward_weights_;
  std::vector<std::unique_ptr<nn::Linear>> backward_weights_;
};

// Diffusion GCN operator (Eq. 15); the strongest GCN-family variant per the
// paper's Table 3 comparison.
class DgcnOp : public StOperator {
 public:
  explicit DgcnOp(const OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "dgcn"; }

 private:
  GraphDiffusionConv conv_;
};

// Chebyshev GCN (Eq. 14).
class ChebGcnOp : public StOperator {
 public:
  explicit ChebGcnOp(const OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "cheb_gcn"; }

 private:
  int64_t order_;
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive_;
  std::vector<Tensor> polynomials_;  // precomputed when adjacency given
  std::vector<std::unique_ptr<nn::Linear>> weights_;
};

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_GCN_OPS_H_
