// Non-parametric operators: Zero and Identity (Section 3.2.3 adds these two
// to the compact operator set).
#ifndef AUTOCTS_OPS_SIMPLE_OPS_H_
#define AUTOCTS_OPS_SIMPLE_OPS_H_

#include "ops/st_operator.h"

namespace autocts::ops {

// Outputs all zeros; lets the search drop an edge entirely.
class ZeroOp : public StOperator {
 public:
  ZeroOp() = default;
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "zero"; }
};

// Passes the input through unchanged (skip connection).
class IdentityOp : public StOperator {
 public:
  IdentityOp() = default;
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "identity"; }
};

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_SIMPLE_OPS_H_
