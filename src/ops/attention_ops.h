// Attention-family operators of Table 1:
//   Transformer over time (Eq. 12) and over nodes (Eq. 16);
//   Informer (ProbSparse attention) over time (Eq. 13) and nodes (Eq. 17).
//
// Informer's smp(.) query sampling: queries are ranked by the sparsity
// measurement M(q) = max_j(q k_j / sqrt(d)) - mean_j(q k_j / sqrt(d)), and
// only the top u = ceil(c ln L) queries attend; the remaining ("lazy")
// queries output the mean of V, exactly as in Zhou et al. (2021). One
// simplification for this substrate: the measurement is averaged across
// each sample's rows so one index set is shared within a sample (keeping
// the gather/scatter dense), but every batch element selects its set
// independently — each sample's output never depends on its batch mates,
// so a batched eval forward is bit-identical to per-sample forwards (the
// serving determinism contract).
#ifndef AUTOCTS_OPS_ATTENTION_OPS_H_
#define AUTOCTS_OPS_ATTENTION_OPS_H_

#include "nn/linear.h"
#include "ops/st_operator.h"

namespace autocts::ops {

// Shared single-head scaled dot-product attention machinery. The axis over
// which attention operates is selected by `temporal`:
//   temporal: sequence axis = T (per node);  spatial: sequence axis = N
//   (per timestep).
class AttentionOpBase : public StOperator {
 public:
  AttentionOpBase(const OpContext& context, bool temporal, bool sparse);

  Variable Forward(const Variable& x) final;

 protected:
  // Full attention over the last-but-one axis of [.., L, D] inputs.
  Variable FullAttention(const Variable& q, const Variable& k,
                         const Variable& v) const;
  // ProbSparse attention (Informer).
  Variable SparseAttention(const Variable& q, const Variable& k,
                           const Variable& v) const;

 private:
  bool temporal_;
  bool sparse_;
  double attention_factor_;
  int64_t channels_;
  nn::Linear query_proj_;
  nn::Linear key_proj_;
  nn::Linear value_proj_;
  nn::Linear output_proj_;
};

// Eq. 12: full self-attention along time, per node.
class TransformerTOp : public AttentionOpBase {
 public:
  explicit TransformerTOp(const OpContext& context)
      : AttentionOpBase(context, /*temporal=*/true, /*sparse=*/false) {}
  std::string name() const override { return "trans_t"; }
};

// Eq. 13: Informer (ProbSparse) attention along time, per node (INF-T).
class InformerTOp : public AttentionOpBase {
 public:
  explicit InformerTOp(const OpContext& context)
      : AttentionOpBase(context, /*temporal=*/true, /*sparse=*/true) {}
  std::string name() const override { return "inf_t"; }
};

// Eq. 16: full self-attention across nodes, per timestep.
class TransformerSOp : public AttentionOpBase {
 public:
  explicit TransformerSOp(const OpContext& context)
      : AttentionOpBase(context, /*temporal=*/false, /*sparse=*/false) {}
  std::string name() const override { return "trans_s"; }
};

// Eq. 17: Informer attention across nodes, per timestep (INF-S).
class InformerSOp : public AttentionOpBase {
 public:
  explicit InformerSOp(const OpContext& context)
      : AttentionOpBase(context, /*temporal=*/false, /*sparse=*/true) {}
  std::string name() const override { return "inf_s"; }
};

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_ATTENTION_OPS_H_
