// CNN-family T-operators of Table 1:
//   1D Convolution (Eq. 8):  H = Z * W
//   Gated Dilated Causal Convolution, GDCC (Eq. 9):
//       H = (Z * W1) (elementwise*) sigmoid(Z * W2)
#ifndef AUTOCTS_OPS_TEMPORAL_CONV_OPS_H_
#define AUTOCTS_OPS_TEMPORAL_CONV_OPS_H_

#include "nn/conv.h"
#include "ops/st_operator.h"

namespace autocts::ops {

// Plain causal 1-D convolution over time (Eq. 8).
class Conv1dOp : public StOperator {
 public:
  explicit Conv1dOp(const OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "conv1d"; }

 private:
  nn::TemporalConv1d conv_;
};

// Gated dilated causal convolution (Eq. 9); the strongest CNN-family
// variant per the paper's Principle 2 analysis.
class GdccOp : public StOperator {
 public:
  explicit GdccOp(const OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "gdcc"; }

 private:
  nn::TemporalConv1d filter_conv_;
  nn::TemporalConv1d gate_conv_;
};

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_TEMPORAL_CONV_OPS_H_
