#include "ops/op_registry.h"

#include "ops/attention_ops.h"
#include "ops/gcn_ops.h"
#include "ops/rnn_ops.h"
#include "ops/simple_ops.h"
#include "ops/temporal_conv_ops.h"

namespace autocts::ops {

OpRegistry& OpRegistry::Global() {
  static OpRegistry* registry = new OpRegistry();
  return *registry;
}

OpRegistry::OpRegistry() {
  // The built-in operators of Table 1 plus the two non-parametric ones.
  Register("zero", [](const OpContext&) -> StOperatorPtr {
    return std::make_unique<ZeroOp>();
  });
  Register("identity", [](const OpContext&) -> StOperatorPtr {
    return std::make_unique<IdentityOp>();
  });
  Register("conv1d", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<Conv1dOp>(context);
  });
  Register("gdcc", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<GdccOp>(context);
  });
  Register("lstm", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<LstmOp>(context);
  });
  Register("gru", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<GruOp>(context);
  });
  Register("trans_t", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<TransformerTOp>(context);
  });
  Register("inf_t", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<InformerTOp>(context);
  });
  Register("cheb_gcn", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<ChebGcnOp>(context);
  });
  Register("dgcn", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<DgcnOp>(context);
  });
  Register("trans_s", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<TransformerSOp>(context);
  });
  Register("inf_s", [](const OpContext& context) -> StOperatorPtr {
    return std::make_unique<InformerSOp>(context);
  });
}

void OpRegistry::Register(const std::string& name, OpFactory factory) {
  AUTOCTS_CHECK(!Contains(name)) << "duplicate operator name: " << name;
  factories_.emplace_back(name, std::move(factory));
}

bool OpRegistry::Contains(const std::string& name) const {
  for (const auto& [known, factory] : factories_) {
    if (known == name) return true;
  }
  return false;
}

StatusOr<StOperatorPtr> OpRegistry::Create(const std::string& name,
                                           const OpContext& context) const {
  for (const auto& [known, factory] : factories_) {
    if (known == name) return factory(context);
  }
  return Status::NotFound("unknown operator: " + name);
}

std::vector<std::string> OpRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

StOperatorPtr CreateOp(const std::string& name, const OpContext& context) {
  StatusOr<StOperatorPtr> result = OpRegistry::Global().Create(name, context);
  AUTOCTS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace autocts::ops
