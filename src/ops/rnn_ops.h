// RNN-family T-operators of Table 1 (Eqs. 10-11) and the reusable
// LSTM/GRU cells behind them.
//
// The paper's design principles EXCLUDE the RNN family from the compact
// operator set (Section 3.2.3 / Figure 6); these operators exist for
// (a) the "w/o design principles" ablation that searches over all operators
// in Table 1, and (b) the DCRNN / AGCRN / LSTNet / TPA-LSTM baselines.
#ifndef AUTOCTS_OPS_RNN_OPS_H_
#define AUTOCTS_OPS_RNN_OPS_H_

#include <utility>

#include "nn/linear.h"
#include "ops/st_operator.h"

namespace autocts::ops {

// One LSTM step: gates from [x, h]; works on any [..., D] input shape.
class LstmCell : public nn::Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  struct State {
    Variable h;
    Variable c;
  };

  // x: [..., input_dim]; state tensors: [..., hidden_dim].
  State Forward(const Variable& x, const State& state) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  nn::Linear gates_;  // [input+hidden] -> 4*hidden (i, f, g, o)
};

// One GRU step.
class GruCell : public nn::Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  Variable Forward(const Variable& x, const Variable& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  nn::Linear zr_gates_;  // [input+hidden] -> 2*hidden (z, r)
  nn::Linear candidate_;  // [input+hidden] -> hidden
};

// Eq. 10: per-node LSTM along time; outputs the hidden sequence.
class LstmOp : public StOperator {
 public:
  explicit LstmOp(const OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "lstm"; }

 private:
  LstmCell cell_;
};

// Eq. 11: per-node GRU along time.
class GruOp : public StOperator {
 public:
  explicit GruOp(const OpContext& context);
  Variable Forward(const Variable& x) override;
  std::string name() const override { return "gru"; }

 private:
  GruCell cell_;
};

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_RNN_OPS_H_
