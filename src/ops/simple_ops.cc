#include "ops/simple_ops.h"

namespace autocts::ops {

Variable ZeroOp::Forward(const Variable& x) {
  return ag::MulScalar(x, 0.0);
}

Variable IdentityOp::Forward(const Variable& x) { return x; }

}  // namespace autocts::ops
