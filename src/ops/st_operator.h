// Common interface and construction context for the S/T operators of
// Table 1 in the AutoCTS paper.
//
// Operator contract: Forward maps [B, T, N, D] -> [B, T, N, D], preserving
// every dimension (T-operators use causal padding), so the weighted-sum
// mixtures of the micro/macro search spaces (Eqs. 4-6, 18) are shape-safe.
#ifndef AUTOCTS_OPS_ST_OPERATOR_H_
#define AUTOCTS_OPS_ST_OPERATOR_H_

#include <memory>
#include <string>

#include "autograd/variable_ops.h"
#include "graph/adaptive_adjacency.h"
#include "nn/module.h"

namespace autocts::ops {

// Everything an operator needs at construction time.
//
// `adaptive` (a learned adjacency shared across all operators of one model)
// is intentionally NOT registered as a submodule by operators that use it;
// the owning model registers it exactly once so its parameters are not
// duplicated in the parameter list.
struct OpContext {
  int64_t channels = 16;    // D: hidden feature width
  int64_t num_nodes = 0;    // N
  int64_t kernel_size = 2;  // temporal conv kernel
  int64_t dilation = 1;     // temporal conv dilation
  int64_t max_diffusion_step = 2;   // K in Eq. 15
  int64_t cheb_order = 3;           // K in Eq. 14
  double attention_factor = 2.0;    // c in u = ceil(c ln L) for Informer
  Tensor adjacency;                 // predefined graph; may be undefined
  std::shared_ptr<graph::AdaptiveAdjacency> adaptive;  // learned graph
  Rng* rng = nullptr;

  // True if some form of adjacency is available for GCN-family operators.
  bool HasGraph() const { return adjacency.defined() || adaptive != nullptr; }
};

// Base class of every S/T operator.
class StOperator : public nn::Module {
 public:
  // [B, T, N, D] -> [B, T, N, D].
  virtual Variable Forward(const Variable& x) = 0;
  // The registry name, e.g. "gdcc".
  virtual std::string name() const = 0;
};

using StOperatorPtr = std::unique_ptr<StOperator>;

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_ST_OPERATOR_H_
