#include "ops/rnn_ops.h"

namespace autocts::ops {
namespace {

// Zero state matching `x` with the feature dim replaced by `hidden`.
Variable ZeroState(const Variable& x, int64_t hidden) {
  Shape shape = x.shape();
  shape.back() = hidden;
  return ag::Constant(Tensor::Zeros(shape));
}

}  // namespace

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      gates_(input_dim + hidden_dim, 4 * hidden_dim, rng) {
  RegisterModule("gates", &gates_);
}

LstmCell::State LstmCell::Forward(const Variable& x,
                                  const State& state) const {
  const Variable joined = ag::Concat({x, state.h}, /*axis=*/-1);
  const Variable gates = gates_.Forward(joined);
  const Variable i = ag::Sigmoid(ag::Slice(gates, -1, 0, hidden_dim_));
  const Variable f =
      ag::Sigmoid(ag::Slice(gates, -1, hidden_dim_, hidden_dim_));
  const Variable g =
      ag::Tanh(ag::Slice(gates, -1, 2 * hidden_dim_, hidden_dim_));
  const Variable o =
      ag::Sigmoid(ag::Slice(gates, -1, 3 * hidden_dim_, hidden_dim_));
  State next;
  next.c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
  next.h = ag::Mul(o, ag::Tanh(next.c));
  return next;
}

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      zr_gates_(input_dim + hidden_dim, 2 * hidden_dim, rng),
      candidate_(input_dim + hidden_dim, hidden_dim, rng) {
  RegisterModule("zr_gates", &zr_gates_);
  RegisterModule("candidate", &candidate_);
}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  const Variable joined = ag::Concat({x, h}, /*axis=*/-1);
  const Variable zr = zr_gates_.Forward(joined);
  const Variable z = ag::Sigmoid(ag::Slice(zr, -1, 0, hidden_dim_));
  const Variable r = ag::Sigmoid(ag::Slice(zr, -1, hidden_dim_, hidden_dim_));
  const Variable candidate = ag::Tanh(
      candidate_.Forward(ag::Concat({x, ag::Mul(r, h)}, /*axis=*/-1)));
  // h' = z * h + (1 - z) * candidate
  return ag::Add(ag::Mul(z, h),
                 ag::Mul(ag::AddScalar(ag::Neg(z), 1.0), candidate));
}

LstmOp::LstmOp(const OpContext& context)
    : cell_(context.channels, context.channels, context.rng) {
  RegisterModule("cell", &cell_);
}

Variable LstmOp::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t steps = x.dim(1);
  LstmCell::State state;
  const Variable first = ag::Reshape(
      ag::Slice(x, 1, 0, 1), {x.dim(0), x.dim(2), x.dim(3)});
  state.h = ZeroState(first, cell_.hidden_dim());
  state.c = ZeroState(first, cell_.hidden_dim());
  std::vector<Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    const Variable x_t = ag::Reshape(ag::Slice(x, 1, t, 1),
                                     {x.dim(0), x.dim(2), x.dim(3)});
    state = cell_.Forward(x_t, state);
    outputs.push_back(ag::Reshape(
        state.h, {x.dim(0), 1, x.dim(2), cell_.hidden_dim()}));
  }
  return ag::Concat(outputs, /*axis=*/1);
}

GruOp::GruOp(const OpContext& context)
    : cell_(context.channels, context.channels, context.rng) {
  RegisterModule("cell", &cell_);
}

Variable GruOp::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  const int64_t steps = x.dim(1);
  const Variable first = ag::Reshape(
      ag::Slice(x, 1, 0, 1), {x.dim(0), x.dim(2), x.dim(3)});
  Variable h = ZeroState(first, cell_.hidden_dim());
  std::vector<Variable> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    const Variable x_t = ag::Reshape(ag::Slice(x, 1, t, 1),
                                     {x.dim(0), x.dim(2), x.dim(3)});
    h = cell_.Forward(x_t, h);
    outputs.push_back(
        ag::Reshape(h, {x.dim(0), 1, x.dim(2), cell_.hidden_dim()}));
  }
  return ag::Concat(outputs, /*axis=*/1);
}

}  // namespace autocts::ops
