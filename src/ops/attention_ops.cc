#include "ops/attention_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/tensor_ops.h"

namespace autocts::ops {

AttentionOpBase::AttentionOpBase(const OpContext& context, bool temporal,
                                 bool sparse)
    : temporal_(temporal),
      sparse_(sparse),
      attention_factor_(context.attention_factor),
      channels_(context.channels),
      query_proj_(context.channels, context.channels, context.rng),
      key_proj_(context.channels, context.channels, context.rng),
      value_proj_(context.channels, context.channels, context.rng),
      output_proj_(context.channels, context.channels, context.rng) {
  RegisterModule("query", &query_proj_);
  RegisterModule("key", &key_proj_);
  RegisterModule("value", &value_proj_);
  RegisterModule("output", &output_proj_);
}

Variable AttentionOpBase::Forward(const Variable& x) {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  // Move the attended axis into the last-but-one position:
  //   temporal: [B, T, N, D] -> [B, N, T, D]; spatial: already [B, T, N, D].
  const Variable sequences = temporal_ ? ag::Transpose(x, 1, 2) : x;
  const Variable q = query_proj_.Forward(sequences);
  const Variable k = key_proj_.Forward(sequences);
  const Variable v = value_proj_.Forward(sequences);
  Variable attended =
      sparse_ ? SparseAttention(q, k, v) : FullAttention(q, k, v);
  attended = output_proj_.Forward(attended);
  return temporal_ ? ag::Transpose(attended, 1, 2) : attended;
}

Variable AttentionOpBase::FullAttention(const Variable& q, const Variable& k,
                                        const Variable& v) const {
  const double scale = 1.0 / std::sqrt(static_cast<double>(channels_));
  const Variable scores = ag::MulScalar(
      ag::MatMul(q, ag::Transpose(k, -2, -1)), scale);
  return ag::MatMul(ag::Softmax(scores, /*axis=*/-1), v);
}

Variable AttentionOpBase::SparseAttention(const Variable& q, const Variable& k,
                                          const Variable& v) const {
  const int64_t length = q.dim(-2);
  const int64_t u = std::min<int64_t>(
      length,
      std::max<int64_t>(
          1, static_cast<int64_t>(std::ceil(
                 attention_factor_ * std::log(static_cast<double>(length) + 1.0)))));
  if (u >= length) return FullAttention(q, k, v);

  const double scale = 1.0 / std::sqrt(static_cast<double>(channels_));

  // Sparsity measurement M(q_i) = max_j s_ij - mean_j s_ij, computed on
  // detached values and averaged over each sample's own rows only, so
  // every batch element selects its active-query set independently: a
  // batched forward is bit-identical to forwarding each sample alone
  // (the serving determinism contract; see header).
  const Tensor raw_scores =
      MulScalar(MatMul(q.value(), k.value().Transpose(-2, -1)), scale);
  const int64_t batch = q.dim(0);
  const Tensor flat =
      raw_scores.Reshape({batch, -1, length, length});  // [B, rows, L, L]
  const int64_t rows = flat.dim(1);

  // Per-sample one-hot gather G [B, 1, u, L] (row j selects that sample's
  // j-th active query), scatter S = G^T [B, 1, L, u], and lazy-row mask
  // [B, 1, L, 1]; the batched matmuls below broadcast them over the row
  // axis. Gather/scatter are zero-initialized on purpose (sparse one-hot
  // fill); not candidates for Tensor::Uninitialized.
  Tensor gather({batch, 1, u, length});
  Tensor scatter({batch, 1, length, u});
  Tensor lazy_mask = Tensor::Ones({batch, 1, length, 1});
  std::vector<double> measurement(length);
  std::vector<int64_t> order(length);
  for (int64_t b = 0; b < batch; ++b) {
    std::fill(measurement.begin(), measurement.end(), 0.0);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t i = 0; i < length; ++i) {
        const double* row =
            flat.data() + ((b * rows + r) * length + i) * length;
        double max_score = row[0];
        double sum = 0.0;
        for (int64_t j = 0; j < length; ++j) {
          max_score = std::max(max_score, row[j]);
          sum += row[j];
        }
        measurement[i] += max_score - sum / static_cast<double>(length);
      }
    }
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + u, order.end(),
                      [&measurement](int64_t lhs, int64_t rhs) {
                        return measurement[lhs] > measurement[rhs];
                      });
    std::sort(order.begin(), order.begin() + u);
    for (int64_t j = 0; j < u; ++j) {
      const int64_t active = order[j];
      gather.data()[(b * u + j) * length + active] = 1.0;
      scatter.data()[(b * length + active) * u + j] = 1.0;
      lazy_mask.data()[b * length + active] = 0.0;
    }
  }

  // Active queries attend normally; the one-hot gather matmul routes
  // gradients back to the selected rows of q.
  const Variable q_active = ag::MatMul(ag::Constant(gather), q);
  const Variable scores = ag::MulScalar(
      ag::MatMul(q_active, ag::Transpose(k, -2, -1)), scale);
  const Variable attended_active =
      ag::MatMul(ag::Softmax(scores, /*axis=*/-1), v);  // [.., u, D]

  // Lazy queries output mean(V); scatter the active rows on top.
  const Variable mean_v = ag::Mean(v, /*axis=*/-2, /*keepdim=*/true);
  const Variable lazy_part = ag::Mul(ag::Constant(lazy_mask), mean_v);
  const Variable active_part =
      ag::MatMul(ag::Constant(scatter), attended_active);
  return ag::Add(active_part, lazy_part);
}

}  // namespace autocts::ops
