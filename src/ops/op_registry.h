// String-keyed factory for S/T operators.
//
// New operators can be registered at runtime, which is exactly the
// extensibility argument of Section 3.1: "whenever a new S/T-operator is
// designed, the new S/T-operator can be easily included in the search
// space" (see examples/custom_operator.cpp).
#ifndef AUTOCTS_OPS_OP_REGISTRY_H_
#define AUTOCTS_OPS_OP_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ops/st_operator.h"

namespace autocts::ops {

using OpFactory = std::function<StOperatorPtr(const OpContext&)>;

// Global operator registry (not thread-safe; populate before searching).
class OpRegistry {
 public:
  static OpRegistry& Global();

  // Registers `factory` under `name`; CHECK-fails on duplicates.
  void Register(const std::string& name, OpFactory factory);
  bool Contains(const std::string& name) const;
  // Instantiates the operator; NotFound if the name is unknown.
  StatusOr<StOperatorPtr> Create(const std::string& name,
                                 const OpContext& context) const;
  // All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  OpRegistry();
  std::vector<std::pair<std::string, OpFactory>> factories_;
};

// Convenience wrapper around OpRegistry::Global().Create that CHECK-fails
// on unknown names (used by the search code, where names come from a
// validated operator set).
StOperatorPtr CreateOp(const std::string& name, const OpContext& context);

}  // namespace autocts::ops

#endif  // AUTOCTS_OPS_OP_REGISTRY_H_
