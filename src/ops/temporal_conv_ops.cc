#include "ops/temporal_conv_ops.h"

namespace autocts::ops {

Conv1dOp::Conv1dOp(const OpContext& context)
    : conv_(context.channels, context.channels, context.kernel_size,
            context.dilation, /*causal=*/true, context.rng) {
  RegisterModule("conv", &conv_);
}

Variable Conv1dOp::Forward(const Variable& x) { return conv_.Forward(x); }

GdccOp::GdccOp(const OpContext& context)
    : filter_conv_(context.channels, context.channels, context.kernel_size,
                   context.dilation, /*causal=*/true, context.rng),
      gate_conv_(context.channels, context.channels, context.kernel_size,
                 context.dilation, /*causal=*/true, context.rng) {
  RegisterModule("filter", &filter_conv_);
  RegisterModule("gate", &gate_conv_);
}

Variable GdccOp::Forward(const Variable& x) {
  const Variable filter = filter_conv_.Forward(x);
  const Variable gate = ag::Sigmoid(gate_conv_.Forward(x));
  return ag::Mul(filter, gate);
}

}  // namespace autocts::ops
