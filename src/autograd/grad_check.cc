#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace autocts {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    const std::vector<Tensor>& inputs, double epsilon, double tolerance) {
  GradCheckResult result;

  // Analytic gradients.
  std::vector<Variable> variables;
  variables.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    variables.emplace_back(input.Clone(), /*requires_grad=*/true);
  }
  Variable output = fn(variables);
  AUTOCTS_CHECK_EQ(output.size(), 1) << "grad check needs a scalar output";
  output.Backward();

  // Numeric gradients by central differences, compared coordinate-wise.
  for (size_t input_idx = 0; input_idx < inputs.size(); ++input_idx) {
    Tensor perturbed = inputs[input_idx].Clone();
    const int64_t n = perturbed.size();
    const Tensor* analytic = nullptr;
    Tensor zero_grad;
    if (variables[input_idx].has_grad()) {
      analytic = &variables[input_idx].grad();
    } else {
      zero_grad = Tensor::Zeros(perturbed.shape());
      analytic = &zero_grad;
    }
    for (int64_t i = 0; i < n; ++i) {
      const double original = perturbed.data()[i];

      auto evaluate = [&](double value) {
        perturbed.data()[i] = value;
        std::vector<Variable> args;
        args.reserve(inputs.size());
        for (size_t j = 0; j < inputs.size(); ++j) {
          args.emplace_back(
              j == input_idx ? perturbed.Clone() : inputs[j].Clone(),
              /*requires_grad=*/false);
        }
        return fn(args).value().item();
      };

      const double plus = evaluate(original + epsilon);
      const double minus = evaluate(original - epsilon);
      perturbed.data()[i] = original;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double got = analytic->data()[i];
      const double relative =
          std::abs(got - numeric) / std::max(1.0, std::abs(numeric));
      result.max_relative_error =
          std::max(result.max_relative_error, relative);
      if (relative > tolerance) {
        result.ok = false;
        std::ostringstream message;
        message << "input " << input_idx << " coord " << i << ": analytic "
                << got << " vs numeric " << numeric << " (rel " << relative
                << ")";
        result.message = message.str();
        return result;
      }
    }
  }
  return result;
}

}  // namespace autocts
