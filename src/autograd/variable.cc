#include "autograd/variable.h"

#include <cmath>
#include <unordered_set>

#include "common/trace.h"
#include "tensor/tensor_ops.h"

namespace autocts {

namespace {

// Numeric-trace globals (see variable.h). Single driver thread only.
bool g_trace_active = false;
int64_t g_trace_next_index = 0;
NumericTraceReport g_trace_report;

bool HasNonFinite(const Tensor& tensor) {
  if (!tensor.defined()) return false;
  const double* values = tensor.data();
  for (int64_t i = 0; i < tensor.size(); ++i) {
    if (!std::isfinite(values[i])) return true;
  }
  return false;
}

void RecordTraceHit(const internal::Node* node, bool in_backward) {
  if (g_trace_report.triggered) return;
  g_trace_report.triggered = true;
  g_trace_report.op = node->op != nullptr ? node->op : "";
  g_trace_report.node_index = node->trace_index;
  g_trace_report.in_backward = in_backward;
}

}  // namespace

namespace internal {

void AccumulateGrad(Node* node, const Tensor& g) {
  AUTOCTS_CHECK(g.shape() == node->value.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " does not match value shape "
      << ShapeToString(node->value.shape());
  if (!node->grad.defined()) {
    node->grad = g.Clone();
  } else {
    AddInPlace(&node->grad, g);
  }
}

}  // namespace internal

Variable::Variable() = default;

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  AUTOCTS_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  AUTOCTS_CHECK(defined());
  return node_->value;
}

bool Variable::requires_grad() const {
  AUTOCTS_CHECK(defined());
  return node_->requires_grad;
}

const Tensor& Variable::grad() const {
  AUTOCTS_CHECK(defined());
  AUTOCTS_CHECK(node_->grad.defined()) << "no gradient accumulated";
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

void Variable::ClearGrad() {
  AUTOCTS_CHECK(defined());
  node_->grad = Tensor();
}

void Variable::AccumulateGrad(const Tensor& g) {
  AUTOCTS_CHECK(defined());
  internal::AccumulateGrad(node_.get(), g);
}

void Variable::Backward() {
  AUTOCTS_CHECK_EQ(size(), 1) << "Backward() without seed needs a scalar";
  Backward(Tensor::Ones(shape()));
}

void Variable::Backward(const Tensor& seed) {
  AUTOCTS_CHECK(defined());
  AUTOCTS_CHECK(seed.shape() == shape());

  // Iterative post-order DFS to get a topological order of the reachable
  // subgraph restricted to nodes that require grad.
  std::vector<internal::Node*> topo_order;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) stack.push_back({node_.get(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input == 0 && visited.count(frame.node) > 0) {
      stack.pop_back();
      continue;
    }
    if (frame.next_input < frame.node->inputs.size()) {
      internal::Node* child = frame.node->inputs[frame.next_input++].get();
      if (child->requires_grad && visited.count(child) == 0) {
        stack.push_back({child, 0});
      }
    } else {
      if (visited.insert(frame.node).second) topo_order.push_back(frame.node);
      stack.pop_back();
    }
  }

  internal::AccumulateGrad(node_.get(), seed);
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward && node->grad.defined()) {
      {
        // Spans the node's backward closure under the forward op's label
        // (aggregated separately as "<op>.bwd").
        trace::Scope span(node->op != nullptr ? node->op : "unlabeled",
                          /*backward=*/true);
        node->backward(node);
      }
      if (g_trace_active && !g_trace_report.triggered) {
        // The closure that just ran wrote into its inputs' grads; the first
        // non-finite value to appear there is attributed to this node's op.
        for (const std::shared_ptr<internal::Node>& input : node->inputs) {
          if (HasNonFinite(input->grad)) {
            RecordTraceHit(node, /*in_backward=*/true);
            break;
          }
        }
      }
    }
  }
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable MakeNode(Tensor value, std::vector<Variable> inputs,
                  std::function<void(internal::Node*)> backward,
                  const char* op_name) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->op = op_name;
  bool requires_grad = false;
  node->inputs.reserve(inputs.size());
  for (const Variable& input : inputs) {
    AUTOCTS_CHECK(input.defined());
    node->inputs.push_back(input.node());
    requires_grad = requires_grad || input.node()->requires_grad;
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->backward = std::move(backward);
  if (g_trace_active) {
    node->trace_index = g_trace_next_index++;
    if (HasNonFinite(node->value)) {
      RecordTraceHit(node.get(), /*in_backward=*/false);
    }
  }
  return Variable::FromNode(std::move(node));
}

std::string NumericTraceReport::ToString() const {
  if (!triggered) return "no non-finite value traced";
  std::string out = "op '";
  out += op.empty() ? "<unnamed>" : op;
  out += "' (node #" + std::to_string(node_index);
  out += in_backward ? ", backward pass)" : ", forward pass)";
  return out;
}

void BeginNumericTrace() {
  g_trace_active = true;
  g_trace_next_index = 0;
  g_trace_report = NumericTraceReport();
}

NumericTraceReport EndNumericTrace() {
  g_trace_active = false;
  return g_trace_report;
}

bool NumericTraceActive() { return g_trace_active; }

}  // namespace autocts
