#include "autograd/variable.h"

#include <atomic>
#include <cmath>
#include <mutex>
#include <new>

#include "common/buffer_pool.h"
#include "common/trace.h"
#include "tensor/tensor_ops.h"

namespace autocts {

namespace {

// ----------------------------------------------------------------------
// Tape-node chunk freelist. MakeNode runs a few thousand times per search
// step, and each make_shared<Node> was one heap allocation of the same
// fixed size (control block + Node fused). Recycling those chunks through
// an intrusive freelist makes a warmed-up step allocate nothing for the
// tape skeleton. Keyed by chunk size so the allocate_shared rebind below
// gets its own list; obeys the AUTOCTS_TENSOR_POOL kill switch so pool-off
// runs keep full allocator-level debugging precision (ASan use-after-free
// on freed nodes).
// ----------------------------------------------------------------------

template <size_t kSize>
class ChunkFreeList {
 public:
  static void* Get() {
    if (BufferPool::Global().enabled()) {
      std::lock_guard<std::mutex> lock(Mutex());
      if (head_ != nullptr) {
        FreeChunk* chunk = head_;
        head_ = chunk->next;
        --cached_;
        return chunk;
      }
    }
    return ::operator new(kSize);
  }

  static void Put(void* p) {
    if (BufferPool::Global().enabled()) {
      std::lock_guard<std::mutex> lock(Mutex());
      if (cached_ < kMaxCached) {
        auto* chunk = static_cast<FreeChunk*>(p);
        chunk->next = head_;
        head_ = chunk;
        ++cached_;
        return;
      }
    }
    ::operator delete(p);
  }

 private:
  // The freed chunk itself stores the link, so the list costs no memory
  // beyond the parked chunks.
  struct FreeChunk {
    FreeChunk* next;
  };
  static_assert(kSize >= sizeof(FreeChunk));

  // A LIFO freelist caches at most the peak number of simultaneously live
  // nodes — one search step's tape — so the cap is a backstop, not a
  // steady-state limit.
  static constexpr int64_t kMaxCached = int64_t{1} << 16;

  // Leaked, like BufferPool::Global(): nodes held by objects with static
  // storage duration may release after normal static destruction.
  static std::mutex& Mutex() {
    static std::mutex* mutex = new std::mutex();
    return *mutex;
  }

  inline static FreeChunk* head_ = nullptr;
  inline static int64_t cached_ = 0;
};

// std::allocate_shared adaptor: single-object allocations (the fused
// control-block+Node chunk) go through the freelist; anything else falls
// back to the global allocator.
template <typename T>
struct TapeAllocator {
  using value_type = T;

  TapeAllocator() = default;
  template <typename U>
  TapeAllocator(const TapeAllocator<U>&) noexcept {}  // NOLINT: rebind

  T* allocate(size_t n) {
    if (n == 1) return static_cast<T*>(ChunkFreeList<sizeof(T)>::Get());
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    if (n == 1) {
      ChunkFreeList<sizeof(T)>::Put(p);
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const TapeAllocator<U>&) const noexcept {
    return true;
  }
};

std::shared_ptr<internal::Node> AllocateNode() {
  return std::allocate_shared<internal::Node>(
      TapeAllocator<internal::Node>());
}

// Numeric-trace state (see variable.h). thread_local so that concurrent
// training loops — e.g. the eval scheduler's candidate workers — can each
// attribute their own divergence without seeing (or corrupting) another
// thread's trace. A traced computation must run entirely on the thread
// that called BeginNumericTrace, which holds everywhere: attribution
// re-runs the loss closure synchronously on the caller (ParallelFor
// worker chunks never call MakeNode; kernels run below the tape).
thread_local bool g_trace_active = false;
thread_local int64_t g_trace_next_index = 0;
thread_local NumericTraceReport g_trace_report;

bool HasNonFinite(const Tensor& tensor) {
  if (!tensor.defined()) return false;
  const double* values = tensor.data();
  for (int64_t i = 0; i < tensor.size(); ++i) {
    if (!std::isfinite(values[i])) return true;
  }
  return false;
}

void RecordTraceHit(const internal::Node* node, bool in_backward) {
  if (g_trace_report.triggered) return;
  g_trace_report.triggered = true;
  g_trace_report.op = node->op != nullptr ? node->op : "";
  g_trace_report.node_index = node->trace_index;
  g_trace_report.in_backward = in_backward;
}

}  // namespace

namespace internal {

void AccumulateGrad(Node* node, const Tensor& g) {
  AUTOCTS_CHECK(g.shape() == node->value.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " does not match value shape "
      << ShapeToString(node->value.shape());
  if (!node->grad.defined()) {
    if (node->grad_scratch.defined() &&
        node->grad_scratch.shape() == g.shape()) {
      node->grad = std::move(node->grad_scratch);
      node->grad.CopyFrom(g);
    } else {
      node->grad = g.Clone();
    }
    node->grad_scratch = Tensor();
  } else {
    AddInPlace(&node->grad, g);
  }
}

}  // namespace internal

Variable::Variable() = default;

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = AllocateNode();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  AUTOCTS_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  AUTOCTS_CHECK(defined());
  return node_->value;
}

bool Variable::requires_grad() const {
  AUTOCTS_CHECK(defined());
  return node_->requires_grad;
}

const Tensor& Variable::grad() const {
  AUTOCTS_CHECK(defined());
  AUTOCTS_CHECK(node_->grad.defined()) << "no gradient accumulated";
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

void Variable::ClearGrad() {
  AUTOCTS_CHECK(defined());
  // Park the buffer for the next accumulation (see Node::grad_scratch)
  // rather than bouncing it through the buffer pool.
  node_->grad_scratch = std::move(node_->grad);
  node_->grad = Tensor();
}

void Variable::AccumulateGrad(const Tensor& g) {
  AUTOCTS_CHECK(defined());
  internal::AccumulateGrad(node_.get(), g);
}

void Variable::Backward() {
  AUTOCTS_CHECK_EQ(size(), 1) << "Backward() without seed needs a scalar";
  Backward(Tensor::Ones(shape()));
}

void Variable::Backward(const Tensor& seed) {
  AUTOCTS_CHECK(defined());
  AUTOCTS_CHECK(seed.shape() == shape());

  // Iterative post-order DFS to get a topological order of the reachable
  // subgraph restricted to nodes that require grad. Visitation is tracked
  // by stamping Node::visit_epoch with a fresh per-traversal epoch — a
  // pointer hash set here would heap-allocate once per tape node per step.
  // Atomic so concurrent Backward() calls on disjoint graphs (one per
  // eval-scheduler worker) draw globally unique epochs: tape nodes recycle
  // across threads through the freelist, so a stale visit_epoch stamp must
  // never collide with a live traversal's epoch.
  static std::atomic<uint64_t> backward_epoch{0};
  const uint64_t epoch =
      backward_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto visited = [epoch](const internal::Node* node) {
    return node->visit_epoch == epoch;
  };
  std::vector<internal::Node*> topo_order;
  struct Frame {
    internal::Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) stack.push_back({node_.get(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input == 0 && visited(frame.node)) {
      stack.pop_back();
      continue;
    }
    if (frame.next_input < frame.node->inputs.size()) {
      internal::Node* child = frame.node->inputs[frame.next_input++].get();
      if (child->requires_grad && !visited(child)) {
        stack.push_back({child, 0});
      }
    } else {
      if (!visited(frame.node)) {
        frame.node->visit_epoch = epoch;
        topo_order.push_back(frame.node);
      }
      stack.pop_back();
    }
  }

  internal::AccumulateGrad(node_.get(), seed);
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward && node->grad.defined()) {
      {
        // Spans the node's backward closure under the forward op's label
        // (aggregated separately as "<op>.bwd").
        trace::Scope span(node->op != nullptr ? node->op : "unlabeled",
                          /*backward=*/true);
        node->backward(node);
      }
      if (g_trace_active && !g_trace_report.triggered) {
        // The closure that just ran wrote into its inputs' grads; the first
        // non-finite value to appear there is attributed to this node's op.
        for (const std::shared_ptr<internal::Node>& input : node->inputs) {
          if (HasNonFinite(input->grad)) {
            RecordTraceHit(node, /*in_backward=*/true);
            break;
          }
        }
      }
    }
  }
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable MakeNode(Tensor value, std::vector<Variable> inputs,
                  std::function<void(internal::Node*)> backward,
                  const char* op_name) {
  std::shared_ptr<internal::Node> node = AllocateNode();
  node->value = std::move(value);
  node->op = op_name;
  bool requires_grad = false;
  node->inputs.reserve(inputs.size());
  for (const Variable& input : inputs) {
    AUTOCTS_CHECK(input.defined());
    node->inputs.push_back(input.node());
    requires_grad = requires_grad || input.node()->requires_grad;
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->backward = std::move(backward);
  if (g_trace_active) {
    node->trace_index = g_trace_next_index++;
    if (HasNonFinite(node->value)) {
      RecordTraceHit(node.get(), /*in_backward=*/false);
    }
  }
  return Variable::FromNode(std::move(node));
}

std::string NumericTraceReport::ToString() const {
  if (!triggered) return "no non-finite value traced";
  std::string out = "op '";
  out += op.empty() ? "<unnamed>" : op;
  out += "' (node #" + std::to_string(node_index);
  out += in_backward ? ", backward pass)" : ", forward pass)";
  return out;
}

void BeginNumericTrace() {
  g_trace_active = true;
  g_trace_next_index = 0;
  g_trace_report = NumericTraceReport();
}

NumericTraceReport EndNumericTrace() {
  g_trace_active = false;
  return g_trace_report;
}

bool NumericTraceActive() { return g_trace_active; }

}  // namespace autocts
