// Reverse-mode automatic differentiation.
//
// A Variable is a cheap handle to a tape Node holding a value tensor, an
// optional gradient tensor, and a backward closure that propagates the
// node's gradient to its inputs. Calling Backward() on a (scalar) Variable
// topologically sorts the reachable subgraph and runs the closures in
// reverse order, accumulating gradients into every node with
// requires_grad set (typically the model parameters).
#ifndef AUTOCTS_AUTOGRAD_VARIABLE_H_
#define AUTOCTS_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace autocts {

namespace internal {

// One tape entry. Exposed only so custom operations (e.g. the causal
// convolution in nn/) can build their own nodes via MakeNode below.
struct Node {
  Tensor value;
  Tensor grad;  // Undefined until first accumulation.
  // Grad buffer parked by Variable::ClearGrad; the next AccumulateGrad
  // first-use overwrites it in place instead of allocating. Long-lived
  // parameter nodes therefore keep one grad buffer across training steps.
  Tensor grad_scratch;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  // Propagates this node's grad into inputs' grads. May be empty for leaves.
  std::function<void(Node*)> backward;
  // Operation that built this node (static string; nullptr for leaves and
  // callers that predate naming). Used by the numeric trace below.
  const char* op = nullptr;
  // Creation ordinal while a numeric trace is active; -1 otherwise.
  int64_t trace_index = -1;
  // Visitation stamp for Backward()'s topological sort: the node counts as
  // visited when this equals the current traversal's epoch. Replaces a
  // per-Backward hash set (one heap allocation per tape node per step).
  // Driver-thread only, like the rest of the tape.
  uint64_t visit_epoch = 0;
};

// Adds `g` (same shape as the node value) into `node`'s gradient,
// initializing it to zeros on first use.
void AccumulateGrad(Node* node, const Tensor& g);

}  // namespace internal

// Differentiable tensor handle. Copies share the underlying node.
class Variable {
 public:
  // An undefined placeholder.
  Variable();
  // Wraps `value` as a leaf. With requires_grad, gradients accumulate here.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  // Mutable access for optimizers; must not be called mid-graph.
  Tensor& mutable_value();
  bool requires_grad() const;

  // The accumulated gradient; CHECK-fails if none has been accumulated.
  const Tensor& grad() const;
  bool has_grad() const;
  // Drops the accumulated gradient (optimizer ZeroGrad).
  void ClearGrad();
  // Adds `g` into the gradient directly (same shape as the value); used by
  // algorithms that assemble gradients manually, e.g. the second-order
  // DARTS update in core/searcher.cc.
  void AccumulateGrad(const Tensor& g);

  // Runs backpropagation seeding this (single-element) variable with 1.
  void Backward();
  // Runs backpropagation with an explicit seed gradient (same shape).
  void Backward(const Tensor& seed);

  const Shape& shape() const { return value().shape(); }
  int64_t ndim() const { return value().ndim(); }
  int64_t dim(int64_t axis) const { return value().dim(axis); }
  int64_t size() const { return value().size(); }

  // Internal: the underlying tape node.
  const std::shared_ptr<internal::Node>& node() const { return node_; }

  // Internal: wraps an existing node.
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

// Builds an interior tape node for a custom operation. `backward` receives
// the node (whose grad is fully accumulated) and must propagate into
// node->inputs via internal::AccumulateGrad. requires_grad is inferred from
// the inputs. `op_name` labels the node for the numeric trace; it must
// point to storage outliving the node (string literals).
Variable MakeNode(Tensor value, std::vector<Variable> inputs,
                  std::function<void(internal::Node*)> backward,
                  const char* op_name = nullptr);

// --------------------------------------------------------------------------
// Numeric trace (debug mode): attributes the FIRST non-finite value produced
// anywhere on the tape to the op that produced it.
//
// While a trace is active, every node built by MakeNode has its forward
// value scanned at construction, and Backward() scans the gradients written
// by each backward closure as it runs. The first non-finite hit is recorded
// (op name, creation ordinal, forward/backward phase); later hits are
// ignored. The scans make every op O(size) more expensive, so the trace is
// meant for attribution re-runs after a divergence is detected (see
// common/numerics.h AttributeDivergence), not for steady-state training.
// Global and not thread-safe: enable only from the single driver thread.
// --------------------------------------------------------------------------

struct NumericTraceReport {
  bool triggered = false;
  std::string op;          // "" when the producing node was unnamed
  int64_t node_index = -1; // creation ordinal since BeginNumericTrace
  bool in_backward = false;

  // e.g. "op 'softmax' (node #42, backward pass)".
  std::string ToString() const;
};

// Starts a fresh trace (resets the ordinal counter and the report).
void BeginNumericTrace();
// Stops tracing and returns the report of the first offender, if any.
NumericTraceReport EndNumericTrace();
bool NumericTraceActive();

}  // namespace autocts

#endif  // AUTOCTS_AUTOGRAD_VARIABLE_H_
