#include "autograd/variable_ops.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace autocts::ag {

namespace {

using internal::AccumulateGrad;
using internal::Node;

// Accumulates `g` into input slot `slot` of `node`, reducing over any
// broadcast axes first.
void AccumulateReduced(Node* node, size_t slot, const Tensor& g) {
  Node* input = node->inputs[slot].get();
  if (!input->requires_grad) return;
  AccumulateGrad(input, ReduceTo(g, input->value.shape()));
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return MakeNode(autocts::Add(a.value(), b.value()), {a, b}, [](Node* node) {
    AccumulateReduced(node, 0, node->grad);
    AccumulateReduced(node, 1, node->grad);
  }, "add");
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeNode(autocts::Sub(a.value(), b.value()), {a, b}, [](Node* node) {
    AccumulateReduced(node, 0, node->grad);
    AccumulateReduced(node, 1, autocts::Neg(node->grad));
  }, "sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeNode(autocts::Mul(va, vb), {a, b}, [va, vb](Node* node) {
    AccumulateReduced(node, 0, autocts::Mul(node->grad, vb));
    AccumulateReduced(node, 1, autocts::Mul(node->grad, va));
  }, "mul");
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeNode(autocts::Div(va, vb), {a, b}, [va, vb](Node* node) {
    AccumulateReduced(node, 0, autocts::Div(node->grad, vb));
    const Tensor db = autocts::Neg(autocts::Div(
        autocts::Mul(node->grad, va), autocts::Mul(vb, vb)));
    AccumulateReduced(node, 1, db);
  }, "div");
}

Variable AddScalar(const Variable& a, double value) {
  return MakeNode(autocts::AddScalar(a.value(), value), {a}, [](Node* node) {
    AccumulateReduced(node, 0, node->grad);
  }, "add_scalar");
}

Variable MulScalar(const Variable& a, double value) {
  return MakeNode(autocts::MulScalar(a.value(), value), {a},
                  [value](Node* node) {
                    AccumulateReduced(node, 0,
                                      autocts::MulScalar(node->grad, value));
                  }, "mul_scalar");
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0); }

Variable Exp(const Variable& a) {
  Tensor y = autocts::Exp(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    AccumulateReduced(node, 0, autocts::Mul(node->grad, y));
  }, "exp");
}

Variable Log(const Variable& a) {
  Tensor va = a.value();
  return MakeNode(autocts::Log(va), {a}, [va](Node* node) {
    AccumulateReduced(node, 0, autocts::Div(node->grad, va));
  }, "log");
}

Variable Sqrt(const Variable& a) {
  Tensor y = autocts::Sqrt(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    const Tensor dx = autocts::Div(autocts::MulScalar(node->grad, 0.5), y);
    AccumulateReduced(node, 0, dx);
  }, "sqrt");
}

Variable Abs(const Variable& a) {
  Tensor va = a.value();
  return MakeNode(autocts::Abs(va), {a}, [va](Node* node) {
    const Tensor sign = autocts::Apply(
        va, [](double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, sign));
  }, "abs");
}

Variable Tanh(const Variable& a) {
  Tensor y = autocts::Tanh(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    const Tensor one_minus_y2 =
        autocts::Apply(y, [](double v) { return 1.0 - v * v; });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, one_minus_y2));
  }, "tanh");
}

Variable Sigmoid(const Variable& a) {
  Tensor y = autocts::Sigmoid(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    const Tensor dy = autocts::Apply(y, [](double v) { return v * (1.0 - v); });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, dy));
  }, "sigmoid");
}

Variable Relu(const Variable& a) {
  Tensor va = a.value();
  return MakeNode(autocts::Relu(va), {a}, [va](Node* node) {
    const Tensor mask =
        autocts::Apply(va, [](double x) { return x > 0.0 ? 1.0 : 0.0; });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, mask));
  }, "relu");
}

Variable PowScalar(const Variable& a, double exponent) {
  Tensor va = a.value();
  return MakeNode(autocts::PowScalar(va, exponent), {a},
                  [va, exponent](Node* node) {
                    const Tensor dx = autocts::MulScalar(
                        autocts::PowScalar(va, exponent - 1.0), exponent);
                    AccumulateReduced(node, 0, autocts::Mul(node->grad, dx));
                  }, "pow_scalar");
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeNode(autocts::MatMul(va, vb), {a, b}, [va, vb](Node* node) {
    const Tensor bt = vb.Transpose(-2, -1);
    const Tensor at = va.Transpose(-2, -1);
    AccumulateReduced(node, 0, autocts::MatMul(node->grad, bt));
    AccumulateReduced(node, 1, autocts::MatMul(at, node->grad));
  }, "matmul");
}

Variable Sum(const Variable& a, int64_t axis, bool keepdim) {
  const Shape in_shape = a.shape();
  const int64_t rank = a.ndim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  return MakeNode(autocts::Sum(a.value(), axis, keepdim), {a},
                  [in_shape, norm_axis, keepdim](Node* node) {
                    Tensor g = node->grad;
                    if (!keepdim) {
                      Shape keep = in_shape;
                      keep[norm_axis] = 1;
                      g = g.Reshape(keep);
                    }
                    AccumulateReduced(node, 0, BroadcastTo(g, in_shape));
                  }, "sum");
}

Variable Mean(const Variable& a, int64_t axis, bool keepdim) {
  const int64_t extent = a.dim(axis);
  return MulScalar(Sum(a, axis, keepdim), 1.0 / static_cast<double>(extent));
}

Variable SumAll(const Variable& a) {
  const Shape in_shape = a.shape();
  return MakeNode(Tensor::Scalar(autocts::SumAll(a.value())), {a},
                  [in_shape](Node* node) {
                    AccumulateReduced(
                        node, 0, Tensor::Full(in_shape, node->grad.item()));
                  }, "sum_all");
}

Variable MeanAll(const Variable& a) {
  return MulScalar(SumAll(a), 1.0 / static_cast<double>(a.size()));
}

Variable Softmax(const Variable& a, int64_t axis) {
  return SoftmaxWithTemperature(a, axis, 1.0);
}

Variable SoftmaxWithTemperature(const Variable& a, int64_t axis, double tau) {
  AUTOCTS_CHECK_GT(tau, 0.0);
  const Tensor scaled = autocts::MulScalar(a.value(), 1.0 / tau);
  Tensor y = autocts::Softmax(scaled, axis);
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  return MakeNode(y, {a}, [y, norm_axis, tau](Node* node) {
    // dx = (1/tau) * y * (g - sum(g * y, axis))
    const Tensor gy = autocts::Mul(node->grad, y);
    const Tensor total = autocts::Sum(gy, norm_axis, /*keepdim=*/true);
    const Tensor dx = autocts::MulScalar(
        autocts::Mul(y, autocts::Sub(node->grad, total)), 1.0 / tau);
    AccumulateReduced(node, 0, dx);
  }, "softmax");
}

Variable Reshape(const Variable& a, Shape new_shape) {
  const Shape in_shape = a.shape();
  return MakeNode(a.value().Reshape(std::move(new_shape)), {a},
                  [in_shape](Node* node) {
                    AccumulateReduced(node, 0, node->grad.Reshape(in_shape));
                  }, "reshape");
}

Variable Permute(const Variable& a, const std::vector<int64_t>& perm) {
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  return MakeNode(a.value().Permute(perm), {a}, [inverse](Node* node) {
    AccumulateReduced(node, 0, node->grad.Permute(inverse));
  }, "permute");
}

Variable Transpose(const Variable& a, int64_t axis_a, int64_t axis_b) {
  if (axis_a < 0) axis_a += a.ndim();
  if (axis_b < 0) axis_b += a.ndim();
  std::vector<int64_t> perm(a.ndim());
  for (int64_t i = 0; i < a.ndim(); ++i) perm[i] = i;
  std::swap(perm[axis_a], perm[axis_b]);
  return Permute(a, perm);
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  AUTOCTS_CHECK(!parts.empty());
  const int64_t norm_axis = axis < 0 ? axis + parts[0].ndim() : axis;
  std::vector<Tensor> values;
  std::vector<int64_t> extents;
  values.reserve(parts.size());
  for (const Variable& part : parts) {
    values.push_back(part.value());
    extents.push_back(part.dim(norm_axis));
  }
  return MakeNode(autocts::Concat(values, norm_axis), parts,
                  [norm_axis, extents](Node* node) {
                    int64_t offset = 0;
                    for (size_t i = 0; i < extents.size(); ++i) {
                      const Tensor piece = autocts::Slice(
                          node->grad, norm_axis, offset, extents[i]);
                      AccumulateReduced(node, i, piece);
                      offset += extents[i];
                    }
                  }, "concat");
}

Variable Slice(const Variable& a, int64_t axis, int64_t start,
               int64_t length) {
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  const int64_t extent = a.dim(norm_axis);
  return MakeNode(
      autocts::Slice(a.value(), norm_axis, start, length), {a},
      [norm_axis, start, length, extent](Node* node) {
        AccumulateReduced(node, 0,
                          autocts::Pad(node->grad, norm_axis, start,
                                       extent - start - length));
      }, "slice");
}

Variable Pad(const Variable& a, int64_t axis, int64_t before, int64_t after) {
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  const int64_t extent = a.dim(norm_axis);
  return MakeNode(autocts::Pad(a.value(), norm_axis, before, after), {a},
                  [norm_axis, before, extent](Node* node) {
                    AccumulateReduced(
                        node, 0,
                        autocts::Slice(node->grad, norm_axis, before, extent));
                  }, "pad");
}

Variable IndexSelect(const Variable& a, int64_t axis,
                     const std::vector<int64_t>& indices) {
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  const Shape in_shape = a.shape();
  const int64_t mid = in_shape[norm_axis];
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < norm_axis; ++i) outer *= in_shape[i];
  for (int64_t i = norm_axis + 1; i < static_cast<int64_t>(in_shape.size());
       ++i) {
    inner *= in_shape[i];
  }
  Shape out_shape = in_shape;
  out_shape[norm_axis] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  const double* src = a.value().data();
  double* dst = out.data();
  const int64_t k = static_cast<int64_t>(indices.size());
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t idx = indices[j];
      AUTOCTS_CHECK_GE(idx, 0);
      AUTOCTS_CHECK_LT(idx, mid);
      std::copy(src + (o * mid + idx) * inner,
                src + (o * mid + idx + 1) * inner,
                dst + (o * k + j) * inner);
    }
  }
  return MakeNode(out, {a},
                  [in_shape, indices, outer, mid, inner, k](Node* node) {
                    Tensor grad_in(in_shape);
                    double* gdst = grad_in.data();
                    const double* gsrc = node->grad.data();
                    for (int64_t o = 0; o < outer; ++o) {
                      for (int64_t j = 0; j < k; ++j) {
                        const int64_t idx = indices[j];
                        const double* row = gsrc + (o * k + j) * inner;
                        double* target = gdst + (o * mid + idx) * inner;
                        for (int64_t i = 0; i < inner; ++i) target[i] += row[i];
                      }
                    }
                    AccumulateReduced(node, 0, grad_in);
                  }, "index_select");
}

Variable Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable Detach(const Variable& a) {
  return Variable(a.value(), /*requires_grad=*/false);
}

Variable L1Loss(const Variable& prediction, const Variable& target) {
  AUTOCTS_CHECK(prediction.shape() == target.shape());
  return MeanAll(Abs(Sub(prediction, target)));
}

Variable MseLoss(const Variable& prediction, const Variable& target) {
  AUTOCTS_CHECK(prediction.shape() == target.shape());
  const Variable diff = Sub(prediction, target);
  return MeanAll(Mul(diff, diff));
}

Variable HuberLoss(const Variable& prediction, const Variable& target,
                   double delta) {
  AUTOCTS_CHECK(prediction.shape() == target.shape());
  const Tensor diff = autocts::Sub(prediction.value(), target.value());
  // Elementwise derivative of the Huber loss, applied via a custom node to
  // avoid branching graph construction.
  Tensor loss = autocts::Apply(diff, [delta](double d) {
    const double a = std::abs(d);
    return a <= delta ? 0.5 * d * d : delta * (a - 0.5 * delta);
  });
  const double scale = 1.0 / static_cast<double>(diff.size());
  Tensor value = Tensor::Scalar(autocts::SumAll(loss) * scale);
  return MakeNode(
      value, {prediction, target},
      [diff, delta, scale](internal::Node* node) {
        const double g = node->grad.item() * scale;
        const Tensor dpred = autocts::Apply(diff, [delta, g](double d) {
          const double clipped = std::max(-delta, std::min(delta, d));
          return g * clipped;
        });
        AccumulateReduced(node, 0, dpred);
        AccumulateReduced(node, 1, autocts::Neg(dpred));
      }, "huber_loss");
}

}  // namespace autocts::ag
