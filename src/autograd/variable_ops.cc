#include "autograd/variable_ops.h"

#include <cmath>

#include "common/trace.h"
#include "tensor/tensor_ops.h"

namespace autocts::ag {

namespace {

using internal::AccumulateGrad;
using internal::Node;

std::vector<std::string>& MutableOpLabels() {
  static std::vector<std::string>* labels = new std::vector<std::string>();
  return *labels;
}

// Registers `label` at static-initialization time so RegisteredOpLabels()
// enumerates exactly the labels this file actually uses: adding an op via
// the kOp* pattern below automatically enrolls it in the grad-check sweep.
const char* RegisterOpLabel(const char* label) {
  MutableOpLabels().push_back(label);
  return label;
}

// Op labels double as tape-node names (numeric-trace attribution), tracer
// span names (forward scope here, backward scope in Variable::Backward),
// and grad-check sweep keys. The pointers are process-lifetime, as the
// tracer requires.
const char* const kOpAdd = RegisterOpLabel("add");
const char* const kOpSub = RegisterOpLabel("sub");
const char* const kOpMul = RegisterOpLabel("mul");
const char* const kOpDiv = RegisterOpLabel("div");
const char* const kOpAddScalar = RegisterOpLabel("add_scalar");
const char* const kOpMulScalar = RegisterOpLabel("mul_scalar");
const char* const kOpExp = RegisterOpLabel("exp");
const char* const kOpLog = RegisterOpLabel("log");
const char* const kOpSqrt = RegisterOpLabel("sqrt");
const char* const kOpAbs = RegisterOpLabel("abs");
const char* const kOpTanh = RegisterOpLabel("tanh");
const char* const kOpSigmoid = RegisterOpLabel("sigmoid");
const char* const kOpRelu = RegisterOpLabel("relu");
const char* const kOpPowScalar = RegisterOpLabel("pow_scalar");
const char* const kOpMatMul = RegisterOpLabel("matmul");
const char* const kOpSum = RegisterOpLabel("sum");
const char* const kOpSumAll = RegisterOpLabel("sum_all");
const char* const kOpSoftmax = RegisterOpLabel("softmax");
const char* const kOpReshape = RegisterOpLabel("reshape");
const char* const kOpPermute = RegisterOpLabel("permute");
const char* const kOpConcat = RegisterOpLabel("concat");
const char* const kOpSlice = RegisterOpLabel("slice");
const char* const kOpPad = RegisterOpLabel("pad");
const char* const kOpIndexSelect = RegisterOpLabel("index_select");
const char* const kOpHuberLoss = RegisterOpLabel("huber_loss");

// Accumulates `g` into input slot `slot` of `node`, reducing over any
// broadcast axes first.
void AccumulateReduced(Node* node, size_t slot, const Tensor& g) {
  Node* input = node->inputs[slot].get();
  if (!input->requires_grad) return;
  AccumulateGrad(input, ReduceTo(g, input->value.shape()));
}

}  // namespace

const std::vector<std::string>& RegisteredOpLabels() {
  return MutableOpLabels();
}

Variable Add(const Variable& a, const Variable& b) {
  AUTOCTS_TRACE_SCOPE(kOpAdd);
  return MakeNode(autocts::Add(a.value(), b.value()), {a, b}, [](Node* node) {
    AccumulateReduced(node, 0, node->grad);
    AccumulateReduced(node, 1, node->grad);
  }, kOpAdd);
}

Variable Sub(const Variable& a, const Variable& b) {
  AUTOCTS_TRACE_SCOPE(kOpSub);
  return MakeNode(autocts::Sub(a.value(), b.value()), {a, b}, [](Node* node) {
    AccumulateReduced(node, 0, node->grad);
    AccumulateReduced(node, 1, autocts::Neg(node->grad));
  }, kOpSub);
}

Variable Mul(const Variable& a, const Variable& b) {
  AUTOCTS_TRACE_SCOPE(kOpMul);
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeNode(autocts::Mul(va, vb), {a, b}, [va, vb](Node* node) {
    AccumulateReduced(node, 0, autocts::Mul(node->grad, vb));
    AccumulateReduced(node, 1, autocts::Mul(node->grad, va));
  }, kOpMul);
}

Variable Div(const Variable& a, const Variable& b) {
  AUTOCTS_TRACE_SCOPE(kOpDiv);
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeNode(autocts::Div(va, vb), {a, b}, [va, vb](Node* node) {
    AccumulateReduced(node, 0, autocts::Div(node->grad, vb));
    const Tensor db = autocts::Neg(autocts::Div(
        autocts::Mul(node->grad, va), autocts::Mul(vb, vb)));
    AccumulateReduced(node, 1, db);
  }, kOpDiv);
}

Variable AddScalar(const Variable& a, double value) {
  AUTOCTS_TRACE_SCOPE(kOpAddScalar);
  return MakeNode(autocts::AddScalar(a.value(), value), {a}, [](Node* node) {
    AccumulateReduced(node, 0, node->grad);
  }, kOpAddScalar);
}

Variable MulScalar(const Variable& a, double value) {
  AUTOCTS_TRACE_SCOPE(kOpMulScalar);
  return MakeNode(autocts::MulScalar(a.value(), value), {a},
                  [value](Node* node) {
                    AccumulateReduced(node, 0,
                                      autocts::MulScalar(node->grad, value));
                  }, kOpMulScalar);
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0); }

Variable Exp(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpExp);
  Tensor y = autocts::Exp(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    AccumulateReduced(node, 0, autocts::Mul(node->grad, y));
  }, kOpExp);
}

Variable Log(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpLog);
  Tensor va = a.value();
  return MakeNode(autocts::Log(va), {a}, [va](Node* node) {
    AccumulateReduced(node, 0, autocts::Div(node->grad, va));
  }, kOpLog);
}

Variable Sqrt(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpSqrt);
  Tensor y = autocts::Sqrt(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    const Tensor dx = autocts::Div(autocts::MulScalar(node->grad, 0.5), y);
    AccumulateReduced(node, 0, dx);
  }, kOpSqrt);
}

Variable Abs(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpAbs);
  Tensor va = a.value();
  return MakeNode(autocts::Abs(va), {a}, [va](Node* node) {
    const Tensor sign = autocts::Apply(
        va, [](double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, sign));
  }, kOpAbs);
}

Variable Tanh(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpTanh);
  Tensor y = autocts::Tanh(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    const Tensor one_minus_y2 =
        autocts::Apply(y, [](double v) { return 1.0 - v * v; });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, one_minus_y2));
  }, kOpTanh);
}

Variable Sigmoid(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpSigmoid);
  Tensor y = autocts::Sigmoid(a.value());
  return MakeNode(y, {a}, [y](Node* node) {
    const Tensor dy = autocts::Apply(y, [](double v) { return v * (1.0 - v); });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, dy));
  }, kOpSigmoid);
}

Variable Relu(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpRelu);
  Tensor va = a.value();
  return MakeNode(autocts::Relu(va), {a}, [va](Node* node) {
    const Tensor mask =
        autocts::Apply(va, [](double x) { return x > 0.0 ? 1.0 : 0.0; });
    AccumulateReduced(node, 0, autocts::Mul(node->grad, mask));
  }, kOpRelu);
}

Variable PowScalar(const Variable& a, double exponent) {
  AUTOCTS_TRACE_SCOPE(kOpPowScalar);
  Tensor va = a.value();
  return MakeNode(autocts::PowScalar(va, exponent), {a},
                  [va, exponent](Node* node) {
                    const Tensor dx = autocts::MulScalar(
                        autocts::PowScalar(va, exponent - 1.0), exponent);
                    AccumulateReduced(node, 0, autocts::Mul(node->grad, dx));
                  }, kOpPowScalar);
}

Variable MatMul(const Variable& a, const Variable& b) {
  AUTOCTS_TRACE_SCOPE(kOpMatMul);
  Tensor va = a.value();
  Tensor vb = b.value();
  return MakeNode(autocts::MatMul(va, vb), {a, b}, [va, vb](Node* node) {
    const Tensor bt = vb.Transpose(-2, -1);
    const Tensor at = va.Transpose(-2, -1);
    AccumulateReduced(node, 0, autocts::MatMul(node->grad, bt));
    AccumulateReduced(node, 1, autocts::MatMul(at, node->grad));
  }, kOpMatMul);
}

Variable Sum(const Variable& a, int64_t axis, bool keepdim) {
  AUTOCTS_TRACE_SCOPE(kOpSum);
  const Shape in_shape = a.shape();
  const int64_t rank = a.ndim();
  const int64_t norm_axis = axis < 0 ? axis + rank : axis;
  return MakeNode(autocts::Sum(a.value(), axis, keepdim), {a},
                  [in_shape, norm_axis, keepdim](Node* node) {
                    Tensor g = node->grad;
                    if (!keepdim) {
                      Shape keep = in_shape;
                      keep[norm_axis] = 1;
                      g = g.Reshape(keep);
                    }
                    AccumulateReduced(node, 0, BroadcastTo(g, in_shape));
                  }, kOpSum);
}

Variable Mean(const Variable& a, int64_t axis, bool keepdim) {
  const int64_t extent = a.dim(axis);
  return MulScalar(Sum(a, axis, keepdim), 1.0 / static_cast<double>(extent));
}

Variable SumAll(const Variable& a) {
  AUTOCTS_TRACE_SCOPE(kOpSumAll);
  const Shape in_shape = a.shape();
  return MakeNode(Tensor::Scalar(autocts::SumAll(a.value())), {a},
                  [in_shape](Node* node) {
                    AccumulateReduced(
                        node, 0, Tensor::Full(in_shape, node->grad.item()));
                  }, kOpSumAll);
}

Variable MeanAll(const Variable& a) {
  return MulScalar(SumAll(a), 1.0 / static_cast<double>(a.size()));
}

Variable Softmax(const Variable& a, int64_t axis) {
  return SoftmaxWithTemperature(a, axis, 1.0);
}

Variable SoftmaxWithTemperature(const Variable& a, int64_t axis, double tau) {
  AUTOCTS_TRACE_SCOPE(kOpSoftmax);
  AUTOCTS_CHECK_GT(tau, 0.0);
  const Tensor scaled = autocts::MulScalar(a.value(), 1.0 / tau);
  Tensor y = autocts::Softmax(scaled, axis);
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  return MakeNode(y, {a}, [y, norm_axis, tau](Node* node) {
    // dx = (1/tau) * y * (g - sum(g * y, axis))
    const Tensor gy = autocts::Mul(node->grad, y);
    const Tensor total = autocts::Sum(gy, norm_axis, /*keepdim=*/true);
    const Tensor dx = autocts::MulScalar(
        autocts::Mul(y, autocts::Sub(node->grad, total)), 1.0 / tau);
    AccumulateReduced(node, 0, dx);
  }, kOpSoftmax);
}

Variable Reshape(const Variable& a, Shape new_shape) {
  AUTOCTS_TRACE_SCOPE(kOpReshape);
  const Shape in_shape = a.shape();
  return MakeNode(a.value().Reshape(std::move(new_shape)), {a},
                  [in_shape](Node* node) {
                    AccumulateReduced(node, 0, node->grad.Reshape(in_shape));
                  }, kOpReshape);
}

Variable Permute(const Variable& a, const std::vector<int64_t>& perm) {
  AUTOCTS_TRACE_SCOPE(kOpPermute);
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  return MakeNode(a.value().Permute(perm), {a}, [inverse](Node* node) {
    AccumulateReduced(node, 0, node->grad.Permute(inverse));
  }, kOpPermute);
}

Variable Transpose(const Variable& a, int64_t axis_a, int64_t axis_b) {
  if (axis_a < 0) axis_a += a.ndim();
  if (axis_b < 0) axis_b += a.ndim();
  std::vector<int64_t> perm(a.ndim());
  for (int64_t i = 0; i < a.ndim(); ++i) perm[i] = i;
  std::swap(perm[axis_a], perm[axis_b]);
  return Permute(a, perm);
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  AUTOCTS_TRACE_SCOPE(kOpConcat);
  AUTOCTS_CHECK(!parts.empty());
  const int64_t norm_axis = axis < 0 ? axis + parts[0].ndim() : axis;
  std::vector<Tensor> values;
  std::vector<int64_t> extents;
  values.reserve(parts.size());
  for (const Variable& part : parts) {
    values.push_back(part.value());
    extents.push_back(part.dim(norm_axis));
  }
  return MakeNode(autocts::Concat(values, norm_axis), parts,
                  [norm_axis, extents](Node* node) {
                    int64_t offset = 0;
                    for (size_t i = 0; i < extents.size(); ++i) {
                      const Tensor piece = autocts::Slice(
                          node->grad, norm_axis, offset, extents[i]);
                      AccumulateReduced(node, i, piece);
                      offset += extents[i];
                    }
                  }, kOpConcat);
}

Variable Slice(const Variable& a, int64_t axis, int64_t start,
               int64_t length) {
  AUTOCTS_TRACE_SCOPE(kOpSlice);
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  const int64_t extent = a.dim(norm_axis);
  return MakeNode(
      autocts::Slice(a.value(), norm_axis, start, length), {a},
      [norm_axis, start, length, extent](Node* node) {
        AccumulateReduced(node, 0,
                          autocts::Pad(node->grad, norm_axis, start,
                                       extent - start - length));
      }, kOpSlice);
}

Variable Pad(const Variable& a, int64_t axis, int64_t before, int64_t after) {
  AUTOCTS_TRACE_SCOPE(kOpPad);
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  const int64_t extent = a.dim(norm_axis);
  return MakeNode(autocts::Pad(a.value(), norm_axis, before, after), {a},
                  [norm_axis, before, extent](Node* node) {
                    AccumulateReduced(
                        node, 0,
                        autocts::Slice(node->grad, norm_axis, before, extent));
                  }, kOpPad);
}

Variable IndexSelect(const Variable& a, int64_t axis,
                     const std::vector<int64_t>& indices) {
  AUTOCTS_TRACE_SCOPE(kOpIndexSelect);
  const int64_t norm_axis = axis < 0 ? axis + a.ndim() : axis;
  const Shape in_shape = a.shape();
  const int64_t mid = in_shape[norm_axis];
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < norm_axis; ++i) outer *= in_shape[i];
  for (int64_t i = norm_axis + 1; i < static_cast<int64_t>(in_shape.size());
       ++i) {
    inner *= in_shape[i];
  }
  Shape out_shape = in_shape;
  out_shape[norm_axis] = static_cast<int64_t>(indices.size());
  Tensor out = Tensor::Uninitialized(out_shape);
  const double* src = a.value().data();
  double* dst = out.data();
  const int64_t k = static_cast<int64_t>(indices.size());
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t idx = indices[j];
      AUTOCTS_CHECK_GE(idx, 0);
      AUTOCTS_CHECK_LT(idx, mid);
      std::copy(src + (o * mid + idx) * inner,
                src + (o * mid + idx + 1) * inner,
                dst + (o * k + j) * inner);
    }
  }
  return MakeNode(out, {a},
                  [in_shape, indices, outer, mid, inner, k](Node* node) {
                    // Zero-initialized: repeated indices accumulate.
                    Tensor grad_in(in_shape);
                    double* gdst = grad_in.data();
                    const double* gsrc = node->grad.data();
                    for (int64_t o = 0; o < outer; ++o) {
                      for (int64_t j = 0; j < k; ++j) {
                        const int64_t idx = indices[j];
                        const double* row = gsrc + (o * k + j) * inner;
                        double* target = gdst + (o * mid + idx) * inner;
                        for (int64_t i = 0; i < inner; ++i) target[i] += row[i];
                      }
                    }
                    AccumulateReduced(node, 0, grad_in);
                  }, kOpIndexSelect);
}

Variable Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable Detach(const Variable& a) {
  return Variable(a.value(), /*requires_grad=*/false);
}

Variable L1Loss(const Variable& prediction, const Variable& target) {
  AUTOCTS_CHECK(prediction.shape() == target.shape());
  return MeanAll(Abs(Sub(prediction, target)));
}

Variable MseLoss(const Variable& prediction, const Variable& target) {
  AUTOCTS_CHECK(prediction.shape() == target.shape());
  const Variable diff = Sub(prediction, target);
  return MeanAll(Mul(diff, diff));
}

Variable HuberLoss(const Variable& prediction, const Variable& target,
                   double delta) {
  AUTOCTS_TRACE_SCOPE(kOpHuberLoss);
  AUTOCTS_CHECK(prediction.shape() == target.shape());
  const Tensor diff = autocts::Sub(prediction.value(), target.value());
  // Elementwise derivative of the Huber loss, applied via a custom node to
  // avoid branching graph construction.
  Tensor loss = autocts::Apply(diff, [delta](double d) {
    const double a = std::abs(d);
    return a <= delta ? 0.5 * d * d : delta * (a - 0.5 * delta);
  });
  const double scale = 1.0 / static_cast<double>(diff.size());
  Tensor value = Tensor::Scalar(autocts::SumAll(loss) * scale);
  return MakeNode(
      value, {prediction, target},
      [diff, delta, scale](internal::Node* node) {
        const double g = node->grad.item() * scale;
        const Tensor dpred = autocts::Apply(diff, [delta, g](double d) {
          const double clipped = std::max(-delta, std::min(delta, d));
          return g * clipped;
        });
        AccumulateReduced(node, 0, dpred);
        AccumulateReduced(node, 1, autocts::Neg(dpred));
      }, kOpHuberLoss);
}

}  // namespace autocts::ag
