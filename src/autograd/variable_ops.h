// Differentiable operations on Variable, mirroring tensor/tensor_ops.h.
// All functions build tape nodes; gradients flow to inputs that require
// them. Binary ops broadcast like their tensor counterparts and reduce
// gradients back to the operand shapes.
#ifndef AUTOCTS_AUTOGRAD_VARIABLE_OPS_H_
#define AUTOCTS_AUTOGRAD_VARIABLE_OPS_H_

#include <string>
#include <vector>

#include "autograd/variable.h"

namespace autocts::ag {

// Every op label this translation unit passes to MakeNode, in registration
// order. Labels name tape nodes for the numeric-trace attribution, tracer
// spans (forward and backward), and the grad-check sweep in
// tests/autograd_test.cc — which fails when a registered label has no
// finite-difference entry, so a new labeled op cannot ship unchecked.
const std::vector<std::string>& RegisteredOpLabels();

// Elementwise binary (broadcasting).
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// Scalar variants.
Variable AddScalar(const Variable& a, double value);
Variable MulScalar(const Variable& a, double value);

// Elementwise unary.
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Abs(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Relu(const Variable& a);
// Elementwise power with constant exponent.
Variable PowScalar(const Variable& a, double exponent);

// Batched matrix multiply with broadcasting over leading dims.
Variable MatMul(const Variable& a, const Variable& b);

// Reductions.
Variable Sum(const Variable& a, int64_t axis, bool keepdim = false);
Variable Mean(const Variable& a, int64_t axis, bool keepdim = false);
// Reduce to a scalar (shape [1]).
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

// Numerically stable softmax along `axis`.
Variable Softmax(const Variable& a, int64_t axis);
// Softmax with a temperature divisor: softmax(a / tau) (Section 3.2.2 of
// the AutoCTS paper).
Variable SoftmaxWithTemperature(const Variable& a, int64_t axis, double tau);

// Shape manipulation.
Variable Reshape(const Variable& a, Shape new_shape);
Variable Permute(const Variable& a, const std::vector<int64_t>& perm);
Variable Transpose(const Variable& a, int64_t axis_a, int64_t axis_b);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t length);
Variable Pad(const Variable& a, int64_t axis, int64_t before, int64_t after);
// Selects `indices` (values in [0, dim(axis))) along `axis`; the backward
// pass scatter-adds. Indices are not differentiable.
Variable IndexSelect(const Variable& a, int64_t axis,
                     const std::vector<int64_t>& indices);

// A non-differentiable constant wrapper.
Variable Constant(Tensor value);
// Detaches from the tape (stops gradient flow).
Variable Detach(const Variable& a);

// Losses. Predictions and targets must have equal shapes.
Variable L1Loss(const Variable& prediction, const Variable& target);
Variable MseLoss(const Variable& prediction, const Variable& target);
// Huber-style loss used by several traffic-forecasting baselines.
Variable HuberLoss(const Variable& prediction, const Variable& target,
                   double delta = 1.0);

}  // namespace autocts::ag

#endif  // AUTOCTS_AUTOGRAD_VARIABLE_OPS_H_
