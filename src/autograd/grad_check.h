// Finite-difference gradient checking used by the property-based test suite.
#ifndef AUTOCTS_AUTOGRAD_GRAD_CHECK_H_
#define AUTOCTS_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace autocts {

struct GradCheckResult {
  bool ok = true;
  // Maximum |analytic - numeric| / max(1, |numeric|) over all coordinates.
  double max_relative_error = 0.0;
  std::string message;
};

// Verifies the analytic gradients of `fn` (a scalar-valued function of the
// given inputs) against central finite differences. Each input tensor is
// perturbed coordinate-by-coordinate.
//
// `fn` must rebuild its graph from the passed Variables on every call.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    const std::vector<Tensor>& inputs, double epsilon = 1e-5,
    double tolerance = 1e-6);

}  // namespace autocts

#endif  // AUTOCTS_AUTOGRAD_GRAD_CHECK_H_
