// A tiny line-oriented key/value text format used to (de)serialize small
// structured records such as genotypes, without a third-party dependency.
//
// Format: one "key = value" pair per line; values are free-form strings
// (no embedded newlines). Keys may repeat; lookup helpers return either the
// single value or all values in file order. Lines starting with '#' are
// comments.
#ifndef AUTOCTS_COMMON_TEXT_CODEC_H_
#define AUTOCTS_COMMON_TEXT_CODEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace autocts {

// Serializes key/value pairs to the text format.
class TextWriter {
 public:
  void Add(const std::string& key, const std::string& value);
  void AddInt(const std::string& key, int64_t value);
  void AddDouble(const std::string& key, double value);
  // Returns the accumulated document.
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Parses the text format produced by TextWriter.
class TextReader {
 public:
  // Parses `text`; returns InvalidArgument on a malformed line.
  static StatusOr<TextReader> Parse(const std::string& text);

  // Returns the value of the first entry with `key`, or NotFound.
  StatusOr<std::string> Get(const std::string& key) const;
  StatusOr<int64_t> GetInt(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;
  // All values recorded under `key`, in file order.
  std::vector<std::string> GetAll(const std::string& key) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Formats `value` as a C99 hexadecimal float ("%a", e.g. "0x1.999999999999ap-4"
// for 0.1). Unlike fixed-precision decimal output, the hex form is an exact
// image of the bits, so every finite double — including denormals — parses
// back bit-identically via ParseExactDouble/strtod.
std::string FormatExactDouble(double value);

// Parses a decimal or hexadecimal floating-point token. Returns false unless
// the entire token was consumed.
bool ParseExactDouble(const std::string& token, double* value);

// Splits `text` on `delimiter`, trimming surrounding whitespace per piece.
std::vector<std::string> SplitString(const std::string& text, char delimiter);

// Removes leading and trailing whitespace.
std::string StripWhitespace(const std::string& text);

}  // namespace autocts

#endif  // AUTOCTS_COMMON_TEXT_CODEC_H_
