// Signal-driven graceful shutdown for the CLI entry points.
//
// InstallShutdownHandlers(token) routes SIGINT/SIGTERM to a cooperative
// CancellationToken instead of killing the process mid-checkpoint:
//
//   1st signal  -> token->Cancel(kShutdown). The running loop (search /
//                  evaluate-topk) notices at its next step boundary, writes
//                  a final checkpoint, and the CLI exits with 128+signal
//                  (130 for SIGINT, 143 for SIGTERM) — the conventional
//                  "terminated by signal N" code, now meaning "terminated
//                  cleanly, resume from the checkpoint".
//   2nd signal  -> immediate _Exit(128+signal). The escape hatch when the
//                  graceful path is wedged; no atexit handlers run, and the
//                  atomic checkpoint protocol guarantees the last published
//                  generation is still loadable.
//
// Everything the handler touches is async-signal-safe: one token Cancel()
// (a lock-free atomic), one atomic signal-number store, and _Exit.
#ifndef AUTOCTS_COMMON_SIGNAL_HANDLER_H_
#define AUTOCTS_COMMON_SIGNAL_HANDLER_H_

#include "common/cancellation.h"

namespace autocts {

// Installs SIGINT/SIGTERM handlers targeting `token`, which must outlive
// them (the CLI uses a function-local static). Idempotent; re-installing
// with a new token retargets the handlers and forgets any prior signal.
void InstallShutdownHandlers(CancellationToken* token);

// Restores SIG_DFL for SIGINT/SIGTERM (tests).
void UninstallShutdownHandlers();

// Signal number observed by the handler, or 0 if none arrived.
int LastShutdownSignal();

// Conventional exit code for the observed signal: 128+signal, or 0 if no
// signal arrived. The CLI maps a kCancelled result through this so that
// "kill -TERM" yields 143 whether the shutdown was graceful or forced.
int ShutdownExitCode();

}  // namespace autocts

#endif  // AUTOCTS_COMMON_SIGNAL_HANDLER_H_
