// Assertion macros for invariant checking. The library does not use C++
// exceptions (Google style); violated invariants abort with a message.
#ifndef AUTOCTS_COMMON_MACROS_H_
#define AUTOCTS_COMMON_MACROS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace autocts::internal {

// Accumulates a failure message and aborts the process when destroyed.
// Used as the right-hand side of the CHECK* macros below so that callers
// can stream extra context: CHECK(ok) << "while doing X";
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace autocts::internal

#define AUTOCTS_CHECK(condition)                                       \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::autocts::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define AUTOCTS_CHECK_OP(lhs, rhs, op)                                    \
  if ((lhs)op(rhs)) {                                                     \
  } else /* NOLINT */                                                     \
    ::autocts::internal::CheckFailure(__FILE__, __LINE__,                 \
                                      #lhs " " #op " " #rhs)              \
        << "(" << (lhs) << " vs " << (rhs) << ") "

#define AUTOCTS_CHECK_EQ(lhs, rhs) AUTOCTS_CHECK_OP(lhs, rhs, ==)
#define AUTOCTS_CHECK_NE(lhs, rhs) AUTOCTS_CHECK_OP(lhs, rhs, !=)
#define AUTOCTS_CHECK_LT(lhs, rhs) AUTOCTS_CHECK_OP(lhs, rhs, <)
#define AUTOCTS_CHECK_LE(lhs, rhs) AUTOCTS_CHECK_OP(lhs, rhs, <=)
#define AUTOCTS_CHECK_GT(lhs, rhs) AUTOCTS_CHECK_OP(lhs, rhs, >)
#define AUTOCTS_CHECK_GE(lhs, rhs) AUTOCTS_CHECK_OP(lhs, rhs, >=)

#endif  // AUTOCTS_COMMON_MACROS_H_
