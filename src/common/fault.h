// Deterministic fault injection and retry policies for the I/O layer.
//
// Long unattended searches must survive infrastructure hiccups — a full
// disk, a flaky filesystem, a short write — not just numerical ones. This
// module provides the two halves of that resilience story:
//
//  * A *fault plan*: a deterministic, env/CLI-configurable schedule of
//    injected I/O failures, e.g.
//
//        AUTOCTS_FAULTS="write:ENOSPC@3,rename:EIO@1"
//
//    "the 3rd write fails with ENOSPC, the 1st rename fails with EIO".
//    Every fault-injectable primitive in common/file_io.cc calls
//    fault::Consume(op) at its seam; when the per-op call counter matches a
//    scheduled ordinal the primitive fails exactly as the real syscall
//    would (errno set, partial state cleaned up). Because the schedule is a
//    pure function of call ordinals — never of time or threads — a test
//    that injects ENOSPC at write 3 fails at write 3 on every machine.
//
//    Grammar (comma-separated specs):
//        <op>:<kind>@<ordinal>[x<count>]
//      op      write | open | close | rename | read | unlink
//      kind    a symbolic errno (ENOSPC, EIO, EDQUOT, EROFS, EACCES,
//              EMFILE, ENOENT) or SHORT (write only: a short write that
//              persists a truncated prefix before failing)
//      ordinal 1-based index of the failing call, counted per op since the
//              plan was installed
//      count   number of consecutive calls to fail (default 1), so
//              "write:ENOSPC@1x2" exercises fail-fail-succeed retry paths
//
//  * A *retry policy*: bounded attempts with deterministic exponential
//    backoff. The sleeper is FakeClock-compatible: while a FakeClock
//    (common/stopwatch.h) is installed, backoff advances virtual time
//    instead of blocking, so retry tests assert exact backoff sequences
//    without real sleeps. RetryCall() wraps any Status-returning operation;
//    AtomicWriteFileWithRetry() is the canonical checkpoint-write wrapper.
//
// Thread safety: the installed plan and the I/O stats counters are guarded
// for concurrent access (eval-scheduler workers and the driver thread all
// write checkpoints/sinks). Library code never installs a plan on its own;
// only the CLI (--faults / AUTOCTS_FAULTS) and tests do.
#ifndef AUTOCTS_COMMON_FAULT_H_
#define AUTOCTS_COMMON_FAULT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace autocts::fault {

// One scheduled failure window for one operation.
struct FaultSpec {
  std::string op;           // write | open | close | rename | read | unlink
  int error_number = 0;     // errno to inject (0 for SHORT)
  bool short_write = false; // SHORT kind: persist a prefix, then fail
  int64_t first_call = 1;   // 1-based ordinal of the first failing call
  int64_t count = 1;        // consecutive calls to fail
};

struct FaultPlan {
  std::vector<FaultSpec> faults;
  bool empty() const { return faults.empty(); }
};

// Parses the AUTOCTS_FAULTS grammar documented above. An empty string
// yields an empty plan.
StatusOr<FaultPlan> ParseFaultPlan(const std::string& text);

// Renders a plan back to its grammar (for logging; round-trips Parse).
std::string FormatFaultPlan(const FaultPlan& plan);

// Installs `plan` as the process-wide schedule, resetting every per-op call
// counter. An empty plan is equivalent to ClearFaultPlan().
void InstallFaultPlan(FaultPlan plan);
void ClearFaultPlan();
bool FaultPlanActive();

// Reads AUTOCTS_FAULTS and installs the parsed plan. Unset/empty env is a
// no-op returning Ok; a malformed spec returns the parse error (and
// installs nothing).
Status InstallFaultPlanFromEnv();

// The injection seam called by the I/O primitives: advances op's call
// counter and returns the fault scheduled for this call, if any. Returns
// nullopt always when no plan is installed (one relaxed atomic load — the
// no-fault hot path stays negligible, see bench/bench_fault_overhead.cc).
struct InjectedFault {
  int error_number = 0;
  bool short_write = false;
};
std::optional<InjectedFault> Consume(const char* op);

// RAII plan installer for test scopes.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan);
  explicit ScopedFaultPlan(const std::string& spec);  // CHECK-fails on parse error
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// ---------------------------------------------------------------------------
// Process-wide I/O resilience stats (observability + tests; the metrics
// schemas record their own per-run registry counters from RetryOutcome).
// ---------------------------------------------------------------------------

struct IoStats {
  int64_t injected_faults = 0;  // faults fired by the plan
  int64_t retries = 0;          // RetryCall re-attempts after a failure
  int64_t failures = 0;         // RetryCall gave up (budget exhausted)
};
IoStats GetIoStats();
void ResetIoStats();

// ---------------------------------------------------------------------------
// Retry policy.
// ---------------------------------------------------------------------------

struct RetryPolicy {
  // Total attempts including the first (1 = no retry). Values < 1 behave
  // as 1.
  int64_t max_attempts = 3;
  // Deterministic exponential backoff before attempt k (k >= 2):
  //   min(initial * multiplier^(k-2), max) seconds.
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
  // Sleep seam. Default (unset): advance the FakeClock when one is
  // installed, otherwise block in std::this_thread::sleep_for. Tests
  // install a recorder to assert the exact backoff sequence.
  std::function<void(double seconds)> sleeper;
};

// Backoff before attempt `attempt` (2-based; attempt 1 never sleeps).
double BackoffSeconds(const RetryPolicy& policy, int64_t attempt);

// Invokes the policy's sleeper (or the FakeClock-aware default).
void SleepForBackoff(const RetryPolicy& policy, double seconds);

struct RetryOutcome {
  Status status = Status::Ok();  // last attempt's status
  int64_t attempts = 1;          // attempts actually made
  int64_t retries() const { return attempts - 1; }
};

// Runs `fn` under the policy: returns on the first Ok (or non-retryable)
// status, otherwise backs off and retries until the attempt budget is
// exhausted. Retries are counted into the process IoStats; `what` names
// the operation in the retry-warning log lines.
RetryOutcome RetryCall(const RetryPolicy& policy, const std::string& what,
                       const std::function<Status()>& fn);

// I/O statuses worth retrying: transient filesystem failures (kInternal,
// kUnavailable). Malformed input (kInvalidArgument), missing files
// (kNotFound), and logic errors are not — retrying cannot fix them.
bool IsRetryableIoError(const Status& status);

// AtomicWriteFile (common/file_io.h) under `policy`. On final failure the
// target file and its ".prev" generation are guaranteed untouched (the
// atomic protocol fails before publish). `outcome` (optional) reports the
// attempt count for metrics.
Status AtomicWriteFileWithRetry(const std::string& path,
                                const std::string& content,
                                bool keep_previous, const RetryPolicy& policy,
                                RetryOutcome* outcome = nullptr);

}  // namespace autocts::fault

#endif  // AUTOCTS_COMMON_FAULT_H_
