#include "common/fault.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/text_codec.h"

namespace autocts::fault {
namespace {

// Symbolic errno table for the plan grammar. Small and explicit: only the
// failures a filesystem can realistically hand back to checkpoint I/O.
struct ErrnoName {
  const char* name;
  int value;
};
constexpr ErrnoName kErrnoNames[] = {
    {"ENOSPC", ENOSPC}, {"EIO", EIO},       {"EDQUOT", EDQUOT},
    {"EROFS", EROFS},   {"EACCES", EACCES}, {"EMFILE", EMFILE},
    {"ENOENT", ENOENT},
};

const char* ErrnoToName(int value) {
  for (const ErrnoName& entry : kErrnoNames) {
    if (entry.value == value) return entry.name;
  }
  return nullptr;
}

bool IsKnownOp(const std::string& op) {
  return op == "write" || op == "open" || op == "close" || op == "rename" ||
         op == "read" || op == "unlink";
}

// Installed plan + per-op call counters, guarded by one mutex. `g_active`
// is the lock-free fast-path guard: the no-fault path pays one relaxed
// load and nothing else.
std::atomic<bool> g_active{false};
std::mutex g_mutex;
FaultPlan g_plan;                          // guarded by g_mutex
std::map<std::string, int64_t> g_counters; // guarded by g_mutex

std::atomic<int64_t> g_injected{0};
std::atomic<int64_t> g_retries{0};
std::atomic<int64_t> g_failures{0};

}  // namespace

StatusOr<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  for (const std::string& raw : SplitString(text, ',')) {
    const std::string spec = StripWhitespace(raw);
    if (spec.empty()) continue;
    const auto malformed = [&spec](const std::string& why) {
      return Status::InvalidArgument("malformed fault spec \"" + spec +
                                     "\": " + why +
                                     " (grammar: op:KIND@ordinal[xcount])");
    };
    const size_t colon = spec.find(':');
    const size_t at = spec.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      return malformed("expected op:KIND@ordinal");
    }
    FaultSpec fault;
    fault.op = StripWhitespace(spec.substr(0, colon));
    if (!IsKnownOp(fault.op)) {
      return malformed("unknown op \"" + fault.op +
                       "\" (write|open|close|rename|read|unlink)");
    }
    const std::string kind =
        StripWhitespace(spec.substr(colon + 1, at - colon - 1));
    if (kind == "SHORT") {
      if (fault.op != "write") return malformed("SHORT applies to write only");
      fault.short_write = true;
      fault.error_number = EIO;  // what a real short write surfaces as
    } else {
      fault.error_number = 0;
      for (const ErrnoName& entry : kErrnoNames) {
        if (kind == entry.name) {
          fault.error_number = entry.value;
          break;
        }
      }
      if (fault.error_number == 0) {
        return malformed("unknown kind \"" + kind +
                         "\" (symbolic errno or SHORT)");
      }
    }
    std::string ordinal_text = StripWhitespace(spec.substr(at + 1));
    const size_t x = ordinal_text.find('x');
    if (x != std::string::npos) {
      char* end = nullptr;
      const std::string count_text = ordinal_text.substr(x + 1);
      fault.count = std::strtoll(count_text.c_str(), &end, 10);
      if (end == count_text.c_str() || *end != '\0' || fault.count < 1) {
        return malformed("bad repeat count \"" + count_text + "\"");
      }
      ordinal_text = ordinal_text.substr(0, x);
    }
    char* end = nullptr;
    fault.first_call = std::strtoll(ordinal_text.c_str(), &end, 10);
    if (end == ordinal_text.c_str() || *end != '\0' || fault.first_call < 1) {
      return malformed("bad ordinal \"" + ordinal_text + "\"");
    }
    plan.faults.push_back(std::move(fault));
  }
  return plan;
}

std::string FormatFaultPlan(const FaultPlan& plan) {
  std::string out;
  for (const FaultSpec& fault : plan.faults) {
    if (!out.empty()) out += ",";
    out += fault.op + ":";
    const char* name =
        fault.short_write ? "SHORT" : ErrnoToName(fault.error_number);
    out += name != nullptr ? name : "EIO";
    out += "@" + std::to_string(fault.first_call);
    if (fault.count != 1) out += "x" + std::to_string(fault.count);
  }
  return out;
}

void InstallFaultPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_counters.clear();
  const bool active = !plan.empty();
  g_plan = std::move(plan);
  g_active.store(active, std::memory_order_release);
}

void ClearFaultPlan() { InstallFaultPlan(FaultPlan()); }

bool FaultPlanActive() { return g_active.load(std::memory_order_acquire); }

Status InstallFaultPlanFromEnv() {
  const char* env = std::getenv("AUTOCTS_FAULTS");
  if (env == nullptr || *env == '\0') return Status::Ok();
  StatusOr<FaultPlan> plan = ParseFaultPlan(env);
  if (!plan.ok()) {
    return Status::InvalidArgument("AUTOCTS_FAULTS: " +
                                   plan.status().message());
  }
  AUTOCTS_LOG(WARNING) << "fault injection enabled from AUTOCTS_FAULTS: "
                       << FormatFaultPlan(plan.value());
  InstallFaultPlan(std::move(plan).value());
  return Status::Ok();
}

std::optional<InjectedFault> Consume(const char* op) {
  if (!g_active.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_plan.empty()) return std::nullopt;
  const int64_t call = ++g_counters[op];
  for (const FaultSpec& fault : g_plan.faults) {
    if (fault.op != op) continue;
    if (call >= fault.first_call && call < fault.first_call + fault.count) {
      g_injected.fetch_add(1, std::memory_order_relaxed);
      InjectedFault injected;
      injected.error_number = fault.error_number;
      injected.short_write = fault.short_write;
      return injected;
    }
  }
  return std::nullopt;
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) {
  InstallFaultPlan(std::move(plan));
}

ScopedFaultPlan::ScopedFaultPlan(const std::string& spec) {
  StatusOr<FaultPlan> plan = ParseFaultPlan(spec);
  AUTOCTS_CHECK(plan.ok()) << plan.status().ToString();
  InstallFaultPlan(std::move(plan).value());
}

ScopedFaultPlan::~ScopedFaultPlan() { ClearFaultPlan(); }

IoStats GetIoStats() {
  IoStats stats;
  stats.injected_faults = g_injected.load(std::memory_order_relaxed);
  stats.retries = g_retries.load(std::memory_order_relaxed);
  stats.failures = g_failures.load(std::memory_order_relaxed);
  return stats;
}

void ResetIoStats() {
  g_injected.store(0, std::memory_order_relaxed);
  g_retries.store(0, std::memory_order_relaxed);
  g_failures.store(0, std::memory_order_relaxed);
}

double BackoffSeconds(const RetryPolicy& policy, int64_t attempt) {
  if (attempt <= 1) return 0.0;
  double backoff = policy.initial_backoff_seconds;
  for (int64_t k = 2; k < attempt; ++k) backoff *= policy.backoff_multiplier;
  if (backoff > policy.max_backoff_seconds) {
    backoff = policy.max_backoff_seconds;
  }
  return backoff;
}

void SleepForBackoff(const RetryPolicy& policy, double seconds) {
  if (seconds <= 0.0) return;
  if (policy.sleeper) {
    policy.sleeper(seconds);
    return;
  }
  if (FakeClock::Installed()) {
    FakeClock::Advance(static_cast<int64_t>(seconds * 1e9));
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

bool IsRetryableIoError(const Status& status) {
  if (status.ok()) return false;
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kUnavailable;
}

RetryOutcome RetryCall(const RetryPolicy& policy, const std::string& what,
                       const std::function<Status()>& fn) {
  const int64_t max_attempts = std::max<int64_t>(1, policy.max_attempts);
  RetryOutcome outcome;
  for (int64_t attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    outcome.status = fn();
    if (outcome.status.ok() || !IsRetryableIoError(outcome.status)) {
      return outcome;
    }
    if (attempt >= max_attempts) {
      g_failures.fetch_add(1, std::memory_order_relaxed);
      return outcome;
    }
    const double backoff = BackoffSeconds(policy, attempt + 1);
    g_retries.fetch_add(1, std::memory_order_relaxed);
    AUTOCTS_LOG(WARNING) << what << " failed (attempt " << attempt << "/"
                         << max_attempts << "): "
                         << outcome.status.ToString() << "; retrying in "
                         << backoff << "s";
    SleepForBackoff(policy, backoff);
  }
}

Status AtomicWriteFileWithRetry(const std::string& path,
                                const std::string& content,
                                bool keep_previous, const RetryPolicy& policy,
                                RetryOutcome* outcome) {
  RetryOutcome result =
      RetryCall(policy, "atomic write of " + path,
                [&] { return AtomicWriteFile(path, content, keep_previous); });
  if (outcome != nullptr) *outcome = result;
  return result.status;
}

}  // namespace autocts::fault
