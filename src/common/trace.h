// Low-overhead scoped-span tracer.
//
// Usage:
//   trace::Start();
//   {
//     AUTOCTS_TRACE_SCOPE("search");
//     ...  // nested AUTOCTS_TRACE_SCOPE calls, any thread
//   }
//   trace::Stop();
//   trace::WriteChromeTrace("search.trace.json");   // chrome://tracing
//   trace::AggregateOps();                          // per-op table
//
// Design constraints, in priority order:
//
//  1. Bit-transparency. Instrumentation must never change what the
//     instrumented program computes: the tracer only reads the steady
//     clock and writes to its own buffers. It never allocates through,
//     reads from, or synchronizes with the code under measurement, so an
//     enabled run produces bit-identical results to a disabled run.
//  2. Near-zero cost when disabled. A disabled `Scope` is one relaxed
//     atomic load and two untaken branches; span names are string
//     literals, so no formatting or allocation happens at the call site.
//  3. Thread safety without hot-path locks. Each thread records into its
//     own buffer, found via a `thread_local` pointer. Buffers register
//     themselves in a global list on first use; a per-buffer mutex is
//     taken only by that thread's record path and by the (rare) drain, so
//     there is no cross-thread contention during steady-state tracing and
//     the drain is clean under ThreadSanitizer.
//
// Each buffer holds (a) a bounded ring of SpanEvents — when full, the
// oldest events are overwritten and counted in DroppedEvents(), keeping
// the most recent window of activity for chrome://tracing — and (b) exact
// per-op aggregates (call count, total and self nanoseconds) that are
// never dropped, so the per-op table and the coverage ratio stay accurate
// even when the ring wraps.
//
// "Self" time is a span's duration minus the summed durations of its
// direct children on the same thread. Self times therefore telescope: for
// any span tree, the root's duration equals the sum of self times over
// the tree, which is what makes "fraction of the root accounted for by
// named leaf work" (Coverage) well-defined.
#ifndef AUTOCTS_COMMON_TRACE_H_
#define AUTOCTS_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace autocts {
namespace trace {

// One completed span. `name` points at the string literal given to the
// Scope; it is stable for the life of the process.
struct SpanEvent {
  const char* name = nullptr;
  int32_t tid = 0;       // tracer-assigned dense thread id, 0 = first seen
  int32_t depth = 0;     // nesting depth on its thread at open time
  bool backward = false; // autograd backward-pass span
  int64_t start_ns = 0;  // SteadyNowNanos() at open
  int64_t duration_ns = 0;
  int64_t self_ns = 0;   // duration minus direct children's durations
};

// Per-op aggregate over all threads, exact even when the event ring wraps.
struct OpStat {
  std::string name;  // span label, suffixed ".bwd" for backward spans
  int64_t calls = 0;
  int64_t total_ns = 0;  // inclusive (sum of durations)
  int64_t self_ns = 0;   // exclusive (sum of self times)
};

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// True between Start() and Stop(). Scopes opened while inactive record
// nothing (and cost almost nothing).
inline bool Active() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Clears all previously collected events/aggregates and enables
// collection. Must not be called while spans are open.
void Start();

// Disables collection. Collected data stays readable until the next
// Start(). Must not be called while spans are open.
void Stop();

// Sets the per-thread event-ring capacity (clamped to [16, 1<<22]).
// Takes effect at the next Start(). Aggregates are unaffected.
void SetRingCapacity(int64_t capacity);

// Events dropped (overwritten by ring wrap-around) since Start(), summed
// over all threads.
int64_t DroppedEvents();

// Events currently held, summed over all threads.
int64_t EventCount();

// All retained events, merged across threads and sorted by start time
// (ties broken by tid, then descending duration so parents precede
// children). Call after Stop().
std::vector<SpanEvent> CollectEvents();

// Exact per-op aggregates, sorted by descending self time. Backward spans
// aggregate separately under "<name>.bwd".
std::vector<OpStat> AggregateOps();

// Fraction of the named root span's inclusive time attributed to its
// descendants (1 - root_self/root_total). This is the "per-op table
// accounts for X% of wall time" number: everything outside the root's
// self time is, by the telescoping-self property, attributed to some
// named span. Returns 0 if the root was never recorded.
double Coverage(const char* root_name);

// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
// relative to Start()). Load via chrome://tracing or https://ui.perfetto.dev.
std::string ToChromeTracingJson();

// Per-op aggregate table as CSV: op,calls,total_ns,self_ns.
std::string AggregateOpsCsv();

// Writes ToChromeTracingJson() to `path` atomically. Returns false (and
// leaves any existing file intact) on I/O failure.
bool WriteChromeTrace(const std::string& path);

// Writes AggregateOpsCsv() to `path` atomically.
bool WriteAggregateCsv(const std::string& path);

// RAII span. Records [construction, destruction) on the current thread
// when tracing is active for the whole interval. `name` must be a string
// literal (or otherwise outlive the process); the pointer itself is the
// aggregation key on the hot path.
class Scope {
 public:
  explicit Scope(const char* name, bool backward = false);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
  int32_t depth_;
  bool backward_;
  bool active_;
};

}  // namespace trace
}  // namespace autocts

// Spans a named scope when tracing is active. `name` must be a string
// literal or a pointer with process lifetime.
#define AUTOCTS_TRACE_CONCAT_IMPL(a, b) a##b
#define AUTOCTS_TRACE_CONCAT(a, b) AUTOCTS_TRACE_CONCAT_IMPL(a, b)
#define AUTOCTS_TRACE_SCOPE(name)                                    \
  ::autocts::trace::Scope AUTOCTS_TRACE_CONCAT(autocts_trace_scope_, \
                                               __LINE__)(name)

#endif  // AUTOCTS_COMMON_TRACE_H_
