#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace autocts {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::UniformInt(int64_t n) {
  AUTOCTS_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return static_cast<int64_t>(value % un);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> result(n);
  for (int64_t i = 0; i < n; ++i) result[i] = i;
  Shuffle(&result);
  return result;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace autocts
