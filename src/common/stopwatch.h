// Wall-clock stopwatch for timing experiments and benches.
#ifndef AUTOCTS_COMMON_STOPWATCH_H_
#define AUTOCTS_COMMON_STOPWATCH_H_

#include <chrono>

namespace autocts {

// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time in seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace autocts

#endif  // AUTOCTS_COMMON_STOPWATCH_H_
