// Wall-clock stopwatch for timing experiments and benches.
//
// All timing in the repo goes through the single monotonic source below:
// std::chrono::steady_clock, enforced at compile time. system_clock (or
// high_resolution_clock, which may alias it) is never acceptable here — a
// wall-clock NTP/DST adjustment mid-measurement would yield negative or
// wildly wrong durations, and the tracer (common/trace.h) requires
// monotonically non-decreasing timestamps to nest spans correctly.
#ifndef AUTOCTS_COMMON_STOPWATCH_H_
#define AUTOCTS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace autocts {

// The one monotonic clock used by Stopwatch and the span tracer.
using SteadyClock = std::chrono::steady_clock;
static_assert(SteadyClock::is_steady,
              "timing requires a monotonic (steady) clock");

// Nanoseconds since the steady clock's (arbitrary, process-stable) epoch.
// Non-decreasing across calls on every thread.
inline int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(SteadyNowNanos()) {}

  // Restarts the measurement.
  void Reset() { start_ns_ = SteadyNowNanos(); }

  // Elapsed nanoseconds since construction or the last Reset().
  int64_t Nanos() const { return SteadyNowNanos() - start_ns_; }

  // Elapsed time in seconds.
  double Seconds() const { return static_cast<double>(Nanos()) * 1e-9; }

  // Elapsed time in milliseconds.
  double Millis() const { return static_cast<double>(Nanos()) * 1e-6; }

 private:
  int64_t start_ns_;
};

}  // namespace autocts

#endif  // AUTOCTS_COMMON_STOPWATCH_H_
