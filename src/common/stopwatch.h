// Wall-clock stopwatch for timing experiments and benches.
//
// All timing in the repo goes through the single monotonic source below:
// std::chrono::steady_clock, enforced at compile time. system_clock (or
// high_resolution_clock, which may alias it) is never acceptable here — a
// wall-clock NTP/DST adjustment mid-measurement would yield negative or
// wildly wrong durations, and the tracer (common/trace.h) requires
// monotonically non-decreasing timestamps to nest spans correctly.
#ifndef AUTOCTS_COMMON_STOPWATCH_H_
#define AUTOCTS_COMMON_STOPWATCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace autocts {

// The one monotonic clock used by Stopwatch and the span tracer.
using SteadyClock = std::chrono::steady_clock;
static_assert(SteadyClock::is_steady,
              "timing requires a monotonic (steady) clock");

namespace internal {
// Fake-clock seam (tests only; see FakeClock below). `g_fake_clock_active`
// is checked with one relaxed load on every SteadyNowNanos() call, which
// is in the measurement noise of the real clock read it guards.
inline std::atomic<bool> g_fake_clock_active{false};
inline std::atomic<int64_t> g_fake_clock_nanos{0};
}  // namespace internal

// Nanoseconds since the steady clock's (arbitrary, process-stable) epoch.
// Non-decreasing across calls on every thread. While a FakeClock is
// installed, returns the fake time instead (still non-decreasing: the fake
// clock only ever advances).
inline int64_t SteadyNowNanos() {
  if (internal::g_fake_clock_active.load(std::memory_order_relaxed)) {
    return internal::g_fake_clock_nanos.load(std::memory_order_relaxed);
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

// Test-only deterministic clock source. While installed, every
// SteadyNowNanos() reader in the process — Stopwatch, the span tracer, the
// wall/ metric gauges — sees a manually-advanced virtual time, so timing
// assertions can check exact values instead of sleeping and hoping the
// scheduler cooperates. Advance() is atomic and may be called from any
// thread (e.g. an eval-scheduler worker hook). Never installed by library
// code.
class FakeClock {
 public:
  // Installs the fake clock seeded at `start_nanos`. Nesting is not
  // supported; install once per test scope.
  static void Install(int64_t start_nanos = 0) {
    internal::g_fake_clock_nanos.store(start_nanos,
                                       std::memory_order_relaxed);
    internal::g_fake_clock_active.store(true, std::memory_order_relaxed);
  }

  // Advances the virtual time; returns the new now. `delta_nanos` must be
  // non-negative to preserve the monotonic-clock contract.
  static int64_t Advance(int64_t delta_nanos) {
    return internal::g_fake_clock_nanos.fetch_add(
               delta_nanos, std::memory_order_relaxed) +
           delta_nanos;
  }

  // Restores the real steady clock.
  static void Uninstall() {
    internal::g_fake_clock_active.store(false, std::memory_order_relaxed);
  }

  static bool Installed() {
    return internal::g_fake_clock_active.load(std::memory_order_relaxed);
  }
};

// RAII installer for test scopes.
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(int64_t start_nanos = 0) {
    FakeClock::Install(start_nanos);
  }
  ~ScopedFakeClock() { FakeClock::Uninstall(); }
  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;
};

// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(SteadyNowNanos()) {}

  // Restarts the measurement.
  void Reset() { start_ns_ = SteadyNowNanos(); }

  // Elapsed nanoseconds since construction or the last Reset().
  int64_t Nanos() const { return SteadyNowNanos() - start_ns_; }

  // Elapsed time in seconds.
  double Seconds() const { return static_cast<double>(Nanos()) * 1e-9; }

  // Elapsed time in milliseconds.
  double Millis() const { return static_cast<double>(Nanos()) * 1e-6; }

 private:
  int64_t start_ns_;
};

}  // namespace autocts

#endif  // AUTOCTS_COMMON_STOPWATCH_H_
