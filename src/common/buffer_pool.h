// Size-bucketed, thread-safe recycling pool for tensor storage.
//
// Motivation: the supernet search inner loop materializes thousands of
// temporary tensors per step (op outputs, backward scratch, gradient
// accumulators), and heap-allocating every one caps the gains of the
// parallel kernels. The pool recycles whole storage blocks — the payload
// vector *and* its intrusive refcount header — through per-size-class free
// lists, so a warmed-up search step performs no tensor-storage heap
// allocations at all (bench/bench_alloc.cc measures the reduction).
//
// Determinism contract: recycling changes only memory addresses, never
// values. Acquire() returns zero-filled storage, exactly like a fresh
// allocation; AcquireUninitialized() is reserved for callers that provably
// overwrite every element before any read (the fully-writing kernels in
// tensor/tensor_ops.cc). Pool-on and pool-off runs are therefore
// bit-identical; tests/buffer_pool_test.cc asserts this over an entire
// joint search at 1 and 4 threads, and tools/tier1_verify.sh re-runs the
// key suites with AUTOCTS_TENSOR_POOL=0 so the fallback path stays tested.
//
// Thread safety: free lists are guarded by per-bucket mutexes and block
// refcounts are atomic, so handles may be copied and released from worker
// threads. The stats are deterministic when acquisition order is (all
// current callers acquire on the driver thread).
//
// Kill switch: AUTOCTS_TENSOR_POOL=0 (env, read once at first use) or
// BufferPool::Global().SetEnabled(false) disables recycling. Every
// acquisition then heap-allocates and every release frees immediately,
// restoring allocator-level debugging precision (e.g. ASan use-after-free
// on tensor storage).
#ifndef AUTOCTS_COMMON_BUFFER_POOL_H_
#define AUTOCTS_COMMON_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace autocts {

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace internal {

// One storage block: the payload plus the intrusive refcount its handles
// share. `bucket` >= 0 names the pool size class the block returns to on
// final release; bucket < 0 marks an unpooled block (deleted on release):
// pool disabled, size above the largest bucket, or adopted caller storage.
struct BufferBlock {
  std::vector<double> storage;
  std::atomic<int64_t> refs{1};
  int32_t bucket = -1;
};

// Hands `block` back to the pool free list (or deletes it when unpooled).
// Out of line so BufferRef's inline fast paths stay small.
void ReleaseBufferBlock(BufferBlock* block);

}  // namespace internal

// Intrusive shared handle to a BufferBlock; Tensor's storage pointer.
// Copying bumps the atomic refcount (no allocation); destroying the last
// handle returns the block to the pool. A default-constructed BufferRef is
// null (Tensor's "undefined" state).
class BufferRef {
 public:
  BufferRef() = default;
  // Takes over the initial reference the pool set on `block`.
  explicit BufferRef(internal::BufferBlock* block) : block_(block) {}

  BufferRef(const BufferRef& other) : block_(other.block_) {
    if (block_ != nullptr) {
      block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  BufferRef(BufferRef&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  BufferRef& operator=(const BufferRef& other) {
    BufferRef copy(other);
    std::swap(block_, copy.block_);
    return *this;
  }
  BufferRef& operator=(BufferRef&& other) noexcept {
    std::swap(block_, other.block_);
    return *this;
  }
  ~BufferRef() { Reset(); }

  void Reset() {
    if (block_ != nullptr &&
        block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      internal::ReleaseBufferBlock(block_);
    }
    block_ = nullptr;
  }

  bool defined() const { return block_ != nullptr; }
  double* data() const { return block_->storage.data(); }
  // True when both handles share the same block (Reshape views do).
  bool SharesStorageWith(const BufferRef& other) const {
    return block_ != nullptr && block_ == other.block_;
  }

 private:
  internal::BufferBlock* block_ = nullptr;
};

// Point-in-time pool counters (all cumulative except outstanding/free/
// cached_bytes, which are current levels).
struct BufferPoolBucketStats {
  int64_t capacity = 0;  // elements per block in this bucket
  int64_t hits = 0;      // acquisitions served from the free list
  int64_t misses = 0;    // acquisitions that heap-allocated a new block
  int64_t returns = 0;   // releases recycled into the free list
  int64_t drops = 0;     // releases freed because the free list was full
  int64_t outstanding = 0;  // blocks currently held by live handles
  int64_t free = 0;         // blocks currently parked in the free list
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t returns = 0;
  int64_t drops = 0;
  // Unpooled acquisitions: pool disabled, size above the largest bucket,
  // or adopted caller storage. Each one is a heap allocation.
  int64_t bypass = 0;
  int64_t outstanding = 0;
  int64_t cached_bytes = 0;  // bytes parked across all free lists
  std::vector<BufferPoolBucketStats> buckets;  // kNumBuckets entries

  // Tensor-storage heap allocations = misses + bypass.
  int64_t allocations() const { return misses + bypass; }
  // hits / (hits + misses); 0 before any pooled acquisition.
  double hit_rate() const;
};

class BufferPool {
 public:
  // Buckets are powers of two from 2^kMinShift to 2^kMaxShift elements
  // (512 B to 128 MiB of doubles); larger requests bypass the pool.
  static constexpr int kMinShift = 6;
  static constexpr int kMaxShift = 24;
  static constexpr int kNumBuckets = kMaxShift - kMinShift + 1;
  // Free-list depth per bucket: bounded by bytes, not block count, so the
  // small buckets can absorb an entire autograd tape (thousands of live
  // temporaries at peak) without thrashing. A LIFO free list caches at most
  // the peak simultaneous usage — memory the step needed anyway — so a
  // generous byte budget does not raise peak RSS; Trim() reclaims after a
  // one-off large phase.
  static constexpr int64_t kMaxFreeBytesPerBucket = int64_t{128} << 20;
  static constexpr int64_t kMinFreePerBucket = 8;
  static int64_t MaxFreeBlocks(int bucket) {
    const int64_t by_bytes =
        kMaxFreeBytesPerBucket /
        (BucketCapacity(bucket) * static_cast<int64_t>(sizeof(double)));
    return by_bytes < kMinFreePerBucket ? kMinFreePerBucket : by_bytes;
  }

  // The process-wide pool. Never destroyed (tensors with static storage
  // duration may release after main returns).
  static BufferPool& Global();

  // Zero-filled storage for `n` elements, exactly like a fresh allocation.
  BufferRef Acquire(int64_t n);
  // Storage with unspecified contents (recycled values!). Callers must
  // write every element before any read, or pool-on and pool-off runs
  // diverge — which tests/buffer_pool_test.cc's parity searches catch.
  BufferRef AcquireUninitialized(int64_t n);
  // Wraps caller-built storage without copying (Tensor::FromVector). The
  // block is unpooled: released storage is freed, not recycled.
  BufferRef Adopt(std::vector<double> values);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  // Toggles recycling for subsequent acquisitions. Blocks already handed
  // out keep the policy they were acquired under, so toggling mid-run is
  // safe. Intended for tests, benches, and the env kill switch.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  BufferPoolStats Stats() const;
  // Zeroes the cumulative counters (hits/misses/returns/drops/bypass);
  // levels (outstanding/free) are live and unaffected.
  void ResetStats();
  // Frees every parked block (counted as drops). Outstanding blocks are
  // untouched and still return to the (now empty) free lists.
  void Trim();

  // Human-readable per-bucket table for logs and benches.
  std::string StatsString() const;

  // Size class for an element count; -1 when `n` exceeds the largest
  // bucket (bypass). n <= 0 maps to the smallest bucket.
  static int BucketIndex(int64_t n);
  static int64_t BucketCapacity(int bucket);

 private:
  friend void internal::ReleaseBufferBlock(internal::BufferBlock* block);

  BufferPool();
  BufferRef AcquireBlock(int64_t n, bool zero_fill);
  void Release(internal::BufferBlock* block);

  struct Bucket {
    mutable std::mutex mutex;
    std::vector<internal::BufferBlock*> free;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t returns = 0;
    int64_t drops = 0;
    int64_t outstanding = 0;
  };

  std::atomic<bool> enabled_;
  std::atomic<int64_t> bypass_{0};
  Bucket buckets_[kNumBuckets];
};

// Registers the pool instrument set on `registry` (idempotent; fixes the
// column order) and snapshots current values into it. All instruments are
// "wall/"-prefixed: pool counters depend on process history (a second
// search in the same process starts with warm free lists), so they are
// excluded from determinism comparisons like the other wall columns.
void RegisterBufferPoolMetrics(obs::MetricsRegistry* registry);
// Snapshots current pool stats into the registered instruments.
void UpdateBufferPoolMetrics(obs::MetricsRegistry* registry);

}  // namespace autocts

#endif  // AUTOCTS_COMMON_BUFFER_POOL_H_
