#include "common/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/file_io.h"
#include "common/macros.h"
#include "common/text_codec.h"

namespace autocts {
namespace obs {

namespace {

bool IsToken(const std::string& text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',') {
      return false;
    }
  }
  return true;
}

// Shortest decimal representation that parses back to the same double.
// Deterministic, so equal runs produce byte-equal CSV/JSONL sinks.
std::string FormatShortestDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    if (ParseExactDouble(buf, &parsed) && parsed == value) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatInt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    AUTOCTS_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram '" << name_ << "' bounds must be strictly increasing";
  }
  bucket_counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +inf bucket; also catches NaN
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  bucket_counts_[bucket] += 1;
  count_ += 1;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

const std::string& MetricsRegistry::Entry::name() const {
  switch (kind) {
    case Kind::kCounter:
      return counter->name();
    case Kind::kGauge:
      return gauge->name();
    case Kind::kHistogram:
      return histogram->name();
  }
  AUTOCTS_CHECK(false) << "unreachable";
  return counter->name();
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (Entry& entry : entries_) {
    if (entry.name() == name) return &entry;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  AUTOCTS_CHECK(IsToken(name)) << "bad instrument name '" << name << "'";
  if (Entry* entry = Find(name)) {
    AUTOCTS_CHECK(entry->kind == Entry::Kind::kCounter)
        << "'" << name << "' already registered as a different kind";
    return entry->counter.get();
  }
  Entry entry;
  entry.kind = Entry::Kind::kCounter;
  entry.counter = std::make_unique<Counter>(name);
  entries_.push_back(std::move(entry));
  return entries_.back().counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  AUTOCTS_CHECK(IsToken(name)) << "bad instrument name '" << name << "'";
  if (Entry* entry = Find(name)) {
    AUTOCTS_CHECK(entry->kind == Entry::Kind::kGauge)
        << "'" << name << "' already registered as a different kind";
    return entry->gauge.get();
  }
  Entry entry;
  entry.kind = Entry::Kind::kGauge;
  entry.gauge = std::make_unique<Gauge>(name);
  entries_.push_back(std::move(entry));
  return entries_.back().gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  AUTOCTS_CHECK(IsToken(name)) << "bad instrument name '" << name << "'";
  if (Entry* entry = Find(name)) {
    AUTOCTS_CHECK(entry->kind == Entry::Kind::kHistogram)
        << "'" << name << "' already registered as a different kind";
    return entry->histogram.get();
  }
  Entry entry;
  entry.kind = Entry::Kind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(name, bounds);
  entries_.push_back(std::move(entry));
  return entries_.back().histogram.get();
}

void MetricsRegistry::AppendRow(const std::string& kind, int64_t epoch,
                                int64_t step) {
  AUTOCTS_CHECK(IsToken(kind)) << "bad row kind '" << kind << "'";
  Row row;
  row.kind = kind;
  row.epoch = epoch;
  row.step = step;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        row.values.push_back(static_cast<double>(entry.counter->value()));
        break;
      case Entry::Kind::kGauge:
        row.values.push_back(entry.gauge->value());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        row.values.push_back(static_cast<double>(h.count()));
        row.values.push_back(h.sum());
        row.values.push_back(h.min());
        row.values.push_back(h.max());
        for (int64_t c : h.bucket_counts()) {
          row.values.push_back(static_cast<double>(c));
        }
        break;
      }
    }
  }
  rows_.push_back(std::move(row));
}

std::vector<std::string> MetricsRegistry::ColumnNames() const {
  std::vector<std::string> names;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        names.push_back(entry.counter->name());
        break;
      case Entry::Kind::kGauge:
        names.push_back(entry.gauge->name());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        names.push_back(h.name() + ".count");
        names.push_back(h.name() + ".sum");
        names.push_back(h.name() + ".min");
        names.push_back(h.name() + ".max");
        for (double bound : h.bounds()) {
          names.push_back(h.name() + ".le_" + FormatShortestDouble(bound));
        }
        names.push_back(h.name() + ".le_inf");
        break;
      }
    }
  }
  return names;
}

std::string MetricsRegistry::ToCsv() const {
  const std::vector<std::string> names = ColumnNames();
  // Column kinds, in header order (true = integer-valued).
  std::vector<bool> is_integer;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        is_integer.push_back(true);
        break;
      case Entry::Kind::kGauge:
        is_integer.push_back(false);
        break;
      case Entry::Kind::kHistogram:
        is_integer.push_back(true);   // count
        is_integer.push_back(false);  // sum
        is_integer.push_back(false);  // min
        is_integer.push_back(false);  // max
        for (size_t i = 0; i < entry.histogram->bounds().size() + 1; ++i) {
          is_integer.push_back(true);  // bucket counts
        }
        break;
    }
  }
  std::string out = "kind,epoch,step";
  for (const std::string& name : names) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (const Row& row : rows_) {
    out += row.kind;
    out += ',';
    out += FormatInt(row.epoch);
    out += ',';
    out += FormatInt(row.step);
    for (size_t i = 0; i < row.values.size() && i < names.size(); ++i) {
      out += ',';
      if (is_integer[i]) {
        out += FormatInt(static_cast<int64_t>(row.values[i]));
      } else {
        out += FormatShortestDouble(row.values[i]);
      }
    }
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJsonLines() const {
  const std::vector<std::string> names = ColumnNames();
  std::string out;
  for (const Row& row : rows_) {
    out += "{\"kind\":\"";
    out += row.kind;  // row kinds are whitespace/comma-free tokens
    out += "\",\"epoch\":";
    out += FormatInt(row.epoch);
    out += ",\"step\":";
    out += FormatInt(row.step);
    out += ",\"values\":{";
    for (size_t i = 0; i < row.values.size() && i < names.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += names[i];
      out += "\":";
      out += std::isfinite(row.values[i])
                 ? FormatShortestDouble(row.values[i])
                 : "null";
    }
    out += "}}\n";
  }
  return out;
}

Status MetricsRegistry::WriteSinks(const std::string& base_path) const {
  Status status =
      AtomicWriteFile(base_path + ".csv", ToCsv(), /*keep_previous=*/false);
  if (!status.ok()) return status;
  return AtomicWriteFile(base_path + ".jsonl", ToJsonLines(),
                         /*keep_previous=*/false);
}

std::string MetricsRegistry::EncodeState() const {
  std::string out = "obsv 1";
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        out += "\ncounter " + entry.counter->name() + ' ' +
               FormatInt(entry.counter->value());
        break;
      case Entry::Kind::kGauge:
        out += "\ngauge " + entry.gauge->name() + ' ' +
               FormatExactDouble(entry.gauge->value());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "\nhist " + h.name() + ' ' +
               FormatInt(static_cast<int64_t>(h.bounds().size()));
        for (double bound : h.bounds()) {
          out += ' ' + FormatExactDouble(bound);
        }
        out += ' ' + FormatInt(h.count()) + ' ' + FormatExactDouble(h.sum()) +
               ' ' + FormatExactDouble(h.min()) + ' ' +
               FormatExactDouble(h.max());
        for (int64_t c : h.bucket_counts()) {
          out += ' ' + FormatInt(c);
        }
        break;
      }
    }
  }
  for (const Row& row : rows_) {
    out += "\nrow " + row.kind + ' ' + FormatInt(row.epoch) + ' ' +
           FormatInt(row.step) + ' ' +
           FormatInt(static_cast<int64_t>(row.values.size()));
    for (double value : row.values) {
      out += ' ' + FormatExactDouble(value);
    }
  }
  return out;
}

namespace {

Status MalformedState(const std::string& line) {
  return Status::InvalidArgument("malformed metrics state line: " + line);
}

bool NextDouble(std::istringstream* in, double* value) {
  std::string token;
  if (!(*in >> token)) return false;
  return ParseExactDouble(token, value);
}

bool NextInt(std::istringstream* in, int64_t* value) {
  std::string token;
  if (!(*in >> token)) return false;
  char* end = nullptr;
  *value = std::strtoll(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != token.c_str();
}

}  // namespace

Status MetricsRegistry::DecodeState(const std::string& text) {
  Reset();
  std::istringstream lines(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (!saw_header) {
      int64_t version = 0;
      if (tag != "obsv" || !NextInt(&in, &version) || version != 1) {
        Reset();
        return Status::InvalidArgument("bad metrics state header: " + line);
      }
      saw_header = true;
      continue;
    }
    if (tag == "counter") {
      std::string name;
      int64_t value = 0;
      if (!(in >> name) || !NextInt(&in, &value) || !IsToken(name)) {
        Reset();
        return MalformedState(line);
      }
      GetCounter(name)->Set(value);
    } else if (tag == "gauge") {
      std::string name;
      double value = 0.0;
      if (!(in >> name) || !NextDouble(&in, &value) || !IsToken(name)) {
        Reset();
        return MalformedState(line);
      }
      GetGauge(name)->Set(value);
    } else if (tag == "hist") {
      std::string name;
      int64_t num_bounds = 0;
      if (!(in >> name) || !NextInt(&in, &num_bounds) || !IsToken(name) ||
          num_bounds < 0 || num_bounds > 4096) {
        Reset();
        return MalformedState(line);
      }
      std::vector<double> bounds(static_cast<size_t>(num_bounds));
      for (double& bound : bounds) {
        if (!NextDouble(&in, &bound)) {
          Reset();
          return MalformedState(line);
        }
      }
      Histogram* h = GetHistogram(name, bounds);
      if (!NextInt(&in, &h->count_) || !NextDouble(&in, &h->sum_) ||
          !NextDouble(&in, &h->min_) || !NextDouble(&in, &h->max_)) {
        Reset();
        return MalformedState(line);
      }
      for (int64_t& c : h->bucket_counts_) {
        if (!NextInt(&in, &c)) {
          Reset();
          return MalformedState(line);
        }
      }
    } else if (tag == "row") {
      Row row;
      int64_t num_values = 0;
      if (!(in >> row.kind) || !NextInt(&in, &row.epoch) ||
          !NextInt(&in, &row.step) || !NextInt(&in, &num_values) ||
          !IsToken(row.kind) || num_values < 0 || num_values > (1 << 20)) {
        Reset();
        return MalformedState(line);
      }
      row.values.resize(static_cast<size_t>(num_values));
      for (double& value : row.values) {
        if (!NextDouble(&in, &value)) {
          Reset();
          return MalformedState(line);
        }
      }
      rows_.push_back(std::move(row));
    } else {
      Reset();
      return MalformedState(line);
    }
    std::string extra;
    if (in >> extra) {
      Reset();
      return MalformedState(line);
    }
  }
  if (!saw_header && !text.empty()) {
    Reset();
    return Status::InvalidArgument("metrics state missing header");
  }
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  entries_.clear();
  rows_.clear();
}

std::string MetricsRegistry::StripWallColumns(const std::string& csv) {
  std::istringstream lines(csv);
  std::string header;
  if (!std::getline(lines, header)) return csv;
  const std::vector<std::string> names = SplitString(header, ',');
  std::vector<bool> keep(names.size(), true);
  for (size_t i = 0; i < names.size(); ++i) {
    keep[i] = names[i].rfind("wall/", 0) != 0;
  }
  std::string out;
  std::string line = header;
  do {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitString(line, ',');
    bool first = true;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i < keep.size() && !keep[i]) continue;
      if (!first) out += ',';
      first = false;
      out += fields[i];
    }
    out += '\n';
  } while (std::getline(lines, line));
  return out;
}

}  // namespace obs
}  // namespace autocts
