// Typed metrics registry: named counters, gauges, and histograms plus a
// row log of periodic snapshots, with CSV and JSON-lines sinks.
//
// The registry is a passive recorder. Instruments only ever *receive*
// values the instrumented code already computed — they never feed anything
// back — so enabling metrics cannot perturb a run (the bit-transparency
// contract shared with common/trace.h).
//
// Snapshot model: instruments are registered up front (registration order
// fixes the column order); AppendRow(kind, epoch, step) then snapshots
// every instrument's current value into one row. The CSV sink emits one
// line per row with a fixed header
//   kind,epoch,step,<instrument columns...>
// and the JSONL sink one JSON object per row.
//
// Determinism convention: metrics derived from wall-clock time or
// scheduling (batches/sec, pool occupancy, elapsed seconds) are
// legitimately different between otherwise identical runs. Such
// instruments MUST be named with a "wall/" prefix; StripWallColumns()
// projects a CSV down to the deterministic columns, which is what the
// determinism tests compare bit-for-bit across seeds/thread counts.
//
// EncodeState()/DecodeState() round-trip the full registry (instruments,
// exact hex-float values, and all rows) through a single string, which the
// search checkpoint embeds so metrics survive crash/resume: a resumed
// run's final sinks equal an uninterrupted run's (modulo "wall/" columns).
//
// Not thread-safe: a registry belongs to the driver thread of the loop it
// instruments.
#ifndef AUTOCTS_COMMON_METRICS_REGISTRY_H_
#define AUTOCTS_COMMON_METRICS_REGISTRY_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace autocts {
namespace obs {

// Monotonically increasing integer (steps, skips, recoveries). Set() exists
// only for state restoration after rollback/resume.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  void Increment(int64_t delta = 1) { value_ += delta; }
  void Set(int64_t value) { value_ = value; }
  int64_t value() const { return value_; }

 private:
  std::string name_;
  int64_t value_ = 0;
};

// Last-written double value (losses, τ, entropies, rates).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  std::string name_;
  double value_ = 0.0;
};

// Distribution summary: bucket counts over fixed upper bounds (plus an
// implicit +inf bucket), with count/sum/min/max.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);
  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  void Observe(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  // min/max are +inf/-inf while count() == 0.
  double min() const { return min_; }
  double max() const { return max_; }
  // bounds().size() + 1 entries; bucket i counts values <= bounds()[i],
  // the last bucket counts the rest (including NaN observations).
  const std::vector<int64_t>& bucket_counts() const { return bucket_counts_; }

 private:
  friend class MetricsRegistry;  // state restoration
  std::string name_;
  std::vector<double> bounds_;
  std::vector<int64_t> bucket_counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  // One AppendRow() snapshot. `values` holds every column in header order
  // (see ColumnNames()).
  struct Row {
    std::string kind;  // e.g. "step", "epoch"
    int64_t epoch = 0;
    int64_t step = 0;
    std::vector<double> values;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Return the named instrument, creating it on first use. Names must be
  // non-empty and contain no whitespace (they become CSV columns and
  // state-file tokens). Getting an existing name with a different
  // instrument kind is a fatal error; GetHistogram ignores `bounds` when
  // the histogram already exists.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  // Snapshots every instrument into a new row. `kind` must be a single
  // whitespace-free token.
  void AppendRow(const std::string& kind, int64_t epoch, int64_t step);

  const std::vector<Row>& rows() const { return rows_; }

  // Flattened column names in header order: counters and gauges contribute
  // one column each; a histogram `h` contributes h.count, h.sum, h.min,
  // h.max, then h.le_<bound>... and h.le_inf.
  std::vector<std::string> ColumnNames() const;

  // CSV document: header line, then one line per row. Integer-valued
  // columns print as integers, the rest as shortest round-trippable
  // decimals, so equal runs produce byte-equal CSVs.
  std::string ToCsv() const;

  // One JSON object per row: {"kind":...,"epoch":...,"step":...,
  // "values":{column: number|null}} (null for non-finite values).
  std::string ToJsonLines() const;

  // Writes "<base_path>.csv" and "<base_path>.jsonl" atomically.
  Status WriteSinks(const std::string& base_path) const;

  // Serializes instruments (with exact hex-float values) and rows to a
  // newline-joined token format suitable for embedding in a checkpoint.
  std::string EncodeState() const;

  // Replaces the registry contents with a previously encoded state.
  // On error the registry is left empty (as after Reset()).
  Status DecodeState(const std::string& text);

  // Removes all instruments and rows.
  void Reset();

  // Drops every column whose name starts with "wall/" from a ToCsv()
  // document, yielding the deterministic projection compared bit-for-bit
  // by the determinism tests.
  static std::string StripWallColumns(const std::string& csv);

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram };
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    const std::string& name() const;
  };

  Entry* Find(const std::string& name);

  std::vector<Entry> entries_;  // registration order == column order
  std::vector<Row> rows_;
};

}  // namespace obs
}  // namespace autocts

#endif  // AUTOCTS_COMMON_METRICS_REGISTRY_H_
