// Shared numeric constants used across layers.
#ifndef AUTOCTS_COMMON_CONSTANTS_H_
#define AUTOCTS_COMMON_CONSTANTS_H_

namespace autocts {

// Tolerance for matching a value against the masked-null sentinel
// (data::StandardScaler's mask_null fit and metrics::ComputeMetrics's
// null_value masking). One constant so a value the scaler passes through
// as "null" is the same value the masked metrics later skip.
inline constexpr double kNullMatchTolerance = 1e-6;

}  // namespace autocts

#endif  // AUTOCTS_COMMON_CONSTANTS_H_
