// Deterministic random number generation (xoshiro256** seeded via SplitMix64).
//
// Every stochastic component in the library takes an explicit seed or an Rng
// so that experiments are reproducible run-to-run.
#ifndef AUTOCTS_COMMON_RANDOM_H_
#define AUTOCTS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace autocts {

// The complete mutable state of an Rng: the four xoshiro256** words plus
// the Box-Muller spare. Serializing it (see core/search_checkpoint.h)
// allows a generator to be resumed bit-identically across process restarts.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

// Deterministic pseudo-random generator. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Snapshot / restore of the full generator state; a restored generator
  // produces the exact draw sequence the snapshotted one would have.
  RngState GetState() const;
  void SetState(const RngState& state);

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Standard normal via Box-Muller.
  double Normal();
  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);
  // Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle of `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // A random permutation of [0, n).
  std::vector<int64_t> Permutation(int64_t n);

  // Derives an independent child generator; useful for fanning a single
  // experiment seed out to multiple components.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace autocts

#endif  // AUTOCTS_COMMON_RANDOM_H_
