// Durable small-file I/O for checkpoints and other crash-sensitive state:
// CRC32 integrity checksums and an atomic write-to-temp-then-rename
// protocol that keeps the previous generation as "<path>.prev", so a crash
// at any instant leaves at least one loadable generation on disk.
#ifndef AUTOCTS_COMMON_FILE_IO_H_
#define AUTOCTS_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace autocts {

// CRC-32 (IEEE 802.3 polynomial, as used by zlib/gzip) of `size` bytes.
uint32_t Crc32(const char* data, size_t size);
uint32_t Crc32(const std::string& text);

// True if `path` exists (any file type).
bool FileExists(const std::string& path);

// Reads the whole file; NotFound if it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Crash-safe replacement of `path` with `content`:
//   1. write + fsync "<path>.tmp"
//   2. if `path` exists and keep_previous, rename it to "<path>.prev"
//   3. rename "<path>.tmp" to `path`
// Renames are atomic on POSIX, so a reader (or a restart after a crash at
// any point of the sequence) sees either the old generation at `path`, the
// new one at `path`, or the old one at "<path>.prev" — never a torn file.
Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool keep_previous = true);

}  // namespace autocts

#endif  // AUTOCTS_COMMON_FILE_IO_H_
