#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/file_io.h"
#include "common/stopwatch.h"

namespace autocts {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

constexpr int64_t kMinRingCapacity = 16;
constexpr int64_t kMaxRingCapacity = int64_t{1} << 22;
constexpr int64_t kDefaultRingCapacity = int64_t{1} << 16;

struct OpAgg {
  int64_t calls = 0;
  int64_t total_ns = 0;
  int64_t self_ns = 0;
};

// Per-thread collection state. Owned jointly by the producing thread (via
// a thread_local shared_ptr) and the global registry, so it stays readable
// after the thread exits. `mu` is uncontended in steady state: the owner
// thread takes it per record, the registry only under Start/Stop/collect.
struct ThreadLog {
  std::mutex mu;
  int32_t tid = 0;
  int64_t capacity = kDefaultRingCapacity;
  std::vector<SpanEvent> ring;   // insertion order until full, then wraps
  int64_t next_slot = 0;         // overwrite cursor once ring is full
  int64_t dropped = 0;           // events overwritten since Start()
  std::unordered_map<const char*, OpAgg> fwd_agg;
  std::unordered_map<const char*, OpAgg> bwd_agg;

  void Clear(int64_t new_capacity) {
    std::lock_guard<std::mutex> lock(mu);
    capacity = new_capacity;
    ring.clear();
    next_slot = 0;
    dropped = 0;
    fwd_agg.clear();
    bwd_agg.clear();
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  int64_t ring_capacity = kDefaultRingCapacity;
  int64_t epoch_ns = 0;  // SteadyNowNanos() at Start(); JSON ts origin
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

ThreadLog& GetThreadLog() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto created = std::make_shared<ThreadLog>();
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    created->tid = static_cast<int32_t>(registry.logs.size());
    created->capacity = registry.ring_capacity;
    registry.logs.push_back(created);
    return created;
  }();
  return *log;
}

// Open-span bookkeeping for the current thread. Touched only by the owner
// thread, and only while a Scope constructed during an active trace is
// alive, so it is always balanced back to empty between traces.
struct ThreadDepth {
  int32_t depth = 0;
  // One slot per open span: sum of completed direct children's durations.
  std::vector<int64_t> child_ns;
};

ThreadDepth& GetThreadDepth() {
  thread_local ThreadDepth depth;
  return depth;
}

void RecordSpan(const char* name, bool backward, int32_t depth,
                int64_t start_ns, int64_t duration_ns, int64_t self_ns) {
  ThreadLog& log = GetThreadLog();
  std::lock_guard<std::mutex> lock(log.mu);
  OpAgg& agg = backward ? log.bwd_agg[name] : log.fwd_agg[name];
  agg.calls += 1;
  agg.total_ns += duration_ns;
  agg.self_ns += self_ns;

  SpanEvent event;
  event.name = name;
  event.tid = log.tid;
  event.depth = depth;
  event.backward = backward;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.self_ns = self_ns;
  if (static_cast<int64_t>(log.ring.size()) < log.capacity) {
    log.ring.push_back(event);
  } else {
    log.ring[static_cast<size_t>(log.next_slot)] = event;
    log.next_slot = (log.next_slot + 1) % log.capacity;
    log.dropped += 1;
  }
}

std::string JsonEscape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void Start() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& log : registry.logs) {
    log->Clear(registry.ring_capacity);
  }
  registry.epoch_ns = SteadyNowNanos();
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Stop() { internal::g_enabled.store(false, std::memory_order_relaxed); }

void SetRingCapacity(int64_t capacity) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.ring_capacity =
      std::clamp(capacity, kMinRingCapacity, kMaxRingCapacity);
}

int64_t DroppedEvents() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  int64_t dropped = 0;
  for (const auto& log : registry.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    dropped += log->dropped;
  }
  return dropped;
}

int64_t EventCount() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  int64_t count = 0;
  for (const auto& log : registry.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    count += static_cast<int64_t>(log->ring.size());
  }
  return count;
}

std::vector<SpanEvent> CollectEvents() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<SpanEvent> events;
  for (const auto& log : registry.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    // Unwrap the ring into chronological (insertion) order.
    for (int64_t i = 0; i < static_cast<int64_t>(log->ring.size()); ++i) {
      const int64_t slot =
          (log->next_slot + i) % static_cast<int64_t>(log->ring.size());
      events.push_back(log->ring[static_cast<size_t>(slot)]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              // Parents start with (at worst) the same timestamp as their
              // first child but always last longer: emit them first.
              return a.duration_ns > b.duration_ns;
            });
  return events;
}

std::vector<OpStat> AggregateOps() {
  Registry& registry = GetRegistry();
  std::map<std::string, OpAgg> merged;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& log : registry.logs) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      for (const auto& [name, agg] : log->fwd_agg) {
        OpAgg& out = merged[name];
        out.calls += agg.calls;
        out.total_ns += agg.total_ns;
        out.self_ns += agg.self_ns;
      }
      for (const auto& [name, agg] : log->bwd_agg) {
        OpAgg& out = merged[std::string(name) + ".bwd"];
        out.calls += agg.calls;
        out.total_ns += agg.total_ns;
        out.self_ns += agg.self_ns;
      }
    }
  }
  std::vector<OpStat> stats;
  stats.reserve(merged.size());
  for (const auto& [name, agg] : merged) {
    OpStat stat;
    stat.name = name;
    stat.calls = agg.calls;
    stat.total_ns = agg.total_ns;
    stat.self_ns = agg.self_ns;
    stats.push_back(std::move(stat));
  }
  std::sort(stats.begin(), stats.end(), [](const OpStat& a, const OpStat& b) {
    if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
    return a.name < b.name;
  });
  return stats;
}

double Coverage(const char* root_name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  int64_t total_ns = 0;
  int64_t self_ns = 0;
  for (const auto& log : registry.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const auto& [name, agg] : log->fwd_agg) {
      if (std::strcmp(name, root_name) == 0) {
        total_ns += agg.total_ns;
        self_ns += agg.self_ns;
      }
    }
  }
  if (total_ns <= 0) return 0.0;
  return 1.0 - static_cast<double>(self_ns) / static_cast<double>(total_ns);
}

std::string ToChromeTracingJson() {
  const int64_t epoch_ns = [] {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    return registry.epoch_ns;
  }();
  const std::vector<SpanEvent> events = CollectEvents();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const SpanEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(event.name);
    out += "\",\"cat\":\"";
    out += event.backward ? "bwd" : "fwd";
    // ts/dur are microseconds by the trace-event spec; keep ns precision
    // with three decimals.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"depth\":%d}}",
                  static_cast<double>(event.start_ns - epoch_ns) * 1e-3,
                  static_cast<double>(event.duration_ns) * 1e-3, event.tid,
                  event.depth);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string AggregateOpsCsv() {
  std::string out = "op,calls,total_ns,self_ns\n";
  char buf[96];
  for (const OpStat& stat : AggregateOps()) {
    out += stat.name;
    std::snprintf(buf, sizeof(buf), ",%lld,%lld,%lld\n",
                  static_cast<long long>(stat.calls),
                  static_cast<long long>(stat.total_ns),
                  static_cast<long long>(stat.self_ns));
    out += buf;
  }
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  return AtomicWriteFile(path, ToChromeTracingJson(), /*keep_previous=*/false)
      .ok();
}

bool WriteAggregateCsv(const std::string& path) {
  return AtomicWriteFile(path, AggregateOpsCsv(), /*keep_previous=*/false)
      .ok();
}

Scope::Scope(const char* name, bool backward)
    : name_(name), start_ns_(0), depth_(0), backward_(backward),
      active_(internal::g_enabled.load(std::memory_order_relaxed)) {
  if (!active_) return;
  ThreadDepth& state = GetThreadDepth();
  depth_ = state.depth;
  state.depth += 1;
  state.child_ns.push_back(0);
  // Take the timestamp last so setup cost lands outside the span.
  start_ns_ = SteadyNowNanos();
}

Scope::~Scope() {
  if (!active_) return;
  const int64_t end_ns = SteadyNowNanos();
  ThreadDepth& state = GetThreadDepth();
  const int64_t child_ns = state.child_ns.back();
  state.child_ns.pop_back();
  state.depth -= 1;
  const int64_t duration_ns = end_ns - start_ns_;
  if (!state.child_ns.empty()) {
    state.child_ns.back() += duration_ns;
  }
  RecordSpan(name_, backward_, depth_, start_ns_, duration_ns,
             duration_ns - child_ns);
}

}  // namespace trace
}  // namespace autocts
