// Cooperative cancellation and deadlines for the long-running loops
// (JointSearcher, models::Trainer, core::EvalScheduler).
//
// The model is strictly cooperative: nothing here preempts a thread. A
// CancellationToken is a lock-free flag that interested loops poll at their
// step/batch boundaries; whoever wants the work stopped — a SIGINT/SIGTERM
// handler (common/signal_handler.h), the eval scheduler's watchdog, a test —
// calls Cancel() with a reason, and the loop notices at its next boundary,
// finishes cleanly (final checkpoint, joined workers), and returns a
// Status whose code matches the reason (kCancelled or kDeadlineExceeded).
//
// Cancel() is async-signal-safe: it performs exactly one lock-free atomic
// store-class operation and touches nothing else, so signal handlers may
// call it directly.
//
// Deadline wraps the same monotonic clock as Stopwatch (SteadyNowNanos,
// FakeClock-compatible), so deadline tests advance virtual time instead of
// sleeping. Polling a token or a deadline reads no mutable search state:
// the checks are bit-transparent, and a run that is never interrupted is
// byte-identical with or without them.
#ifndef AUTOCTS_COMMON_CANCELLATION_H_
#define AUTOCTS_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "common/stopwatch.h"

namespace autocts {

// Why a token was cancelled; decides the Status code the interrupted loop
// returns (and therefore the CLI exit code).
enum class CancelReason : int {
  kNone = 0,
  kShutdown = 1,  // signal-driven or caller-requested stop -> kCancelled
  kDeadline = 2,  // wall/step budget exceeded -> kDeadlineExceeded
};

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // Requests cancellation. The first reason wins: a deadline firing after
  // a shutdown request (or vice versa) does not change what the loops
  // report. Async-signal-safe.
  void Cancel(CancelReason reason = CancelReason::kShutdown) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_acquire) != 0;
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  // Clears the token for reuse (tests; never called while loops poll it).
  void Reset() { reason_.store(0, std::memory_order_release); }

  // The Status an interrupted loop should return: Cancelled for shutdown,
  // DeadlineExceeded for a deadline, with `context` naming where the work
  // stopped. CHECK-free: an uncancelled token maps to kCancelled (callers
  // only ask after cancelled() returned true).
  Status ToStatus(const std::string& context) const {
    if (reason() == CancelReason::kDeadline) {
      return Status::DeadlineExceeded(context);
    }
    return Status::Cancelled(context);
  }

 private:
  std::atomic<int> reason_{0};
};

// Absolute point on the SteadyNowNanos timeline. Value-semantic and
// trivially copyable; Infinite() never expires.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `seconds` from now (non-positive -> already expired).
  static Deadline After(double seconds) {
    Deadline deadline;
    deadline.nanos_ = SteadyNowNanos() + static_cast<int64_t>(seconds * 1e9);
    return deadline;
  }

  // Infinite when `seconds` <= 0, After(seconds) otherwise — the "0 means
  // no budget" convention every config knob uses.
  static Deadline AfterBudget(double seconds) {
    return seconds > 0.0 ? After(seconds) : Infinite();
  }

  bool infinite() const {
    return nanos_ == std::numeric_limits<int64_t>::max();
  }
  bool expired() const { return !infinite() && SteadyNowNanos() >= nanos_; }

  double remaining_seconds() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    return static_cast<double>(nanos_ - SteadyNowNanos()) * 1e-9;
  }

  int64_t nanos() const { return nanos_; }

 private:
  int64_t nanos_ = std::numeric_limits<int64_t>::max();
};

// The one boundary check the loops share: cancellation first (an explicit
// request outranks a budget), then the wall deadline, then the step budget
// (`steps_done` against `step_budget`, 0 = no budget). Returns Ok when the
// loop should keep going.
inline Status CheckInterrupt(const CancellationToken* cancel,
                             const Deadline& deadline, int64_t steps_done,
                             int64_t step_budget, const std::string& context) {
  if (cancel != nullptr && cancel->cancelled()) {
    return cancel->ToStatus(context + ": cancelled");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded(context + ": wall budget exhausted");
  }
  if (step_budget > 0 && steps_done >= step_budget) {
    return Status::DeadlineExceeded(
        context + ": step budget exhausted after " +
        std::to_string(steps_done) + " steps");
  }
  return Status::Ok();
}

}  // namespace autocts

#endif  // AUTOCTS_COMMON_CANCELLATION_H_
