#include "common/status.h"

namespace autocts {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

}  // namespace autocts
