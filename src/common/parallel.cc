#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/trace.h"

namespace autocts {
namespace {

constexpr int64_t kMaxThreads = 64;

// Scheduling counters for GetPoolStats(). Relaxed is enough: readers only
// want totals across quiescent points, and each Drain adds its tallies
// once at the end rather than per chunk.
std::atomic<int64_t> g_stat_jobs{0};
std::atomic<int64_t> g_stat_chunks{0};
std::atomic<int64_t> g_stat_worker_chunks{0};
std::atomic<int64_t> g_stat_serial_chunks{0};

// Set while a thread is executing chunks, so nested ParallelFor calls run
// serially instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

int64_t ThreadCountFromEnv() {
  if (const char* env = std::getenv("AUTOCTS_NUM_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && value > 0) {
      return std::min<int64_t>(value, kMaxThreads);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::clamp<int64_t>(hardware == 0 ? 1 : hardware, 1, kMaxThreads);
}

// One ParallelFor invocation. Chunks are handed out through an atomic
// counter owned by the job, so a worker that wakes late (or for a previous
// job) can only ever draw chunks of the job it actually holds a reference
// to.
struct Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  internal::FunctionRef<void(int64_t, int64_t)> fn;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> completed{0};

  void RunChunk(int64_t chunk) const {
    const int64_t lo = begin + chunk * grain;
    const int64_t hi = std::min(end, lo + grain);
    fn(lo, hi);
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(int64_t num_threads) : num_threads_(num_threads) {
    workers_.reserve(num_threads - 1);
    for (int64_t i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int64_t num_threads() const { return num_threads_; }

  // Runs all chunks of `job`, blocking until every chunk has finished. Only
  // one job is active at a time; concurrent callers queue on run_mutex_.
  void Run(const std::shared_ptr<Job>& job) {
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_job_ = job;
      ++job_version_;
    }
    wake_.notify_all();
    Drain(*job, /*is_worker=*/false);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
    current_job_.reset();
  }

 private:
  void WorkerLoop() {
    uint64_t seen_version = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock,
                   [&] { return stop_ || job_version_ != seen_version; });
        if (stop_) return;
        seen_version = job_version_;
        job = current_job_;
      }
      if (job != nullptr) Drain(*job, /*is_worker=*/true);
    }
  }

  void Drain(Job& job, bool is_worker) {
    // Span worker drains only: the calling thread drains inside whatever
    // op span dispatched the ParallelFor, and relabeling that compute as
    // "pool/drain" would steal the op's self time in the aggregate table.
    std::optional<trace::Scope> span;
    if (is_worker && trace::Active()) span.emplace("pool/drain");
    int64_t chunks_run = 0;
    t_in_parallel_region = true;
    for (;;) {
      const int64_t chunk =
          job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.num_chunks) break;
      job.RunChunk(chunk);
      ++chunks_run;
      const int64_t finished =
          job.completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == job.num_chunks) {
        // Take the mutex so the notify cannot race past a waiter that has
        // checked the predicate but not yet gone to sleep.
        std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_all();
      }
    }
    t_in_parallel_region = false;
    g_stat_chunks.fetch_add(chunks_run, std::memory_order_relaxed);
    if (is_worker) {
      g_stat_worker_chunks.fetch_add(chunks_run, std::memory_order_relaxed);
    }
  }

  const int64_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::shared_ptr<Job> current_job_;
  uint64_t job_version_ = 0;
  bool stop_ = false;
};

std::mutex g_pool_mutex;
// Owned by a shared_ptr so SetNumThreads can swap the pool while stragglers
// (none, per the documented contract, but cheap insurance) still hold it.
std::shared_ptr<ThreadPool> g_pool;  // NOLINT: intentional process-lifetime

std::shared_ptr<ThreadPool> Pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr) {
    g_pool = std::make_shared<ThreadPool>(ThreadCountFromEnv());
  }
  return g_pool;
}

}  // namespace

int64_t NumThreads() { return Pool()->num_threads(); }

void SetNumThreads(int64_t n) {
  AUTOCTS_CHECK_GE(n, 1);
  const int64_t clamped = std::min(n, kMaxThreads);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool != nullptr && g_pool->num_threads() == clamped) return;
  g_pool = std::make_shared<ThreadPool>(clamped);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 internal::FunctionRef<void(int64_t, int64_t)> fn) {
  if (begin >= end) return;
  AUTOCTS_CHECK_GE(grain, 1);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  // Serial paths still walk the same chunk partition so per-chunk partial
  // sums (ParallelSum) see identical groupings everywhere.
  std::shared_ptr<ThreadPool> pool;
  if (!t_in_parallel_region && num_chunks > 1) pool = Pool();
  if (pool == nullptr || pool->num_threads() == 1) {
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const int64_t lo = begin + chunk * grain;
      fn(lo, std::min(end, lo + grain));
    }
    g_stat_serial_chunks.fetch_add(num_chunks, std::memory_order_relaxed);
    return;
  }
  g_stat_jobs.fetch_add(1, std::memory_order_relaxed);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = fn;
  pool->Run(job);
}

PoolStats GetPoolStats() {
  PoolStats stats;
  stats.jobs = g_stat_jobs.load(std::memory_order_relaxed);
  stats.chunks = g_stat_chunks.load(std::memory_order_relaxed);
  stats.worker_chunks = g_stat_worker_chunks.load(std::memory_order_relaxed);
  stats.serial_chunks = g_stat_serial_chunks.load(std::memory_order_relaxed);
  return stats;
}

double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   internal::FunctionRef<double(int64_t, int64_t)> chunk_sum) {
  if (begin >= end) return 0.0;
  AUTOCTS_CHECK_GE(grain, 1);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  // Partials live on the stack for the common small-reduction case; heap
  // only when a reduction spans more than kInlinePartials chunks.
  constexpr int64_t kInlinePartials = 64;
  double inline_partials[kInlinePartials];
  std::vector<double> heap_partials;
  double* partials = inline_partials;
  if (num_chunks > kInlinePartials) {
    heap_partials.resize(static_cast<size_t>(num_chunks));
    partials = heap_partials.data();
  }
  std::fill(partials, partials + num_chunks, 0.0);
  ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    partials[(lo - begin) / grain] = chunk_sum(lo, hi);
  });
  double total = 0.0;
  for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
    total += partials[chunk];
  }
  return total;
}

}  // namespace autocts
