#include "common/text_codec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace autocts {

void TextWriter::Add(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, value);
}

void TextWriter::AddInt(const std::string& key, int64_t value) {
  Add(key, std::to_string(value));
}

void TextWriter::AddDouble(const std::string& key, double value) {
  std::ostringstream stream;
  stream.precision(17);
  stream << value;
  Add(key, stream.str());
}

std::string TextWriter::ToString() const {
  std::ostringstream stream;
  for (const auto& [key, value] : entries_) {
    stream << key << " = " << value << "\n";
  }
  return stream.str();
}

StatusOr<TextReader> TextReader::Parse(const std::string& text) {
  TextReader reader;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     " has no '=': " + stripped);
    }
    std::string key = StripWhitespace(stripped.substr(0, eq));
    std::string value = StripWhitespace(stripped.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     " has empty key");
    }
    reader.entries_.emplace_back(std::move(key), std::move(value));
  }
  return reader;
}

StatusOr<std::string> TextReader::Get(const std::string& key) const {
  for (const auto& [entry_key, value] : entries_) {
    if (entry_key == key) return value;
  }
  return Status::NotFound("key not found: " + key);
}

StatusOr<int64_t> TextReader::GetInt(const std::string& key) const {
  StatusOr<std::string> value = Get(key);
  if (!value.ok()) return value.status();
  char* end = nullptr;
  const int64_t parsed = std::strtoll(value.value().c_str(), &end, 10);
  if (end == value.value().c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: " + value.value());
  }
  return parsed;
}

StatusOr<double> TextReader::GetDouble(const std::string& key) const {
  StatusOr<std::string> value = Get(key);
  if (!value.ok()) return value.status();
  char* end = nullptr;
  const double parsed = std::strtod(value.value().c_str(), &end);
  if (end == value.value().c_str() || *end != '\0') {
    return Status::InvalidArgument("not a double: " + value.value());
  }
  return parsed;
}

std::vector<std::string> TextReader::GetAll(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [entry_key, value] : entries_) {
    if (entry_key == key) values.push_back(value);
  }
  return values;
}

std::string FormatExactDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

bool ParseExactDouble(const std::string& token, double* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  *value = parsed;
  return true;
}

std::vector<std::string> SplitString(const std::string& text, char delimiter) {
  std::vector<std::string> pieces;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      pieces.push_back(StripWhitespace(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  pieces.push_back(StripWhitespace(current));
  return pieces;
}

std::string StripWhitespace(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace autocts
