// Lightweight leveled logging to stderr.
//
// Usage:
//   AUTOCTS_LOG(INFO) << "epoch " << epoch << " loss " << loss;
//
// The minimum level is controlled at runtime with SetMinLogLevel, or by the
// environment variable AUTOCTS_LOG_LEVEL (0=INFO, 1=WARNING, 2=ERROR).
#ifndef AUTOCTS_COMMON_LOGGING_H_
#define AUTOCTS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace autocts {

enum class LogLevel { kInfo = 0, kWarning = 1, kError = 2 };

// Sets the global minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal {

// Buffers one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace autocts

#define AUTOCTS_LOG_INFO \
  ::autocts::internal::LogMessage(::autocts::LogLevel::kInfo, __FILE__, __LINE__)
#define AUTOCTS_LOG_WARNING                                            \
  ::autocts::internal::LogMessage(::autocts::LogLevel::kWarning, __FILE__, \
                                  __LINE__)
#define AUTOCTS_LOG_ERROR \
  ::autocts::internal::LogMessage(::autocts::LogLevel::kError, __FILE__, __LINE__)
#define AUTOCTS_LOG(severity) AUTOCTS_LOG_##severity

#endif  // AUTOCTS_COMMON_LOGGING_H_
