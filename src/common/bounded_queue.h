// A bounded multi-producer/multi-consumer queue with batch pop, built for
// the forecast server's micro-batching coalescer (serve/forecast_server.h)
// but generic over the item type.
//
// Semantics:
//   - TryPush never blocks: it fails immediately when the queue is full or
//     closed, so producers (request submitters) get back-pressure instead
//     of unbounded buffering.
//   - PopBatch blocks until at least one item is available, then drains up
//     to `max_items` under a single lock — the natural coalescing point: a
//     consumer that was busy while requests queued up picks them all up in
//     one wakeup.
//   - Close() wakes every blocked consumer. Pops keep draining what was
//     already queued (graceful shutdown serves accepted work); PopBatch
//     returns 0 only when the queue is closed AND empty.
#ifndef AUTOCTS_COMMON_BOUNDED_QUEUE_H_
#define AUTOCTS_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace autocts {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    AUTOCTS_CHECK(capacity > 0);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues `item` unless the queue is full or closed; returns whether the
  // item was accepted (the item is untouched on failure).
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Appends up to `max_items` items to `*out`, blocking until at least one
  // is available or the queue is closed and drained (returns 0 then).
  size_t PopBatch(size_t max_items, std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    size_t popped = 0;
    while (popped < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++popped;
    }
    return popped;
  }

  // Rejects future pushes and wakes all blocked consumers. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace autocts

#endif  // AUTOCTS_COMMON_BOUNDED_QUEUE_H_
