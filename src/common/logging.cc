#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace autocts {
namespace {

std::atomic<int> g_min_level{[] {
  const char* env = std::getenv("AUTOCTS_LOG_LEVEL");
  return env == nullptr ? 0 : std::atoi(env);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel MinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_min_level.load()) return;
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace autocts
