#include "common/numerics.h"

#include <cmath>

#include "common/macros.h"
#include "common/parallel.h"

namespace autocts::numerics {

namespace {

// Same grain the reduction kernels in tensor/tensor_ops.cc use; the scan is
// a pure read at memory bandwidth.
constexpr int64_t kScanGrain = 8192;

}  // namespace

int64_t CountNonFinite(const Tensor& tensor) {
  if (!tensor.defined() || tensor.size() == 0) return 0;
  const double* values = tensor.data();
  // Integer counts are exact in double far beyond any tensor size, so the
  // deterministic ParallelSum reduction doubles as a counter.
  const double count =
      ParallelSum(0, tensor.size(), kScanGrain, [&](int64_t lo, int64_t hi) {
        double bad = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          if (!std::isfinite(values[i])) bad += 1.0;
        }
        return bad;
      });
  return static_cast<int64_t>(count);
}

bool IsFinite(const Tensor& tensor) { return CountNonFinite(tensor) == 0; }

int64_t FirstNonFiniteParameter(const std::vector<Variable>& parameters) {
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (!IsFinite(parameters[i].value())) return static_cast<int64_t>(i);
  }
  return -1;
}

int64_t FirstNonFiniteGradient(const std::vector<Variable>& parameters) {
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (parameters[i].has_grad() && !IsFinite(parameters[i].grad())) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

const char* AnomalyName(Anomaly anomaly) {
  switch (anomaly) {
    case Anomaly::kNone:
      return "none";
    case Anomaly::kNonFiniteLoss:
      return "non-finite loss";
    case Anomaly::kLossSpike:
      return "loss spike";
    case Anomaly::kNonFiniteGradient:
      return "non-finite gradient";
    case Anomaly::kGradientExplosion:
      return "gradient explosion";
    case Anomaly::kNonFiniteParameter:
      return "non-finite parameter";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  AUTOCTS_CHECK_GT(config_.loss_window, 0);
  window_.assign(config_.loss_window, 0.0);
}

Anomaly HealthMonitor::Flag(Anomaly anomaly) {
  if (anomaly != Anomaly::kNone) ++anomalies_;
  return anomaly;
}

Anomaly HealthMonitor::ObserveLoss(double loss) {
  if (!IsFiniteValue(loss)) return Flag(Anomaly::kNonFiniteLoss);
  if (config_.loss_spike_factor > 0.0 &&
      window_count_ >= config_.min_loss_samples) {
    const double mean = window_sum_ / static_cast<double>(window_count_);
    // `mean` can legitimately approach zero late in training; the +1e-12
    // floor keeps the threshold meaningful without flagging tiny absolute
    // wobbles around zero.
    if (loss > config_.loss_spike_factor * (mean + 1e-12)) {
      return Flag(Anomaly::kLossSpike);
    }
  }
  // Healthy: feed the rolling window (evicting the oldest entry once full).
  if (window_count_ == static_cast<int64_t>(window_.size())) {
    window_sum_ -= window_[window_pos_];
  } else {
    ++window_count_;
  }
  window_[window_pos_] = loss;
  window_sum_ += loss;
  window_pos_ = (window_pos_ + 1) % static_cast<int64_t>(window_.size());
  return Anomaly::kNone;
}

Anomaly HealthMonitor::ObserveGradientNorm(double pre_clip_norm) {
  if (!IsFiniteValue(pre_clip_norm)) return Flag(Anomaly::kNonFiniteGradient);
  if (config_.max_grad_norm > 0.0 && pre_clip_norm > config_.max_grad_norm) {
    return Flag(Anomaly::kGradientExplosion);
  }
  return Anomaly::kNone;
}

Anomaly HealthMonitor::CheckParameters(
    const std::vector<Variable>& parameters) {
  return FirstNonFiniteParameter(parameters) >= 0
             ? Flag(Anomaly::kNonFiniteParameter)
             : Anomaly::kNone;
}

Anomaly HealthMonitor::CheckGradients(const std::vector<Variable>& parameters) {
  return FirstNonFiniteGradient(parameters) >= 0
             ? Flag(Anomaly::kNonFiniteGradient)
             : Anomaly::kNone;
}

void HealthMonitor::Reset() {
  window_pos_ = 0;
  window_count_ = 0;
  window_sum_ = 0.0;
}

std::string AttributeDivergence(
    const std::function<Variable()>& loss_fn,
    const std::vector<std::pair<std::string, Variable>>& named_parameters,
    const std::function<void()>& post_backward) {
  auto clear_grads = [&] {
    for (const auto& [name, parameter] : named_parameters) {
      Variable handle = parameter;  // cheap shared handle
      handle.ClearGrad();
    }
  };
  clear_grads();
  BeginNumericTrace();
  Variable loss = loss_fn();
  loss.Backward();
  if (post_backward) post_backward();
  const NumericTraceReport report = EndNumericTrace();

  std::string description;
  if (report.triggered) {
    description = "first non-finite value produced by " + report.ToString();
  } else {
    // Nothing on the tape went bad: the corruption lives in a leaf. Name
    // the first offending parameter gradient or value.
    description = "anomaly did not reproduce under the numeric trace";
    for (const auto& [name, parameter] : named_parameters) {
      if (parameter.has_grad() && !IsFinite(parameter.grad())) {
        description = "non-finite gradient on parameter '" + name +
                      "' (injected outside the autograd tape)";
        break;
      }
      if (!IsFinite(parameter.value())) {
        description = "non-finite value in parameter '" + name + "'";
        break;
      }
    }
  }
  clear_grads();
  return description;
}

}  // namespace autocts::numerics
