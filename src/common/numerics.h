// Numerical-health guard layer: cheap non-finite scans over tensors, a
// per-step HealthMonitor that watches losses / gradient norms / parameter
// tensors, the RecoveryOptions policy knobs shared by models::Trainer and
// core::JointSearcher, and an attribution helper that re-runs a diverged
// computation under the autograd numeric trace to name the first op that
// produced a non-finite value.
//
// Rationale: DARTS-style bi-level search is prone to numerical collapse
// (exploding architecture gradients, softmax saturation at low temperature,
// NaN losses), and IEEE comparison semantics make the failure silent — for
// example `NaN > max_norm` is false, so an unguarded gradient clip passes a
// poisoned gradient straight into the optimizer. This layer detects those
// states the step they appear, and the recovery policy (skip the poisoned
// step, roll back to the last good snapshot, back off the learning rate,
// advance the RNG, retry a bounded number of times) turns them into
// recoverable events instead of hours of wasted compute. See DESIGN.md
// "Numerical health and divergence recovery".
#ifndef AUTOCTS_COMMON_NUMERICS_H_
#define AUTOCTS_COMMON_NUMERICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace autocts::numerics {

// True for normal, subnormal, and zero values; false for NaN and +-Inf.
inline bool IsFiniteValue(double value) {
  // Self-contained (no <cmath>) so it inlines everywhere; a NaN fails both
  // orderings and the Inf subtraction overflows the comparison.
  return value - value == 0.0;
}

// Number of NaN / +-Inf entries in `tensor` (0 for an undefined tensor).
// Parallel over fixed chunks, so the count is deterministic and the scan
// costs one pass at memory bandwidth.
int64_t CountNonFinite(const Tensor& tensor);

// True when every entry of `tensor` is finite (undefined counts as finite).
bool IsFinite(const Tensor& tensor);

// Index of the first parameter whose VALUE contains a non-finite entry, or
// -1 when all are finite.
int64_t FirstNonFiniteParameter(const std::vector<Variable>& parameters);

// Index of the first parameter whose accumulated GRADIENT contains a
// non-finite entry (parameters without a gradient are skipped), or -1.
int64_t FirstNonFiniteGradient(const std::vector<Variable>& parameters);

// --------------------------------------------------------------------------
// Per-step health monitoring.
// --------------------------------------------------------------------------

struct HealthConfig {
  // Rolling window of recent healthy loss values feeding the spike
  // detector.
  int64_t loss_window = 16;
  // A finite loss exceeding `loss_spike_factor` x the rolling-window mean
  // is flagged as a spike (softmax saturation and LR blow-ups show up here
  // one or two steps before the first NaN). Requires `min_loss_samples`
  // observations of warm-up; <= 0 disables the detector.
  double loss_spike_factor = 1e3;
  int64_t min_loss_samples = 4;
  // A finite pre-clip gradient norm above this is an explosion even though
  // clipping would bound it: the direction is already saturated noise.
  // <= 0 disables the bound.
  double max_grad_norm = 1e9;
};

enum class Anomaly {
  kNone = 0,
  kNonFiniteLoss,
  kLossSpike,
  kNonFiniteGradient,
  kGradientExplosion,
  kNonFiniteParameter,
};

// Stable lowercase name, e.g. "non-finite gradient".
const char* AnomalyName(Anomaly anomaly);

// Watches one training loop. All observers return the detected anomaly (or
// kNone) and never mutate the observed values; the caller decides how to
// react (skip / roll back / fail). Healthy observations feed the rolling
// loss window; anomalous ones do not, so one spike does not poison the
// baseline used to judge the next step.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = HealthConfig());

  // Checks a scalar loss: non-finite, or a spike against the rolling mean.
  Anomaly ObserveLoss(double loss);

  // Checks a pre-clip global gradient norm (as returned by
  // optim::ClipGradNorm) for non-finiteness or explosion.
  Anomaly ObserveGradientNorm(double pre_clip_norm);

  // Scans parameter values / accumulated gradients for non-finite entries.
  Anomaly CheckParameters(const std::vector<Variable>& parameters);
  Anomaly CheckGradients(const std::vector<Variable>& parameters);

  // Clears the rolling loss window; call after a rollback so stale history
  // does not judge the retried trajectory.
  void Reset();

  // Total anomalies flagged over the monitor's lifetime (survives Reset).
  int64_t anomalies_observed() const { return anomalies_; }

  const HealthConfig& config() const { return config_; }

 private:
  Anomaly Flag(Anomaly anomaly);

  HealthConfig config_;
  std::vector<double> window_;  // ring buffer of recent healthy losses
  int64_t window_pos_ = 0;
  int64_t window_count_ = 0;
  double window_sum_ = 0.0;
  int64_t anomalies_ = 0;
};

// --------------------------------------------------------------------------
// Recovery policy knobs (shared by models::Trainer and core::JointSearcher;
// the state machines live in the respective loops, see DESIGN.md).
// --------------------------------------------------------------------------

struct RecoveryOptions {
  // Master switch. Disabled (the default), a detected anomaly makes the
  // Status-returning train/search entry points fail fast with an
  // attribution message instead of recovering.
  bool enabled = false;
  // Rollbacks to the last good snapshot before the run gives up.
  int64_t max_recoveries = 3;
  // Poisoned optimizer steps skipped in a row before a skip escalates to a
  // rollback (a single bad batch is cheaper to skip than to roll back).
  int64_t max_consecutive_skips = 8;
  // Multiplier applied to every learning rate on each rollback.
  double lr_backoff = 0.5;
  // Searcher only: batches between in-memory last-good snapshots.
  int64_t snapshot_every_n_batches = 8;
};

// --------------------------------------------------------------------------
// Divergence attribution.
// --------------------------------------------------------------------------

// Re-runs `loss_fn` (forward + backward) under the autograd numeric trace
// (see autograd/variable.h) and describes the first source of non-finite
// values: the producing op when one exists on the tape, otherwise the first
// named parameter whose gradient or value is non-finite (e.g. corruption
// injected outside the tape). Clears the parameters' gradients before and
// after, so it is safe to call between optimizer steps. `post_backward`
// (optional) replays any out-of-tape mutation of the original failing step,
// such as a fault-injection hook.
std::string AttributeDivergence(
    const std::function<Variable()>& loss_fn,
    const std::vector<std::pair<std::string, Variable>>& named_parameters,
    const std::function<void()>& post_backward = nullptr);

}  // namespace autocts::numerics

#endif  // AUTOCTS_COMMON_NUMERICS_H_
