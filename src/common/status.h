// Minimal Status / StatusOr error-reporting types (RocksDB / Abseil style).
// Used for recoverable errors (I/O, parsing); programming errors use the
// AUTOCTS_CHECK macros instead.
#ifndef AUTOCTS_COMMON_STATUS_H_
#define AUTOCTS_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace autocts {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kInternal = 4,
  // Cooperative interruption (common/cancellation.h): the operation was
  // asked to stop (signal-driven shutdown) or exceeded its wall/step
  // budget. Not failures of the work itself — callers checkpoint and exit,
  // or record the budget overrun, instead of treating these as errors.
  kCancelled = 5,
  kDeadlineExceeded = 6,
  // Transient resource failure worth retrying (common/fault.h retry
  // policies treat kUnavailable and kInternal as retryable I/O errors).
  kUnavailable = 7,
};

// Value-semantic result of an operation that can fail.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable representation, e.g. "InvalidArgument: bad shape".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error status.
      : status_(std::move(status)) {
    AUTOCTS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value)  // NOLINT: implicit from value.
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& {
    AUTOCTS_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    AUTOCTS_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    AUTOCTS_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace autocts

#endif  // AUTOCTS_COMMON_STATUS_H_
