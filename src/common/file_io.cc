#include "common/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fault.h"
#include "common/logging.h"

namespace autocts {
namespace {

// Table-driven CRC-32 (reflected 0xEDB88320 = reversed IEEE polynomial).
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static const bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

std::string ErrnoText(int error_number, bool injected) {
  std::string text = std::strerror(error_number);
  if (injected) text += " (injected)";
  return text;
}

// Best-effort removal of a temp file on a failure path. Consumes the
// "unlink" fault seam so tests can exercise cleanup failing too; a leftover
// ".tmp" is harmless (never read, overwritten by the next attempt) so this
// only warns.
void BestEffortRemove(const std::string& path) {
  if (auto fault = fault::Consume("unlink")) {
    AUTOCTS_LOG(WARNING) << "cannot remove temp file " << path << ": "
                         << ErrnoText(fault->error_number, true);
    return;
  }
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    AUTOCTS_LOG(WARNING) << "cannot remove temp file " << path << ": "
                         << std::strerror(errno);
  }
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& text) {
  return Crc32(text.data(), text.size());
}

bool FileExists(const std::string& path) {
  struct stat buffer;
  return ::stat(path.c_str(), &buffer) == 0;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  if (auto fault = fault::Consume("open")) {
    return Status::Unavailable("cannot open: " + path + ": " +
                               ErrnoText(fault->error_number, true));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // NotFound only for a genuinely missing file; everything else (EACCES,
    // EMFILE, ...) is a transient environment problem, not absence.
    if (!FileExists(path)) {
      return Status::NotFound("cannot open: " + path + ": " +
                              std::strerror(ENOENT));
    }
    return Status::Unavailable("cannot open: " + path + ": " +
                               std::strerror(errno));
  }
  if (auto fault = fault::Consume("read")) {
    return Status::Unavailable("read failed: " + path + ": " +
                               ErrnoText(fault->error_number, true));
  }
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  if (in.bad()) {
    return Status::Unavailable("read failed: " + path + ": " +
                               std::strerror(errno));
  }
  return content;
}

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool keep_previous) {
  const std::string tmp_path = path + ".tmp";

  // 1. Open the temp file.
  std::FILE* file = nullptr;
  if (auto fault = fault::Consume("open")) {
    return Status::Unavailable("cannot open for writing: " + tmp_path + ": " +
                               ErrnoText(fault->error_number, true));
  }
  file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open for writing: " + tmp_path + ": " +
                               std::strerror(errno));
  }

  // 2. Write the content. An injected SHORT write persists a truncated
  // prefix (flushed, so it is really on disk) before failing — the shape a
  // real ENOSPC mid-write leaves behind.
  if (auto fault = fault::Consume("write")) {
    if (fault->short_write) {
      const size_t prefix = content.size() / 2;
      if (prefix > 0) std::fwrite(content.data(), 1, prefix, file);
      std::fflush(file);
    }
    std::fclose(file);
    BestEffortRemove(tmp_path);
    return Status::Unavailable(
        std::string(fault->short_write ? "short write: " : "write failed: ") +
        tmp_path + ": " + ErrnoText(fault->error_number, true));
  }
  const size_t written =
      content.empty() ? 0
                      : std::fwrite(content.data(), 1, content.size(), file);
  if (written != content.size()) {
    const int error_number = errno;
    std::fclose(file);
    BestEffortRemove(tmp_path);
    return Status::Unavailable("write failed: " + tmp_path + " (" +
                               std::to_string(written) + "/" +
                               std::to_string(content.size()) + " bytes): " +
                               std::strerror(error_number));
  }
  if (std::fflush(file) != 0) {
    const int error_number = errno;
    std::fclose(file);
    BestEffortRemove(tmp_path);
    return Status::Unavailable("flush failed: " + tmp_path + ": " +
                               std::strerror(error_number));
  }
  // fsync before rename: otherwise a power loss can surface the new name
  // with stale (empty) contents.
  if (::fsync(fileno(file)) != 0) {
    const int error_number = errno;
    std::fclose(file);
    BestEffortRemove(tmp_path);
    return Status::Unavailable("fsync failed: " + tmp_path + ": " +
                               std::strerror(error_number));
  }

  // 3. Close. A failing close can mean buffered data never landed, so it is
  // a write failure, not a formality.
  bool close_failed = false;
  int close_errno = 0;
  bool close_injected = false;
  if (auto fault = fault::Consume("close")) {
    close_failed = true;
    close_errno = fault->error_number;
    close_injected = true;
    std::fclose(file);
  } else if (std::fclose(file) != 0) {
    close_failed = true;
    close_errno = errno;
  }
  if (close_failed) {
    BestEffortRemove(tmp_path);
    return Status::Unavailable("close failed: " + tmp_path + ": " +
                               ErrnoText(close_errno, close_injected));
  }

  // 4. Rotate the current generation to ".prev".
  const std::string prev_path = path + ".prev";
  const bool rotated = keep_previous && FileExists(path);
  if (rotated) {
    bool rename_failed = false;
    int rename_errno = 0;
    bool injected = false;
    if (auto fault = fault::Consume("rename")) {
      rename_failed = true;
      rename_errno = fault->error_number;
      injected = true;
    } else if (std::rename(path.c_str(), prev_path.c_str()) != 0) {
      rename_failed = true;
      rename_errno = errno;
    }
    if (rename_failed) {
      BestEffortRemove(tmp_path);
      return Status::Unavailable("cannot rotate previous generation: " + path +
                                 " -> " + prev_path + ": " +
                                 ErrnoText(rename_errno, injected));
    }
  }

  // 5. Publish. If this rename fails after a successful rotate, `path`
  // would vanish (the old generation sits at ".prev"), so roll the rotate
  // back best-effort before reporting — readers keep finding `path` either
  // way, and a retry redoes the whole sequence from a clean state.
  {
    bool rename_failed = false;
    int rename_errno = 0;
    bool injected = false;
    if (auto fault = fault::Consume("rename")) {
      rename_failed = true;
      rename_errno = fault->error_number;
      injected = true;
    } else if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
      rename_failed = true;
      rename_errno = errno;
    }
    if (rename_failed) {
      if (rotated && std::rename(prev_path.c_str(), path.c_str()) != 0) {
        AUTOCTS_LOG(WARNING) << "cannot roll back rotation " << prev_path
                             << " -> " << path << ": " << std::strerror(errno);
      }
      BestEffortRemove(tmp_path);
      return Status::Unavailable("cannot publish: " + tmp_path + " -> " +
                                 path + ": " +
                                 ErrnoText(rename_errno, injected));
    }
  }
  return Status::Ok();
}

}  // namespace autocts
