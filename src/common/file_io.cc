#include "common/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

namespace autocts {
namespace {

// Table-driven CRC-32 (reflected 0xEDB88320 = reversed IEEE polynomial).
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static const bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& text) {
  return Crc32(text.data(), text.size());
}

bool FileExists(const std::string& path) {
  struct stat buffer;
  return ::stat(path.c_str(), &buffer) == 0;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  if (in.bad()) return Status::Internal("read failed: " + path);
  return content;
}

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       bool keep_previous) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + tmp_path + ": " +
                            std::strerror(errno));
  }
  const size_t written = content.empty()
                             ? 0
                             : std::fwrite(content.data(), 1, content.size(),
                                           file);
  bool ok = written == content.size();
  ok = std::fflush(file) == 0 && ok;
  // fsync before rename: otherwise a power loss can surface the new name
  // with stale (empty) contents.
  ok = ::fsync(fileno(file)) == 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::Internal("write failed: " + tmp_path);
  }
  if (keep_previous && FileExists(path)) {
    const std::string prev_path = path + ".prev";
    if (std::rename(path.c_str(), prev_path.c_str()) != 0) {
      return Status::Internal("cannot rotate previous generation: " + path +
                              " -> " + prev_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot publish: " + tmp_path + " -> " + path);
  }
  return Status::Ok();
}

}  // namespace autocts
