#include "common/signal_handler.h"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace autocts {
namespace {

std::atomic<CancellationToken*> g_token{nullptr};
std::atomic<int> g_signal{0};

void HandleShutdownSignal(int signal_number) {
  const int previous = g_signal.exchange(signal_number);
  if (previous != 0) {
    // Second signal: the graceful path is taking too long (or is wedged).
    // _Exit is async-signal-safe and skips atexit; the atomic checkpoint
    // protocol means the last published generation is still intact.
    std::_Exit(128 + signal_number);
  }
  CancellationToken* token = g_token.load(std::memory_order_acquire);
  if (token != nullptr) token->Cancel(CancelReason::kShutdown);
}

}  // namespace

void InstallShutdownHandlers(CancellationToken* token) {
  g_token.store(token, std::memory_order_release);
  g_signal.store(0);
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking calls should wake with EINTR so the loops can
  // notice the token promptly.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void UninstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = SIG_DFL;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  g_token.store(nullptr, std::memory_order_release);
  g_signal.store(0);
}

int LastShutdownSignal() { return g_signal.load(); }

int ShutdownExitCode() {
  const int signal_number = LastShutdownSignal();
  return signal_number == 0 ? 0 : 128 + signal_number;
}

}  // namespace autocts
