// Deterministic parallel-execution layer: a lazily-initialized fixed thread
// pool with a chunked ParallelFor primitive.
//
// Determinism contract: ParallelFor partitions [begin, end) into fixed-size
// chunks of `grain` elements whose boundaries depend only on (begin, end,
// grain) — never on the thread count or on scheduling. Kernels that write
// disjoint output ranges per chunk, or that combine per-chunk partials in
// chunk-index order (see ParallelSum), therefore produce bit-identical
// results for any AUTOCTS_NUM_THREADS setting.
#ifndef AUTOCTS_COMMON_PARALLEL_H_
#define AUTOCTS_COMMON_PARALLEL_H_

#include <cstdint>
#include <memory>
#include <type_traits>

namespace autocts {

namespace internal {

// Non-owning callable reference: two raw pointers, trivially copyable,
// never allocates. ParallelFor/ParallelSum take their kernels through this
// instead of std::function because a captureful lambda rarely fits
// std::function's small buffer, and the conversion at every kernel
// invocation was one heap allocation per tensor op in the search inner
// loop (bench/bench_alloc.cc counts them). The referent must outlive the
// call — trivially true here, since both primitives block until done.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<Fn>>,
                                FunctionRef>>>
  FunctionRef(Fn&& fn)  // NOLINT: implicit so call sites keep passing lambdas
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(fn)))),
        call_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<Fn>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(object_, std::forward<Args>(args)...);
  }

  bool defined() const { return call_ != nullptr; }

 private:
  void* object_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace internal

// Number of threads ParallelFor spreads work across. Initialized on first
// use from AUTOCTS_NUM_THREADS (clamped to [1, 64]); defaults to the
// hardware concurrency.
int64_t NumThreads();

// Overrides the thread count, recreating the pool if it shrinks or grows.
// Intended for tests and benchmarks; must not be called concurrently with a
// running ParallelFor.
void SetNumThreads(int64_t n);

// Invokes fn(chunk_begin, chunk_end) for every chunk of the fixed
// partition of [begin, end) into `grain`-sized pieces (the last chunk may
// be short), spread across the pool. The calling thread participates, so a
// serial environment degrades to an in-order loop over the same chunks.
// `fn` must be safe to run concurrently on disjoint chunks. Nested calls
// from inside a chunk run serially on the calling worker. Blocks until
// every chunk has run, so `fn` is borrowed, never copied.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 internal::FunctionRef<void(int64_t, int64_t)> fn);

// Deterministic parallel sum reduction: evaluates chunk_sum over every
// fixed `grain`-sized chunk of [begin, end) and adds the partial results in
// chunk-index order, so the floating-point association is independent of
// the thread count.
double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   internal::FunctionRef<double(int64_t, int64_t)> chunk_sum);

// Cumulative scheduling counters since process start, for the
// observability layer's pool-occupancy metric. Counters only grow; sample
// before and after a region and subtract to measure it.
// worker_chunks/chunks is the fraction of pool-dispatched work actually
// executed by pool workers (the rest ran on the calling thread);
// serial_chunks counts chunks that took the serial path (single-thread
// pool, nested calls, or single-chunk ranges).
struct PoolStats {
  int64_t jobs = 0;
  int64_t chunks = 0;
  int64_t worker_chunks = 0;
  int64_t serial_chunks = 0;
};
PoolStats GetPoolStats();

}  // namespace autocts

#endif  // AUTOCTS_COMMON_PARALLEL_H_
