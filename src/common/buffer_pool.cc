#include "common/buffer_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/metrics_registry.h"

namespace autocts {
namespace {

bool PoolEnabledFromEnv() {
  const char* value = std::getenv("AUTOCTS_TENSOR_POOL");
  return value == nullptr || std::string(value) != "0";
}

}  // namespace

namespace internal {

void ReleaseBufferBlock(BufferBlock* block) {
  if (block->bucket < 0) {
    delete block;
    return;
  }
  BufferPool::Global().Release(block);
}

}  // namespace internal

double BufferPoolStats::hit_rate() const {
  const int64_t pooled = hits + misses;
  return pooled == 0 ? 0.0 : static_cast<double>(hits) / pooled;
}

BufferPool::BufferPool() : enabled_(PoolEnabledFromEnv()) {}

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool();  // leaked: see header
  return *pool;
}

int BufferPool::BucketIndex(int64_t n) {
  int64_t capacity = int64_t{1} << kMinShift;
  for (int bucket = 0; bucket < kNumBuckets; ++bucket, capacity <<= 1) {
    if (n <= capacity) return bucket;
  }
  return -1;
}

int64_t BufferPool::BucketCapacity(int bucket) {
  AUTOCTS_CHECK(bucket >= 0 && bucket < kNumBuckets)
      << "bucket out of range: " << bucket;
  return int64_t{1} << (kMinShift + bucket);
}

BufferRef BufferPool::AcquireBlock(int64_t n, bool zero_fill) {
  AUTOCTS_CHECK(n >= 0) << "negative buffer size: " << n;
  const int bucket_index = enabled() ? BucketIndex(n) : -1;
  if (bucket_index < 0) {
    bypass_.fetch_add(1, std::memory_order_relaxed);
    auto* block = new internal::BufferBlock();
    // Unpooled blocks are exact-sized; value-init already zero-fills.
    block->storage.resize(static_cast<size_t>(n));
    return BufferRef(block);
  }

  Bucket& bucket = buckets_[bucket_index];
  internal::BufferBlock* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    if (!bucket.free.empty()) {
      block = bucket.free.back();
      bucket.free.pop_back();
      ++bucket.hits;
    } else {
      ++bucket.misses;
    }
    ++bucket.outstanding;
  }
  if (block == nullptr) {
    block = new internal::BufferBlock();
    block->bucket = bucket_index;
    block->storage.resize(static_cast<size_t>(BucketCapacity(bucket_index)));
  } else {
    block->refs.store(1, std::memory_order_relaxed);
  }
  if (zero_fill && n > 0) {
    // Only the first n elements are the tensor's payload; the bucket tail
    // is never read, so it keeps recycled contents.
    std::memset(block->storage.data(), 0, static_cast<size_t>(n) * sizeof(double));
  }
  return BufferRef(block);
}

BufferRef BufferPool::Acquire(int64_t n) {
  return AcquireBlock(n, /*zero_fill=*/true);
}

BufferRef BufferPool::AcquireUninitialized(int64_t n) {
  return AcquireBlock(n, /*zero_fill=*/false);
}

BufferRef BufferPool::Adopt(std::vector<double> values) {
  bypass_.fetch_add(1, std::memory_order_relaxed);
  auto* block = new internal::BufferBlock();
  block->storage = std::move(values);
  return BufferRef(block);
}

void BufferPool::Release(internal::BufferBlock* block) {
  Bucket& bucket = buckets_[block->bucket];
  bool recycle = false;
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    --bucket.outstanding;
    if (static_cast<int64_t>(bucket.free.size()) <
        MaxFreeBlocks(block->bucket)) {
      bucket.free.push_back(block);
      ++bucket.returns;
      recycle = true;
    } else {
      ++bucket.drops;
    }
  }
  if (!recycle) delete block;
}

BufferPoolStats BufferPool::Stats() const {
  BufferPoolStats stats;
  stats.bypass = bypass_.load(std::memory_order_relaxed);
  stats.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    const Bucket& bucket = buckets_[i];
    BufferPoolBucketStats& out = stats.buckets[i];
    out.capacity = BucketCapacity(i);
    std::lock_guard<std::mutex> lock(bucket.mutex);
    out.hits = bucket.hits;
    out.misses = bucket.misses;
    out.returns = bucket.returns;
    out.drops = bucket.drops;
    out.outstanding = bucket.outstanding;
    out.free = static_cast<int64_t>(bucket.free.size());
    stats.hits += out.hits;
    stats.misses += out.misses;
    stats.returns += out.returns;
    stats.drops += out.drops;
    stats.outstanding += out.outstanding;
    stats.cached_bytes += out.free * out.capacity *
                          static_cast<int64_t>(sizeof(double));
  }
  return stats;
}

void BufferPool::ResetStats() {
  bypass_.store(0, std::memory_order_relaxed);
  for (Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    bucket.hits = 0;
    bucket.misses = 0;
    bucket.returns = 0;
    bucket.drops = 0;
  }
}

void BufferPool::Trim() {
  for (Bucket& bucket : buckets_) {
    std::vector<internal::BufferBlock*> parked;
    {
      std::lock_guard<std::mutex> lock(bucket.mutex);
      parked.swap(bucket.free);
      bucket.drops += static_cast<int64_t>(parked.size());
    }
    for (internal::BufferBlock* block : parked) delete block;
  }
}

std::string BufferPool::StatsString() const {
  const BufferPoolStats stats = Stats();
  std::ostringstream out;
  out << "tensor pool: hits=" << stats.hits << " misses=" << stats.misses
      << " hit_rate=" << stats.hit_rate() << " bypass=" << stats.bypass
      << " returns=" << stats.returns << " drops=" << stats.drops
      << " outstanding=" << stats.outstanding
      << " cached_bytes=" << stats.cached_bytes << "\n";
  for (const BufferPoolBucketStats& bucket : stats.buckets) {
    if (bucket.hits == 0 && bucket.misses == 0 && bucket.free == 0) continue;
    out << "  cap=" << bucket.capacity << " hits=" << bucket.hits
        << " misses=" << bucket.misses << " returns=" << bucket.returns
        << " drops=" << bucket.drops << " outstanding=" << bucket.outstanding
        << " free=" << bucket.free << "\n";
  }
  return out.str();
}

namespace {

std::string BucketMetricName(int bucket, const char* field) {
  std::ostringstream name;
  name << "wall/tensor_pool/b" << (BufferPool::kMinShift + bucket) << "/"
       << field;
  return name.str();
}

}  // namespace

void RegisterBufferPoolMetrics(obs::MetricsRegistry* registry) {
  // Registration fixes the CSV column order, so every column — including
  // all per-bucket ones — is created up front: rows stay rectangular and a
  // checkpoint-resumed registry has the same column set as a fresh one.
  registry->GetGauge("wall/tensor_pool/hits");
  registry->GetGauge("wall/tensor_pool/misses");
  registry->GetGauge("wall/tensor_pool/hit_rate");
  registry->GetGauge("wall/tensor_pool/bypass");
  registry->GetGauge("wall/tensor_pool/outstanding");
  registry->GetGauge("wall/tensor_pool/cached_bytes");
  for (int i = 0; i < BufferPool::kNumBuckets; ++i) {
    registry->GetGauge(BucketMetricName(i, "hits"));
    registry->GetGauge(BucketMetricName(i, "misses"));
    registry->GetGauge(BucketMetricName(i, "outstanding"));
  }
  UpdateBufferPoolMetrics(registry);
}

void UpdateBufferPoolMetrics(obs::MetricsRegistry* registry) {
  const BufferPoolStats stats = BufferPool::Global().Stats();
  registry->GetGauge("wall/tensor_pool/hits")
      ->Set(static_cast<double>(stats.hits));
  registry->GetGauge("wall/tensor_pool/misses")
      ->Set(static_cast<double>(stats.misses));
  registry->GetGauge("wall/tensor_pool/hit_rate")->Set(stats.hit_rate());
  registry->GetGauge("wall/tensor_pool/bypass")
      ->Set(static_cast<double>(stats.bypass));
  registry->GetGauge("wall/tensor_pool/outstanding")
      ->Set(static_cast<double>(stats.outstanding));
  registry->GetGauge("wall/tensor_pool/cached_bytes")
      ->Set(static_cast<double>(stats.cached_bytes));
  for (int i = 0; i < BufferPool::kNumBuckets; ++i) {
    const BufferPoolBucketStats& bucket = stats.buckets[i];
    registry->GetGauge(BucketMetricName(i, "hits"))
        ->Set(static_cast<double>(bucket.hits));
    registry->GetGauge(BucketMetricName(i, "misses"))
        ->Set(static_cast<double>(bucket.misses));
    registry->GetGauge(BucketMetricName(i, "outstanding"))
        ->Set(static_cast<double>(bucket.outstanding));
  }
}

}  // namespace autocts
