#include "metrics/metrics.h"

#include <cmath>

#include "common/constants.h"
#include "tensor/tensor_ops.h"

namespace autocts::metrics {

PointMetrics ComputeMetrics(const Tensor& prediction, const Tensor& truth,
                            bool masked, double null_value) {
  AUTOCTS_CHECK(prediction.shape() == truth.shape())
      << ShapeToString(prediction.shape()) << " vs "
      << ShapeToString(truth.shape());
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  int64_t count = 0;
  int64_t ape_count = 0;
  const double* p = prediction.data();
  const double* y = truth.data();
  for (int64_t i = 0; i < prediction.size(); ++i) {
    if (masked && std::abs(y[i] - null_value) < kNullMatchTolerance) continue;
    const double error = p[i] - y[i];
    abs_sum += std::abs(error);
    sq_sum += error * error;
    if (std::abs(y[i]) > 1e-6) {
      ape_sum += std::abs(error / y[i]);
      ++ape_count;
    }
    ++count;
  }
  PointMetrics result;
  if (count > 0) {
    result.mae = abs_sum / static_cast<double>(count);
    result.rmse = std::sqrt(sq_sum / static_cast<double>(count));
  }
  if (ape_count > 0) result.mape = ape_sum / static_cast<double>(ape_count);
  return result;
}

PointMetrics ComputeHorizonMetrics(const Tensor& prediction,
                                   const Tensor& truth, int64_t horizon_index,
                                   bool masked, double null_value) {
  AUTOCTS_CHECK_GE(prediction.ndim(), 2);
  const Tensor p = Slice(prediction, /*axis=*/1, horizon_index, 1);
  const Tensor y = Slice(truth, /*axis=*/1, horizon_index, 1);
  return ComputeMetrics(p, y, masked, null_value);
}

double Rrse(const Tensor& prediction, const Tensor& truth) {
  AUTOCTS_CHECK(prediction.shape() == truth.shape());
  if (prediction.size() == 0) return 0.0;
  const double mean = MeanAll(truth);
  double numerator = 0.0;
  double denominator = 0.0;
  const double* p = prediction.data();
  const double* y = truth.data();
  for (int64_t i = 0; i < prediction.size(); ++i) {
    numerator += (p[i] - y[i]) * (p[i] - y[i]);
    denominator += (y[i] - mean) * (y[i] - mean);
  }
  if (denominator < 1e-12) {
    // Constant truth: the relative denominator degenerates. Returning 0
    // regardless of the errors (the old behavior) would score a wrong
    // prediction as perfect; fall back to plain RMSE, which is finite,
    // deterministic, and still ranks worse predictions higher.
    if (numerator < 1e-12) return 0.0;
    return std::sqrt(numerator / static_cast<double>(prediction.size()));
  }
  return std::sqrt(numerator / denominator);
}

double Corr(const Tensor& prediction, const Tensor& truth) {
  AUTOCTS_CHECK(prediction.shape() == truth.shape());
  AUTOCTS_CHECK_GE(prediction.ndim(), 2);
  // Degenerate extents: no samples (or a zero-sized trailing axis) leave
  // nothing to correlate — and would otherwise divide by dim(0) == 0 below.
  // Single-sample input always has zero variance per series, so every
  // series would be skipped anyway; return the same deterministic 0.
  if (prediction.size() == 0 || prediction.dim(0) <= 1) return 0.0;
  // View as [samples, series]: the product of all leading axes are samples;
  // the trailing axes after the sample axis collapse into series columns.
  const int64_t series = prediction.size() / prediction.dim(0);
  const int64_t samples = prediction.dim(0);
  const Tensor p = prediction.Reshape({samples, series});
  const Tensor y = truth.Reshape({samples, series});
  double total = 0.0;
  int64_t used = 0;
  for (int64_t s = 0; s < series; ++s) {
    double mean_p = 0.0;
    double mean_y = 0.0;
    for (int64_t i = 0; i < samples; ++i) {
      mean_p += p.data()[i * series + s];
      mean_y += y.data()[i * series + s];
    }
    mean_p /= static_cast<double>(samples);
    mean_y /= static_cast<double>(samples);
    double cov = 0.0;
    double var_p = 0.0;
    double var_y = 0.0;
    for (int64_t i = 0; i < samples; ++i) {
      const double dp = p.data()[i * series + s] - mean_p;
      const double dy = y.data()[i * series + s] - mean_y;
      cov += dp * dy;
      var_p += dp * dp;
      var_y += dy * dy;
    }
    if (var_p < 1e-12 || var_y < 1e-12) continue;
    total += cov / std::sqrt(var_p * var_y);
    ++used;
  }
  return used > 0 ? total / static_cast<double>(used) : 0.0;
}

}  // namespace autocts::metrics
