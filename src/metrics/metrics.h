// Forecast accuracy metrics (Section 4.1.2 of the paper):
//   multi-step: MAE, RMSE, MAPE (masked at zero readings, as in the traffic
//   forecasting literature the paper follows);
//   single-step: RRSE (root relative squared error) and CORR (empirical
//   correlation coefficient), as defined by LSTNet.
#ifndef AUTOCTS_METRICS_METRICS_H_
#define AUTOCTS_METRICS_METRICS_H_

#include "tensor/tensor.h"

namespace autocts::metrics {

struct PointMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // Fraction (0.069 == 6.9%).
};

// Computes MAE/RMSE/MAPE between equally shaped tensors, ignoring entries
// whose TRUE value equals `null_value` (within kNullMatchTolerance, shared
// with data::StandardScaler's mask_null fit) when `masked` is set.
PointMetrics ComputeMetrics(const Tensor& prediction, const Tensor& truth,
                            bool masked = true, double null_value = 0.0);

// Same, restricted to one horizon step: slices axis 1 of [B, Q, N, 1]
// tensors at `horizon_index` (0-based). Used for the 15/30/60-min columns
// of Tables 5, 9, 10, 17-20, 35, 36.
PointMetrics ComputeHorizonMetrics(const Tensor& prediction,
                                   const Tensor& truth, int64_t horizon_index,
                                   bool masked = true,
                                   double null_value = 0.0);

// Root relative squared error over all elements:
//   sqrt(sum (p - y)^2) / sqrt(sum (y - mean(y))^2).
// Degenerate truth (constant series, denominator ~ 0) falls back to plain
// RMSE instead of returning 0, so wrong predictions never score perfect
// and no NaN/Inf can reach the search validation loss.
double Rrse(const Tensor& prediction, const Tensor& truth);

// Empirical correlation coefficient: the mean over series (the last
// meaningful axis is flattened so inputs are viewed as [samples, series])
// of the Pearson correlation between predicted and true trajectories.
// Zero-variance series are skipped; empty or single-sample input returns
// a deterministic 0 rather than dividing by zero.
double Corr(const Tensor& prediction, const Tensor& truth);

}  // namespace autocts::metrics

#endif  // AUTOCTS_METRICS_METRICS_H_
