// Adam optimizer (Kingma & Ba, 2014) with decoupled-style weight decay
// applied as L2 on the gradient, matching the paper's training setup
// (Section 4.1.4: distinct lr / betas / weight decay for architecture
// parameters Theta and network weights w).
#ifndef AUTOCTS_OPTIM_ADAM_H_
#define AUTOCTS_OPTIM_ADAM_H_

#include <vector>

#include "optim/optimizer.h"

namespace autocts::optim {

class Adam : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Variable> parameters, Options options);

  void Step() override;

 private:
  Options options_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace autocts::optim

#endif  // AUTOCTS_OPTIM_ADAM_H_
