// Adam optimizer (Kingma & Ba, 2014) with decoupled-style weight decay
// applied as L2 on the gradient, matching the paper's training setup
// (Section 4.1.4: distinct lr / betas / weight decay for architecture
// parameters Theta and network weights w).
#ifndef AUTOCTS_OPTIM_ADAM_H_
#define AUTOCTS_OPTIM_ADAM_H_

#include <vector>

#include "common/status.h"
#include "optim/optimizer.h"

namespace autocts::optim {

// The complete mutable state of an Adam instance: the step counter driving
// bias correction and the per-parameter moment estimates. Moment slots stay
// undefined until the matching parameter first receives a gradient (lazy
// initialization), and that defined/undefined pattern is part of the state.
// Serialized by core/search_checkpoint.{h,cc} for crash-safe search resume.
struct AdamState {
  int64_t step_count = 0;
  std::vector<Tensor> first_moment;   // slot-aligned with the parameter list
  std::vector<Tensor> second_moment;  // undefined entry = slot never stepped
};

class Adam : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Variable> parameters, Options options);

  void Step() override;

  // Deep-copies the optimizer state (moments + step count).
  AdamState ExportState() const;
  // Restores a previously exported state. Validates slot counts and moment
  // shapes against the parameter list before mutating anything, so a failed
  // import leaves the optimizer untouched. The next Step() after a
  // successful import is bit-identical to the step the exporting optimizer
  // would have taken (including the step-count bias correction).
  Status ImportState(const AdamState& state);

  int64_t step_count() const { return step_count_; }

 private:
  Options options_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace autocts::optim

#endif  // AUTOCTS_OPTIM_ADAM_H_
