// Gradient-descent optimizers over Variable parameters.
#ifndef AUTOCTS_OPTIM_OPTIMIZER_H_
#define AUTOCTS_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace autocts::optim {

// Base optimizer; owns handles (shared aliases) to the parameters it steps.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> parameters);
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients; parameters with no
  // gradient are skipped.
  virtual void Step() = 0;

  // Clears all accumulated gradients.
  void ZeroGrad();

  // Replaces the learning rate (used by LR schedules).
  void SetLearningRate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Variable> parameters_;
  double learning_rate_ = 1e-3;
};

// Rescales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clipping norm.
double ClipGradNorm(const std::vector<Variable>& parameters, double max_norm);

}  // namespace autocts::optim

#endif  // AUTOCTS_OPTIM_OPTIMIZER_H_
