// Gradient-descent optimizers over Variable parameters.
#ifndef AUTOCTS_OPTIM_OPTIMIZER_H_
#define AUTOCTS_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace autocts::optim {

// Base optimizer; owns handles (shared aliases) to the parameters it steps.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> parameters);
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients; parameters with no
  // gradient are skipped.
  virtual void Step() = 0;

  // Clears all accumulated gradients.
  void ZeroGrad();

  // Replaces the learning rate (used by LR schedules).
  void SetLearningRate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Variable> parameters_;
  double learning_rate_ = 1e-3;
};

// Rescales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clipping norm. When that norm is non-finite (a NaN or
// +-Inf gradient somewhere) the gradients are left untouched — scaling
// cannot repair them — and the non-finite norm is returned for the caller
// to detect; prefer ClipGradNormChecked in step loops.
double ClipGradNorm(const std::vector<Variable>& parameters, double max_norm);

// Clips like ClipGradNorm and reports whether the step is safe to apply:
// returns true when the pre-clip norm was finite (gradients clipped as
// usual), false when it was NaN or +-Inf (gradients untouched; the caller
// must skip the optimizer step — see common/numerics.h for the recovery
// policy built on top). `pre_clip_norm` (optional) receives the norm.
bool ClipGradNormChecked(const std::vector<Variable>& parameters,
                         double max_norm, double* pre_clip_norm = nullptr);

}  // namespace autocts::optim

#endif  // AUTOCTS_OPTIM_OPTIMIZER_H_
