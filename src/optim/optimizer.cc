#include "optim/optimizer.h"

#include <cmath>

#include "common/trace.h"
#include "tensor/tensor_ops.h"

namespace autocts::optim {

Optimizer::Optimizer(std::vector<Variable> parameters)
    : parameters_(std::move(parameters)) {}

void Optimizer::ZeroGrad() {
  AUTOCTS_TRACE_SCOPE("optim/zero_grad");
  for (Variable& parameter : parameters_) parameter.ClearGrad();
}

double ClipGradNorm(const std::vector<Variable>& parameters, double max_norm) {
  double pre_clip_norm = 0.0;
  ClipGradNormChecked(parameters, max_norm, &pre_clip_norm);
  return pre_clip_norm;
}

bool ClipGradNormChecked(const std::vector<Variable>& parameters,
                         double max_norm, double* pre_clip_norm) {
  AUTOCTS_TRACE_SCOPE("optim/clip_grad_norm");
  AUTOCTS_CHECK_GT(max_norm, 0.0);
  double total_sq = 0.0;
  for (const Variable& parameter : parameters) {
    if (!parameter.has_grad()) continue;
    total_sq += SumSquares(parameter.grad());
  }
  const double total = std::sqrt(total_sq);
  if (pre_clip_norm != nullptr) *pre_clip_norm = total;
  // IEEE comparisons with NaN are false, so an unguarded `total > max_norm`
  // would pass a NaN norm through unclipped; an Inf norm is worse, scaling
  // every gradient by max_norm/Inf == 0 and turning Inf entries into NaN
  // (Inf * 0). Clipping cannot repair either state — leave the gradients
  // untouched and tell the caller to skip the step.
  if (!std::isfinite(total)) return false;
  if (total > max_norm) {
    const double scale = max_norm / (total + 1e-12);
    for (const Variable& parameter : parameters) {
      if (!parameter.has_grad()) continue;
      // Grad tensors are owned by the parameter nodes; scale in place.
      Tensor grad = parameter.grad();
      ScaleInPlace(&grad, scale);
    }
  }
  return true;
}

}  // namespace autocts::optim
