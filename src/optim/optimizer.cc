#include "optim/optimizer.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace autocts::optim {

Optimizer::Optimizer(std::vector<Variable> parameters)
    : parameters_(std::move(parameters)) {}

void Optimizer::ZeroGrad() {
  for (Variable& parameter : parameters_) parameter.ClearGrad();
}

double ClipGradNorm(const std::vector<Variable>& parameters, double max_norm) {
  AUTOCTS_CHECK_GT(max_norm, 0.0);
  double total_sq = 0.0;
  for (const Variable& parameter : parameters) {
    if (!parameter.has_grad()) continue;
    total_sq += SumSquares(parameter.grad());
  }
  const double total = std::sqrt(total_sq);
  if (total > max_norm) {
    const double scale = max_norm / (total + 1e-12);
    for (const Variable& parameter : parameters) {
      if (!parameter.has_grad()) continue;
      // Grad tensors are owned by the parameter nodes; scale in place.
      Tensor grad = parameter.grad();
      ScaleInPlace(&grad, scale);
    }
  }
  return total;
}

}  // namespace autocts::optim
