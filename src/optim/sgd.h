// Stochastic gradient descent with optional momentum and weight decay.
#ifndef AUTOCTS_OPTIM_SGD_H_
#define AUTOCTS_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"

namespace autocts::optim {

class Sgd : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Variable> parameters, Options options);

  void Step() override;

 private:
  Options options_;
  std::vector<Tensor> velocity_;
};

}  // namespace autocts::optim

#endif  // AUTOCTS_OPTIM_SGD_H_
