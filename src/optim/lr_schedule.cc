#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace autocts::optim {

ExponentialSchedule::ExponentialSchedule(double initial, double gamma,
                                         double floor)
    : initial_(initial), gamma_(gamma), floor_(floor) {
  AUTOCTS_CHECK_GT(gamma, 0.0);
}

double ExponentialSchedule::At(int64_t epoch) const {
  AUTOCTS_CHECK_GE(epoch, 0);
  return std::max(floor_, initial_ * std::pow(gamma_, static_cast<double>(epoch)));
}

CosineSchedule::CosineSchedule(double initial, double final_value,
                               int64_t total_epochs)
    : initial_(initial), final_(final_value), total_epochs_(total_epochs) {
  AUTOCTS_CHECK_GT(total_epochs, 0);
}

double CosineSchedule::At(int64_t epoch) const {
  AUTOCTS_CHECK_GE(epoch, 0);
  const double progress = std::min(
      1.0, static_cast<double>(epoch) / static_cast<double>(total_epochs_));
  return final_ +
         0.5 * (initial_ - final_) * (1.0 + std::cos(M_PI * progress));
}

}  // namespace autocts::optim
