#include "optim/sgd.h"

#include "tensor/tensor_ops.h"

namespace autocts::optim {

Sgd::Sgd(std::vector<Variable> parameters, Options options)
    : Optimizer(std::move(parameters)), options_(options) {
  learning_rate_ = options.learning_rate;
  velocity_.resize(parameters_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Variable& parameter = parameters_[i];
    if (!parameter.has_grad()) continue;
    Tensor update = parameter.grad().Clone();
    if (options_.weight_decay != 0.0) {
      AddInPlace(&update,
                 MulScalar(parameter.value(), options_.weight_decay));
    }
    if (options_.momentum != 0.0) {
      if (!velocity_[i].defined()) {
        velocity_[i] = Tensor::Zeros(parameter.shape());
      }
      ScaleInPlace(&velocity_[i], options_.momentum);
      AddInPlace(&velocity_[i], update);
      update = velocity_[i].Clone();
    }
    ScaleInPlace(&update, -learning_rate_);
    AddInPlace(&parameter.mutable_value(), update);
  }
}

}  // namespace autocts::optim
