#include "optim/adam.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace autocts::optim {

Adam::Adam(std::vector<Variable> parameters, Options options)
    : Optimizer(std::move(parameters)), options_(options) {
  learning_rate_ = options.learning_rate;
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
}

void Adam::Step() {
  ++step_count_;
  const double bias1 =
      1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 =
      1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Variable& parameter = parameters_[i];
    if (!parameter.has_grad()) continue;
    Tensor grad = parameter.grad().Clone();
    if (options_.weight_decay != 0.0) {
      AddInPlace(&grad, MulScalar(parameter.value(), options_.weight_decay));
    }
    if (!first_moment_[i].defined()) {
      first_moment_[i] = Tensor::Zeros(parameter.shape());
      second_moment_[i] = Tensor::Zeros(parameter.shape());
    }
    Tensor& m = first_moment_[i];
    Tensor& v = second_moment_[i];
    double* pm = m.data();
    double* pv = v.data();
    const double* pg = grad.data();
    double* pw = parameter.mutable_value().data();
    const int64_t n = grad.size();
    const double lr = learning_rate_;
    for (int64_t j = 0; j < n; ++j) {
      pm[j] = options_.beta1 * pm[j] + (1.0 - options_.beta1) * pg[j];
      pv[j] = options_.beta2 * pv[j] + (1.0 - options_.beta2) * pg[j] * pg[j];
      const double m_hat = pm[j] / bias1;
      const double v_hat = pv[j] / bias2;
      pw[j] -= lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace autocts::optim
