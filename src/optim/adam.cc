#include "optim/adam.h"

#include <cmath>

#include "common/trace.h"
#include "tensor/tensor_ops.h"

namespace autocts::optim {

Adam::Adam(std::vector<Variable> parameters, Options options)
    : Optimizer(std::move(parameters)), options_(options) {
  learning_rate_ = options.learning_rate;
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step_count = step_count_;
  state.first_moment.reserve(first_moment_.size());
  state.second_moment.reserve(second_moment_.size());
  for (const Tensor& m : first_moment_) {
    state.first_moment.push_back(m.defined() ? m.Clone() : Tensor());
  }
  for (const Tensor& v : second_moment_) {
    state.second_moment.push_back(v.defined() ? v.Clone() : Tensor());
  }
  return state;
}

Status Adam::ImportState(const AdamState& state) {
  if (state.step_count < 0) {
    return Status::InvalidArgument("negative Adam step count");
  }
  if (state.first_moment.size() != parameters_.size() ||
      state.second_moment.size() != parameters_.size()) {
    return Status::InvalidArgument(
        "Adam state slot count mismatch: state has " +
        std::to_string(state.first_moment.size()) + "/" +
        std::to_string(state.second_moment.size()) + ", optimizer has " +
        std::to_string(parameters_.size()));
  }
  for (size_t i = 0; i < parameters_.size(); ++i) {
    // A slot must carry both moments or neither, with the parameter's shape.
    if (state.first_moment[i].defined() != state.second_moment[i].defined()) {
      return Status::InvalidArgument("Adam moment pair mismatch at slot " +
                                     std::to_string(i));
    }
    if (state.first_moment[i].defined() &&
        (state.first_moment[i].shape() != parameters_[i].shape() ||
         state.second_moment[i].shape() != parameters_[i].shape())) {
      return Status::InvalidArgument("Adam moment shape mismatch at slot " +
                                     std::to_string(i));
    }
  }
  step_count_ = state.step_count;
  for (size_t i = 0; i < parameters_.size(); ++i) {
    first_moment_[i] = state.first_moment[i].defined()
                           ? state.first_moment[i].Clone()
                           : Tensor();
    second_moment_[i] = state.second_moment[i].defined()
                            ? state.second_moment[i].Clone()
                            : Tensor();
  }
  return Status::Ok();
}

void Adam::Step() {
  AUTOCTS_TRACE_SCOPE("adam/step");
  ++step_count_;
  const double bias1 =
      1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 =
      1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Variable& parameter = parameters_[i];
    if (!parameter.has_grad()) continue;
    Tensor grad = parameter.grad().Clone();
    if (options_.weight_decay != 0.0) {
      AddInPlace(&grad, MulScalar(parameter.value(), options_.weight_decay));
    }
    if (!first_moment_[i].defined()) {
      first_moment_[i] = Tensor::Zeros(parameter.shape());
      second_moment_[i] = Tensor::Zeros(parameter.shape());
    }
    Tensor& m = first_moment_[i];
    Tensor& v = second_moment_[i];
    double* pm = m.data();
    double* pv = v.data();
    const double* pg = grad.data();
    double* pw = parameter.mutable_value().data();
    const int64_t n = grad.size();
    const double lr = learning_rate_;
    for (int64_t j = 0; j < n; ++j) {
      pm[j] = options_.beta1 * pm[j] + (1.0 - options_.beta1) * pg[j];
      pv[j] = options_.beta2 * pv[j] + (1.0 - options_.beta2) * pg[j] * pg[j];
      const double m_hat = pm[j] / bias1;
      const double v_hat = pv[j] / bias2;
      pw[j] -= lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace autocts::optim
