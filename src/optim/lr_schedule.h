// Learning-rate schedules and the exponential temperature annealing used by
// the AutoCTS search (Section 3.2.2: tau starts at 5.0 and is multiplied by
// 0.9 per epoch until it reaches 0.001).
#ifndef AUTOCTS_OPTIM_LR_SCHEDULE_H_
#define AUTOCTS_OPTIM_LR_SCHEDULE_H_

#include <cstdint>

namespace autocts::optim {

// Multiplies the base value by gamma^epoch, optionally clamped at a floor.
class ExponentialSchedule {
 public:
  ExponentialSchedule(double initial, double gamma, double floor = 0.0);

  // Value at the given 0-based epoch.
  double At(int64_t epoch) const;

 private:
  double initial_;
  double gamma_;
  double floor_;
};

// Cosine decay from `initial` to `final` over `total_epochs`.
class CosineSchedule {
 public:
  CosineSchedule(double initial, double final_value, int64_t total_epochs);

  double At(int64_t epoch) const;

 private:
  double initial_;
  double final_;
  int64_t total_epochs_;
};

}  // namespace autocts::optim

#endif  // AUTOCTS_OPTIM_LR_SCHEDULE_H_
