#include "graph/adaptive_adjacency.h"

namespace autocts::graph {

AdaptiveAdjacency::AdaptiveAdjacency(int64_t num_nodes, int64_t embedding_dim,
                                     Rng* rng)
    : num_nodes_(num_nodes) {
  source_embedding_ = RegisterParameter(
      "source_embedding",
      Tensor::Randn({num_nodes, embedding_dim}, rng, 0.0, 0.1));
  target_embedding_ = RegisterParameter(
      "target_embedding",
      Tensor::Randn({num_nodes, embedding_dim}, rng, 0.0, 0.1));
}

Variable AdaptiveAdjacency::Forward() const {
  const Variable scores = ag::MatMul(
      source_embedding_, ag::Transpose(target_embedding_, 0, 1));
  return ag::Softmax(ag::Relu(scores), /*axis=*/-1);
}

Variable AdaptiveAdjacency::ForwardReverse() const {
  const Variable scores = ag::MatMul(
      target_embedding_, ag::Transpose(source_embedding_, 0, 1));
  return ag::Softmax(ag::Relu(scores), /*axis=*/-1);
}

}  // namespace autocts::graph
