// Learned ("adaptive") adjacency from node embeddings, as introduced by
// Graph WaveNet and used by AGCRN / MTGNN. This is the data-driven graph
// the paper refers to for datasets without a predefined adjacency matrix
// (Solar-Energy, Electricity; Section 4.1.1).
#ifndef AUTOCTS_GRAPH_ADAPTIVE_ADJACENCY_H_
#define AUTOCTS_GRAPH_ADAPTIVE_ADJACENCY_H_

#include "autograd/variable_ops.h"
#include "nn/module.h"

namespace autocts::graph {

// A_adapt = Softmax(ReLU(E1 E2^T)) with learnable embeddings E1, E2.
class AdaptiveAdjacency : public nn::Module {
 public:
  AdaptiveAdjacency(int64_t num_nodes, int64_t embedding_dim, Rng* rng);

  // Returns the differentiable [N, N] row-stochastic adjacency.
  Variable Forward() const;

  // The reverse-direction adjacency Softmax(ReLU(E2 E1^T)); used as the
  // backward random-walk matrix by the diffusion GCN when no predefined
  // graph exists.
  Variable ForwardReverse() const;

  int64_t num_nodes() const { return num_nodes_; }

 private:
  int64_t num_nodes_;
  Variable source_embedding_;  // [N, d]
  Variable target_embedding_;  // [N, d]
};

}  // namespace autocts::graph

#endif  // AUTOCTS_GRAPH_ADAPTIVE_ADJACENCY_H_
