#include "graph/adjacency.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace autocts::graph {

Tensor DistanceGaussianAdjacency(const Tensor& positions, double sigma,
                                 double threshold) {
  AUTOCTS_CHECK_EQ(positions.ndim(), 2);
  AUTOCTS_CHECK_EQ(positions.dim(1), 2);
  AUTOCTS_CHECK_GT(sigma, 0.0);
  const int64_t n = positions.dim(0);
  Tensor adjacency({n, n});
  const double* p = positions.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = p[i * 2] - p[j * 2];
      const double dy = p[i * 2 + 1] - p[j * 2 + 1];
      const double weight = std::exp(-(dx * dx + dy * dy) / (sigma * sigma));
      if (weight >= threshold) adjacency.data()[i * n + j] = weight;
    }
  }
  return adjacency;
}

Tensor RandomPositions(int64_t num_nodes, Rng* rng) {
  return Tensor::Rand({num_nodes, 2}, rng, 0.0, 1.0);
}

Tensor AddSelfLoops(const Tensor& adjacency) {
  AUTOCTS_CHECK_EQ(adjacency.ndim(), 2);
  const int64_t n = adjacency.dim(0);
  AUTOCTS_CHECK_EQ(adjacency.dim(1), n);
  Tensor result = adjacency.Clone();
  for (int64_t i = 0; i < n; ++i) result.data()[i * n + i] += 1.0;
  return result;
}

Tensor RowNormalize(const Tensor& adjacency) {
  const int64_t n = adjacency.dim(0);
  Tensor result = adjacency.Clone();
  for (int64_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (int64_t j = 0; j < n; ++j) degree += result.data()[i * n + j];
    if (degree <= 0.0) continue;
    for (int64_t j = 0; j < n; ++j) result.data()[i * n + j] /= degree;
  }
  return result;
}

Tensor SymNormalize(const Tensor& adjacency) {
  const int64_t n = adjacency.dim(0);
  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (int64_t j = 0; j < n; ++j) degree += adjacency.data()[i * n + j];
    inv_sqrt_degree[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }
  Tensor result = Tensor::Uninitialized({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      result.data()[i * n + j] = inv_sqrt_degree[i] *
                                 adjacency.data()[i * n + j] *
                                 inv_sqrt_degree[j];
    }
  }
  return result;
}

double LargestEigenvalue(const Tensor& matrix, int64_t iterations) {
  const int64_t n = matrix.dim(0);
  Tensor vector = Tensor::Full({n, 1}, 1.0 / std::sqrt(static_cast<double>(n)));
  double eigenvalue = 0.0;
  for (int64_t it = 0; it < iterations; ++it) {
    Tensor next = MatMul(matrix, vector);
    const double norm = Norm(next);
    if (norm < 1e-12) return 0.0;
    ScaleInPlace(&next, 1.0 / norm);
    eigenvalue = norm;
    vector = next;
  }
  return eigenvalue;
}

Tensor ScaledLaplacian(const Tensor& adjacency) {
  const int64_t n = adjacency.dim(0);
  const Tensor normalized = SymNormalize(adjacency);
  Tensor laplacian = Sub(Tensor::Eye(n), normalized);
  double lambda_max = LargestEigenvalue(laplacian);
  if (lambda_max < 1e-6) lambda_max = 2.0;
  Tensor scaled = MulScalar(laplacian, 2.0 / lambda_max);
  return Sub(scaled, Tensor::Eye(n));
}

std::vector<Tensor> ChebyshevPolynomials(const Tensor& scaled_laplacian,
                                         int64_t order) {
  AUTOCTS_CHECK_GE(order, 1);
  const int64_t n = scaled_laplacian.dim(0);
  std::vector<Tensor> polynomials;
  polynomials.push_back(Tensor::Eye(n));
  if (order == 1) return polynomials;
  polynomials.push_back(scaled_laplacian.Clone());
  for (int64_t k = 2; k < order; ++k) {
    Tensor next = MulScalar(MatMul(scaled_laplacian, polynomials[k - 1]), 2.0);
    next = Sub(next, polynomials[k - 2]);
    polynomials.push_back(next);
  }
  return polynomials;
}

DiffusionTransitions BuildDiffusionTransitions(const Tensor& adjacency,
                                               int64_t max_step) {
  AUTOCTS_CHECK_GE(max_step, 1);
  const int64_t n = adjacency.dim(0);
  DiffusionTransitions transitions;
  const Tensor forward = RowNormalize(adjacency);
  const Tensor backward = RowNormalize(adjacency.Transpose(0, 1));
  transitions.forward.push_back(Tensor::Eye(n));
  transitions.backward.push_back(Tensor::Eye(n));
  for (int64_t k = 1; k <= max_step; ++k) {
    transitions.forward.push_back(
        MatMul(transitions.forward.back(), forward));
    transitions.backward.push_back(
        MatMul(transitions.backward.back(), backward));
  }
  return transitions;
}

}  // namespace autocts::graph
