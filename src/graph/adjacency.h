// Graph construction and normalization utilities for the spatial operators.
//
// The paper's datasets define the sensor graph from road-network distances
// via a thresholded Gaussian kernel (Section 4.1.1); this module provides
// that construction plus the matrix transforms required by the S-operators
// of Table 1: Chebyshev polynomial stacks for ChebGCN (Eq. 14) and
// forward/backward diffusion transition powers for Diffusion GCN (Eq. 15).
#ifndef AUTOCTS_GRAPH_ADJACENCY_H_
#define AUTOCTS_GRAPH_ADJACENCY_H_

#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

namespace autocts::graph {

// Weighted adjacency from 2-D sensor positions [N, 2] using the thresholded
// Gaussian kernel: A_ij = exp(-d_ij^2 / sigma^2) if above `threshold`,
// else 0. The diagonal is zero.
Tensor DistanceGaussianAdjacency(const Tensor& positions, double sigma,
                                 double threshold);

// Random sensor positions in the unit square (dataset generators).
Tensor RandomPositions(int64_t num_nodes, Rng* rng);

// A + I.
Tensor AddSelfLoops(const Tensor& adjacency);

// Row-stochastic normalization D^{-1} A (rows with zero degree are left 0).
Tensor RowNormalize(const Tensor& adjacency);

// Symmetric normalization D^{-1/2} A D^{-1/2}.
Tensor SymNormalize(const Tensor& adjacency);

// Largest eigenvalue estimate of a symmetric matrix via power iteration.
double LargestEigenvalue(const Tensor& matrix, int64_t iterations = 64);

// Scaled Laplacian 2 L / lambda_max - I with L = I - D^{-1/2} A D^{-1/2},
// as required by the Chebyshev GCN.
Tensor ScaledLaplacian(const Tensor& adjacency);

// Chebyshev polynomial stack [T_0(L~), ..., T_{K-1}(L~)], with
// T_0 = I, T_1 = L~, T_k = 2 L~ T_{k-1} - T_{k-2}.
std::vector<Tensor> ChebyshevPolynomials(const Tensor& scaled_laplacian,
                                         int64_t order);

// Diffusion transition powers for Eq. 15: for k = 0..max_step returns
// pair (P_f^k, P_b^k) with P_f = D_O^{-1} A (forward random walk) and
// P_b = D_I^{-1} A^T (backward random walk). k = 0 is the identity.
struct DiffusionTransitions {
  std::vector<Tensor> forward;   // size max_step + 1
  std::vector<Tensor> backward;  // size max_step + 1
};
DiffusionTransitions BuildDiffusionTransitions(const Tensor& adjacency,
                                               int64_t max_step);

}  // namespace autocts::graph

#endif  // AUTOCTS_GRAPH_ADJACENCY_H_
