#include "nn/batch_norm.h"

#include "tensor/tensor_ops.h"

namespace autocts::nn {

BatchNorm::BatchNorm(int64_t num_channels, double momentum, double epsilon)
    : num_channels_(num_channels), momentum_(momentum), epsilon_(epsilon) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({num_channels}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({num_channels}));
  running_mean_ = Tensor::Zeros({num_channels});
  running_var_ = Tensor::Ones({num_channels});
  // Running statistics are the eval-mode normalization inputs; without them
  // in the state dict a reloaded model would normalize with the 0/1 init.
  RegisterBuffer("running_mean", &running_mean_);
  RegisterBuffer("running_var", &running_var_);
}

Variable BatchNorm::Forward(const Variable& x) {
  AUTOCTS_CHECK_GE(x.ndim(), 2);
  AUTOCTS_CHECK_EQ(x.dim(-1), num_channels_);
  const int64_t rows = x.size() / num_channels_;
  const Variable flat = ag::Reshape(x, {rows, num_channels_});

  Variable normalized;
  if (training()) {
    const Variable mean = ag::Mean(flat, /*axis=*/0, /*keepdim=*/true);
    const Variable centered = ag::Sub(flat, mean);
    const Variable variance =
        ag::Mean(ag::Mul(centered, centered), /*axis=*/0, /*keepdim=*/true);
    normalized = ag::Div(
        centered, ag::Sqrt(ag::AddScalar(variance, epsilon_)));
    // Update running statistics with detached batch statistics.
    const Tensor batch_mean = mean.value().Reshape({num_channels_});
    const Tensor batch_var = variance.value().Reshape({num_channels_});
    ScaleInPlace(&running_mean_, 1.0 - momentum_);
    AddInPlace(&running_mean_, MulScalar(batch_mean, momentum_));
    ScaleInPlace(&running_var_, 1.0 - momentum_);
    AddInPlace(&running_var_, MulScalar(batch_var, momentum_));
  } else {
    const Variable mean = ag::Constant(running_mean_.Clone());
    const Variable variance = ag::Constant(running_var_.Clone());
    normalized = ag::Div(ag::Sub(flat, mean),
                         ag::Sqrt(ag::AddScalar(variance, epsilon_)));
  }
  const Variable scaled = ag::Add(ag::Mul(normalized, gamma_), beta_);
  return ag::Reshape(scaled, x.shape());
}

}  // namespace autocts::nn
