#include "nn/linear.h"

namespace autocts::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", XavierUniform({in_features, out_features}, in_features,
                              out_features, rng));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Variable Linear::Forward(const Variable& x) const {
  AUTOCTS_CHECK_GE(x.ndim(), 2);
  AUTOCTS_CHECK_EQ(x.dim(-1), in_features_);
  Variable y = ag::MatMul(x, weight_);
  if (bias_.defined()) y = ag::Add(y, bias_);
  return y;
}

}  // namespace autocts::nn
