// Temporal (1-D) convolution over the time axis of [B, T, N, D] inputs.
//
// This is the convolution shape used by all T-operators in the AutoCTS
// search space (Table 1 of the paper): weights are shared across the N time
// series, and the kernel slides along T with optional dilation.
#ifndef AUTOCTS_NN_CONV_H_
#define AUTOCTS_NN_CONV_H_

#include "autograd/variable_ops.h"
#include "nn/module.h"

namespace autocts::nn {

// 1-D convolution along axis 1 (time) of a [B, T, N, D_in] input.
//
// With `causal` the input is left-padded with (kernel_size-1)*dilation zeros
// so the output has the same T and position t only sees inputs <= t;
// otherwise "valid" convolution shrinks T to T - (kernel_size-1)*dilation.
class TemporalConv1d : public Module {
 public:
  TemporalConv1d(int64_t in_channels, int64_t out_channels,
                 int64_t kernel_size, int64_t dilation, bool causal, Rng* rng,
                 bool with_bias = true);

  // [B, T, N, in] -> [B, T', N, out].
  Variable Forward(const Variable& x) const;

  int64_t kernel_size() const { return kernel_size_; }
  int64_t dilation() const { return dilation_; }
  bool causal() const { return causal_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_size_;
  int64_t dilation_;
  bool causal_;
  Variable weight_;  // [kernel_size, in_channels, out_channels]
  Variable bias_;    // [out_channels] or undefined
};

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_CONV_H_
