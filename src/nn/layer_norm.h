// Layer normalization over the last (feature) dimension.
#ifndef AUTOCTS_NN_LAYER_NORM_H_
#define AUTOCTS_NN_LAYER_NORM_H_

#include "autograd/variable_ops.h"
#include "nn/module.h"

namespace autocts::nn {

// Normalizes each position's feature vector to zero mean / unit variance,
// then applies a learned per-feature affine transform.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t num_features, double epsilon = 1e-5);

  // Input [..., num_features].
  Variable Forward(const Variable& x) const;

 private:
  int64_t num_features_;
  double epsilon_;
  Variable gamma_;
  Variable beta_;
};

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_LAYER_NORM_H_
