#include "nn/module.h"

#include <cmath>

namespace autocts::nn {

std::vector<Variable> Module::Parameters() const {
  std::vector<std::pair<std::string, Variable>> named = NamedParameters();
  std::vector<Variable> result;
  result.reserve(named.size());
  for (auto& [name, variable] : named) result.push_back(variable);
  return result;
}

std::vector<std::pair<std::string, Variable>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Variable>> result;
  CollectParameters("", &result);
  return result;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Variable& parameter : Parameters()) total += parameter.size();
  return total;
}

std::vector<std::pair<std::string, Tensor*>> Module::NamedBuffers() const {
  std::vector<std::pair<std::string, Tensor*>> result;
  CollectBuffers("", &result);
  return result;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, submodule] : submodules_) submodule->SetTraining(training);
}

Variable Module::RegisterParameter(const std::string& name, Tensor value) {
  Variable parameter(std::move(value), /*requires_grad=*/true);
  parameters_.emplace_back(name, parameter);
  return parameter;
}

void Module::RegisterModule(const std::string& name, Module* module) {
  AUTOCTS_CHECK(module != nullptr);
  submodules_.emplace_back(name, module);
}

void Module::RegisterBuffer(const std::string& name, Tensor* buffer) {
  AUTOCTS_CHECK(buffer != nullptr);
  buffers_.emplace_back(name, buffer);
}

void Module::CollectParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable>>* out) const {
  for (const auto& [name, parameter] : parameters_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, parameter);
  }
  for (const auto& [name, submodule] : submodules_) {
    submodule->CollectParameters(prefix.empty() ? name : prefix + "." + name,
                                 out);
  }
}

void Module::CollectBuffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor*>>* out) const {
  for (const auto& [name, buffer] : buffers_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, buffer);
  }
  for (const auto& [name, submodule] : submodules_) {
    submodule->CollectBuffers(prefix.empty() ? name : prefix + "." + name,
                              out);
  }
}

Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng* rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return Tensor::Rand(shape, rng, -limit, limit);
}

Tensor HeUniform(const Shape& shape, int64_t fan_in, Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  return Tensor::Rand(shape, rng, -limit, limit);
}

}  // namespace autocts::nn
