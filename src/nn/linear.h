// Affine transformation over the last (feature) dimension.
#ifndef AUTOCTS_NN_LINEAR_H_
#define AUTOCTS_NN_LINEAR_H_

#include "autograd/variable_ops.h"
#include "nn/module.h"

namespace autocts::nn {

// y = x W + b, applied to the last dim of an input of rank >= 2.
class Linear : public Module {
 public:
  // Creates a layer mapping `in_features` to `out_features`. Weights use
  // Xavier-uniform initialization; the bias (if any) starts at zero.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool with_bias = true);

  // Input [..., in_features] -> output [..., out_features].
  Variable Forward(const Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // [in_features, out_features]
  Variable bias_;    // [out_features] or undefined
};

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_LINEAR_H_
