// Batch normalization over the last (channel) dimension.
//
// AutoCTS applies the DARTS "ReLU - operator - BN" pattern to all
// parametric operators (Section 4.1.4); this module normalizes each channel
// over every other axis of a [B, T, N, D] tensor.
#ifndef AUTOCTS_NN_BATCH_NORM_H_
#define AUTOCTS_NN_BATCH_NORM_H_

#include "autograd/variable_ops.h"
#include "nn/module.h"

namespace autocts::nn {

class BatchNorm : public Module {
 public:
  explicit BatchNorm(int64_t num_channels, double momentum = 0.1,
                     double epsilon = 1e-5);

  // Input [..., num_channels]. In training mode uses batch statistics and
  // updates running estimates; in eval mode uses the running estimates.
  Variable Forward(const Variable& x);

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t num_channels_;
  double momentum_;
  double epsilon_;
  Variable gamma_;  // [C] scale
  Variable beta_;   // [C] shift
  Tensor running_mean_;
  Tensor running_var_;
};

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_BATCH_NORM_H_
