#include "nn/dropout.h"

namespace autocts::nn {

Dropout::Dropout(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  AUTOCTS_CHECK_GE(rate, 0.0);
  AUTOCTS_CHECK_LT(rate, 1.0);
}

Variable Dropout::Forward(const Variable& x) {
  if (!training() || rate_ == 0.0) return x;
  Tensor mask = Tensor::Uninitialized(x.shape());
  const double keep = 1.0 - rate_;
  const double scale = 1.0 / keep;
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng_.Bernoulli(keep) ? scale : 0.0;
  }
  return ag::Mul(x, ag::Constant(mask));
}

}  // namespace autocts::nn
