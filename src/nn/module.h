// Base class for neural-network modules: a recursive registry of named
// parameters and submodules, plus the global training/eval mode switch.
//
// Variables are cheap shared handles, so Parameters() returns copies that
// alias the registered parameters; optimizers operate on those copies.
#ifndef AUTOCTS_NN_MODULE_H_
#define AUTOCTS_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/random.h"

namespace autocts::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its registered submodules.
  std::vector<Variable> Parameters() const;
  // Parameters with dotted path names, e.g. "encoder.fc.weight".
  std::vector<std::pair<std::string, Variable>> NamedParameters() const;
  // Total number of scalar parameters.
  int64_t NumParameters() const;

  // Non-trainable state tensors (e.g. BatchNorm running statistics) with
  // dotted path names. Buffers are updated by Forward in training mode, read
  // in eval mode, and must ship alongside the parameters for a reloaded
  // model to reproduce the trained one's inference behaviour.
  std::vector<std::pair<std::string, Tensor*>> NamedBuffers() const;

  // Switches between training and inference behaviour (dropout, batch norm).
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  Module() = default;

  // Registers a trainable parameter; returns a handle aliasing it.
  Variable RegisterParameter(const std::string& name, Tensor value);
  // Registers a submodule (not owned; typically a member of the subclass).
  void RegisterModule(const std::string& name, Module* module);
  // Registers a non-trainable buffer (not owned; a Tensor member of the
  // subclass, which must outlive any NamedBuffers() result).
  void RegisterBuffer(const std::string& name, Tensor* buffer);

 private:
  void CollectParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, Variable>>* out) const;
  void CollectBuffers(
      const std::string& prefix,
      std::vector<std::pair<std::string, Tensor*>>* out) const;

  bool training_ = true;
  std::vector<std::pair<std::string, Variable>> parameters_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
  std::vector<std::pair<std::string, Module*>> submodules_;
};

// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng* rng);
// He/Kaiming uniform initialization for ReLU networks.
Tensor HeUniform(const Shape& shape, int64_t fan_in, Rng* rng);

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_MODULE_H_
