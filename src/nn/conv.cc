#include "nn/conv.h"

namespace autocts::nn {

TemporalConv1d::TemporalConv1d(int64_t in_channels, int64_t out_channels,
                               int64_t kernel_size, int64_t dilation,
                               bool causal, Rng* rng, bool with_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation),
      causal_(causal) {
  AUTOCTS_CHECK_GE(kernel_size, 1);
  AUTOCTS_CHECK_GE(dilation, 1);
  weight_ = RegisterParameter(
      "weight",
      XavierUniform({kernel_size, in_channels, out_channels},
                    kernel_size * in_channels, out_channels, rng));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}));
  }
}

Variable TemporalConv1d::Forward(const Variable& x) const {
  AUTOCTS_CHECK_EQ(x.ndim(), 4);
  AUTOCTS_CHECK_EQ(x.dim(3), in_channels_);
  const int64_t receptive = (kernel_size_ - 1) * dilation_;
  // Left-pad for causal mode so output time t only depends on inputs <= t.
  Variable padded = causal_ ? ag::Pad(x, /*axis=*/1, receptive, 0) : x;
  const int64_t out_t = padded.dim(1) - receptive;
  AUTOCTS_CHECK_GT(out_t, 0) << "input too short for kernel";

  // out[:, t] = sum_k x_padded[:, t + k*dilation] @ W[k]
  Variable result;
  for (int64_t k = 0; k < kernel_size_; ++k) {
    const Variable window =
        ag::Slice(padded, /*axis=*/1, k * dilation_, out_t);
    const Variable kernel = ag::Reshape(
        ag::Slice(weight_, /*axis=*/0, k, 1), {in_channels_, out_channels_});
    const Variable term = ag::MatMul(window, kernel);
    result = k == 0 ? term : ag::Add(result, term);
  }
  if (bias_.defined()) result = ag::Add(result, bias_);
  return result;
}

}  // namespace autocts::nn
