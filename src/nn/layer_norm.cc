#include "nn/layer_norm.h"

namespace autocts::nn {

LayerNorm::LayerNorm(int64_t num_features, double epsilon)
    : num_features_(num_features), epsilon_(epsilon) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({num_features}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({num_features}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  AUTOCTS_CHECK_EQ(x.dim(-1), num_features_);
  const Variable mean = ag::Mean(x, /*axis=*/-1, /*keepdim=*/true);
  const Variable centered = ag::Sub(x, mean);
  const Variable variance =
      ag::Mean(ag::Mul(centered, centered), /*axis=*/-1, /*keepdim=*/true);
  const Variable normalized =
      ag::Div(centered, ag::Sqrt(ag::AddScalar(variance, epsilon_)));
  return ag::Add(ag::Mul(normalized, gamma_), beta_);
}

}  // namespace autocts::nn
