// Parameter (de)serialization: save and restore the trained weights of any
// Module by parameter name, in a line-oriented text format (no third-party
// dependency). Used for checkpointing, best-weights restore, and shipping
// trained forecasting models next to their genotypes.
//
// Format (one record per parameter, then one per non-trainable buffer —
// e.g. BatchNorm running statistics — registered via Module::RegisterBuffer):
//   param = <name> <ndim> <dim0> ... <dimk> <v0> <v1> ... <vn>
//   buffer = <name> <ndim> <dim0> ... <dimk> <v0> <v1> ... <vn>
// Values are written as C99 hex-floats ("%a") so every double round-trips
// bit-identically; the loader also accepts decimal values from old files.
// Files written before buffer records existed still load (the module's
// buffers keep their current values); an unknown buffer name or shape
// mismatch is rejected like any architecture mismatch.
#ifndef AUTOCTS_NN_STATE_DICT_H_
#define AUTOCTS_NN_STATE_DICT_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace autocts::nn {

// Serializes every named parameter of `module`.
std::string SaveStateDict(const Module& module);

// Restores parameter values into `module`. Every parameter of the module
// must be present in the text with a matching shape; unknown extra records
// are rejected too (they signal an architecture mismatch).
Status LoadStateDict(Module* module, const std::string& text);

// Convenience file wrappers.
Status SaveStateDictToFile(const Module& module, const std::string& path);
Status LoadStateDictFromFile(Module* module, const std::string& path);

// In-memory snapshot/restore used for best-validation-weights tracking.
// Snapshot captures deep copies of all parameter values. Intentionally
// parameters-only: training-time rollback keeps the running statistics the
// model has accumulated, matching the pre-buffer behaviour bit-for-bit.
class ParameterSnapshot {
 public:
  // Captures the current values of `module`'s parameters.
  explicit ParameterSnapshot(const Module& module);

  // Writes the captured values back (module must have identical structure).
  void Restore(Module* module) const;

 private:
  std::vector<std::pair<std::string, Tensor>> values_;
};

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_STATE_DICT_H_
