// Inverted dropout.
#ifndef AUTOCTS_NN_DROPOUT_H_
#define AUTOCTS_NN_DROPOUT_H_

#include "autograd/variable_ops.h"
#include "nn/module.h"

namespace autocts::nn {

// Zeroes each element with probability `rate` during training and scales
// the survivors by 1/(1-rate); identity in eval mode.
class Dropout : public Module {
 public:
  Dropout(double rate, uint64_t seed);

  Variable Forward(const Variable& x);

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_DROPOUT_H_
