#include "nn/state_dict.h"

#include <fstream>
#include <sstream>

#include "common/text_codec.h"

namespace autocts::nn {
namespace {

void AppendTensorRecord(const std::string& key, const std::string& name,
                        const Tensor& value, std::ostringstream* out) {
  *out << key << " = " << name << " " << value.ndim();
  for (int64_t d : value.shape()) *out << " " << d;
  // Hex-float ("%a") output is an exact image of the bits, so every
  // value — 0.1, denormals, extremes — reloads bit-identically. (The
  // previous 17-significant-digit decimal form is still accepted by
  // LoadStateDict for old files.)
  for (int64_t i = 0; i < value.size(); ++i) {
    *out << " " << FormatExactDouble(value.data()[i]);
  }
  *out << "\n";
}

Status ParseTensorRecord(const std::string& record, std::string* name,
                         Tensor* value) {
  std::istringstream stream(record);
  int64_t ndim = 0;
  if (!(stream >> *name >> ndim) || ndim < 0 || ndim > 8) {
    return Status::InvalidArgument("malformed record: " + record);
  }
  Shape shape(ndim);
  for (int64_t d = 0; d < ndim; ++d) {
    if (!(stream >> shape[d]) || shape[d] < 0) {
      return Status::InvalidArgument("bad shape in record: " + *name);
    }
  }
  *value = Tensor::Uninitialized(shape);
  // Token-wise strtod parsing: istream extraction does not accept the
  // hex-float form SaveStateDict writes (LWG 2381).
  std::string token;
  for (int64_t i = 0; i < value->size(); ++i) {
    if (!(stream >> token) || !ParseExactDouble(token, &value->data()[i])) {
      return Status::InvalidArgument("truncated values for: " + *name);
    }
  }
  if (stream >> token) {
    return Status::InvalidArgument("trailing values for: " + *name);
  }
  return Status::Ok();
}

}  // namespace

std::string SaveStateDict(const Module& module) {
  std::ostringstream out;
  for (const auto& [name, parameter] : module.NamedParameters()) {
    AppendTensorRecord("param", name, parameter.value(), &out);
  }
  for (const auto& [name, buffer] : module.NamedBuffers()) {
    AppendTensorRecord("buffer", name, *buffer, &out);
  }
  return out.str();
}

Status LoadStateDict(Module* module, const std::string& text) {
  AUTOCTS_CHECK(module != nullptr);
  StatusOr<TextReader> reader = TextReader::Parse(text);
  if (!reader.ok()) return reader.status();

  // Parse all records first.
  std::vector<std::pair<std::string, Tensor>> records;
  for (const std::string& record : reader.value().GetAll("param")) {
    std::string name;
    Tensor value;
    Status status = ParseTensorRecord(record, &name, &value);
    if (!status.ok()) return status;
    records.emplace_back(name, value);
  }
  std::vector<std::pair<std::string, Tensor>> buffer_records;
  for (const std::string& record : reader.value().GetAll("buffer")) {
    std::string name;
    Tensor value;
    Status status = ParseTensorRecord(record, &name, &value);
    if (!status.ok()) return status;
    buffer_records.emplace_back(name, value);
  }

  // Match against the module's parameters.
  std::vector<std::pair<std::string, Variable>> parameters =
      module->NamedParameters();
  if (records.size() != parameters.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(records.size()) + ", module has " +
        std::to_string(parameters.size()));
  }
  for (auto& [name, parameter] : parameters) {
    const Tensor* found = nullptr;
    for (const auto& [record_name, value] : records) {
      if (record_name == name) {
        found = &value;
        break;
      }
    }
    if (found == nullptr) return Status::NotFound("missing parameter: " + name);
    if (found->shape() != parameter.shape()) {
      return Status::InvalidArgument("shape mismatch for: " + name);
    }
  }

  // Match buffer records against the module's buffers. Files written before
  // buffers existed carry none — those load with buffers left at their
  // current values — but an unknown buffer name or a shape mismatch is an
  // architecture mismatch, rejected like a bad param record.
  std::vector<std::pair<std::string, Tensor*>> buffers =
      module->NamedBuffers();
  for (const auto& [record_name, value] : buffer_records) {
    Tensor* found = nullptr;
    for (const auto& [name, buffer] : buffers) {
      if (name == record_name) {
        found = buffer;
        break;
      }
    }
    if (found == nullptr) {
      return Status::InvalidArgument("unknown buffer: " + record_name);
    }
    if (found->shape() != value.shape()) {
      return Status::InvalidArgument("shape mismatch for buffer: " +
                                     record_name);
    }
  }

  // All validated; now write values.
  for (auto& [name, parameter] : parameters) {
    for (const auto& [record_name, value] : records) {
      if (record_name == name) {
        parameter.mutable_value() = value.Clone();
        break;
      }
    }
  }
  for (const auto& [record_name, value] : buffer_records) {
    for (auto& [name, buffer] : buffers) {
      if (name == record_name) {
        *buffer = value.Clone();
        break;
      }
    }
  }
  return Status::Ok();
}

Status SaveStateDictToFile(const Module& module, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << SaveStateDict(module);
  return out ? Status::Ok() : Status::Internal("write failed: " + path);
}

Status LoadStateDictFromFile(Module* module, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  return LoadStateDict(module, text);
}

ParameterSnapshot::ParameterSnapshot(const Module& module) {
  for (const auto& [name, parameter] : module.NamedParameters()) {
    values_.emplace_back(name, parameter.value().Clone());
  }
}

void ParameterSnapshot::Restore(Module* module) const {
  AUTOCTS_CHECK(module != nullptr);
  std::vector<std::pair<std::string, Variable>> parameters =
      module->NamedParameters();
  AUTOCTS_CHECK_EQ(parameters.size(), values_.size())
      << "snapshot/module structure mismatch";
  for (size_t i = 0; i < parameters.size(); ++i) {
    AUTOCTS_CHECK(parameters[i].first == values_[i].first)
        << "snapshot/module parameter order mismatch at " << i;
    AUTOCTS_CHECK(parameters[i].second.shape() == values_[i].second.shape());
    parameters[i].second.mutable_value() = values_[i].second.Clone();
  }
}

}  // namespace autocts::nn
