#include "nn/activations.h"

namespace autocts::nn {

Variable Glu(const Variable& x) {
  const int64_t channels = x.dim(-1);
  AUTOCTS_CHECK_EQ(channels % 2, 0) << "GLU needs an even channel count";
  const int64_t half = channels / 2;
  const Variable a = ag::Slice(x, /*axis=*/-1, 0, half);
  const Variable b = ag::Slice(x, /*axis=*/-1, half, half);
  return ag::Mul(a, ag::Sigmoid(b));
}

Variable LeakyRelu(const Variable& x, double slope) {
  AUTOCTS_CHECK_GT(slope, 0.0);
  AUTOCTS_CHECK_LT(slope, 1.0);
  // max(x, slope*x) == relu(x) - slope * relu(-x)
  return ag::Sub(ag::Relu(x), ag::MulScalar(ag::Relu(ag::Neg(x)), slope));
}

}  // namespace autocts::nn
