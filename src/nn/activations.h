// Activation helpers beyond the elementwise ops in autograd/variable_ops.h.
#ifndef AUTOCTS_NN_ACTIVATIONS_H_
#define AUTOCTS_NN_ACTIVATIONS_H_

#include "autograd/variable_ops.h"

namespace autocts::nn {

// Gated linear unit over the last dim: splits x = [a, b] in halves and
// returns a * sigmoid(b). Requires an even last dimension.
Variable Glu(const Variable& x);

// Leaky ReLU: max(x, slope * x) with slope in (0, 1).
Variable LeakyRelu(const Variable& x, double slope = 0.01);

}  // namespace autocts::nn

#endif  // AUTOCTS_NN_ACTIVATIONS_H_
