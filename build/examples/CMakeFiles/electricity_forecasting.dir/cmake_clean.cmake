file(REMOVE_RECURSE
  "CMakeFiles/electricity_forecasting.dir/electricity_forecasting.cpp.o"
  "CMakeFiles/electricity_forecasting.dir/electricity_forecasting.cpp.o.d"
  "electricity_forecasting"
  "electricity_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electricity_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
