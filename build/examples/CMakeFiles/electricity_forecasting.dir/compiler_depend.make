# Empty compiler generated dependencies file for electricity_forecasting.
# This may be replaced when dependencies are built.
