file(REMOVE_RECURSE
  "CMakeFiles/traffic_forecasting.dir/traffic_forecasting.cpp.o"
  "CMakeFiles/traffic_forecasting.dir/traffic_forecasting.cpp.o.d"
  "traffic_forecasting"
  "traffic_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
