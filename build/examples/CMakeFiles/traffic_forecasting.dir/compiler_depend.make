# Empty compiler generated dependencies file for traffic_forecasting.
# This may be replaced when dependencies are built.
