file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_operator_variants.dir/bench_table03_operator_variants.cc.o"
  "CMakeFiles/bench_table03_operator_variants.dir/bench_table03_operator_variants.cc.o.d"
  "bench_table03_operator_variants"
  "bench_table03_operator_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_operator_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
