# Empty compiler generated dependencies file for bench_table03_operator_variants.
# This may be replaced when dependencies are built.
