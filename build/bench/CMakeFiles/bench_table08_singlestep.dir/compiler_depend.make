# Empty compiler generated dependencies file for bench_table08_singlestep.
# This may be replaced when dependencies are built.
