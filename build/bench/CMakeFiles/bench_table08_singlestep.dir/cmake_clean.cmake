file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_singlestep.dir/bench_table08_singlestep.cc.o"
  "CMakeFiles/bench_table08_singlestep.dir/bench_table08_singlestep.cc.o.d"
  "bench_table08_singlestep"
  "bench_table08_singlestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_singlestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
