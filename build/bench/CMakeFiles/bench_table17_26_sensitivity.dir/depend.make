# Empty dependencies file for bench_table17_26_sensitivity.
# This may be replaced when dependencies are built.
