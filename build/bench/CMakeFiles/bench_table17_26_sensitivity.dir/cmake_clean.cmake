file(REMOVE_RECURSE
  "CMakeFiles/bench_table17_26_sensitivity.dir/bench_table17_26_sensitivity.cc.o"
  "CMakeFiles/bench_table17_26_sensitivity.dir/bench_table17_26_sensitivity.cc.o.d"
  "bench_table17_26_sensitivity"
  "bench_table17_26_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table17_26_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
