file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_search_cost.dir/bench_table07_search_cost.cc.o"
  "CMakeFiles/bench_table07_search_cost.dir/bench_table07_search_cost.cc.o.d"
  "bench_table07_search_cost"
  "bench_table07_search_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_search_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
