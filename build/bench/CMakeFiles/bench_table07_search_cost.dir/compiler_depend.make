# Empty compiler generated dependencies file for bench_table07_search_cost.
# This may be replaced when dependencies are built.
