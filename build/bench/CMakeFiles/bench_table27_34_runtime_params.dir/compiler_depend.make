# Empty compiler generated dependencies file for bench_table27_34_runtime_params.
# This may be replaced when dependencies are built.
