# Empty dependencies file for bench_table35_transferability.
# This may be replaced when dependencies are built.
