file(REMOVE_RECURSE
  "CMakeFiles/bench_table35_transferability.dir/bench_table35_transferability.cc.o"
  "CMakeFiles/bench_table35_transferability.dir/bench_table35_transferability.cc.o.d"
  "bench_table35_transferability"
  "bench_table35_transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table35_transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
