file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_06_multistep.dir/bench_table05_06_multistep.cc.o"
  "CMakeFiles/bench_table05_06_multistep.dir/bench_table05_06_multistep.cc.o.d"
  "bench_table05_06_multistep"
  "bench_table05_06_multistep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_06_multistep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
