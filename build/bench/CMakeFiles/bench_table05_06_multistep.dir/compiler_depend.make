# Empty compiler generated dependencies file for bench_table05_06_multistep.
# This may be replaced when dependencies are built.
