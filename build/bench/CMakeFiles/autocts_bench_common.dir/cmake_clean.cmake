file(REMOVE_RECURSE
  "CMakeFiles/autocts_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/autocts_bench_common.dir/bench_common.cc.o.d"
  "libautocts_bench_common.a"
  "libautocts_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
