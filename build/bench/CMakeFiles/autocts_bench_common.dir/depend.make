# Empty dependencies file for autocts_bench_common.
# This may be replaced when dependencies are built.
