file(REMOVE_RECURSE
  "libautocts_bench_common.a"
)
