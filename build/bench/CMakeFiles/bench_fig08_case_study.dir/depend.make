# Empty dependencies file for bench_fig08_case_study.
# This may be replaced when dependencies are built.
