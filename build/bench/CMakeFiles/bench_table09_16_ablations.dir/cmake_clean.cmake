file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_16_ablations.dir/bench_table09_16_ablations.cc.o"
  "CMakeFiles/bench_table09_16_ablations.dir/bench_table09_16_ablations.cc.o.d"
  "bench_table09_16_ablations"
  "bench_table09_16_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_16_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
