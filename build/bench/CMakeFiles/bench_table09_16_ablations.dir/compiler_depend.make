# Empty compiler generated dependencies file for bench_table09_16_ablations.
# This may be replaced when dependencies are built.
