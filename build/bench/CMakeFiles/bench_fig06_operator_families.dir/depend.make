# Empty dependencies file for bench_fig06_operator_families.
# This may be replaced when dependencies are built.
