file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_operator_families.dir/bench_fig06_operator_families.cc.o"
  "CMakeFiles/bench_fig06_operator_families.dir/bench_fig06_operator_families.cc.o.d"
  "bench_fig06_operator_families"
  "bench_fig06_operator_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_operator_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
