# Empty dependencies file for bench_table36_37_edges.
# This may be replaced when dependencies are built.
