# Empty dependencies file for autocts_nn.
# This may be replaced when dependencies are built.
