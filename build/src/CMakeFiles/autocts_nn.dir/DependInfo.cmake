
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/autocts_nn.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/batch_norm.cc" "src/CMakeFiles/autocts_nn.dir/nn/batch_norm.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/batch_norm.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/autocts_nn.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/autocts_nn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/autocts_nn.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/autocts_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/autocts_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/state_dict.cc" "src/CMakeFiles/autocts_nn.dir/nn/state_dict.cc.o" "gcc" "src/CMakeFiles/autocts_nn.dir/nn/state_dict.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autocts_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
