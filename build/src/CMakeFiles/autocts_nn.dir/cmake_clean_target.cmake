file(REMOVE_RECURSE
  "libautocts_nn.a"
)
