file(REMOVE_RECURSE
  "CMakeFiles/autocts_nn.dir/nn/activations.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/activations.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/batch_norm.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/batch_norm.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/conv.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/conv.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/dropout.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/dropout.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/layer_norm.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/layer_norm.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/linear.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/module.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/autocts_nn.dir/nn/state_dict.cc.o"
  "CMakeFiles/autocts_nn.dir/nn/state_dict.cc.o.d"
  "libautocts_nn.a"
  "libautocts_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
