# Empty dependencies file for autocts_data.
# This may be replaced when dependencies are built.
