
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/autocts_data.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/csv.cc.o.d"
  "/root/repo/src/data/cts_dataset.cc" "src/CMakeFiles/autocts_data.dir/data/cts_dataset.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/cts_dataset.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/CMakeFiles/autocts_data.dir/data/scaler.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/scaler.cc.o.d"
  "/root/repo/src/data/synthetic/electricity.cc" "src/CMakeFiles/autocts_data.dir/data/synthetic/electricity.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/synthetic/electricity.cc.o.d"
  "/root/repo/src/data/synthetic/solar.cc" "src/CMakeFiles/autocts_data.dir/data/synthetic/solar.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/synthetic/solar.cc.o.d"
  "/root/repo/src/data/synthetic/traffic_flow.cc" "src/CMakeFiles/autocts_data.dir/data/synthetic/traffic_flow.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/synthetic/traffic_flow.cc.o.d"
  "/root/repo/src/data/synthetic/traffic_speed.cc" "src/CMakeFiles/autocts_data.dir/data/synthetic/traffic_speed.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/synthetic/traffic_speed.cc.o.d"
  "/root/repo/src/data/window_dataset.cc" "src/CMakeFiles/autocts_data.dir/data/window_dataset.cc.o" "gcc" "src/CMakeFiles/autocts_data.dir/data/window_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autocts_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
