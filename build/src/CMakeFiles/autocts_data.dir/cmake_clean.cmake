file(REMOVE_RECURSE
  "CMakeFiles/autocts_data.dir/data/csv.cc.o"
  "CMakeFiles/autocts_data.dir/data/csv.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/cts_dataset.cc.o"
  "CMakeFiles/autocts_data.dir/data/cts_dataset.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/scaler.cc.o"
  "CMakeFiles/autocts_data.dir/data/scaler.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/synthetic/electricity.cc.o"
  "CMakeFiles/autocts_data.dir/data/synthetic/electricity.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/synthetic/solar.cc.o"
  "CMakeFiles/autocts_data.dir/data/synthetic/solar.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/synthetic/traffic_flow.cc.o"
  "CMakeFiles/autocts_data.dir/data/synthetic/traffic_flow.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/synthetic/traffic_speed.cc.o"
  "CMakeFiles/autocts_data.dir/data/synthetic/traffic_speed.cc.o.d"
  "CMakeFiles/autocts_data.dir/data/window_dataset.cc.o"
  "CMakeFiles/autocts_data.dir/data/window_dataset.cc.o.d"
  "libautocts_data.a"
  "libautocts_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
