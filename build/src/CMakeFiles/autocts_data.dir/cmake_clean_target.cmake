file(REMOVE_RECURSE
  "libautocts_data.a"
)
