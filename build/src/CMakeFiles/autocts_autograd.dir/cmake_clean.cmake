file(REMOVE_RECURSE
  "CMakeFiles/autocts_autograd.dir/autograd/grad_check.cc.o"
  "CMakeFiles/autocts_autograd.dir/autograd/grad_check.cc.o.d"
  "CMakeFiles/autocts_autograd.dir/autograd/variable.cc.o"
  "CMakeFiles/autocts_autograd.dir/autograd/variable.cc.o.d"
  "CMakeFiles/autocts_autograd.dir/autograd/variable_ops.cc.o"
  "CMakeFiles/autocts_autograd.dir/autograd/variable_ops.cc.o.d"
  "libautocts_autograd.a"
  "libautocts_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
