file(REMOVE_RECURSE
  "libautocts_autograd.a"
)
