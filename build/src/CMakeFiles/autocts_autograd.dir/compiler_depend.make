# Empty compiler generated dependencies file for autocts_autograd.
# This may be replaced when dependencies are built.
