file(REMOVE_RECURSE
  "CMakeFiles/autocts_metrics.dir/metrics/metrics.cc.o"
  "CMakeFiles/autocts_metrics.dir/metrics/metrics.cc.o.d"
  "libautocts_metrics.a"
  "libautocts_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
