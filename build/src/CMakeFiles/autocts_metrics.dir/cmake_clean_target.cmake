file(REMOVE_RECURSE
  "libautocts_metrics.a"
)
