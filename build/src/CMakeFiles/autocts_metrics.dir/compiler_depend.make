# Empty compiler generated dependencies file for autocts_metrics.
# This may be replaced when dependencies are built.
