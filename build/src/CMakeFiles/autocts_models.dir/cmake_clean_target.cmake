file(REMOVE_RECURSE
  "libautocts_models.a"
)
