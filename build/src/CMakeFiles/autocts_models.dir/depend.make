# Empty dependencies file for autocts_models.
# This may be replaced when dependencies are built.
