
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/agcrn.cc" "src/CMakeFiles/autocts_models.dir/models/agcrn.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/agcrn.cc.o.d"
  "/root/repo/src/models/dcrnn.cc" "src/CMakeFiles/autocts_models.dir/models/dcrnn.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/dcrnn.cc.o.d"
  "/root/repo/src/models/forecasting_model.cc" "src/CMakeFiles/autocts_models.dir/models/forecasting_model.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/forecasting_model.cc.o.d"
  "/root/repo/src/models/graph_wavenet.cc" "src/CMakeFiles/autocts_models.dir/models/graph_wavenet.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/graph_wavenet.cc.o.d"
  "/root/repo/src/models/lstnet.cc" "src/CMakeFiles/autocts_models.dir/models/lstnet.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/lstnet.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/CMakeFiles/autocts_models.dir/models/model_zoo.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/models/mtgnn.cc" "src/CMakeFiles/autocts_models.dir/models/mtgnn.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/mtgnn.cc.o.d"
  "/root/repo/src/models/st_blocks.cc" "src/CMakeFiles/autocts_models.dir/models/st_blocks.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/st_blocks.cc.o.d"
  "/root/repo/src/models/stgcn.cc" "src/CMakeFiles/autocts_models.dir/models/stgcn.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/stgcn.cc.o.d"
  "/root/repo/src/models/tpa_lstm.cc" "src/CMakeFiles/autocts_models.dir/models/tpa_lstm.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/tpa_lstm.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/CMakeFiles/autocts_models.dir/models/trainer.cc.o" "gcc" "src/CMakeFiles/autocts_models.dir/models/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autocts_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
