file(REMOVE_RECURSE
  "CMakeFiles/autocts_models.dir/models/agcrn.cc.o"
  "CMakeFiles/autocts_models.dir/models/agcrn.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/dcrnn.cc.o"
  "CMakeFiles/autocts_models.dir/models/dcrnn.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/forecasting_model.cc.o"
  "CMakeFiles/autocts_models.dir/models/forecasting_model.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/graph_wavenet.cc.o"
  "CMakeFiles/autocts_models.dir/models/graph_wavenet.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/lstnet.cc.o"
  "CMakeFiles/autocts_models.dir/models/lstnet.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/model_zoo.cc.o"
  "CMakeFiles/autocts_models.dir/models/model_zoo.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/mtgnn.cc.o"
  "CMakeFiles/autocts_models.dir/models/mtgnn.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/st_blocks.cc.o"
  "CMakeFiles/autocts_models.dir/models/st_blocks.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/stgcn.cc.o"
  "CMakeFiles/autocts_models.dir/models/stgcn.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/tpa_lstm.cc.o"
  "CMakeFiles/autocts_models.dir/models/tpa_lstm.cc.o.d"
  "CMakeFiles/autocts_models.dir/models/trainer.cc.o"
  "CMakeFiles/autocts_models.dir/models/trainer.cc.o.d"
  "libautocts_models.a"
  "libautocts_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
