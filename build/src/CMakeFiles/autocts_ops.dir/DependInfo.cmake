
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/attention_ops.cc" "src/CMakeFiles/autocts_ops.dir/ops/attention_ops.cc.o" "gcc" "src/CMakeFiles/autocts_ops.dir/ops/attention_ops.cc.o.d"
  "/root/repo/src/ops/gcn_ops.cc" "src/CMakeFiles/autocts_ops.dir/ops/gcn_ops.cc.o" "gcc" "src/CMakeFiles/autocts_ops.dir/ops/gcn_ops.cc.o.d"
  "/root/repo/src/ops/op_registry.cc" "src/CMakeFiles/autocts_ops.dir/ops/op_registry.cc.o" "gcc" "src/CMakeFiles/autocts_ops.dir/ops/op_registry.cc.o.d"
  "/root/repo/src/ops/rnn_ops.cc" "src/CMakeFiles/autocts_ops.dir/ops/rnn_ops.cc.o" "gcc" "src/CMakeFiles/autocts_ops.dir/ops/rnn_ops.cc.o.d"
  "/root/repo/src/ops/simple_ops.cc" "src/CMakeFiles/autocts_ops.dir/ops/simple_ops.cc.o" "gcc" "src/CMakeFiles/autocts_ops.dir/ops/simple_ops.cc.o.d"
  "/root/repo/src/ops/temporal_conv_ops.cc" "src/CMakeFiles/autocts_ops.dir/ops/temporal_conv_ops.cc.o" "gcc" "src/CMakeFiles/autocts_ops.dir/ops/temporal_conv_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autocts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
