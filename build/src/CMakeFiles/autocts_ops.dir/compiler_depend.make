# Empty compiler generated dependencies file for autocts_ops.
# This may be replaced when dependencies are built.
