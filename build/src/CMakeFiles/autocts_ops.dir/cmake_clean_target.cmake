file(REMOVE_RECURSE
  "libautocts_ops.a"
)
