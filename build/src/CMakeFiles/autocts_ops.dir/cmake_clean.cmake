file(REMOVE_RECURSE
  "CMakeFiles/autocts_ops.dir/ops/attention_ops.cc.o"
  "CMakeFiles/autocts_ops.dir/ops/attention_ops.cc.o.d"
  "CMakeFiles/autocts_ops.dir/ops/gcn_ops.cc.o"
  "CMakeFiles/autocts_ops.dir/ops/gcn_ops.cc.o.d"
  "CMakeFiles/autocts_ops.dir/ops/op_registry.cc.o"
  "CMakeFiles/autocts_ops.dir/ops/op_registry.cc.o.d"
  "CMakeFiles/autocts_ops.dir/ops/rnn_ops.cc.o"
  "CMakeFiles/autocts_ops.dir/ops/rnn_ops.cc.o.d"
  "CMakeFiles/autocts_ops.dir/ops/simple_ops.cc.o"
  "CMakeFiles/autocts_ops.dir/ops/simple_ops.cc.o.d"
  "CMakeFiles/autocts_ops.dir/ops/temporal_conv_ops.cc.o"
  "CMakeFiles/autocts_ops.dir/ops/temporal_conv_ops.cc.o.d"
  "libautocts_ops.a"
  "libautocts_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
