
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adaptive_adjacency.cc" "src/CMakeFiles/autocts_graph.dir/graph/adaptive_adjacency.cc.o" "gcc" "src/CMakeFiles/autocts_graph.dir/graph/adaptive_adjacency.cc.o.d"
  "/root/repo/src/graph/adjacency.cc" "src/CMakeFiles/autocts_graph.dir/graph/adjacency.cc.o" "gcc" "src/CMakeFiles/autocts_graph.dir/graph/adjacency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autocts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
