file(REMOVE_RECURSE
  "CMakeFiles/autocts_graph.dir/graph/adaptive_adjacency.cc.o"
  "CMakeFiles/autocts_graph.dir/graph/adaptive_adjacency.cc.o.d"
  "CMakeFiles/autocts_graph.dir/graph/adjacency.cc.o"
  "CMakeFiles/autocts_graph.dir/graph/adjacency.cc.o.d"
  "libautocts_graph.a"
  "libautocts_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
