# Empty dependencies file for autocts_graph.
# This may be replaced when dependencies are built.
