file(REMOVE_RECURSE
  "libautocts_graph.a"
)
