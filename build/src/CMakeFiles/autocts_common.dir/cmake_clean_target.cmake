file(REMOVE_RECURSE
  "libautocts_common.a"
)
