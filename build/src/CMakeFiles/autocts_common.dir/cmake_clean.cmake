file(REMOVE_RECURSE
  "CMakeFiles/autocts_common.dir/common/logging.cc.o"
  "CMakeFiles/autocts_common.dir/common/logging.cc.o.d"
  "CMakeFiles/autocts_common.dir/common/random.cc.o"
  "CMakeFiles/autocts_common.dir/common/random.cc.o.d"
  "CMakeFiles/autocts_common.dir/common/status.cc.o"
  "CMakeFiles/autocts_common.dir/common/status.cc.o.d"
  "CMakeFiles/autocts_common.dir/common/text_codec.cc.o"
  "CMakeFiles/autocts_common.dir/common/text_codec.cc.o.d"
  "libautocts_common.a"
  "libautocts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
