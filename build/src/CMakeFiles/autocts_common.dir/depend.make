# Empty dependencies file for autocts_common.
# This may be replaced when dependencies are built.
