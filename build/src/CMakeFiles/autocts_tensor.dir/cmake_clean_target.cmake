file(REMOVE_RECURSE
  "libautocts_tensor.a"
)
