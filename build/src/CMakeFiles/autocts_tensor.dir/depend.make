# Empty dependencies file for autocts_tensor.
# This may be replaced when dependencies are built.
