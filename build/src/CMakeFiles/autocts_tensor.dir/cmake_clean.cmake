file(REMOVE_RECURSE
  "CMakeFiles/autocts_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/autocts_tensor.dir/tensor/tensor.cc.o.d"
  "CMakeFiles/autocts_tensor.dir/tensor/tensor_ops.cc.o"
  "CMakeFiles/autocts_tensor.dir/tensor/tensor_ops.cc.o.d"
  "libautocts_tensor.a"
  "libautocts_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
