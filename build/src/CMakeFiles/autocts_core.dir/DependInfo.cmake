
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/autocts_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/derived_model.cc" "src/CMakeFiles/autocts_core.dir/core/derived_model.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/derived_model.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/autocts_core.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/genotype.cc" "src/CMakeFiles/autocts_core.dir/core/genotype.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/genotype.cc.o.d"
  "/root/repo/src/core/macro_only.cc" "src/CMakeFiles/autocts_core.dir/core/macro_only.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/macro_only.cc.o.d"
  "/root/repo/src/core/micro_dag.cc" "src/CMakeFiles/autocts_core.dir/core/micro_dag.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/micro_dag.cc.o.d"
  "/root/repo/src/core/operator_set.cc" "src/CMakeFiles/autocts_core.dir/core/operator_set.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/operator_set.cc.o.d"
  "/root/repo/src/core/searcher.cc" "src/CMakeFiles/autocts_core.dir/core/searcher.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/searcher.cc.o.d"
  "/root/repo/src/core/supernet.cc" "src/CMakeFiles/autocts_core.dir/core/supernet.cc.o" "gcc" "src/CMakeFiles/autocts_core.dir/core/supernet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autocts_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autocts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
