# Empty dependencies file for autocts_core.
# This may be replaced when dependencies are built.
