file(REMOVE_RECURSE
  "libautocts_core.a"
)
