file(REMOVE_RECURSE
  "CMakeFiles/autocts_core.dir/core/cost_model.cc.o"
  "CMakeFiles/autocts_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/derived_model.cc.o"
  "CMakeFiles/autocts_core.dir/core/derived_model.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/evaluator.cc.o"
  "CMakeFiles/autocts_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/genotype.cc.o"
  "CMakeFiles/autocts_core.dir/core/genotype.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/macro_only.cc.o"
  "CMakeFiles/autocts_core.dir/core/macro_only.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/micro_dag.cc.o"
  "CMakeFiles/autocts_core.dir/core/micro_dag.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/operator_set.cc.o"
  "CMakeFiles/autocts_core.dir/core/operator_set.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/searcher.cc.o"
  "CMakeFiles/autocts_core.dir/core/searcher.cc.o.d"
  "CMakeFiles/autocts_core.dir/core/supernet.cc.o"
  "CMakeFiles/autocts_core.dir/core/supernet.cc.o.d"
  "libautocts_core.a"
  "libautocts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
