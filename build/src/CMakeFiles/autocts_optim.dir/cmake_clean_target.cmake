file(REMOVE_RECURSE
  "libautocts_optim.a"
)
