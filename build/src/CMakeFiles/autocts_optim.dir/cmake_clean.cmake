file(REMOVE_RECURSE
  "CMakeFiles/autocts_optim.dir/optim/adam.cc.o"
  "CMakeFiles/autocts_optim.dir/optim/adam.cc.o.d"
  "CMakeFiles/autocts_optim.dir/optim/lr_schedule.cc.o"
  "CMakeFiles/autocts_optim.dir/optim/lr_schedule.cc.o.d"
  "CMakeFiles/autocts_optim.dir/optim/optimizer.cc.o"
  "CMakeFiles/autocts_optim.dir/optim/optimizer.cc.o.d"
  "CMakeFiles/autocts_optim.dir/optim/sgd.cc.o"
  "CMakeFiles/autocts_optim.dir/optim/sgd.cc.o.d"
  "libautocts_optim.a"
  "libautocts_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
