# Empty compiler generated dependencies file for autocts_optim.
# This may be replaced when dependencies are built.
