# Empty compiler generated dependencies file for autocts_cli.
# This may be replaced when dependencies are built.
