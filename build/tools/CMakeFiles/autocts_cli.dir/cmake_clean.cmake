file(REMOVE_RECURSE
  "CMakeFiles/autocts_cli.dir/autocts_cli.cc.o"
  "CMakeFiles/autocts_cli.dir/autocts_cli.cc.o.d"
  "autocts_cli"
  "autocts_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocts_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
