file(REMOVE_RECURSE
  "CMakeFiles/core_search_test.dir/core_search_test.cc.o"
  "CMakeFiles/core_search_test.dir/core_search_test.cc.o.d"
  "core_search_test"
  "core_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
