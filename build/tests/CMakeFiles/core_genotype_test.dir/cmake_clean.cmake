file(REMOVE_RECURSE
  "CMakeFiles/core_genotype_test.dir/core_genotype_test.cc.o"
  "CMakeFiles/core_genotype_test.dir/core_genotype_test.cc.o.d"
  "core_genotype_test"
  "core_genotype_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_genotype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
