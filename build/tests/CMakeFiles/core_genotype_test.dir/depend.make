# Empty dependencies file for core_genotype_test.
# This may be replaced when dependencies are built.
