// Quickstart: the full AutoCTS workflow in ~60 lines.
//
//  1. Generate (or load) a correlated time series dataset.
//  2. Prepare it: z-score normalization + sliding windows + splits.
//  3. Search an architecture with the joint micro+macro search.
//  4. Retrain the derived architecture from scratch and evaluate it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/trainer.h"

int main() {
  using namespace autocts;

  // 1. A small correlated traffic-speed dataset on a 10-sensor graph.
  data::TrafficSpeedConfig dataset_config;
  dataset_config.num_nodes = 10;
  dataset_config.num_steps = 1152;  // 4 days at 5-minute resolution.
  dataset_config.seed = 42;
  const data::CtsDataset dataset = data::GenerateTrafficSpeed(dataset_config);
  std::printf("dataset: %s  (T=%lld, N=%lld, F=%lld)\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.num_steps()),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.num_features()));

  // 2. Use the past hour (12 steps) to forecast the next hour (12 steps).
  data::WindowSpec window;
  window.input_length = 12;
  window.output_length = 12;
  const models::PreparedData prepared =
      models::PrepareData(dataset, window, /*train=*/0.7,
                          /*validation=*/0.1);

  // 3. Joint architecture search (Algorithm 1 of the paper).
  core::SearchOptions search_options;
  search_options.supernet.micro_nodes = 5;   // M
  search_options.supernet.macro_blocks = 4;  // B
  search_options.supernet.hidden_dim = 16;
  search_options.epochs = 2;
  search_options.batch_size = 32;
  search_options.max_batches_per_epoch = 5;
  search_options.verbose = true;
  const core::SearchResult search =
      core::JointSearcher(search_options).Search(prepared);
  std::printf("\nsearched architecture (%.1fs):\n%s\n",
              search.search_seconds,
              search.genotype.ToPrettyString().c_str());

  // 4. Architecture evaluation: retrain the derived model from scratch.
  models::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.batch_size = 32;
  train_config.max_batches_per_epoch = 10;
  train_config.verbose = true;
  const models::EvalResult result = core::EvaluateGenotype(
      search.genotype, prepared, /*hidden_dim=*/16, train_config);

  std::printf("\ntest metrics (denormalized, zero-masked):\n");
  std::printf("  MAE  = %.3f\n", result.average.mae);
  std::printf("  RMSE = %.3f\n", result.average.rmse);
  std::printf("  MAPE = %.2f%%\n", result.average.mape * 100.0);
  std::printf("  parameters = %lld\n",
              static_cast<long long>(result.parameter_count));
  return 0;
}
