// Extending the search space with a brand-new operator — the paper's key
// extensibility argument (Section 3.1): "whenever a new S/T-operator is
// designed, the new S/T-operator can be easily included in the search
// space".
//
// This example defines a simple exponential-moving-average (EMA) temporal
// operator, registers it with the global operator registry, adds it to a
// custom operator set, and runs the joint search over the extended space.
//
// Build & run:  ./build/examples/custom_operator
#include <cstdio>

#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "nn/linear.h"
#include "ops/op_registry.h"

namespace {

using namespace autocts;

// A learnable causal smoother: y_t = a * y_{t-1} + (1 - a) * W x_t with a
// sigmoid-parameterized decay `a`. Cheap, causal, infinite receptive field.
class EmaOp : public ops::StOperator {
 public:
  explicit EmaOp(const ops::OpContext& context)
      : projection_(context.channels, context.channels, context.rng) {
    decay_logit_ = RegisterParameter("decay_logit", Tensor::Zeros({1}));
    RegisterModule("projection", &projection_);
  }

  Variable Forward(const Variable& x) override {
    const int64_t steps = x.dim(1);
    const Variable projected = projection_.Forward(x);
    const Variable decay = ag::Sigmoid(decay_logit_);          // [1]
    const Variable keep = ag::AddScalar(ag::Neg(decay), 1.0);  // 1 - a
    Variable state;
    std::vector<Variable> outputs;
    outputs.reserve(steps);
    for (int64_t t = 0; t < steps; ++t) {
      const Variable x_t = ag::Slice(projected, 1, t, 1);
      state = t == 0 ? ag::Mul(keep, x_t)
                     : ag::Add(ag::Mul(decay, state), ag::Mul(keep, x_t));
      outputs.push_back(state);
    }
    return ag::Concat(outputs, /*axis=*/1);
  }

  std::string name() const override { return "ema"; }

 private:
  Variable decay_logit_;
  nn::Linear projection_;
};

}  // namespace

int main() {
  // 1. Register the new operator once, process-wide.
  ops::OpRegistry::Global().Register(
      "ema", [](const ops::OpContext& context) -> ops::StOperatorPtr {
        return std::make_unique<EmaOp>(context);
      });
  std::printf("registered operators:");
  for (const std::string& name : ops::OpRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // 2. Extend the compact operator set with it.
  core::OperatorSet extended = core::CompactOperatorSet();
  extended.name = "compact+ema";
  extended.op_names.push_back("ema");

  // 3. Search over the extended space.
  data::TrafficFlowConfig config;
  config.num_nodes = 10;
  config.num_steps = 1152;
  config.seed = 77;
  data::WindowSpec window;
  window.input_length = 12;
  window.output_length = 12;
  const models::PreparedData prepared =
      models::PrepareData(data::GenerateTrafficFlow(config), window, 0.6,
                          0.2);

  core::SearchOptions options;
  options.supernet.op_set = extended;
  options.supernet.hidden_dim = 16;
  options.epochs = 2;
  options.batch_size = 32;
  options.max_batches_per_epoch = 5;
  const core::SearchResult search =
      core::JointSearcher(options).Search(prepared);
  std::printf("\nsearched architecture over the extended space:\n%s\n",
              search.genotype.ToPrettyString().c_str());

  // 4. Evaluate the derived model (which may or may not have kept "ema" —
  //    the search decides).
  models::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 32;
  train_config.max_batches_per_epoch = 10;
  const models::EvalResult result =
      core::EvaluateGenotype(search.genotype, prepared, 16, train_config);
  std::printf("test MAE %.3f  RMSE %.3f  MAPE %.2f%%\n", result.average.mae,
              result.average.rmse, result.average.mape * 100.0);
  return 0;
}
