// Multi-step traffic forecasting: compares a human-designed baseline
// (Graph WaveNet) against an AutoCTS-searched architecture on the same
// METR-LA style dataset, prints per-horizon accuracy (15/30/60 min), saves
// the searched genotype to disk, reloads it, and exports one day of
// predictions to CSV for plotting.
//
// Build & run:  ./build/examples/traffic_forecasting
#include <cstdio>
#include <fstream>

#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/csv.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "tensor/tensor_ops.h"

namespace {

void PrintHorizons(const char* name, const autocts::models::EvalResult& r) {
  // 15 min = step 3, 30 min = step 6, 60 min = step 12 (1-based).
  std::printf("%-14s", name);
  for (const int64_t h : {2, 5, 11}) {
    const auto& m = r.per_horizon.at(h);
    std::printf("  MAE %.2f RMSE %.2f MAPE %.1f%%", m.mae, m.rmse,
                m.mape * 100.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace autocts;

  data::TrafficSpeedConfig config;
  config.name = "metr-la-like";
  config.num_nodes = 12;
  config.num_steps = 1440;
  config.seed = 7;
  const data::CtsDataset dataset = data::GenerateTrafficSpeed(config);

  data::WindowSpec window;
  window.input_length = 12;
  window.output_length = 12;
  const models::PreparedData prepared =
      models::PrepareData(dataset, window, 0.7, 0.1);

  // --- Baseline: Graph WaveNet -------------------------------------------
  models::ModelContext context;
  context.num_nodes = prepared.num_nodes;
  context.in_features = prepared.in_features;
  context.input_length = 12;
  context.output_length = 12;
  context.hidden_dim = 16;
  context.adjacency = prepared.adjacency;
  context.seed = 99;
  models::ForecastingModelPtr baseline =
      models::CreateBaseline("GraphWaveNet", context);
  models::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 32;
  train_config.max_batches_per_epoch = 10;
  const models::EvalResult baseline_result =
      models::TrainAndEvaluate(baseline.get(), prepared, train_config);

  // --- AutoCTS -------------------------------------------------------------
  core::SearchOptions options;
  options.supernet.hidden_dim = 16;
  options.epochs = 2;
  options.batch_size = 32;
  options.max_batches_per_epoch = 5;
  const core::SearchResult search =
      core::JointSearcher(options).Search(prepared);

  // Persist the genotype, then reload it (how a production system would
  // ship a searched architecture).
  const std::string genotype_path = "searched_traffic_genotype.txt";
  {
    std::ofstream out(genotype_path);
    out << search.genotype.ToText();
  }
  std::string text;
  {
    std::ifstream in(genotype_path);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const StatusOr<core::Genotype> reloaded = core::Genotype::FromText(text);
  if (!reloaded.ok()) {
    std::printf("failed to reload genotype: %s\n",
                reloaded.status().ToString().c_str());
    return 1;
  }
  train_config.epochs = 4;
  const models::EvalResult autocts_result = core::EvaluateGenotype(
      reloaded.value(), prepared, 16, train_config);

  std::printf("\nper-horizon accuracy (15 / 30 / 60 minutes):\n");
  PrintHorizons("GraphWaveNet", baseline_result);
  PrintHorizons("AutoCTS", autocts_result);
  std::printf("\nsearched backbone:\n%s", search.genotype.ToPrettyString().c_str());

  // --- Export predictions for node 0 over the test period ------------------
  std::unique_ptr<core::DerivedModel> model =
      core::BuildDerivedModel(reloaded.value(), prepared, 16, 5);
  Tensor predictions, truths;
  models::Predict(model.get(), prepared, prepared.test(), 32, &predictions,
                  &truths);
  const int64_t windows = std::min<int64_t>(predictions.dim(0), 288);
  Tensor exported({windows, 2});  // (truth, prediction) at the 15-min step.
  for (int64_t i = 0; i < windows; ++i) {
    exported.At({i, 0}) = truths.At({i, 2, 0, 0});
    exported.At({i, 1}) = predictions.At({i, 2, 0, 0});
  }
  const Status save =
      data::SaveMatrixCsv("traffic_predictions_node0.csv", exported);
  std::printf("\nexported %lld (truth, prediction) pairs to "
              "traffic_predictions_node0.csv: %s\n",
              static_cast<long long>(windows), save.ToString().c_str());
  return 0;
}
