// Single-step electricity-load forecasting (the Table 8 setting): predict
// the load `horizon` steps ahead from a long history window, on a dataset
// with NO predefined adjacency — the models learn the client-to-client
// correlations via the adaptive adjacency.
//
// Compares LSTNet (no explicit inter-series modelling) with MTGNN and an
// AutoCTS-searched model, reporting RRSE and CORR at horizons 3 and 24.
//
// Build & run:  ./build/examples/electricity_forecasting
#include <cstdio>

#include "core/evaluator.h"
#include "core/searcher.h"
#include "data/synthetic/generators.h"
#include "models/model_zoo.h"
#include "models/trainer.h"

int main() {
  using namespace autocts;

  data::ElectricityConfig config;
  config.num_nodes = 12;
  config.num_steps = 2016;  // 12 weeks, hourly.
  config.seed = 13;
  const data::CtsDataset dataset = data::GenerateElectricity(config);
  std::printf("dataset: %s (no predefined adjacency: %s)\n",
              dataset.name.c_str(),
              dataset.adjacency.defined() ? "false" : "true");

  for (const int64_t horizon : {int64_t{3}, int64_t{24}}) {
    data::WindowSpec window;
    window.input_length = 36;
    window.output_length = 1;
    window.horizon = horizon;
    const models::PreparedData prepared =
        models::PrepareData(dataset, window, 0.6, 0.2);

    std::printf("\n--- horizon %lld ---\n",
                static_cast<long long>(horizon));
    models::TrainConfig train_config;
    train_config.epochs = 3;
    train_config.batch_size = 32;
    train_config.max_batches_per_epoch = 10;

    for (const char* name : {"LSTNet", "MTGNN"}) {
      models::ModelContext context;
      context.num_nodes = prepared.num_nodes;
      context.in_features = prepared.in_features;
      context.input_length = window.input_length;
      context.output_length = 1;
      context.hidden_dim = 16;
      context.seed = 31;
      models::ForecastingModelPtr model =
          models::CreateBaseline(name, context);
      const models::EvalResult result =
          models::TrainAndEvaluate(model.get(), prepared, train_config);
      std::printf("%-10s RRSE %.4f  CORR %.4f\n", name, result.rrse,
                  result.corr);
    }

    core::SearchOptions options;
    options.supernet.hidden_dim = 16;
    options.epochs = 2;
    options.batch_size = 32;
    options.max_batches_per_epoch = 4;
    const core::SearchResult search =
        core::JointSearcher(options).Search(prepared);
    const models::EvalResult result = core::EvaluateGenotype(
        search.genotype, prepared, 16, train_config);
    std::printf("%-10s RRSE %.4f  CORR %.4f\n", "AutoCTS", result.rrse,
                result.corr);
  }
  std::printf(
      "\nNote: RRSE < 1 beats the mean predictor; CORR near 1 tracks the\n"
      "diurnal/weekly pattern. Models that capture inter-series structure\n"
      "(MTGNN, AutoCTS) should lead LSTNet, as in Table 8 of the paper.\n");
  return 0;
}
